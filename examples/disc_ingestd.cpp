// disc_ingestd: a standalone ingest daemon — one DiscEngine fronted by the
// binary-framed TCP ingest plane (net/ingest_server.h) plus the telemetry
// HTTP plane (obs/http_server.h), sharing one metrics registry.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/disc_ingestd [--port P] [--telemetry-port P]
//       [--lanes N] [--max-pending N] [--spill DIR]
//
// Ports default to 0 (ephemeral); the bound ports are printed as
//   serving ingest on port N
//   serving telemetry on port M
// so scripts (scripts/ci.sh's ingest smoke) can parse them. The process
// holds open on stdin — press Enter (or close stdin) to shut down.
//
// Feed it with examples/disc_feed (or any net::IngestClient): create
// sessions, push slides, drain, query snapshots — all over the wire, with
// the engine's determinism and no-silent-drop guarantees intact
// (docs/API.md §net). /healthz on the telemetry port covers the ingest
// listener: kill the ingest plane and readiness flips to 503.
//
// --spill DIR enables Checkpoint(): when set, the daemon checkpoints every
// session on shutdown, and a later start with the same DIR recovers them
// (DiscEngine::Open) before serving — a restartable ingest node.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "engine/disc_engine.h"
#include "net/ingest_server.h"
#include "obs/http_server.h"
#include "obs/metrics_registry.h"

int main(int argc, char** argv) {
  std::uint16_t ingest_port = 0;
  std::uint16_t telemetry_port = 0;
  std::size_t lanes = 2;
  std::size_t max_pending = 64;
  std::string spill_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      ingest_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--telemetry-port" && i + 1 < argc) {
      telemetry_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--lanes" && i + 1 < argc) {
      lanes = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--max-pending" && i + 1 < argc) {
      max_pending = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--spill" && i + 1 < argc) {
      spill_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port P] [--telemetry-port P] [--lanes N] "
                   "[--max-pending N] [--spill DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  disc::obs::MetricsRegistry registry;
  disc::EngineOptions engine_options;
  engine_options.num_threads = 4;
  engine_options.metrics = &registry;
  engine_options.spill_dir = spill_dir;

  // With a spill dir, resume the previous generation when one exists —
  // the restartable-node story; otherwise start empty.
  std::unique_ptr<disc::DiscEngine> engine;
  if (!spill_dir.empty()) {
    disc::Status open_error;
    engine = disc::DiscEngine::Open(engine_options, &open_error);
    if (engine != nullptr) {
      std::printf("recovered %zu sessions from %s\n", engine->session_count(),
                  spill_dir.c_str());
    }
  }
  if (engine == nullptr) {
    engine = std::make_unique<disc::DiscEngine>(engine_options);
  }

  disc::net::IngestServerOptions ingest_options;
  ingest_options.port = ingest_port;
  ingest_options.worker_threads = lanes;
  ingest_options.max_pending_slides = max_pending;
  ingest_options.engine = engine.get();
  ingest_options.metrics = &registry;
  disc::net::IngestServer ingest(ingest_options);
  if (const disc::Status started = ingest.Start(); !started.ok()) {
    std::fprintf(stderr, "ingest: %s\n", started.message().c_str());
    return 1;
  }

  disc::obs::HttpServerOptions telemetry_options;
  telemetry_options.port = telemetry_port;
  telemetry_options.metrics = &registry;
  telemetry_options.engine = engine.get();
  telemetry_options.ingest_ready = [&ingest]() { return ingest.running(); };
  disc::obs::HttpServer telemetry(telemetry_options);
  if (const disc::Status started = telemetry.Start(); !started.ok()) {
    std::fprintf(stderr, "telemetry: %s\n", started.message().c_str());
    return 1;
  }

  std::printf("serving ingest on port %u\n",
              static_cast<unsigned>(ingest.port()));
  std::printf("serving telemetry on port %u\n",
              static_cast<unsigned>(telemetry.port()));
  std::printf("ingest node up; press Enter (or close stdin) to exit\n");
  std::fflush(stdout);

  std::string line;
  std::getline(std::cin, line);

  // Orderly shutdown: stop admitting, drain what was accepted (nothing
  // accepted is ever dropped), checkpoint when so configured.
  ingest.Stop();
  const std::size_t drained = engine->Drain();
  if (drained > 0) {
    std::printf("drained %zu slides on shutdown\n", drained);
  }
  if (!spill_dir.empty()) {
    if (const disc::Status saved = engine->Checkpoint(); !saved.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", saved.message().c_str());
      return 1;
    }
    std::printf("checkpointed %zu sessions to %s\n", engine->session_count(),
                spill_dir.c_str());
  }
  telemetry.Stop();
  return 0;
}
