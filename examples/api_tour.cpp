// API tour: a compact, runnable walk through every public capability of the
// library — parameter estimation, clustering, events, deltas, lifecycle
// tracking, checkpointing, and resumption. Doubles as living documentation
// for docs/API.md.

#include <cstdio>
#include <sstream>

#include "core/cluster_tracker.h"
#include "core/disc.h"
#include "core/pipeline.h"
#include "eval/ari.h"
#include "eval/kdistance.h"
#include "eval/partition.h"
#include "obs/metrics_registry.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "stream/blobs_generator.h"

int main() {
  // 1. A deterministic synthetic stream.
  disc::BlobsGenerator::Options gen_options;
  gen_options.num_blobs = 5;
  gen_options.stddev = 0.3;
  gen_options.noise_fraction = 0.1;
  gen_options.drift = 0.03;
  disc::BlobsGenerator stream(gen_options);

  // 2. Let the k-distance graph suggest DBSCAN parameters (Sec. VI-C's
  // method) from a probe sample.
  const std::vector<disc::Point> probe = stream.NextPoints(1500);
  const disc::ParameterSuggestion suggested =
      disc::SuggestParameters(probe, /*k=*/4);
  std::printf("k-distance suggestion: eps=%.3f tau=%u\n", suggested.eps,
              suggested.tau);

  // 3. Cluster the stream with DISC through the pipeline; track lifecycles.
  disc::DiscConfig config;
  config.eps = suggested.eps;
  config.tau = suggested.tau;
  disc::Disc clusterer(/*dims=*/2, config);
  disc::ClusterTracker tracker;
  disc::StreamingPipeline pipeline(&stream, &clusterer, /*window=*/2000,
                                   /*stride=*/250);
  pipeline.Run(16, [&](const disc::SlideReport& report) {
    tracker.Observe(report.slide_index, clusterer.last_events(),
                    clusterer.Snapshot());
    return true;
  });
  std::printf("after 16 slides: %zu clusters alive, %zu ever existed\n",
              tracker.num_alive(), tracker.num_ever());

  // 4. Deltas: what did the last slide change?
  const disc::UpdateDelta& delta = clusterer.last_delta();
  std::printf("last slide: +%zu points, -%zu points, %zu relabeled, "
              "%llu range searches\n",
              delta.entered.size(), delta.exited.size(),
              delta.relabeled.size(),
              static_cast<unsigned long long>(
                  clusterer.last_metrics().range_searches));

  // 5. Checkpoint, restore into a new instance, and resume the pipeline
  // with a seeded window.
  std::stringstream checkpoint;
  if (disc::Status saved = clusterer.SaveCheckpoint(checkpoint); !saved.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", saved.message().c_str());
    return 1;
  }
  disc::Disc restored(2, config);
  if (disc::Status loaded = restored.LoadCheckpoint(checkpoint);
      !loaded.ok()) {
    std::fprintf(stderr, "restore failed: %s\n", loaded.message().c_str());
    return 1;
  }
  disc::StreamingPipeline resumed(&stream, &restored, 2000, 250,
                                  restored.WindowContents());
  resumed.Run(8);
  std::printf("resumed instance: %zu points, %zu clusters\n",
              restored.window_size(), restored.Snapshot().NumClusters());

  // 6. Quality against the generator's ground truth.
  const disc::ClusteringSnapshot snap = restored.Snapshot();
  std::vector<disc::PointId> ids = snap.ids;
  const std::vector<disc::ClusterId> ours = disc::LabelsFor(snap, ids);
  std::printf("snapshot holds %zu labeled points across %zu clusters\n",
              ours.size(), snap.NumClusters());

  // 7. Observability (docs/OBSERVABILITY.md): a MetricsObserver folds every
  // SlideReport into a registry of counters/gauges/latency histograms, and
  // an installed TraceRecorder turns the same slides into Chrome trace
  // spans (disc.update -> disc.collect/ex_phase/neo_phase/recheck).
  disc::obs::MetricsRegistry registry;
  disc::obs::MetricsObserver::Options obs_options;
  obs_options.disc_metrics = &restored.last_metrics();
  disc::obs::MetricsObserver metrics(&registry, obs_options);
  disc::obs::TraceRecorder recorder;
  recorder.Install();
  resumed.Run(6, metrics.AsObserver());
  recorder.Uninstall();
  std::printf(
      "telemetry: %zu metrics, %llu range searches "
      "(%llu index nodes, %llu epoch-pruned), update p95=%.3fms, "
      "%zu trace events\n",
      registry.size(),
      static_cast<unsigned long long>(
          registry.counter("disc_probe_range_searches_total").value()),
      static_cast<unsigned long long>(
          registry.counter("disc_probe_nodes_visited_total").value()),
      static_cast<unsigned long long>(
          registry.counter("disc_probe_epoch_pruned_total").value()),
      registry.histogram("disc_update_ms").Quantile(0.95),
      recorder.event_count());
  return 0;
}
