// Quickstart: cluster a small 2-D stream with DISC under a count-based
// sliding window and print what the clustering looks like after each slide.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Optional observability artifacts (docs/OBSERVABILITY.md):
//   ./build/examples/quickstart [--serve PORT] [TRACE.json [METRICS.jsonl]]
// writes a Chrome trace (open in chrome://tracing or ui.perfetto.dev) and a
// per-slide JSONL metrics stream. scripts/ci.sh runs this with both paths
// and validates the artifacts with tools/trace_check.py.
//
// --serve PORT starts the embedded telemetry server (PORT 0 = ephemeral;
// the bound port is printed as "serving telemetry on port N"). The process
// then waits for one line on stdin (or EOF) after the run so scrapers —
// curl, tools/disc_top.py, the CI smoke — can hit /metrics, /healthz,
// /tracez while the process is alive.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/disc.h"
#include "core/pipeline.h"
#include "obs/http_server.h"
#include "obs/metrics_registry.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "stream/blobs_generator.h"

int main(int argc, char** argv) {
  // --serve PORT is position-independent; the remaining args keep their
  // positional meaning [TRACE.json [METRICS.jsonl]].
  bool serve = false;
  std::uint16_t serve_port = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve" && i + 1 < argc) {
      serve = true;
      serve_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else {
      positional.push_back(argv[i]);
    }
  }
  const char* trace_path = positional.size() > 0 ? positional[0] : nullptr;
  const char* jsonl_path = positional.size() > 1 ? positional[1] : nullptr;
  // A stream of points drawn from five drifting Gaussian blobs plus 10%
  // noise. The drift makes blobs wander apart and back together, so slides
  // regularly split and merge clusters — exercising the MS-BFS split checks
  // and neo-core discovery that the trace below records.
  disc::BlobsGenerator::Options gen_options;
  gen_options.dims = 2;
  gen_options.num_blobs = 5;
  gen_options.stddev = 0.3;
  gen_options.noise_fraction = 0.1;
  gen_options.drift = 0.05;
  disc::BlobsGenerator stream(gen_options);

  // DISC with DBSCAN thresholds eps=0.4, tau=5: a point is a core when at
  // least 5 points (itself included) lie within distance 0.4. Two pool
  // lanes fan out the COLLECT and CLUSTER probes; results are bit-identical
  // for any num_threads.
  disc::DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  config.num_threads = 2;
  disc::Disc clusterer(/*dims=*/2, config);

  // Tracing is dormant until a recorder is installed; with a path on the
  // command line every Update phase (and each index probe, at kDetail)
  // becomes a span in the written trace.
  disc::obs::TraceRecorder::Options trace_options;
  trace_options.level = disc::obs::TraceLevel::kDetail;
  disc::obs::TraceRecorder recorder(trace_options);
  if (trace_path != nullptr || serve) recorder.Install();

  std::ofstream jsonl;
  if (jsonl_path != nullptr) jsonl.open(jsonl_path);

  // Fold every SlideReport into a metrics registry (counters, gauges,
  // latency histograms) and — when requested — the JSONL stream. This is
  // the one-line wiring every pipeline gets telemetry with.
  disc::obs::MetricsRegistry registry;
  disc::obs::MetricsObserver::Options obs_options;
  obs_options.disc_metrics = &clusterer.last_metrics();
  if (jsonl.is_open()) obs_options.jsonl = &jsonl;
  disc::obs::MetricsObserver metrics(&registry, obs_options);

  // The telemetry plane: /metrics, /metrics.json, /healthz, /tracez served
  // live while the pipeline below streams.
  disc::obs::HttpServerOptions server_options;
  server_options.port = serve_port;
  server_options.metrics = &registry;
  server_options.tracer = &recorder;
  disc::obs::HttpServer server(server_options);
  if (serve) {
    if (disc::Status started = server.Start(); !started.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", started.message().c_str());
      return 1;
    }
    std::printf("serving telemetry on port %u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
  }

  // A window of 2000 points advancing 200 points at a time.
  disc::StreamingPipeline pipeline(&stream, &clusterer, /*window_size=*/2000,
                                   /*stride=*/200);
  pipeline.Run(20, [&](const disc::SlideReport& report) {
    const disc::ClusteringSnapshot snapshot = clusterer.Snapshot();
    std::size_t cores = 0, borders = 0, noise = 0;
    for (disc::Category c : snapshot.categories) {
      switch (c) {
        case disc::Category::kCore: ++cores; break;
        case disc::Category::kBorder: ++borders; break;
        case disc::Category::kNoise: ++noise; break;
      }
    }
    std::printf(
        "slide %2zu: %4zu points, %2zu clusters (%4zu cores, %3zu borders, "
        "%3zu noise), %4llu range searches\n",
        report.slide_index, snapshot.size(), snapshot.NumClusters(), cores,
        borders, noise,
        static_cast<unsigned long long>(report.probes.range_searches));
    return metrics(report);
  });

  // The registry aggregates the run: p50/p95/p99 slide latency and totals.
  std::printf("\nrun summary: %llu slides, update p50=%.3fms p99=%.3fms\n",
              static_cast<unsigned long long>(
                  registry.counter("disc_slides_total").value()),
              registry.histogram("disc_update_ms").Quantile(0.5),
              registry.histogram("disc_update_ms").Quantile(0.99));

  if (serve) {
    // Hold the endpoints open until the driver says stop (one stdin line,
    // or EOF): this is what lets `curl` and the CI smoke scrape a process
    // that has finished streaming but not exited.
    std::printf("telemetry up; press Enter (or close stdin) to exit\n");
    std::fflush(stdout);
    std::string line;
    std::getline(std::cin, line);
    server.Stop();
  }

  if (trace_path != nullptr) {
    recorder.Uninstall();
    std::ofstream trace(trace_path);
    recorder.WriteChromeJson(trace);
    std::printf("wrote trace (%zu events) to %s\n", recorder.event_count(),
                trace_path);
    if (jsonl_path != nullptr) {
      std::printf("wrote per-slide metrics to %s\n", jsonl_path);
    }
  }
  return 0;
}
