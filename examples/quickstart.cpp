// Quickstart: cluster a small 2-D stream with DISC under a count-based
// sliding window and print what the clustering looks like after each slide.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/disc.h"
#include "stream/blobs_generator.h"
#include "stream/sliding_window.h"

int main() {
  // A stream of points drawn from five Gaussian blobs plus 10% noise.
  disc::BlobsGenerator::Options gen_options;
  gen_options.dims = 2;
  gen_options.num_blobs = 5;
  gen_options.stddev = 0.3;
  gen_options.noise_fraction = 0.1;
  disc::BlobsGenerator stream(gen_options);

  // DISC with DBSCAN thresholds eps=0.4, tau=5: a point is a core when at
  // least 5 points (itself included) lie within distance 0.4.
  disc::DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  disc::Disc clusterer(/*dims=*/2, config);

  // A window of 2000 points advancing 200 points at a time.
  disc::CountBasedWindow window(/*window_size=*/2000, /*stride=*/200);

  for (int slide = 0; slide < 20; ++slide) {
    disc::WindowDelta delta = window.Advance(stream.NextPoints(200));
    clusterer.Update(delta.incoming, delta.outgoing);

    const disc::ClusteringSnapshot snapshot = clusterer.Snapshot();
    std::size_t cores = 0, borders = 0, noise = 0;
    for (disc::Category c : snapshot.categories) {
      switch (c) {
        case disc::Category::kCore: ++cores; break;
        case disc::Category::kBorder: ++borders; break;
        case disc::Category::kNoise: ++noise; break;
      }
    }
    std::printf(
        "slide %2d: %4zu points, %2zu clusters (%4zu cores, %3zu borders, "
        "%3zu noise), %4llu range searches\n",
        slide, snapshot.size(), snapshot.NumClusters(), cores, borders, noise,
        static_cast<unsigned long long>(
            clusterer.last_metrics().range_searches));
  }
  return 0;
}
