// Multi-session engine: host several independent streams on one shared
// pool, checkpoint all of them, kill the engine, and recover — the DISC
// answer to "one clusterer process per stream doesn't scale".
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/multi_session
//
// Optional observability + recovery artifacts (docs/OBSERVABILITY.md):
//   ./build/examples/multi_session [--serve PORT]
//       [TRACE.json [METRICS.prom [SPILL_DIR]]]
// writes a Chrome trace with the engine.drain / engine.session scheduling
// spans, a Prometheus text dump with the per-session engine_session_<name>_*
// metrics, and — when SPILL_DIR is given — demonstrates Checkpoint() +
// DiscEngine::Open() recovery through that directory. scripts/ci.sh runs
// this with all three and validates the trace with tools/trace_check.py.
//
// --serve PORT starts DiscEngine::ServeTelemetry (PORT 0 = ephemeral; the
// bound port is printed as "serving telemetry on port N") and holds the
// process open on stdin after the run so /metrics, /sessions, /healthz
// can be scraped against a live engine.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "engine/disc_engine.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "stream/blobs_generator.h"

namespace {

// Three tenant streams with different shapes: a drifting city, a stable
// sensor field, a sparse noisy feed. Each gets its own session (and its own
// eps/tau) but they all share the engine's pool.
struct Tenant {
  std::string name;
  std::uint64_t seed;
  double eps;
  std::uint32_t tau;
  double drift;
};

const Tenant kTenants[] = {
    {"city_vehicles", 11, 0.35, 6, 0.06},
    {"sensor_field", 22, 0.45, 5, 0.0},
    {"sparse_feed", 33, 0.55, 4, 0.03},
};

constexpr std::size_t kWindow = 1200;
constexpr std::size_t kStride = 200;

std::unique_ptr<disc::BlobsGenerator> MakeStream(const Tenant& tenant) {
  disc::BlobsGenerator::Options o;
  o.dims = 2;
  o.num_blobs = 4;
  o.stddev = 0.3;
  o.noise_fraction = 0.1;
  o.drift = tenant.drift;
  o.seed = tenant.seed;
  return std::make_unique<disc::BlobsGenerator>(o);
}

void FeedAll(disc::DiscEngine& engine,
             std::vector<std::unique_ptr<disc::BlobsGenerator>>& streams,
             std::size_t slides) {
  for (std::size_t k = 0; k < slides; ++k) {
    for (std::size_t t = 0; t < streams.size(); ++t) {
      const disc::Status fed =
          engine.FeedSlide(kTenants[t].name, streams[t]->NextPoints(kStride));
      if (!fed.ok()) {
        std::fprintf(stderr, "feed failed: %s\n", fed.message().c_str());
        std::exit(1);
      }
    }
    engine.Drain();
  }
}

void PrintSessions(disc::DiscEngine& engine, const char* label) {
  std::printf("%s\n", label);
  for (const std::string& name : engine.SessionNames()) {
    const disc::ClusteringSnapshot snap = engine.Clusterer(name)->Snapshot();
    std::printf("  %-14s %4zu slides, %4zu points, %2zu clusters\n",
                name.c_str(), engine.SlidesRun(name), snap.size(),
                snap.NumClusters());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool serve = false;
  std::uint16_t serve_port = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve" && i + 1 < argc) {
      serve = true;
      serve_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else {
      positional.push_back(argv[i]);
    }
  }
  const char* trace_path = positional.size() > 0 ? positional[0] : nullptr;
  const char* prom_path = positional.size() > 1 ? positional[1] : nullptr;

  disc::obs::TraceRecorder recorder;
  if (trace_path != nullptr || serve) recorder.Install();

  disc::obs::MetricsRegistry registry;
  disc::EngineOptions options;
  options.num_threads = 4;
  options.metrics = &registry;
  if (positional.size() > 2) options.spill_dir = positional[2];

  // Serve the given engine's telemetry plane and hold the process open on
  // stdin so a scraper (curl, tools/disc_top.py, the CI smoke) can reach
  // /metrics, /sessions, /healthz, /tracez against a live engine.
  const auto serve_and_wait = [serve, serve_port](disc::DiscEngine& engine) {
    if (!serve) return;
    std::uint16_t port = 0;
    const disc::Status started = engine.ServeTelemetry(serve_port, &port);
    if (!started.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", started.message().c_str());
      std::exit(1);
    }
    std::printf("serving telemetry on port %u\n",
                static_cast<unsigned>(port));
    std::printf("telemetry up; press Enter (or close stdin) to exit\n");
    std::fflush(stdout);
    std::string line;
    std::getline(std::cin, line);
    engine.StopTelemetry();
  };

  std::vector<std::unique_ptr<disc::BlobsGenerator>> streams;
  {
    disc::DiscEngine engine(options);
    for (const Tenant& tenant : kTenants) {
      disc::SessionOptions session;
      session.method = "DISC";
      session.spec.dims = 2;
      session.spec.window_size = kWindow;
      session.spec.stride = kStride;
      session.spec.disc.eps = tenant.eps;
      session.spec.disc.tau = tenant.tau;
      const disc::Status created = engine.CreateSession(tenant.name, session);
      if (!created.ok()) {
        std::fprintf(stderr, "admission failed: %s\n",
                     created.message().c_str());
        return 1;
      }
      streams.push_back(MakeStream(tenant));
    }

    FeedAll(engine, streams, 10);
    PrintSessions(engine, "after 10 shared slides:");

    if (!options.spill_dir.empty()) {
      const disc::Status saved = engine.Checkpoint();
      if (!saved.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n",
                     saved.message().c_str());
        return 1;
      }
      std::printf("\ncheckpointed %zu sessions to %s; killing the engine\n",
                  engine.session_count(), options.spill_dir.c_str());
    }
    // Engine destroyed here — with a spill dir that's the simulated kill;
    // without one it's just the end of the run.
    if (options.spill_dir.empty()) {
      FeedAll(engine, streams, 5);
      PrintSessions(engine, "after 15 shared slides:");
      serve_and_wait(engine);
    }
  }

  if (!options.spill_dir.empty()) {
    disc::Status error;
    std::unique_ptr<disc::DiscEngine> engine =
        disc::DiscEngine::Open(options, &error);
    if (engine == nullptr) {
      std::fprintf(stderr, "recovery failed: %s\n", error.message().c_str());
      return 1;
    }
    PrintSessions(*engine, "\nrecovered sessions (state + numbering intact):");
    FeedAll(*engine, streams, 5);
    PrintSessions(*engine, "after 5 more slides on the recovered engine:");
    serve_and_wait(*engine);
  }

  std::printf("\nengine totals: %llu slides across %llu drains\n",
              static_cast<unsigned long long>(
                  registry.counter("engine_slides_total").value()),
              static_cast<unsigned long long>(
                  registry.counter("engine_drains_total").value()));

  if (trace_path != nullptr) {
    recorder.Uninstall();
    std::ofstream trace(trace_path);
    recorder.WriteChromeJson(trace);
    std::printf("wrote trace (%zu events) to %s\n", recorder.event_count(),
                trace_path);
  }
  if (prom_path != nullptr) {
    std::ofstream prom(prom_path);
    registry.WritePrometheus(prom);
    std::printf("wrote Prometheus metrics to %s\n", prom_path);
  }
  return 0;
}
