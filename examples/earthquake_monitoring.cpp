// Earthquake monitoring — the IRIS scenario: cluster seismic events in a
// 4-D feature space (lat, lon, depth/10, magnitude*10) to track active fault
// zones. This example drives DISC through the *time-based* sliding window
// (Sec. II-B): events carry timestamps; the window spans a fixed duration
// and advances by a fixed time stride.

#include <cstdio>

#include "common/rng.h"
#include "core/disc.h"
#include "stream/iris_generator.h"
#include "stream/sliding_window.h"

int main() {
  disc::IrisGenerator::Options gen_options;
  gen_options.num_faults = 20;
  disc::IrisGenerator stream(gen_options);
  disc::Rng rng(5);

  disc::DiscConfig config;
  config.eps = 2.0;
  config.tau = 9;
  disc::Disc clusterer(/*dims=*/4, config);

  // A ten-year window advancing one year at a time; event inter-arrival
  // times are exponential (~2000 events/year).
  disc::TimeBasedWindow window(/*window_span=*/10.0, /*stride_span=*/1.0);
  double clock = 0.0;

  for (int year = 1; year <= 25; ++year) {
    std::vector<disc::TimeBasedWindow::TimedPoint> arrivals;
    while (true) {
      const double gap = -std::log(rng.Uniform(1e-9, 1.0)) / 2000.0;
      if (clock + gap > static_cast<double>(year)) break;
      clock += gap;
      arrivals.push_back({stream.Next().point, clock});
    }
    disc::WindowDelta delta = window.Advance(arrivals);
    clusterer.Update(delta.incoming, delta.outgoing);

    std::size_t emerged = 0, dissipated = 0;
    for (const disc::ClusterEvent& e : clusterer.last_events()) {
      if (e.type == disc::ClusterEventType::kEmerge) ++emerged;
      if (e.type == disc::ClusterEventType::kDissipate) ++dissipated;
    }
    std::printf(
        "year %2d: %5zu events in window, %2zu active fault zones "
        "(+%zu newly active, -%zu quiet)\n",
        year, clusterer.window_size(), clusterer.Snapshot().NumClusters(),
        emerged, dissipated);
  }
  return 0;
}
