// Network anomaly monitoring — the paper's outlier-detection motivation:
// flows that fall outside every dense traffic profile are DBSCAN noise, and
// DISC keeps that judgment current as the window slides. The example also
// uses ClusterTracker to narrate service clusters appearing during traffic
// bursts and fading afterwards.

#include <cstdio>
#include <unordered_set>

#include "core/cluster_tracker.h"
#include "core/disc.h"
#include "stream/netflow_generator.h"
#include "stream/sliding_window.h"

int main() {
  disc::NetflowGenerator::Options gen_options;
  gen_options.anomaly_fraction = 0.02;
  disc::NetflowGenerator stream(gen_options);

  disc::DiscConfig config;
  config.eps = 0.6;
  config.tau = 8;
  disc::Disc clusterer(/*dims=*/3, config);
  disc::CountBasedWindow window(/*window_size=*/4000, /*stride=*/400);
  disc::ClusterTracker tracker;

  std::size_t total_flagged = 0, total_true_anomalies = 0, caught = 0;
  for (int slide = 0; slide < 40; ++slide) {
    std::vector<disc::LabeledPoint> labeled = stream.NextBatch(400);
    std::unordered_set<disc::PointId> truly_anomalous;
    std::vector<disc::Point> batch;
    batch.reserve(labeled.size());
    for (const disc::LabeledPoint& lp : labeled) {
      batch.push_back(lp.point);
      if (lp.true_label < 0) truly_anomalous.insert(lp.point.id);
    }
    disc::WindowDelta delta = window.Advance(batch);
    clusterer.Update(delta.incoming, delta.outgoing);
    tracker.Observe(static_cast<std::size_t>(slide), clusterer.last_events(),
                    clusterer.Snapshot());

    // Newly arrived flows that the clustering marks as noise are the alert
    // candidates of this slide.
    const disc::ClusteringSnapshot snap = clusterer.Snapshot();
    std::unordered_set<disc::PointId> new_ids(
        clusterer.last_delta().entered.begin(),
        clusterer.last_delta().entered.end());
    std::size_t flagged = 0, hits = 0;
    for (std::size_t i = 0; i < snap.size(); ++i) {
      if (snap.categories[i] != disc::Category::kNoise) continue;
      if (new_ids.count(snap.ids[i]) == 0) continue;
      ++flagged;
      if (truly_anomalous.count(snap.ids[i]) > 0) ++hits;
    }
    total_flagged += flagged;
    caught += hits;
    total_true_anomalies += truly_anomalous.size();

    if (slide % 8 == 0) {
      std::printf(
          "slide %2d: %2zu service clusters (%zu ever seen), flagged %2zu "
          "new flows, %2zu confirmed anomalous\n",
          slide, tracker.num_alive(), tracker.num_ever(), flagged, hits);
    }
  }

  std::printf(
      "\nover 40 slides: flagged %zu flows as noise; %zu/%zu injected "
      "anomalies were flagged on arrival (%.0f%% recall)\n",
      total_flagged, caught, total_true_anomalies,
      100.0 * static_cast<double>(caught) /
          static_cast<double>(total_true_anomalies));
  return 0;
}
