// CSV stream clustering tool: reads points from a CSV file (as written by
// stream/csv.h: header, then "id,x0,...,x{d-1},cid" — the cid column is
// ignored on input), replays them as a stream through DISC under a
// count-based sliding window, and writes the final window's labeling to an
// output CSV. This is the "bring your own data" entry point.
//
// Usage:
//   csv_clustering <in.csv> <out.csv> [eps] [tau] [window] [stride]
//
// With no input file, generates a demo stream, writes it to <in.csv>, and
// proceeds — so the example is runnable out of the box:
//   ./build/examples/csv_clustering demo.csv labeled.csv

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/disc.h"
#include "stream/blobs_generator.h"
#include "stream/csv.h"
#include "stream/sliding_window.h"

namespace {

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <in.csv> <out.csv> [eps=0.4] [tau=5] "
                 "[window=2000] [stride=200]\n",
                 argv[0]);
    return 1;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  const double eps = argc > 3 ? std::atof(argv[3]) : 0.4;
  const auto tau = static_cast<std::uint32_t>(argc > 4 ? std::atoi(argv[4]) : 5);
  const auto window_size =
      static_cast<std::size_t>(argc > 5 ? std::atoll(argv[5]) : 2000);
  const auto stride =
      static_cast<std::size_t>(argc > 6 ? std::atoll(argv[6]) : 200);

  if (!FileExists(in_path)) {
    std::printf("input %s not found; generating a demo stream there\n",
                in_path.c_str());
    disc::BlobsGenerator::Options o;
    o.num_blobs = 6;
    o.stddev = 0.3;
    o.noise_fraction = 0.1;
    disc::BlobsGenerator gen(o);
    std::vector<disc::Point> demo = gen.NextPoints(3 * window_size);
    if (!disc::WriteLabeledCsv(in_path, demo, {})) {
      std::fprintf(stderr, "cannot write %s\n", in_path.c_str());
      return 1;
    }
  }

  std::vector<disc::Point> points;
  if (!disc::ReadPointsCsv(in_path, &points, nullptr)) {
    std::fprintf(stderr, "cannot parse %s\n", in_path.c_str());
    return 1;
  }
  if (points.empty()) {
    std::fprintf(stderr, "%s holds no points\n", in_path.c_str());
    return 1;
  }
  const std::uint32_t dims = points[0].dims;
  std::printf("read %zu %u-D points from %s\n", points.size(), dims,
              in_path.c_str());

  disc::DiscConfig config;
  config.eps = eps;
  config.tau = tau;
  disc::Disc clusterer(dims, config);
  disc::CountBasedWindow window(window_size, stride);

  std::size_t processed = 0;
  while (processed < points.size()) {
    const std::size_t n = std::min(stride, points.size() - processed);
    std::vector<disc::Point> batch(points.begin() + processed,
                                   points.begin() + processed + n);
    processed += n;
    disc::WindowDelta delta = window.Advance(std::move(batch));
    clusterer.Update(delta.incoming, delta.outgoing);
  }

  const disc::ClusteringSnapshot snap = clusterer.Snapshot();
  // Order labels to match the window contents.
  std::vector<disc::Point> contents(window.contents().begin(),
                                    window.contents().end());
  std::vector<disc::ClusterId> cids;
  cids.reserve(contents.size());
  {
    std::unordered_map<disc::PointId, disc::ClusterId> by_id;
    for (std::size_t i = 0; i < snap.size(); ++i) by_id[snap.ids[i]] = snap.cids[i];
    for (const disc::Point& p : contents) cids.push_back(by_id[p.id]);
  }
  if (!disc::WriteLabeledCsv(out_path, contents, cids)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf(
      "clustered final window of %zu points: %zu clusters; labels -> %s\n",
      contents.size(), snap.NumClusters(), out_path.c_str());
  return 0;
}
