// Traffic monitoring — the paper's motivating scenario for the DTG dataset:
// cluster vehicle positions continuously to detect congested road segments,
// with a distance threshold small enough to tell neighboring roads apart.
// Compares DISC's per-slide cost against re-running DBSCAN from scratch on
// the same stream.

#include <cstdio>

#include "common/timer.h"
#include "stream/clusterer_factory.h"
#include "stream/dtg_generator.h"
#include "stream/sliding_window.h"

int main() {
  disc::DtgGenerator::Options gen_options;
  gen_options.num_zones = 30;  // Congestion zones on the road grid.
  disc::DtgGenerator stream(gen_options);

  disc::ClustererSpec spec;
  spec.dims = 2;
  spec.disc.eps = 0.02;  // Small: roads are 1.0 apart, lanes ~0.005 wide.
  spec.disc.tau = 14;
  const std::unique_ptr<disc::StreamClusterer> disc_method =
      disc::MakeClusterer("DISC", spec);
  const std::unique_ptr<disc::StreamClusterer> dbscan =
      disc::MakeClusterer("DBSCAN", spec);

  const std::size_t window_size = 10000;
  const std::size_t stride = 500;  // 5% stride: frequent updates.
  disc::CountBasedWindow window(window_size, stride);

  double disc_total_ms = 0.0, dbscan_total_ms = 0.0;
  int measured = 0;
  for (int slide = 0; slide < 30; ++slide) {
    disc::WindowDelta delta = window.Advance(stream.NextPoints(stride));

    disc::Timer disc_timer;
    disc_method->Update(delta.incoming, delta.outgoing);
    const double disc_ms = disc_timer.ElapsedMillis();

    disc::Timer dbscan_timer;
    dbscan->Update(delta.incoming, delta.outgoing);
    const double dbscan_ms = dbscan_timer.ElapsedMillis();

    if (!window.full()) continue;  // Measure steady state only.
    disc_total_ms += disc_ms;
    dbscan_total_ms += dbscan_ms;
    ++measured;

    const std::size_t congested = disc_method->Snapshot().NumClusters();
    std::printf("slide %2d: %3zu congested segments | DISC %6.2f ms, "
                "DBSCAN-from-scratch %7.2f ms\n",
                slide, congested, disc_ms, dbscan_ms);
  }
  std::printf(
      "\nsteady state over %d slides: DISC %.2f ms/slide, DBSCAN %.2f "
      "ms/slide (%.1fx)\n",
      measured, disc_total_ms / measured, dbscan_total_ms / measured,
      dbscan_total_ms / disc_total_ms);
  return 0;
}
