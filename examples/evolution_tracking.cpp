// Cluster-evolution tracking: DISC does not just relabel points — it reports
// *how* clusters evolve on every slide (emerge, grow, merge, split, shrink,
// dissipate; Sec. III-C). This example follows drifting communities and
// prints the event stream, the kind of signal community-tracking and
// outlier-detection applications consume.

#include <cstdio>

#include "core/disc.h"
#include "stream/blobs_generator.h"
#include "stream/sliding_window.h"

int main() {
  disc::BlobsGenerator::Options gen_options;
  gen_options.dims = 2;
  gen_options.num_blobs = 4;
  gen_options.extent = 8.0;
  gen_options.stddev = 0.3;
  gen_options.noise_fraction = 0.1;
  gen_options.drift = 0.05;  // Blob centers wander: clusters meet and part.
  disc::BlobsGenerator stream(gen_options);

  disc::DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  disc::Disc clusterer(/*dims=*/2, config);
  disc::CountBasedWindow window(/*window_size=*/1500, /*stride=*/150);

  int counts[6] = {0, 0, 0, 0, 0, 0};
  for (int slide = 0; slide < 60; ++slide) {
    disc::WindowDelta delta = window.Advance(stream.NextPoints(150));
    clusterer.Update(delta.incoming, delta.outgoing);

    for (const disc::ClusterEvent& event : clusterer.last_events()) {
      ++counts[static_cast<int>(event.type)];
      // Splits and mergers are the interesting transitions: print them with
      // the cluster ids involved.
      if (event.type == disc::ClusterEventType::kSplit ||
          event.type == disc::ClusterEventType::kMerge) {
        std::printf("slide %2d: %-5s [", slide, disc::ToString(event.type));
        for (std::size_t i = 0; i < event.cids.size(); ++i) {
          std::printf("%s%lld", i ? ", " : "",
                      static_cast<long long>(event.cids[i]));
        }
        std::printf("]  (%zu clusters in window)\n",
                    clusterer.Snapshot().NumClusters());
      }
    }
  }

  std::printf("\nevent totals over 60 slides:\n");
  for (int t = 0; t < 6; ++t) {
    std::printf("  %-10s %d\n",
                disc::ToString(static_cast<disc::ClusterEventType>(t)),
                counts[t]);
  }
  return 0;
}
