// disc_feed: command-line producer for a running disc_ingestd — creates a
// session over the wire, pushes synthetic slides (stream/blobs_generator.h),
// honors BUSY backpressure by draining and retrying, then drains and
// queries the final snapshot.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/disc_ingestd &            # prints the ingest port
//   ./build/examples/disc_feed --port P --session city --slides 10
//
// Options: --host H (default 127.0.0.1), --dims D, --window N, --stride N,
// --eps E, --tau T, --seed S, --no-create (feed an existing session),
// --close (close the session afterwards).
//
// The BUSY loop is the backpressure contract in miniature: a kBusy answer
// means the slide was NOT admitted (never silently dropped), so the
// producer drains to make room and re-sends the same slide. Every slide
// this tool reports as fed was acknowledged by the server.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/ingest_client.h"
#include "stream/blobs_generator.h"

int main(int argc, char** argv) {
  disc::net::IngestClientOptions client_options;
  disc::net::CreateSessionRequest session;
  session.window_size = 1200;
  session.stride = 200;
  session.eps = 0.35;
  session.tau = 6;
  std::size_t slides = 10;
  std::uint64_t seed = 11;
  bool create = true;
  bool close_session = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      client_options.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--host" && i + 1 < argc) {
      client_options.host = argv[++i];
    } else if (arg == "--session" && i + 1 < argc) {
      session.name = argv[++i];
    } else if (arg == "--dims" && i + 1 < argc) {
      session.dims = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--window" && i + 1 < argc) {
      session.window_size = static_cast<std::uint64_t>(std::atol(argv[++i]));
    } else if (arg == "--stride" && i + 1 < argc) {
      session.stride = static_cast<std::uint64_t>(std::atol(argv[++i]));
    } else if (arg == "--eps" && i + 1 < argc) {
      session.eps = std::atof(argv[++i]);
    } else if (arg == "--tau" && i + 1 < argc) {
      session.tau = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--slides" && i + 1 < argc) {
      slides = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--no-create") {
      create = false;
    } else if (arg == "--close") {
      close_session = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --port P --session NAME [--host H] [--dims D] "
                   "[--window N] [--stride N] [--eps E] [--tau T] "
                   "[--slides K] [--seed S] [--no-create] [--close]\n",
                   argv[0]);
      return 2;
    }
  }
  if (client_options.port == 0 || session.name.empty()) {
    std::fprintf(stderr, "disc_feed: --port and --session are required\n");
    return 2;
  }

  disc::net::IngestClient client(client_options);
  if (const disc::Status connected = client.Connect(); !connected.ok()) {
    std::fprintf(stderr, "connect: %s\n", connected.message().c_str());
    return 1;
  }
  if (const disc::Status pinged = client.Ping(); !pinged.ok()) {
    std::fprintf(stderr, "ping: %s\n", pinged.message().c_str());
    return 1;
  }
  if (create) {
    if (const disc::Status created = client.CreateSession(session);
        !created.ok()) {
      std::fprintf(stderr, "create session: %s\n",
                   created.message().c_str());
      return 1;
    }
  }

  disc::BlobsGenerator::Options blobs;
  blobs.dims = session.dims;
  blobs.num_blobs = 4;
  blobs.stddev = 0.3;
  blobs.noise_fraction = 0.1;
  blobs.drift = 0.05;
  blobs.seed = seed;
  disc::BlobsGenerator stream(blobs);

  std::size_t busy_retries = 0;
  for (std::size_t k = 0; k < slides; ++k) {
    const std::vector<disc::Point> points =
        stream.NextPoints(static_cast<std::size_t>(session.stride));
    for (;;) {
      bool busy = false;
      const disc::Status fed = client.FeedSlide(session.name, points, &busy);
      if (fed.ok()) break;
      if (!busy) {
        std::fprintf(stderr, "feed slide %zu: %s\n", k,
                     fed.message().c_str());
        return 1;
      }
      // BUSY: the slide was not admitted. Drain to make room, re-send.
      ++busy_retries;
      if (const disc::Status drained = client.Drain(); !drained.ok()) {
        std::fprintf(stderr, "drain (busy retry): %s\n",
                     drained.message().c_str());
        return 1;
      }
    }
  }

  std::uint64_t executed = 0;
  if (const disc::Status drained = client.Drain(&executed); !drained.ok()) {
    std::fprintf(stderr, "drain: %s\n", drained.message().c_str());
    return 1;
  }
  disc::ClusteringSnapshot snapshot;
  if (const disc::Status queried =
          client.QuerySnapshot(session.name, &snapshot);
      !queried.ok()) {
    std::fprintf(stderr, "query snapshot: %s\n", queried.message().c_str());
    return 1;
  }
  std::printf(
      "fed %zu slides to \"%s\" (%zu busy retries), final drain ran %llu; "
      "snapshot: %zu points in %zu clusters\n",
      slides, session.name.c_str(), busy_retries,
      static_cast<unsigned long long>(executed), snapshot.size(),
      snapshot.NumClusters());

  if (close_session) {
    if (const disc::Status closed = client.CloseSession(session.name);
        !closed.ok()) {
      std::fprintf(stderr, "close session: %s\n", closed.message().c_str());
      return 1;
    }
    std::printf("closed session \"%s\"\n", session.name.c_str());
  }
  return 0;
}
