# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/disc_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/grid_index_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/disc_property_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/summarization_test[1]_include.cmake")
include("/root/repo/build/tests/exact_baselines_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/knn_checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/inc_dbscan_scenario_test[1]_include.cmake")
include("/root/repo/build/tests/disc_extended_test[1]_include.cmake")
include("/root/repo/build/tests/graph_disc_test[1]_include.cmake")
include("/root/repo/build/tests/disc_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/runner_test[1]_include.cmake")
include("/root/repo/build/tests/dbscan_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/window_edge_test[1]_include.cmake")
include("/root/repo/build/tests/generator_stats_test[1]_include.cmake")
include("/root/repo/build/tests/quality_test[1]_include.cmake")
include("/root/repo/build/tests/recording_test[1]_include.cmake")
include("/root/repo/build/tests/events_test[1]_include.cmake")
