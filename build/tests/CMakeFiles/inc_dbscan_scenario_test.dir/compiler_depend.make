# Empty compiler generated dependencies file for inc_dbscan_scenario_test.
# This may be replaced when dependencies are built.
