file(REMOVE_RECURSE
  "CMakeFiles/inc_dbscan_scenario_test.dir/inc_dbscan_scenario_test.cc.o"
  "CMakeFiles/inc_dbscan_scenario_test.dir/inc_dbscan_scenario_test.cc.o.d"
  "inc_dbscan_scenario_test"
  "inc_dbscan_scenario_test.pdb"
  "inc_dbscan_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inc_dbscan_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
