# Empty dependencies file for disc_equivalence_test.
# This may be replaced when dependencies are built.
