file(REMOVE_RECURSE
  "CMakeFiles/disc_equivalence_test.dir/disc_equivalence_test.cc.o"
  "CMakeFiles/disc_equivalence_test.dir/disc_equivalence_test.cc.o.d"
  "disc_equivalence_test"
  "disc_equivalence_test.pdb"
  "disc_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
