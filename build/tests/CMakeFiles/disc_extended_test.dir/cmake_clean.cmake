file(REMOVE_RECURSE
  "CMakeFiles/disc_extended_test.dir/disc_extended_test.cc.o"
  "CMakeFiles/disc_extended_test.dir/disc_extended_test.cc.o.d"
  "disc_extended_test"
  "disc_extended_test.pdb"
  "disc_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
