# Empty dependencies file for disc_extended_test.
# This may be replaced when dependencies are built.
