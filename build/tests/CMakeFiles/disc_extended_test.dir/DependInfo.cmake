
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/disc_extended_test.cc" "tests/CMakeFiles/disc_extended_test.dir/disc_extended_test.cc.o" "gcc" "tests/CMakeFiles/disc_extended_test.dir/disc_extended_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/disc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/disc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/disc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/disc_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/disc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/disc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
