# Empty dependencies file for exact_baselines_sweep_test.
# This may be replaced when dependencies are built.
