file(REMOVE_RECURSE
  "CMakeFiles/knn_checkpoint_test.dir/knn_checkpoint_test.cc.o"
  "CMakeFiles/knn_checkpoint_test.dir/knn_checkpoint_test.cc.o.d"
  "knn_checkpoint_test"
  "knn_checkpoint_test.pdb"
  "knn_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
