# Empty dependencies file for knn_checkpoint_test.
# This may be replaced when dependencies are built.
