file(REMOVE_RECURSE
  "CMakeFiles/recording_test.dir/recording_test.cc.o"
  "CMakeFiles/recording_test.dir/recording_test.cc.o.d"
  "recording_test"
  "recording_test.pdb"
  "recording_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recording_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
