# Empty dependencies file for recording_test.
# This may be replaced when dependencies are built.
