file(REMOVE_RECURSE
  "CMakeFiles/disc_property_test.dir/disc_property_test.cc.o"
  "CMakeFiles/disc_property_test.dir/disc_property_test.cc.o.d"
  "disc_property_test"
  "disc_property_test.pdb"
  "disc_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
