# Empty dependencies file for disc_property_test.
# This may be replaced when dependencies are built.
