file(REMOVE_RECURSE
  "CMakeFiles/window_edge_test.dir/window_edge_test.cc.o"
  "CMakeFiles/window_edge_test.dir/window_edge_test.cc.o.d"
  "window_edge_test"
  "window_edge_test.pdb"
  "window_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
