# Empty dependencies file for disc_fuzz_test.
# This may be replaced when dependencies are built.
