file(REMOVE_RECURSE
  "CMakeFiles/disc_fuzz_test.dir/disc_fuzz_test.cc.o"
  "CMakeFiles/disc_fuzz_test.dir/disc_fuzz_test.cc.o.d"
  "disc_fuzz_test"
  "disc_fuzz_test.pdb"
  "disc_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
