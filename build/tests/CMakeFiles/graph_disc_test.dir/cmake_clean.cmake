file(REMOVE_RECURSE
  "CMakeFiles/graph_disc_test.dir/graph_disc_test.cc.o"
  "CMakeFiles/graph_disc_test.dir/graph_disc_test.cc.o.d"
  "graph_disc_test"
  "graph_disc_test.pdb"
  "graph_disc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_disc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
