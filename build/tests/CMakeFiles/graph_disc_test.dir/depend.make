# Empty dependencies file for graph_disc_test.
# This may be replaced when dependencies are built.
