# Empty compiler generated dependencies file for summarization_test.
# This may be replaced when dependencies are built.
