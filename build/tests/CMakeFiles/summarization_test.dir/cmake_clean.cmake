file(REMOVE_RECURSE
  "CMakeFiles/summarization_test.dir/summarization_test.cc.o"
  "CMakeFiles/summarization_test.dir/summarization_test.cc.o.d"
  "summarization_test"
  "summarization_test.pdb"
  "summarization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summarization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
