file(REMOVE_RECURSE
  "libdisc_core.a"
)
