file(REMOVE_RECURSE
  "CMakeFiles/disc_core.dir/checkpoint.cc.o"
  "CMakeFiles/disc_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/disc_core.dir/cluster_registry.cc.o"
  "CMakeFiles/disc_core.dir/cluster_registry.cc.o.d"
  "CMakeFiles/disc_core.dir/cluster_tracker.cc.o"
  "CMakeFiles/disc_core.dir/cluster_tracker.cc.o.d"
  "CMakeFiles/disc_core.dir/disc.cc.o"
  "CMakeFiles/disc_core.dir/disc.cc.o.d"
  "CMakeFiles/disc_core.dir/disc_cluster.cc.o"
  "CMakeFiles/disc_core.dir/disc_cluster.cc.o.d"
  "CMakeFiles/disc_core.dir/events.cc.o"
  "CMakeFiles/disc_core.dir/events.cc.o.d"
  "CMakeFiles/disc_core.dir/pipeline.cc.o"
  "CMakeFiles/disc_core.dir/pipeline.cc.o.d"
  "libdisc_core.a"
  "libdisc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
