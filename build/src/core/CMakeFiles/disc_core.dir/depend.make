# Empty dependencies file for disc_core.
# This may be replaced when dependencies are built.
