
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/disc_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/disc_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/cluster_registry.cc" "src/core/CMakeFiles/disc_core.dir/cluster_registry.cc.o" "gcc" "src/core/CMakeFiles/disc_core.dir/cluster_registry.cc.o.d"
  "/root/repo/src/core/cluster_tracker.cc" "src/core/CMakeFiles/disc_core.dir/cluster_tracker.cc.o" "gcc" "src/core/CMakeFiles/disc_core.dir/cluster_tracker.cc.o.d"
  "/root/repo/src/core/disc.cc" "src/core/CMakeFiles/disc_core.dir/disc.cc.o" "gcc" "src/core/CMakeFiles/disc_core.dir/disc.cc.o.d"
  "/root/repo/src/core/disc_cluster.cc" "src/core/CMakeFiles/disc_core.dir/disc_cluster.cc.o" "gcc" "src/core/CMakeFiles/disc_core.dir/disc_cluster.cc.o.d"
  "/root/repo/src/core/events.cc" "src/core/CMakeFiles/disc_core.dir/events.cc.o" "gcc" "src/core/CMakeFiles/disc_core.dir/events.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/disc_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/disc_core.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/disc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/disc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/disc_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
