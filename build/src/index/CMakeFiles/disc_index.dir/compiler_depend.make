# Empty compiler generated dependencies file for disc_index.
# This may be replaced when dependencies are built.
