file(REMOVE_RECURSE
  "libdisc_index.a"
)
