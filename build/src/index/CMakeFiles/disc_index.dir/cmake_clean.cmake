file(REMOVE_RECURSE
  "CMakeFiles/disc_index.dir/grid_index.cc.o"
  "CMakeFiles/disc_index.dir/grid_index.cc.o.d"
  "CMakeFiles/disc_index.dir/rtree.cc.o"
  "CMakeFiles/disc_index.dir/rtree.cc.o.d"
  "libdisc_index.a"
  "libdisc_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
