file(REMOVE_RECURSE
  "CMakeFiles/disc_baselines.dir/dbscan.cc.o"
  "CMakeFiles/disc_baselines.dir/dbscan.cc.o.d"
  "CMakeFiles/disc_baselines.dir/dbstream.cc.o"
  "CMakeFiles/disc_baselines.dir/dbstream.cc.o.d"
  "CMakeFiles/disc_baselines.dir/edmstream.cc.o"
  "CMakeFiles/disc_baselines.dir/edmstream.cc.o.d"
  "CMakeFiles/disc_baselines.dir/extra_n.cc.o"
  "CMakeFiles/disc_baselines.dir/extra_n.cc.o.d"
  "CMakeFiles/disc_baselines.dir/graph_disc.cc.o"
  "CMakeFiles/disc_baselines.dir/graph_disc.cc.o.d"
  "CMakeFiles/disc_baselines.dir/inc_dbscan.cc.o"
  "CMakeFiles/disc_baselines.dir/inc_dbscan.cc.o.d"
  "CMakeFiles/disc_baselines.dir/rho_dbscan.cc.o"
  "CMakeFiles/disc_baselines.dir/rho_dbscan.cc.o.d"
  "libdisc_baselines.a"
  "libdisc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
