
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dbscan.cc" "src/baselines/CMakeFiles/disc_baselines.dir/dbscan.cc.o" "gcc" "src/baselines/CMakeFiles/disc_baselines.dir/dbscan.cc.o.d"
  "/root/repo/src/baselines/dbstream.cc" "src/baselines/CMakeFiles/disc_baselines.dir/dbstream.cc.o" "gcc" "src/baselines/CMakeFiles/disc_baselines.dir/dbstream.cc.o.d"
  "/root/repo/src/baselines/edmstream.cc" "src/baselines/CMakeFiles/disc_baselines.dir/edmstream.cc.o" "gcc" "src/baselines/CMakeFiles/disc_baselines.dir/edmstream.cc.o.d"
  "/root/repo/src/baselines/extra_n.cc" "src/baselines/CMakeFiles/disc_baselines.dir/extra_n.cc.o" "gcc" "src/baselines/CMakeFiles/disc_baselines.dir/extra_n.cc.o.d"
  "/root/repo/src/baselines/graph_disc.cc" "src/baselines/CMakeFiles/disc_baselines.dir/graph_disc.cc.o" "gcc" "src/baselines/CMakeFiles/disc_baselines.dir/graph_disc.cc.o.d"
  "/root/repo/src/baselines/inc_dbscan.cc" "src/baselines/CMakeFiles/disc_baselines.dir/inc_dbscan.cc.o" "gcc" "src/baselines/CMakeFiles/disc_baselines.dir/inc_dbscan.cc.o.d"
  "/root/repo/src/baselines/rho_dbscan.cc" "src/baselines/CMakeFiles/disc_baselines.dir/rho_dbscan.cc.o" "gcc" "src/baselines/CMakeFiles/disc_baselines.dir/rho_dbscan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/disc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/disc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/disc_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/disc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
