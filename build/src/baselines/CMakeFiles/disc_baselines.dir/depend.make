# Empty dependencies file for disc_baselines.
# This may be replaced when dependencies are built.
