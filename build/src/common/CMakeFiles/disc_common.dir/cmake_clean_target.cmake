file(REMOVE_RECURSE
  "libdisc_common.a"
)
