file(REMOVE_RECURSE
  "CMakeFiles/disc_common.dir/point.cc.o"
  "CMakeFiles/disc_common.dir/point.cc.o.d"
  "CMakeFiles/disc_common.dir/stats.cc.o"
  "CMakeFiles/disc_common.dir/stats.cc.o.d"
  "libdisc_common.a"
  "libdisc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
