# Empty compiler generated dependencies file for disc_common.
# This may be replaced when dependencies are built.
