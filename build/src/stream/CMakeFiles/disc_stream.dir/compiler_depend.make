# Empty compiler generated dependencies file for disc_stream.
# This may be replaced when dependencies are built.
