
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/blobs_generator.cc" "src/stream/CMakeFiles/disc_stream.dir/blobs_generator.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/blobs_generator.cc.o.d"
  "/root/repo/src/stream/covid_generator.cc" "src/stream/CMakeFiles/disc_stream.dir/covid_generator.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/covid_generator.cc.o.d"
  "/root/repo/src/stream/csv.cc" "src/stream/CMakeFiles/disc_stream.dir/csv.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/csv.cc.o.d"
  "/root/repo/src/stream/dtg_generator.cc" "src/stream/CMakeFiles/disc_stream.dir/dtg_generator.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/dtg_generator.cc.o.d"
  "/root/repo/src/stream/geolife_generator.cc" "src/stream/CMakeFiles/disc_stream.dir/geolife_generator.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/geolife_generator.cc.o.d"
  "/root/repo/src/stream/iris_generator.cc" "src/stream/CMakeFiles/disc_stream.dir/iris_generator.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/iris_generator.cc.o.d"
  "/root/repo/src/stream/maze_generator.cc" "src/stream/CMakeFiles/disc_stream.dir/maze_generator.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/maze_generator.cc.o.d"
  "/root/repo/src/stream/netflow_generator.cc" "src/stream/CMakeFiles/disc_stream.dir/netflow_generator.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/netflow_generator.cc.o.d"
  "/root/repo/src/stream/recording.cc" "src/stream/CMakeFiles/disc_stream.dir/recording.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/recording.cc.o.d"
  "/root/repo/src/stream/sliding_window.cc" "src/stream/CMakeFiles/disc_stream.dir/sliding_window.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/sliding_window.cc.o.d"
  "/root/repo/src/stream/stream_clusterer.cc" "src/stream/CMakeFiles/disc_stream.dir/stream_clusterer.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/stream_clusterer.cc.o.d"
  "/root/repo/src/stream/stream_source.cc" "src/stream/CMakeFiles/disc_stream.dir/stream_source.cc.o" "gcc" "src/stream/CMakeFiles/disc_stream.dir/stream_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/disc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
