file(REMOVE_RECURSE
  "libdisc_stream.a"
)
