file(REMOVE_RECURSE
  "CMakeFiles/disc_stream.dir/blobs_generator.cc.o"
  "CMakeFiles/disc_stream.dir/blobs_generator.cc.o.d"
  "CMakeFiles/disc_stream.dir/covid_generator.cc.o"
  "CMakeFiles/disc_stream.dir/covid_generator.cc.o.d"
  "CMakeFiles/disc_stream.dir/csv.cc.o"
  "CMakeFiles/disc_stream.dir/csv.cc.o.d"
  "CMakeFiles/disc_stream.dir/dtg_generator.cc.o"
  "CMakeFiles/disc_stream.dir/dtg_generator.cc.o.d"
  "CMakeFiles/disc_stream.dir/geolife_generator.cc.o"
  "CMakeFiles/disc_stream.dir/geolife_generator.cc.o.d"
  "CMakeFiles/disc_stream.dir/iris_generator.cc.o"
  "CMakeFiles/disc_stream.dir/iris_generator.cc.o.d"
  "CMakeFiles/disc_stream.dir/maze_generator.cc.o"
  "CMakeFiles/disc_stream.dir/maze_generator.cc.o.d"
  "CMakeFiles/disc_stream.dir/netflow_generator.cc.o"
  "CMakeFiles/disc_stream.dir/netflow_generator.cc.o.d"
  "CMakeFiles/disc_stream.dir/recording.cc.o"
  "CMakeFiles/disc_stream.dir/recording.cc.o.d"
  "CMakeFiles/disc_stream.dir/sliding_window.cc.o"
  "CMakeFiles/disc_stream.dir/sliding_window.cc.o.d"
  "CMakeFiles/disc_stream.dir/stream_clusterer.cc.o"
  "CMakeFiles/disc_stream.dir/stream_clusterer.cc.o.d"
  "CMakeFiles/disc_stream.dir/stream_source.cc.o"
  "CMakeFiles/disc_stream.dir/stream_source.cc.o.d"
  "libdisc_stream.a"
  "libdisc_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
