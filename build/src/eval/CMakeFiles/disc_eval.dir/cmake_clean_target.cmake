file(REMOVE_RECURSE
  "libdisc_eval.a"
)
