# Empty compiler generated dependencies file for disc_eval.
# This may be replaced when dependencies are built.
