
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/ari.cc" "src/eval/CMakeFiles/disc_eval.dir/ari.cc.o" "gcc" "src/eval/CMakeFiles/disc_eval.dir/ari.cc.o.d"
  "/root/repo/src/eval/equivalence.cc" "src/eval/CMakeFiles/disc_eval.dir/equivalence.cc.o" "gcc" "src/eval/CMakeFiles/disc_eval.dir/equivalence.cc.o.d"
  "/root/repo/src/eval/kdistance.cc" "src/eval/CMakeFiles/disc_eval.dir/kdistance.cc.o" "gcc" "src/eval/CMakeFiles/disc_eval.dir/kdistance.cc.o.d"
  "/root/repo/src/eval/partition.cc" "src/eval/CMakeFiles/disc_eval.dir/partition.cc.o" "gcc" "src/eval/CMakeFiles/disc_eval.dir/partition.cc.o.d"
  "/root/repo/src/eval/quality.cc" "src/eval/CMakeFiles/disc_eval.dir/quality.cc.o" "gcc" "src/eval/CMakeFiles/disc_eval.dir/quality.cc.o.d"
  "/root/repo/src/eval/runner.cc" "src/eval/CMakeFiles/disc_eval.dir/runner.cc.o" "gcc" "src/eval/CMakeFiles/disc_eval.dir/runner.cc.o.d"
  "/root/repo/src/eval/table.cc" "src/eval/CMakeFiles/disc_eval.dir/table.cc.o" "gcc" "src/eval/CMakeFiles/disc_eval.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/disc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/disc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/disc_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/disc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/disc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
