file(REMOVE_RECURSE
  "CMakeFiles/disc_eval.dir/ari.cc.o"
  "CMakeFiles/disc_eval.dir/ari.cc.o.d"
  "CMakeFiles/disc_eval.dir/equivalence.cc.o"
  "CMakeFiles/disc_eval.dir/equivalence.cc.o.d"
  "CMakeFiles/disc_eval.dir/kdistance.cc.o"
  "CMakeFiles/disc_eval.dir/kdistance.cc.o.d"
  "CMakeFiles/disc_eval.dir/partition.cc.o"
  "CMakeFiles/disc_eval.dir/partition.cc.o.d"
  "CMakeFiles/disc_eval.dir/quality.cc.o"
  "CMakeFiles/disc_eval.dir/quality.cc.o.d"
  "CMakeFiles/disc_eval.dir/runner.cc.o"
  "CMakeFiles/disc_eval.dir/runner.cc.o.d"
  "CMakeFiles/disc_eval.dir/table.cc.o"
  "CMakeFiles/disc_eval.dir/table.cc.o.d"
  "libdisc_eval.a"
  "libdisc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
