# Empty compiler generated dependencies file for earthquake_monitoring.
# This may be replaced when dependencies are built.
