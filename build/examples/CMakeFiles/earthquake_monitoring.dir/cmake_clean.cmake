file(REMOVE_RECURSE
  "CMakeFiles/earthquake_monitoring.dir/earthquake_monitoring.cpp.o"
  "CMakeFiles/earthquake_monitoring.dir/earthquake_monitoring.cpp.o.d"
  "earthquake_monitoring"
  "earthquake_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthquake_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
