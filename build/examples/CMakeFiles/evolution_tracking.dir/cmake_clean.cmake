file(REMOVE_RECURSE
  "CMakeFiles/evolution_tracking.dir/evolution_tracking.cpp.o"
  "CMakeFiles/evolution_tracking.dir/evolution_tracking.cpp.o.d"
  "evolution_tracking"
  "evolution_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolution_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
