# Empty dependencies file for evolution_tracking.
# This may be replaced when dependencies are built.
