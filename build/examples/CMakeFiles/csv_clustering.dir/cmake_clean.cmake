file(REMOVE_RECURSE
  "CMakeFiles/csv_clustering.dir/csv_clustering.cpp.o"
  "CMakeFiles/csv_clustering.dir/csv_clustering.cpp.o.d"
  "csv_clustering"
  "csv_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
