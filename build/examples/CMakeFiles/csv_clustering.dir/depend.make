# Empty dependencies file for csv_clustering.
# This may be replaced when dependencies are built.
