#!/usr/bin/env bash
# CI entry point: the full static-analysis + test matrix (docs/ANALYSIS.md).
#
#   1. disc_lint invariant checks over src/ + lint fixture self-tests
#   2. format gate (skips when clang-format is not installed)
#   3. Release: build + full ctest suite
#   4. Observability smoke: run an example with tracing + JSONL metrics and
#      validate both artifacts with tools/trace_check.py
#   5. Engine smoke: multi-session run with checkpoint/recover through a
#      spill dir, trace validated for the engine scheduling spans
#   6. Telemetry smoke: quickstart --serve 0, scrape the live /metrics,
#      /healthz, and /sessions endpoints, validate the exposition with
#      tools/prom_check.py (TYPE/HELP pairing, name validity, monotone
#      counter re-scrape) — run under the Release AND ASan binaries
#   7. Ingest smoke: disc_ingestd on ephemeral ports, slides fed through
#      the framed TCP plane by disc_feed, /sessions and the net_* counters
#      asserted over the telemetry port (prom_check.py validates the
#      exposition) — run under the Release AND ASan binaries
#   8. Chaos: the seeded fault-injection scenarios (ctest -L chaos, which
#      also matches the net-chaos label) under three pinned seeds, Release
#      and ASan legs; a failure prints the seed so the exact storm replays
#      locally
#   9. ASan+UBSan: build + full ctest suite (UBSan findings are fatal via
#      -fno-sanitize-recover, see the asan preset)
#  10. TSan: build + full ctest suite
#  11. clang-tidy over src/ (skips when clang-tidy is not installed)
#
# Usage: scripts/ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

# The lint stage is a hard gate, not best-effort: a missing interpreter
# must fail the run loudly instead of skipping the invariant checks.
command -v python3 >/dev/null 2>&1 || {
  echo "error: python3 not found on PATH — the disc_lint stage cannot run" >&2
  echo "       (install python3; the lint gate is mandatory, see docs/ANALYSIS.md)" >&2
  exit 1
}

echo "=== disc_lint: project invariants ==="
lint_report="build-release/disc_lint_report.json"
mkdir -p build-release
python3 tools/lint/disc_lint.py \
  --baseline tools/lint/baseline.json --json "${lint_report}" src/
python3 tools/lint/check_fixtures.py
echo "disc_lint: clean; findings report written to ${lint_report}"

echo "=== format gate ==="
scripts/check_format.sh

echo "=== Release: configure + build + full ctest ==="
cmake --preset release
cmake --build --preset release -j "${jobs}"
ctest --preset release -j "${jobs}" "$@"

echo "=== observability smoke: trace + JSONL artifacts ==="
obs_dir="$(mktemp -d)"
trap 'rm -rf "${obs_dir}"' EXIT
./build-release/examples/quickstart \
  "${obs_dir}/trace.json" "${obs_dir}/metrics.jsonl" > /dev/null
python3 tools/trace_check.py \
  --trace "${obs_dir}/trace.json" \
  --require-span pipeline.slide --require-span disc.update \
  --require-span disc.collect --require-span disc.ex_phase \
  --require-span disc.neo_phase --require-span disc.recheck \
  --require-span rtree.epoch_search \
  --require-span disc.msbfs --require-span disc.msbfs.round \
  --require-span disc.neo_discovery \
  --jsonl "${obs_dir}/metrics.jsonl" --min-slides 20

echo "=== engine smoke: multi-session checkpoint/recover + scheduling spans ==="
./build-release/examples/multi_session \
  "${obs_dir}/engine_trace.json" "${obs_dir}/engine_metrics.prom" \
  "${obs_dir}/engine_spill" > /dev/null
python3 tools/trace_check.py \
  --trace "${obs_dir}/engine_trace.json" \
  --require-span engine.drain --require-span engine.session \
  --require-span pipeline.slide --require-span disc.update
grep -q '^engine_session_city_vehicles_slides_total 15$' \
  "${obs_dir}/engine_metrics.prom" || {
    echo "engine smoke: per-session metrics missing or wrong" >&2; exit 1; }

# Launch `$1 --serve 0`, hold its stdin open on a fifo while scraping the
# live endpoints, then release stdin for a clean exit. Validates the
# Prometheus exposition (and counter monotonicity across a re-scrape) with
# tools/prom_check.py and the /healthz + /sessions JSON shapes inline.
telemetry_smoke() {
  local exe="$1" label="$2"
  echo "=== telemetry smoke (${label}): live /metrics + /healthz + /sessions ==="
  local dir fifo log pid port
  dir="$(mktemp -d)"
  fifo="${dir}/stdin.fifo"
  log="${dir}/serve.log"
  mkfifo "${fifo}"
  "${exe}" --serve 0 < "${fifo}" > "${log}" 2>&1 &
  pid=$!
  exec 9> "${fifo}" # keep a writer open so the server's stdin stays alive
  port=""
  for _ in $(seq 200); do # sanitizer binaries start slowly; allow 20s
    port="$(sed -n 's/^serving telemetry on port \([0-9]*\)$/\1/p' "${log}")"
    [ -n "${port}" ] && break
    sleep 0.1
  done
  if [ -z "${port}" ]; then
    echo "telemetry smoke (${label}): server never announced a port" >&2
    cat "${log}" >&2
    exit 1
  fi
  python3 tools/prom_check.py --url "http://127.0.0.1:${port}/metrics" --rescrape
  python3 - "http://127.0.0.1:${port}" <<'PY'
import json, sys, urllib.request

base = sys.argv[1]
health = json.load(urllib.request.urlopen(base + "/healthz", timeout=10))
assert health.get("live") is True and health.get("ready") is True, health
sessions = json.load(urllib.request.urlopen(base + "/sessions", timeout=10))
assert isinstance(sessions.get("sessions"), list), sessions
print(f"telemetry smoke: healthz ready; "
      f"{len(sessions['sessions'])} session rows")
PY
  echo >&9 # one stdin line releases the hold
  exec 9>&-
  wait "${pid}" || {
    echo "telemetry smoke (${label}): server exited nonzero" >&2
    cat "${log}" >&2
    exit 1
  }
  rm -rf "${dir}"
}

telemetry_smoke ./build-release/examples/quickstart "Release"

# Launch disc_ingestd on ephemeral ports, push slides through the framed
# TCP plane with disc_feed, then assert over the telemetry port that the
# wire traffic is visible: the session appears in /sessions and the net_*
# counters moved. prom_check.py validates the exposition itself.
ingest_smoke() {
  local daemon="$1" feeder="$2" label="$3"
  echo "=== ingest smoke (${label}): socket-fed slides + net_* counters ==="
  local dir fifo log pid ingest_port telemetry_port
  dir="$(mktemp -d)"
  fifo="${dir}/stdin.fifo"
  log="${dir}/ingestd.log"
  mkfifo "${fifo}"
  "${daemon}" --port 0 --telemetry-port 0 --lanes 2 \
    < "${fifo}" > "${log}" 2>&1 &
  pid=$!
  exec 8> "${fifo}"
  ingest_port=""
  telemetry_port=""
  for _ in $(seq 200); do # sanitizer binaries start slowly; allow 20s
    ingest_port="$(sed -n 's/^serving ingest on port \([0-9]*\)$/\1/p' "${log}")"
    telemetry_port="$(sed -n 's/^serving telemetry on port \([0-9]*\)$/\1/p' "${log}")"
    [ -n "${ingest_port}" ] && [ -n "${telemetry_port}" ] && break
    sleep 0.1
  done
  if [ -z "${ingest_port}" ] || [ -z "${telemetry_port}" ]; then
    echo "ingest smoke (${label}): daemon never announced its ports" >&2
    cat "${log}" >&2
    exit 1
  fi
  "${feeder}" --port "${ingest_port}" --session ci_smoke \
    --window 600 --stride 100 --slides 8
  python3 tools/prom_check.py \
    --url "http://127.0.0.1:${telemetry_port}/metrics" --rescrape
  python3 - "http://127.0.0.1:${telemetry_port}" <<'PY'
import json, sys, urllib.request

base = sys.argv[1]
health = json.load(urllib.request.urlopen(base + "/healthz", timeout=10))
assert health.get("ready") is True, health
assert health.get("components", {}).get("ingest") == "ok", health
sessions = json.load(urllib.request.urlopen(base + "/sessions", timeout=10))
names = [row["name"] for row in sessions["sessions"]]
assert "ci_smoke" in names, names
with urllib.request.urlopen(base + "/metrics", timeout=10) as response:
    metrics = {}
    for line in response.read().decode().splitlines():
        if line and not line.startswith("#"):
            name, _, value = line.partition(" ")
            metrics[name] = float(value)
for counter in ("net_frames_total", "net_connections_total",
                "net_bytes_rx_total", "net_bytes_tx_total"):
    assert metrics.get(counter, 0) > 0, (counter, metrics.get(counter))
assert metrics.get("net_frames_bad_total", -1) == 0, metrics
print(f"ingest smoke: ci_smoke session live; "
      f"{int(metrics['net_frames_total'])} frames, "
      f"{int(metrics['net_bytes_rx_total'])} bytes rx")
PY
  echo >&8 # one stdin line shuts the daemon down
  exec 8>&-
  wait "${pid}" || {
    echo "ingest smoke (${label}): daemon exited nonzero" >&2
    cat "${log}" >&2
    exit 1
  }
  rm -rf "${dir}"
}

ingest_smoke ./build-release/examples/disc_ingestd \
  ./build-release/examples/disc_feed "Release"

# Replay the chaos scenarios (ctest -L chaos) once per pinned seed. The
# seeds are fixed so a red run is reproducible: on failure we print the
# seed, and `DISC_CHAOS_SEED=<seed> ./tests/chaos_test` replays the exact
# storm locally (common/failpoint.h; docs/ANALYSIS.md §Fault injection).
chaos_stage() {
  local preset="$1" build_dir="$2"
  echo "=== chaos (${preset}): seeded fault-injection scenarios ==="
  local seed
  for seed in 1701 424242 777000777; do
    DISC_CHAOS_SEED="${seed}" \
      ctest --preset "${preset}" -L chaos -j "${jobs}" || {
        echo "chaos (${preset}): FAILED at seed ${seed} — replay with" >&2
        echo "  DISC_CHAOS_SEED=${seed} ${build_dir}/tests/chaos_test" >&2
        echo "  DISC_CHAOS_SEED=${seed} ${build_dir}/tests/net_chaos_test" >&2
        exit 1
      }
  done
}

chaos_stage release ./build-release

echo "=== ASan+UBSan: configure + build + full ctest ==="
cmake --preset asan
cmake --build --preset asan -j "${jobs}"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --preset asan -j "${jobs}" "$@"

ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  telemetry_smoke ./build-asan/examples/quickstart "ASan"

ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ingest_smoke ./build-asan/examples/disc_ingestd \
    ./build-asan/examples/disc_feed "ASan"

ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  chaos_stage asan ./build-asan

echo "=== TSan: configure + build + full ctest ==="
cmake --preset tsan
cmake --build --preset tsan -j "${jobs}"
TSAN_OPTIONS=halt_on_error=1 ctest --preset tsan -j "${jobs}" "$@"

echo "=== clang-tidy over src/ ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json comes from the release preset configured above.
  mapfile -t tidy_files < <(git ls-files 'src/**/*.cc')
  clang-tidy -p build-release "${tidy_files[@]}"
  echo "clang-tidy: ${#tidy_files[@]} files clean"
else
  echo "clang-tidy not found on PATH; skipping tidy gate"
fi

echo "CI passed."
