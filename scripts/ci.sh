#!/usr/bin/env bash
# CI entry point: full test suite under the Release preset, then the
# parallelism-sensitive tests under TSan to catch data races in the COLLECT
# fan-out. Usage: scripts/ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== Release: configure + build + ctest ==="
cmake --preset release
cmake --build --preset release -j "${jobs}"
ctest --preset release -j "${jobs}" "$@"

echo "=== TSan: configure + build + threaded tests ==="
cmake --preset tsan
cmake --build --preset tsan -j "${jobs}" --target parallel_test
ctest --preset tsan -R "ParallelFor|ThreadDeterminism" "$@"

echo "CI passed."
