#!/usr/bin/env python3
"""Plot the paper figures from the bench binaries' CSV output.

Usage:
    # Run the benches, capturing their output:
    for b in build/bench/bench_fig*; do $b > $(basename $b).txt; done
    # Then plot everything that was captured:
    python3 scripts/plot_figs.py bench_fig*.txt -o plots/

Each bench prints an aligned table followed by "CSV:" and the same data as
CSV; this script extracts the CSV block(s) and renders matplotlib charts
mirroring the paper's figures. Requires matplotlib + pandas.
"""

import argparse
import io
import os
import re
import sys

try:
    import pandas as pd
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("plot_figs.py needs pandas and matplotlib installed")


def extract_csv_blocks(text):
    """Yields DataFrames for every CSV block following a 'CSV' marker line."""
    blocks = re.split(r"^CSV[^\n]*:\s*$", text, flags=re.MULTILINE)
    for block in blocks[1:]:
        lines = []
        for line in block.splitlines():
            if "," in line:
                lines.append(line)
            elif lines:
                break
        if len(lines) >= 2:
            yield pd.read_csv(io.StringIO("\n".join(lines)))


def plot_fig4(df, out):
    fig, axes = plt.subplots(1, df["dataset"].nunique(), figsize=(16, 4),
                             sharey=True)
    for ax, (name, group) in zip(axes, df.groupby("dataset", sort=False)):
        for col in ("DISC_x", "IncDBSCAN_x", "EXTRA-N_x"):
            series = pd.to_numeric(group[col], errors="coerce")
            ax.plot(group["stride%"], series, marker="o",
                    label=col.replace("_x", ""))
        ax.set_xscale("log")
        ax.set_yscale("log")
        ax.axhline(1.0, color="gray", lw=0.5)
        ax.set_title(name)
        ax.set_xlabel("stride (% of window)")
    axes[0].set_ylabel("speedup over DBSCAN")
    axes[0].legend()
    fig.suptitle("Fig. 4: relative speedup over DBSCAN, varying stride")
    fig.savefig(out, bbox_inches="tight", dpi=120)


def plot_fig5(df, out):
    fig, axes = plt.subplots(1, df["dataset"].nunique(), figsize=(16, 4),
                             sharey=True)
    for ax, (name, group) in zip(axes, df.groupby("dataset", sort=False)):
        for col in ("DISC_x", "IncDBSCAN_x", "EXTRA-N_x"):
            series = pd.to_numeric(group[col], errors="coerce")
            ax.plot(group["window"], series, marker="o",
                    label=col.replace("_x", ""))
        ax.set_xscale("log")
        ax.set_yscale("log")
        ax.axhline(1.0, color="gray", lw=0.5)
        ax.set_title(name)
        ax.set_xlabel("window size")
    axes[0].set_ylabel("speedup over DBSCAN")
    axes[0].legend()
    fig.suptitle("Fig. 5: relative speedup over DBSCAN, varying window")
    fig.savefig(out, bbox_inches="tight", dpi=120)


def plot_quality_latency(df, out, title):
    fig, (ax_ari, ax_lat) = plt.subplots(1, 2, figsize=(12, 4))
    ari_col = "ARI" if "ARI" in df.columns else "ARI_vs_DBSCAN"
    for name, group in df.groupby("method", sort=False):
        ax_ari.plot(group["window"], group[ari_col], marker="o", label=name)
        ax_lat.plot(group["window"], group["latency_us/pt"], marker="o",
                    label=name)
    ax_ari.set_xlabel("window")
    ax_ari.set_ylabel(ari_col)
    ax_lat.set_xlabel("window")
    ax_lat.set_ylabel("update latency (us/point)")
    ax_lat.set_yscale("log")
    ax_ari.legend(fontsize=7)
    fig.suptitle(title)
    fig.savefig(out, bbox_inches="tight", dpi=120)


def plot_fig11(df, out):
    fig, axes = plt.subplots(1, df["dataset"].nunique(), figsize=(11, 4))
    for ax, (name, group) in zip(axes, df.groupby("dataset", sort=False)):
        ax.plot(group["eps"], group["DISC_us/pt"], marker="o", label="DISC")
        ax.plot(group["eps"], group["rho2_us/pt"], marker="s",
                label="rho2-DBSCAN")
        ax.set_xscale("log")
        ax.set_yscale("log")
        ax.set_title(name)
        ax.set_xlabel("eps")
        ax.set_ylabel("latency (us/point)")
        ax.legend()
    fig.suptitle("Fig. 11: update latency, varying eps")
    fig.savefig(out, bbox_inches="tight", dpi=120)


def plot_fig12_scatter(csv_path, out):
    df = pd.read_csv(csv_path)
    fig, ax = plt.subplots(figsize=(6, 6))
    noise = df[df["cid"] < 0]
    ax.scatter(noise["x0"], noise["x1"], s=1, c="lightgray")
    rest = df[df["cid"] >= 0]
    ax.scatter(rest["x0"], rest["x1"], s=1, c=rest["cid"] % 20, cmap="tab20")
    ax.set_title(os.path.basename(csv_path))
    fig.savefig(out, bbox_inches="tight", dpi=120)


HANDLERS = {
    "fig4": plot_fig4,
    "fig5": plot_fig5,
    "fig9": lambda df, out: plot_quality_latency(df, out, "Fig. 9: Maze"),
    "fig10": lambda df, out: plot_quality_latency(df, out, "Fig. 10: DTG"),
    "fig11": plot_fig11,
}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("inputs", nargs="+",
                        help="bench output .txt files or fig12_*.csv files")
    parser.add_argument("-o", "--outdir", default="plots")
    args = parser.parse_args()
    os.makedirs(args.outdir, exist_ok=True)

    for path in args.inputs:
        base = os.path.basename(path)
        if base.startswith("fig12_") and base.endswith(".csv"):
            out = os.path.join(args.outdir, base.replace(".csv", ".png"))
            plot_fig12_scatter(path, out)
            print("wrote", out)
            continue
        match = re.search(r"fig(\d+)", base)
        if not match:
            print("skipping", path, "(no figure number in name)")
            continue
        key = "fig" + match.group(1)
        handler = HANDLERS.get(key)
        if handler is None:
            print("skipping", path, "(no plot handler for", key + ")")
            continue
        with open(path) as f:
            text = f.read()
        for i, df in enumerate(extract_csv_blocks(text)):
            suffix = "" if i == 0 else f"_{i}"
            out = os.path.join(args.outdir, f"{key}{suffix}.png")
            handler(df, out)
            print("wrote", out)


if __name__ == "__main__":
    main()
