#!/usr/bin/env bash
# Non-mutating format gate: fails if any first-party C++ file deviates from
# .clang-format. Skips (exit 0, with a notice) when clang-format is not
# installed — the tool is optional in minimal containers; CI images with
# LLVM enforce it.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found on PATH; skipping format gate"
  exit 0
fi

# Tracked C++ sources only; fixtures are deliberately unformatted inputs.
mapfile -t files < <(git ls-files \
  'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' 'bench/*.cc' 'bench/*.h' \
  'examples/*.cpp')

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no files to check"
  exit 0
fi

clang-format --dry-run -Werror "${files[@]}"
echo "check_format: ${#files[@]} files clean"
