#!/usr/bin/env python3
"""trace_check: structural validator for DISC observability artifacts.

Checks a Chrome trace-event JSON file (produced by
obs::TraceRecorder::WriteChromeJson) and optionally a per-slide JSONL
metrics file (produced by obs::WriteSlideJsonl). Used by the scripts/ci.sh
observability smoke stage and usable standalone:

  tools/trace_check.py --trace /tmp/trace.json \
      --require-span disc.collect --require-span disc.ex_phase \
      --jsonl /tmp/metrics.jsonl --min-slides 3

Trace checks:
  * file parses as JSON with a traceEvents array
  * every event has ph in {B, E, M}, integer pid/tid, and (for B/E)
    integer ts and a non-empty name
  * per tid: timestamps are non-decreasing and B/E events nest LIFO with
    matching names (a well-formed flame graph)
  * every --require-span name occurs at least once

JSONL checks:
  * every line parses as one JSON object
  * required keys: slide, window, entered, exited, relabeled, counters
  * counters carries the probe drill-down keys
  * slide indices are strictly increasing
  * at least --min-slides lines

Exit status: 0 all checks pass, 1 a check failed, 2 usage error.
"""

import argparse
import json
import sys

REQUIRED_COUNTER_KEYS = (
    "range_searches",
    "nodes_visited",
    "entries_checked",
    "leaf_entries_tested",
    "epoch_pruned",
)


def fail(message):
    print(f"trace_check: FAIL: {message}", file=sys.stderr)
    return 1


def check_trace(path, required_spans):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: not loadable JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{path}: missing traceEvents array")

    open_stacks = {}  # tid -> [names]
    last_ts = {}      # tid -> ts
    seen_names = set()
    spans = 0
    for i, e in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(e, dict):
            return fail(f"{where}: not an object")
        ph = e.get("ph")
        if ph not in ("B", "E", "M"):
            return fail(f"{where}: bad ph {ph!r}")
        if not isinstance(e.get("pid"), int) or not isinstance(
                e.get("tid"), int):
            return fail(f"{where}: pid/tid must be integers")
        if ph == "M":
            continue
        name = e.get("name")
        ts = e.get("ts")
        if not isinstance(name, str) or not name:
            return fail(f"{where}: B/E event without a name")
        if not isinstance(ts, int):
            return fail(f"{where}: B/E event without integer ts")
        tid = e["tid"]
        if tid in last_ts and ts < last_ts[tid]:
            return fail(f"{where}: ts regressed on tid {tid} "
                        f"({last_ts[tid]} -> {ts})")
        last_ts[tid] = ts
        spans += 1
        stack = open_stacks.setdefault(tid, [])
        if ph == "B":
            stack.append(name)
            seen_names.add(name)
        else:
            if not stack:
                return fail(f"{where}: E without open B on tid {tid}")
            if stack[-1] != name:
                return fail(f"{where}: mis-nested span on tid {tid}: "
                            f"closing {name!r} while {stack[-1]!r} is open")
            stack.pop()

    for tid, stack in open_stacks.items():
        if stack:
            return fail(f"{path}: unclosed span(s) on tid {tid}: {stack}")
    if spans == 0:
        return fail(f"{path}: no span events captured")
    missing = [s for s in required_spans if s not in seen_names]
    if missing:
        return fail(f"{path}: required span(s) never appeared: {missing}; "
                    f"captured: {sorted(seen_names)}")
    print(f"trace_check: {path}: {spans} span events across "
          f"{len(last_ts)} thread(s), all nested and monotone")
    return 0


def check_jsonl(path, min_slides):
    try:
        with open(path, encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        return fail(f"{path}: unreadable: {e}")

    prev_slide = -1
    for i, line in enumerate(lines):
        where = f"{path}: line {i + 1}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(f"{where}: not a JSON object: {e}")
        for key in ("slide", "window", "entered", "exited", "relabeled",
                    "counters"):
            if key not in record:
                return fail(f"{where}: missing key {key!r}")
        counters = record["counters"]
        if not isinstance(counters, dict):
            return fail(f"{where}: counters is not an object")
        for key in REQUIRED_COUNTER_KEYS:
            if not isinstance(counters.get(key), int):
                return fail(f"{where}: counters.{key} missing or non-integer")
        slide = record["slide"]
        if not isinstance(slide, int) or slide <= prev_slide:
            return fail(f"{where}: slide index {slide!r} not increasing "
                        f"(previous {prev_slide})")
        prev_slide = slide

    if len(lines) < min_slides:
        return fail(f"{path}: {len(lines)} slide record(s), "
                    f"expected at least {min_slides}")
    print(f"trace_check: {path}: {len(lines)} slide records, "
          f"schema and ordering ok")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="trace_check.py",
        description="Validate DISC trace/JSONL observability artifacts.")
    parser.add_argument("--trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="span name that must appear (repeatable)")
    parser.add_argument("--jsonl", help="per-slide JSONL metrics file")
    parser.add_argument("--min-slides", type=int, default=1,
                        help="minimum JSONL records (default 1)")
    args = parser.parse_args(argv)

    if not args.trace and not args.jsonl:
        parser.print_usage(sys.stderr)
        print("trace_check: nothing to check (pass --trace and/or --jsonl)",
              file=sys.stderr)
        return 2

    status = 0
    if args.trace:
        status |= check_trace(args.trace, args.require_span)
    if args.jsonl:
        status |= check_jsonl(args.jsonl, args.min_slides)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
