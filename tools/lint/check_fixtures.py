#!/usr/bin/env python3
"""Self-test for disc_lint: every golden violation fixture must be flagged
with its rule id, and every clean twin must pass.

Fixture naming: tools/lint/fixtures/**/<rule_with_underscores>_violation.cc
and ..._clean.cc. A rule may have several golden pairs, one per directory
(e.g. epoch-confinement has the COLLECT-stage pair at the fixtures root,
the parallel-CLUSTER pair under cluster/, and the engine-scheduler pair
under engine/; the v2 rules live under status/, lock/, and iter/). Run
with --rule <rule-id> to check every pair of one rule (how ctest registers
it), or with no arguments to check every fixture found.

Exit status: 0 all expectations met, 1 otherwise.
"""

import argparse
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "disc_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def find_fixtures():
    # (rule, group) -> {"violation": path, "clean": path}, where group is
    # the pair's directory relative to fixtures/ so one rule can own
    # multiple golden pairs without the paths colliding.
    pairs = {}
    for root, _dirs, names in os.walk(FIXTURES):
        group = os.path.relpath(root, FIXTURES)
        for name in sorted(names):
            if not name.endswith(".cc"):
                continue
            stem, _ = os.path.splitext(name)
            for kind in ("violation", "clean"):
                suffix = "_" + kind
                if stem.endswith(suffix):
                    rule = stem[:-len(suffix)].replace("_", "-")
                    pairs.setdefault((rule, group), {})[kind] = os.path.join(
                        root, name)
    return pairs


def run_lint(path):
    proc = subprocess.run(
        [sys.executable, LINT, path],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def check_rule(rule, group, pair):
    failures = []
    label = f"{rule} ({group})"
    violation = pair.get("violation")
    clean = pair.get("clean")
    if violation is None:
        failures.append(f"{label}: missing violation fixture")
    else:
        code, out = run_lint(violation)
        if code != 1:
            failures.append(
                f"{label}: expected exit 1 on {violation}, got {code}\n{out}")
        elif f"[{rule}]" not in out:
            failures.append(
                f"{label}: violation fixture not flagged with [{rule}]\n"
                f"{out}")
    if clean is None:
        failures.append(f"{label}: missing clean twin")
    else:
        code, out = run_lint(clean)
        if code != 0:
            failures.append(
                f"{label}: expected exit 0 on clean twin {clean}, got "
                f"{code}\n{out}")
    return failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rule", help="check only this rule's fixture pair")
    args = parser.parse_args(argv)

    pairs = find_fixtures()
    if args.rule:
        pairs = {k: v for k, v in pairs.items() if k[0] == args.rule}
        if not pairs:
            print(f"no fixtures found for rule {args.rule}", file=sys.stderr)
            return 1

    failures = []
    for (rule, group), pair in sorted(pairs.items()):
        failures.extend(check_rule(rule, group, pair))
    for f in failures:
        print(f"FAIL {f}", file=sys.stderr)
    if not failures:
        print(f"ok: {len(pairs)} rule fixture pair(s) behaved as expected")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
