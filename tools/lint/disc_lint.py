#!/usr/bin/env python3
"""disc_lint: machine-enforced DISC project invariants.

DISC's headline guarantee is exactness: the labeling after every slide is
identical to a from-scratch DBSCAN on the window (PAPER.md Thm. 1), and the
parallel COLLECT stage must keep results bit-identical for every lane count.
Those invariants are easy to break silently — one unordered-container
iteration feeding emitted output, one label write that bypasses the delta
accounting, one epoch tick taken inside the parallel stage — and no test
fails on a single-core box. This linter encodes them lexically so CI fails
instead of a reviewer having to notice.

Rules (see docs/ANALYSIS.md for the invariant each protects):

  label-choke-point   Cluster-label fields (.category / .cid on a point
                      record) may be written only inside a SetLabel
                      definition. Applies to src/core/ and to any file that
                      defines SetLabel; cluster_registry.* is exempt (it
                      stores handles, not labels).

  epoch-confinement   R-tree epoch ticks are mutable state on the probe
                      path: tick_counter_ may be touched only inside
                      rtree.*, and NewTick / EpochRangeSearch /
                      SearchMarking must never appear in the parallel
                      stages — COLLECT (Collect / FanOutProbes bodies), the
                      parallel CLUSTER entry points (MsBfsStrided /
                      FanOutClusterProbes / ProcessNeoCoresParallel /
                      NeoDiscoveryWorker bodies — these run tick-free
                      concurrent probes), the thread-pool lane entry points
                      (DrainBatch / WorkerLoop), or any ParallelFor call
                      argument.

  unordered-emit      A range-for over a std::unordered_map/set whose body
                      emits (push_back / emplace_back / WritePod /
                      .write / stream <<) leaks hash-table iteration order
                      into output. Materialize and sort first; the rule is
                      satisfied when std::sort / std::stable_sort /
                      SortById runs later in the same function.

  distance-hot-path   Exact Distance() on the probe hot paths (src/index/,
                      src/core/): compare squared radii with
                      SquaredDistance() instead.

Suppression: append `// disc-lint: allow(<rule>)` to the offending line or
place it on the line directly above. `allow(all)` silences every rule for
that line. Always add a reason after the directive.

Usage: disc_lint.py [--list-rules] <file-or-dir>...
Exit status: 0 clean, 1 violations found, 2 usage error.
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

RULES = {
    "label-choke-point": (
        "cluster-label field written outside the SetLabel choke point "
        "(delta accounting is bypassed)"
    ),
    "epoch-confinement": (
        "epoch tick mutation outside the R-tree epoch-probe path"
    ),
    "unordered-emit": (
        "unordered-container iteration feeds emitted output without sorted "
        "materialization"
    ),
    "distance-hot-path": (
        "exact Distance() on a probe hot path; compare squared radii with "
        "SquaredDistance()"
    ),
}

ALLOW_RE = re.compile(r"disc-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def blank_comments_and_strings(text):
    """Returns text with comments and string/char literals replaced by
    spaces, preserving offsets and line structure."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or
                                     text[i - 1] == "_"):
            i += 1  # C++14 digit separator (0x1234'5678), not a char literal.
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j = j + 2 if text[j] == "\\" else j + 1
            for k in range(i, min(j + 1, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def match_brace(text, open_pos):
    """Position of the '}' matching the '{' at open_pos, or len(text)."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


def match_paren(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


def function_body_spans(code, name):
    """Spans (start, end) of the bodies of definitions of `name`.

    A definition is `name (args...)` followed — possibly after qualifiers
    like const/override/noexcept/attribute macros — by '{'. Calls are
    followed by ';', ',' or ')' instead.
    """
    spans = []
    for m in re.finditer(r"\b%s\s*\(" % re.escape(name), code):
        close = match_paren(code, m.end() - 1)
        i = close + 1
        # Skip trailing qualifiers and annotation macros up to '{' or stop.
        while i < len(code):
            if code[i].isspace():
                i += 1
            elif code[i] == "(":
                i = match_paren(code, i) + 1
            elif code[i].isalnum() or code[i] == "_":
                j = i
                while j < len(code) and (code[j].isalnum() or code[j] == "_"):
                    j += 1
                i = j
            else:
                break
        if i < len(code) and code[i] == "{":
            spans.append((i, match_brace(code, i)))
    return spans


class FileCheck:
    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.code = blank_comments_and_strings(text)
        self.raw_lines = text.split("\n")
        self.violations = []

    def allowed(self, line, rule):
        for idx in (line - 1, line - 2):
            if 0 <= idx < len(self.raw_lines):
                m = ALLOW_RE.search(self.raw_lines[idx])
                if m:
                    rules = [r.strip() for r in m.group(1).split(",")]
                    if rule in rules or "all" in rules:
                        return True
        return False

    def report(self, pos, rule):
        line = line_of(self.code, pos)
        if not self.allowed(line, rule):
            self.violations.append(
                Violation(self.path, line, rule, RULES[rule]))


# ---------------------------------------------------------------------------
# Rule: label-choke-point
# ---------------------------------------------------------------------------

LABEL_WRITE_RE = re.compile(
    r"\b\w+(?:\.|->)(?:category|cid)\s*=(?!=)")


def check_label_choke_point(fc):
    base = os.path.basename(fc.path)
    if base.startswith("cluster_registry."):
        return
    in_core = f"{os.sep}core{os.sep}" in fc.path or "/core/" in fc.path
    defines_choke = bool(function_body_spans(fc.code, "SetLabel"))
    if not in_core and not defines_choke:
        # From-scratch baselines rebuild whole labelings; the choke-point
        # invariant protects incremental delta accounting only.
        return
    exempt = function_body_spans(fc.code, "SetLabel")
    for m in LABEL_WRITE_RE.finditer(fc.code):
        if any(s <= m.start() < e for s, e in exempt):
            continue
        fc.report(m.start(), "label-choke-point")


# ---------------------------------------------------------------------------
# Rule: epoch-confinement
# ---------------------------------------------------------------------------

TICK_MUTATION_RE = re.compile(
    r"(?:\+\+|--)\s*tick_counter_|tick_counter_\s*(?:\+\+|--|=(?!=)|\+=|-=)")
EPOCH_CALL_RE = re.compile(
    r"\b(?:NewTick|EpochRangeSearch|SearchMarking)\s*\(")


def check_epoch_confinement(fc):
    base = os.path.basename(fc.path)
    if not base.startswith("rtree."):
        for m in TICK_MUTATION_RE.finditer(fc.code):
            fc.report(m.start(), "epoch-confinement")

    # The parallel stages: bodies of Collect / FanOutProbes (COLLECT), the
    # parallel CLUSTER entry points (MsBfsStrided / FanOutClusterProbes run
    # tick-free probe rounds; ProcessNeoCoresParallel / NeoDiscoveryWorker
    # are the speculative neo-discovery region — concurrent readers must
    # never write entry epochs), the thread-pool lane entry points
    # (DrainBatch / WorkerLoop — everything a worker thread executes), the
    # engine scheduling loop (Drain dispatches session slides across lanes;
    # ExecuteSessionSlide is the per-lane slide body — epoch writes belong
    # to the probing layer underneath, never to the scheduler), plus the
    # full argument span of every ParallelFor call (the loop body lambda).
    collect_spans = []
    for name in ("Collect", "FanOutProbes", "MsBfsStrided",
                 "FanOutClusterProbes", "ProcessNeoCoresParallel",
                 "NeoDiscoveryWorker", "DrainBatch", "WorkerLoop",
                 "Drain", "ExecuteSessionSlide"):
        collect_spans.extend(function_body_spans(fc.code, name))
    for m in re.finditer(r"\bParallelFor\s*\(", fc.code):
        collect_spans.append((m.end() - 1, match_paren(fc.code, m.end() - 1)))
    for m in EPOCH_CALL_RE.finditer(fc.code):
        if any(s <= m.start() < e for s, e in collect_spans):
            fc.report(m.start(), "epoch-confinement")


# ---------------------------------------------------------------------------
# Rule: unordered-emit
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}()]*?>\s+(\w+)\s*(?:;|=|\{)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
EMIT_SINK_RE = re.compile(
    r"\.push_back\s*\(|\.emplace_back\s*\(|\bWritePod\s*\(|\.write\s*\(|"
    r"\b\w*(?:out|os|stream)\w*\s*<<")
SORT_ESCAPE_RE = re.compile(
    r"\bstd::sort\s*\(|\bstd::stable_sort\s*\(|\bSortById\s*\(")


def collect_unordered_names(codes):
    names = set()
    for code in codes:
        for m in UNORDERED_DECL_RE.finditer(code):
            names.add(m.group(1))
    return names


def enclosing_function_end(code, pos):
    """Approximates the end of the enclosing function: the next '}' that
    starts a line (project style closes namespace-level braces at column
    0)."""
    m = re.search(r"\n\}", code[pos:])
    return pos + m.start() + 2 if m else len(code)


def check_unordered_emit(fc, unordered_names):
    for m in RANGE_FOR_RE.finditer(fc.code):
        open_paren = m.end() - 1
        close_paren = match_paren(fc.code, open_paren)
        header = fc.code[open_paren + 1:close_paren]
        if ":" not in header:
            continue  # Classic three-clause for.
        container = header.rsplit(":", 1)[1].strip()
        tail = re.findall(r"\w+", container)
        if not tail or tail[-1] not in unordered_names:
            continue
        # Loop body: braced block or single statement.
        i = close_paren + 1
        while i < len(fc.code) and fc.code[i].isspace():
            i += 1
        if i < len(fc.code) and fc.code[i] == "{":
            body_start, body_end = i, match_brace(fc.code, i)
        else:
            body_start = i
            semi = fc.code.find(";", i)
            body_end = len(fc.code) if semi == -1 else semi
        body = fc.code[body_start:body_end]
        if not EMIT_SINK_RE.search(body):
            continue
        rest = fc.code[body_end:enclosing_function_end(fc.code, body_end)]
        if SORT_ESCAPE_RE.search(rest):
            continue  # Sorted materialization before the function returns.
        fc.report(m.start(), "unordered-emit")


# ---------------------------------------------------------------------------
# Rule: distance-hot-path
# ---------------------------------------------------------------------------

DISTANCE_CALL_RE = re.compile(r"(?<!\w)Distance\s*\(")
HOT_PATH_DIRS = (f"{os.sep}index{os.sep}", f"{os.sep}core{os.sep}",
                 "/index/", "/core/")


def check_distance_hot_path(fc):
    if not any(d in fc.path for d in HOT_PATH_DIRS):
        return
    for m in DISTANCE_CALL_RE.finditer(fc.code):
        # Declarations/definitions of a Distance function itself are not
        # calls; a call site is preceded by an operator or '(' etc., while a
        # declaration is preceded by a type name. Lexically we accept both
        # and rely on the hot-path scope: no such helper is declared there.
        fc.report(m.start(), "distance-hot-path")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith("build") and d != "fixtures")
                for name in sorted(names):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"disc_lint: no such file or directory: {p}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def main(argv):
    parser = argparse.ArgumentParser(
        prog="disc_lint.py",
        description="DISC project invariant linter (see module docstring).")
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, message in RULES.items():
            print(f"{rule}: {message}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2

    files = gather_files(args.paths)
    checks = []
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            checks.append(FileCheck(path, f.read()))

    unordered_names = collect_unordered_names(fc.code for fc in checks)

    violations = []
    for fc in checks:
        check_label_choke_point(fc)
        check_epoch_confinement(fc)
        check_unordered_emit(fc, unordered_names)
        check_distance_hot_path(fc)
        violations.extend(fc.violations)

    for v in sorted(violations, key=lambda v: (v.path, v.line)):
        print(v)
    if violations:
        print(f"disc_lint: {len(violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
