#!/usr/bin/env python3
"""disc_lint v2: scope-aware machine enforcement of DISC project invariants.

DISC's headline guarantee is exactness: the labeling after every slide is
identical to a from-scratch DBSCAN on the window (PAPER.md Thm. 1), and the
parallel COLLECT/CLUSTER stages must keep results bit-identical for every
lane count. Those invariants are easy to break silently — one unordered
walk feeding emitted output, one label write bypassing delta accounting,
one epoch tick inside a parallel lane, one dropped Status, one unlocked
touch of a mutex-guarded field — and no test fails on a single-core box.

v2 replaces the v1 lexical matcher with a small analysis engine:

  * a C++ tokenizer (comments, strings, raw strings, and preprocessor
    directives stripped losslessly, with line numbers preserved),
  * a declaration index (classes and their spans, member functions with
    in-class and out-of-line bodies, thread-safety annotations
    GUARDED_BY / REQUIRES, mutex members, Status-returning signatures,
    unordered-container declarations) built over every scanned file, and
  * per-function scope tracking (brace scopes, lock regions, by-value
    locals) that rules query instead of regex heuristics.

Rules (see docs/ANALYSIS.md for the invariant each protects and the
precision/recall notes):

  label-choke-point   Cluster-label fields (.category / .cid on a point
                      record) may be written only inside a SetLabel
                      definition. Applies to src/core/ and to any file that
                      defines SetLabel; cluster_registry.* is exempt, and
                      writes to by-value locals (a copied record is not the
                      store) are exempt via scope tracking.

  epoch-confinement   R-tree epoch ticks are mutable state on the probe
                      path: tick_counter_ may be touched only inside
                      rtree.*, and NewTick / EpochRangeSearch /
                      SearchMarking must never appear in the parallel
                      stages — COLLECT (Collect / FanOutProbes), the
                      parallel CLUSTER entry points (MsBfsStrided /
                      FanOutClusterProbes / ProcessNeoCoresParallel /
                      NeoDiscoveryWorker), the thread-pool lane entry
                      points (DrainBatch / WorkerLoop), the engine
                      scheduling stages (Drain / DrainLocked /
                      ExecuteSessionSlide), or any ParallelFor argument.

  unordered-emit      A range-for over a std::unordered_map/set whose body
                      emits (push_back / emplace_back / WritePod / .write /
                      stream <<) leaks hash order into output, unless a
                      std::sort / std::stable_sort / SortById runs later in
                      the same function (exact span, not a heuristic).

  unordered-iteration Generalizes unordered-emit beyond the Snapshot
                      paths: iterator-style loops over unordered
                      containers that feed any emit sink, and any loop
                      form whose body feeds trace args (.AddArg),
                      histogram observations (.Observe — float
                      accumulation is order-dependent), or last-write-wins
                      gauges (.Set).

  unchecked-status    Every call to a disc::Status-returning function must
                      be consumed: assigned, returned, branched on, or
                      passed on. Expression-statement calls — including
                      (void) casts and a chained .ok() whose result is
                      itself dropped — are flagged; [[nodiscard]] alone
                      misses the cast and template contexts, and GCC's
                      warning is not an error gate.

  lock-discipline     A field declared GUARDED_BY(m) may be touched only
                      while m is held: inside the scope of a
                      lock_guard/unique_lock/scoped_lock on m, after
                      m.lock(), or in a function annotated REQUIRES(m).
                      Constructors and destructors of the owning class are
                      exempt (no concurrent access exists yet), matching
                      Clang. This is the portable, GCC-friendly
                      approximation of Clang -Wthread-safety, so the check
                      runs in the GCC-only container instead of silently
                      skipping.

  distance-hot-path   Exact Distance() on the probe hot paths (src/index/,
                      src/core/): compare squared radii with
                      SquaredDistance() instead. Declarations and
                      definitions of a Distance function are recognized
                      and skipped (v1 could not tell them apart).

Suppression: append `// disc-lint: allow(<rule>)` to the offending line or
place it on the line directly above. `allow(all)` silences every rule for
that line. Always add a reason after the directive; the reason is carried
into the JSON report.

Baseline workflow: `--baseline FILE` reads a committed JSON baseline
(tools/lint/baseline.json). Findings matching a baseline entry (same rule,
file suffix, and snippet) are reported as baselined and do not fail the
run; new findings do. Every baseline entry must carry a non-empty
"justification" or the baseline itself is rejected.

Machine-readable output: `--json FILE` writes every finding (active,
suppressed, and baselined) with rule, file, line, snippet, and suppression
state, for CI artifacts and dashboards.

Usage: disc_lint.py [--list-rules] [--json FILE] [--baseline FILE]
                    <file-or-dir>...
Exit status: 0 clean, 1 violations found, 2 usage/baseline error.
"""

import argparse
import json
import os
import re
import sys

CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

RULES = {
    "label-choke-point": (
        "cluster-label field written outside the SetLabel choke point "
        "(delta accounting is bypassed)"
    ),
    "epoch-confinement": (
        "epoch tick mutation outside the R-tree epoch-probe path"
    ),
    "unordered-emit": (
        "unordered-container iteration feeds emitted output without sorted "
        "materialization"
    ),
    "unordered-iteration": (
        "loop over an unordered container feeds an order-dependent sink "
        "(trace args, histogram/gauge writes, or iterator-style emission)"
    ),
    "unchecked-status": (
        "disc::Status result discarded; assign, return, branch on it, or "
        "add an explicit allow() with a reason"
    ),
    "lock-discipline": (
        "GUARDED_BY field touched without holding its mutex (lock it or "
        "annotate the function REQUIRES)"
    ),
    "distance-hot-path": (
        "exact Distance() on a probe hot path; compare squared radii with "
        "SquaredDistance()"
    ),
}

ALLOW_RE = re.compile(r"disc-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

PUNCT3 = ("<<=", ">>=", "...", "->*")
PUNCT2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
          "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##")

KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
    "class", "const", "consteval", "constexpr", "constinit", "const_cast",
    "continue", "co_await", "co_return", "co_yield", "decltype", "default",
    "delete", "do", "double", "dynamic_cast", "else", "enum", "explicit",
    "extern", "false", "final", "float", "for", "friend", "goto", "if",
    "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
    "nullptr", "operator", "override", "private", "protected", "public",
    "register", "reinterpret_cast", "return", "short", "signed", "sizeof",
    "static", "static_cast", "struct", "switch", "template", "this",
    "thread_local", "throw", "true", "try", "typedef", "typeid",
    "typename", "union", "unsigned", "using", "virtual", "void",
    "volatile", "while",
}

RAW_PREFIXES = {"R", "LR", "uR", "UR", "u8R"}

IDENT_START = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
IDENT_CONT = IDENT_START | set("0123456789")


class Token:
    __slots__ = ("kind", "text", "line", "index")

    def __init__(self, kind, text, line):
        self.kind = kind  # "id" | "num" | "str" | "chr" | "punct"
        self.text = text
        self.line = line
        self.index = -1  # Filled by Source.

    def __repr__(self):
        return f"Token({self.kind!r}, {self.text!r}, line={self.line})"


def tokenize(text):
    """Token stream with comments/strings/preprocessor stripped, line
    numbers preserved. String and char literals become placeholder tokens
    so offsets in expressions survive."""
    toks = []
    i, n, line = 0, len(text), 1
    bol = True  # Only whitespace seen on the current line so far.
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            bol = True
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and bol:
            # Preprocessor directive: consume the logical line (honoring
            # backslash continuations). Directives carry no C++ scope.
            i += 1
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                i += 1
            continue
        bol = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            line += text.count("\n", i, j)
            i = j
            continue
        if c in IDENT_START:
            j = i + 1
            while j < n and text[j] in IDENT_CONT:
                j += 1
            ident = text[i:j]
            if ident in RAW_PREFIXES and j < n and text[j] == '"':
                # Raw string literal R"delim( ... )delim".
                k = text.find("(", j)
                delim = text[j + 1:k] if k != -1 else ""
                marker = ")" + delim + '"'
                end = text.find(marker, k + 1) if k != -1 else -1
                end = n if end == -1 else end + len(marker)
                toks.append(Token("str", '""', line))
                line += text.count("\n", i, end)
                i = end
                continue
            toks.append(Token("id", ident, line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n:
                d = text[j]
                if d in IDENT_CONT or d == "." or d == "'":
                    j += 1
                elif d in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            toks.append(Token("num", text[i:j], line))
            i = j
            continue
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                if text[j] == "\n":
                    line += 1
                j += 1
            toks.append(Token("str", '""', line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            toks.append(Token("chr", "''", line))
            i = j + 1
            continue
        if text[i:i + 3] in PUNCT3:
            toks.append(Token("punct", text[i:i + 3], line))
            i += 3
            continue
        if text[i:i + 2] in PUNCT2:
            toks.append(Token("punct", text[i:i + 2], line))
            i += 2
            continue
        toks.append(Token("punct", c, line))
        i += 1
    for idx, t in enumerate(toks):
        t.index = idx
    return toks


def pair_brackets(toks):
    """Maps each (, {, [ token index to its closing partner and back.
    Unbalanced brackets map to the end of the stream."""
    match = {}
    stacks = {"(": [], "{": [], "[": []}
    closer = {")": "(", "}": "{", "]": "["}
    for i, t in enumerate(toks):
        if t.kind != "punct":
            continue
        if t.text in stacks:
            stacks[t.text].append(i)
        elif t.text in closer:
            stack = stacks[closer[t.text]]
            if stack:
                j = stack.pop()
                match[j] = i
                match[i] = j
    end = len(toks)
    for stack in stacks.values():
        for i in stack:
            match[i] = end
    return match


def skip_angles(toks, i):
    """Index just past the '>' matching the '<' at i (crude depth count;
    '>>' closes two levels, parens are skipped)."""
    depth = 0
    n = len(toks)
    while i < n:
        x = toks[i].text
        if x == "<":
            depth += 1
        elif x == ">":
            depth -= 1
            if depth <= 0:
                return i + 1
        elif x == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif x in (";", "{", "}"):
            return i  # Not a template argument list after all.
        i += 1
    return n


# ---------------------------------------------------------------------------
# Declaration index
# ---------------------------------------------------------------------------

ANNOT_MACROS = {
    "REQUIRES", "EXCLUDES", "ACQUIRE", "RELEASE", "ACQUIRE_SHARED",
    "RELEASE_SHARED", "REQUIRES_SHARED", "NO_THREAD_SAFETY_ANALYSIS",
    "CAPABILITY", "SCOPED_CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY",
}

FN_QUALIFIERS = {"const", "noexcept", "override", "final", "mutable",
                 "volatile", "try", "&", "&&"}

MUTEX_TYPES = {"mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
               "recursive_timed_mutex"}

UNORDERED_TYPES = {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset"}


class FuncDef:
    __slots__ = ("name", "cls", "name_tok", "body_start", "body_end",
                 "requires", "is_ctor_dtor")

    def __init__(self, name, cls, name_tok, body_start, body_end, requires):
        self.name = name
        self.cls = cls
        self.name_tok = name_tok
        self.body_start = body_start  # Index of the body '{'.
        self.body_end = body_end      # Index of the matching '}'.
        self.requires = requires      # Mutex names from REQUIRES(...).
        self.is_ctor_dtor = (cls is not None and
                             (name == cls or name == "~" + cls))


class ClassInfo:
    __slots__ = ("name", "body_start", "body_end", "guarded", "mutexes",
                 "method_requires")

    def __init__(self, name, body_start, body_end):
        self.name = name
        self.body_start = body_start
        self.body_end = body_end
        self.guarded = {}          # field name -> mutex name
        self.mutexes = set()       # mutex member names
        self.method_requires = {}  # method name -> set of mutex names


def last_id(toks, start, end):
    name = None
    for k in range(start, end):
        if toks[k].kind == "id":
            name = toks[k].text
    return name


def paren_arg_names(toks, match, open_paren):
    """Last identifier of each top-level comma-separated argument of the
    paren group at open_paren — normalizes `engine->mutex_` to `mutex_`."""
    close = match.get(open_paren, open_paren)
    names, current = [], None
    k = open_paren + 1
    while k < close:
        x = toks[k].text
        if x in ("(", "[", "{"):
            k = match.get(k, close) + 1
            continue
        if x == ",":
            if current is not None:
                names.append(current)
            current = None
        elif toks[k].kind == "id":
            current = toks[k].text
        k += 1
    if current is not None:
        names.append(current)
    return names


class Source:
    """One tokenized file plus its slice of the declaration index."""

    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.raw_lines = text.split("\n")
        self.toks = tokenize(text)
        self.match = pair_brackets(self.toks)
        self.defs = []     # FuncDef, in token order
        self.classes = []  # ClassInfo
        self.findings = []
        self._parse_structure()
        self._index_classes()

    # -- structure ---------------------------------------------------------

    def _parse_structure(self):
        self._scan_block(0, len(self.toks), None)
        self.defs.sort(key=lambda d: d.body_start)

    def _scan_block(self, i, end, cls):
        toks, match = self.toks, self.match
        while i < end:
            t = toks[i]
            x = t.text
            if x in ("class", "struct", "union") and (
                    i == 0 or toks[i - 1].text != "enum"):
                i = self._scan_class_head(i, end, x != "union")
                continue
            if x == "enum":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                if j < end and toks[j].text == "{":
                    j = match.get(j, end)
                i = j + 1
                continue
            if x == "namespace":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";", "="):
                    j += 1
                if j < end and toks[j].text == "{":
                    close = match.get(j, end)
                    self._scan_block(j + 1, close, cls)
                    i = close + 1
                else:
                    i = j + 1
                continue
            if (t.kind == "id" and x not in KEYWORDS and i + 1 < end and
                    toks[i + 1].text == "("):
                i = self._scan_callable(i, end, cls)
                continue
            if x == "{":
                close = match.get(i, end)
                self._scan_block(i + 1, close, cls)
                i = close + 1
                continue
            i += 1

    def _scan_class_head(self, i, end, record):
        """i at class/struct. Returns the index to resume scanning at."""
        toks, match = self.toks, self.match
        j = i + 1
        name = None
        while j < end:
            x = toks[j].text
            if x == "(":  # Annotation macro such as CAPABILITY("...").
                j = match.get(j, end) + 1
                continue
            if x == "[":  # [[nodiscard]] and friends.
                j = match.get(j, end) + 1
                continue
            if x == "<":
                j = skip_angles(toks, j)
                continue
            if x in ("{", ";", ":"):
                break
            if toks[j].kind == "id" and x not in ANNOT_MACROS:
                name = x
            j += 1
        if j < end and toks[j].text == ":":  # Base clause.
            while j < end and toks[j].text != "{":
                if toks[j].text == "(":
                    j = match.get(j, end) + 1
                    continue
                if toks[j].text == "<":
                    j = skip_angles(toks, j)
                    continue
                j += 1
        if j >= end or toks[j].text != "{":
            return j + 1  # Forward declaration or elaborated type use.
        close = match.get(j, end)
        if record and name is not None:
            self.classes.append(ClassInfo(name, j, close))
        self._scan_block(j + 1, close, name if record else None)
        return close + 1

    def _scan_callable(self, i, end, cls):
        """i at `name (`. Records a FuncDef when a body follows; returns
        the index to resume scanning at."""
        toks, match = self.toks, self.match
        close = match.get(i + 1, end)
        if close >= end:
            return i + 2
        j = close + 1
        requires = set()
        while j < end:
            x = toks[j].text
            if x in FN_QUALIFIERS:
                j += 1
                continue
            if toks[j].kind == "id" and x in ANNOT_MACROS:
                if j + 1 < end and toks[j + 1].text == "(":
                    if x == "REQUIRES":
                        requires |= set(
                            paren_arg_names(toks, match, j + 1))
                    j = match.get(j + 1, end) + 1
                else:
                    j += 1
                continue
            if x == "[":
                j = match.get(j, end) + 1
                continue
            if x == "(":  # noexcept(expr) and similar.
                j = match.get(j, end) + 1
                continue
            if x == "->":  # Trailing return type.
                j += 1
                while j < end and toks[j].text not in ("{", ";", "="):
                    if toks[j].text == "(":
                        j = match.get(j, end) + 1
                        continue
                    if toks[j].text == "<":
                        j = skip_angles(toks, j)
                        continue
                    j += 1
                continue
            if x == ":":  # Constructor initializer list.
                j = self._skip_init_list(j + 1, end)
                continue
            break
        if j >= end or toks[j].text != "{":
            return close + 1  # Declaration or a plain call.
        body_close = match.get(j, end)
        name = toks[i].text
        owner = cls
        name_tok = i
        if i >= 1 and toks[i - 1].text == "~":
            name = "~" + name
            name_tok = i - 1
        if name_tok >= 2 and toks[name_tok - 1].text == "::" and \
                toks[name_tok - 2].kind == "id":
            owner = toks[name_tok - 2].text
        self.defs.append(
            FuncDef(name, owner, i, j, body_close, requires))
        self._scan_block(j + 1, body_close, cls)
        return body_close + 1

    def _skip_init_list(self, j, end):
        """j just past the ':' of a ctor initializer list. Returns the
        index of the body '{' (or a safe stop)."""
        toks, match = self.toks, self.match
        while j < end:
            # Each initializer: qualified-id then ( ... ) or { ... }.
            while j < end and (toks[j].kind == "id" or
                               toks[j].text in ("::", ",")):
                j += 1
            if j < end and toks[j].text == "<":
                j = skip_angles(toks, j)
                continue
            if j >= end or toks[j].text not in ("(", "{"):
                return j
            opener = j
            closer = match.get(opener, end)
            after = closer + 1
            if after < end and toks[after].text == ",":
                j = after + 1
                continue
            if after < end and toks[after].text == "{":
                return after  # `Last(init) {` — body follows.
            if toks[opener].text == "{" and (
                    after >= end or toks[after].text not in (",", "{")):
                # `Member{init}` was actually the body guess; but a body
                # brace is never followed by ',' — treat as body.
                return opener
            j = after
        return j

    # -- class details -----------------------------------------------------

    def _enclosing_class(self, tok_idx):
        best = None
        for c in self.classes:
            if c.body_start < tok_idx < c.body_end:
                if best is None or c.body_start > best.body_start:
                    best = c
        return best

    def _index_classes(self):
        toks, match = self.toks, self.match
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text in ("GUARDED_BY", "PT_GUARDED_BY"):
                if i + 1 < len(toks) and toks[i + 1].text == "(" and i > 0 \
                        and toks[i - 1].kind == "id":
                    cls = self._enclosing_class(i)
                    if cls is not None:
                        args = paren_arg_names(toks, match, i + 1)
                        if args:
                            cls.guarded[toks[i - 1].text] = args[-1]
            elif t.text in MUTEX_TYPES:
                if i + 1 < len(toks) and toks[i + 1].kind == "id" and \
                        i + 2 < len(toks) and \
                        toks[i + 2].text in (";", "{", "="):
                    cls = self._enclosing_class(i)
                    if cls is not None:
                        cls.mutexes.add(toks[i + 1].text)
            elif t.text == "REQUIRES":
                if i + 1 < len(toks) and toks[i + 1].text == "(":
                    cls = self._enclosing_class(i)
                    name = self._annotated_function(i)
                    if cls is not None and name is not None:
                        cls.method_requires.setdefault(name, set()).update(
                            paren_arg_names(toks, match, i + 1))

    def _annotated_function(self, i):
        """Name of the function whose declaration carries the annotation
        macro at token i (walk back over qualifiers and other macros)."""
        toks, match = self.toks, self.match
        k = i - 1
        while k > 0:
            x = toks[k].text
            if x in FN_QUALIFIERS:
                k -= 1
                continue
            if x == ")":
                p = match.get(k)
                if p is None:
                    return None
                before = toks[p - 1] if p > 0 else None
                if before is not None and before.kind == "id":
                    if before.text in ANNOT_MACROS:
                        k = p - 2
                        continue
                    return before.text
                return None
            if x == "]":
                k = match.get(k, k) - 1
                continue
            return None
        return None

    # -- queries -----------------------------------------------------------

    def enclosing_def(self, tok_idx):
        best = None
        for d in self.defs:
            if d.body_start < tok_idx < d.body_end:
                if best is None or d.body_start > best.body_start:
                    best = d
        return best

    def line_text(self, line):
        if 1 <= line <= len(self.raw_lines):
            return self.raw_lines[line - 1].strip()
        return ""

    def suppression(self, line, rule):
        """Returns the justification text when an allow() on `line` or the
        line above covers `rule`, else None."""
        for idx in (line - 1, line - 2):
            if 0 <= idx < len(self.raw_lines):
                m = ALLOW_RE.search(self.raw_lines[idx])
                if m:
                    rules = [r.strip() for r in m.group(1).split(",")]
                    if rule in rules or "all" in rules:
                        tail = self.raw_lines[idx][m.end():].strip()
                        return tail if tail else "(no reason given)"
        return None

    def report(self, tok_idx, rule):
        line = self.toks[tok_idx].line
        self.findings.append(Finding(self, rule, line))


class Finding:
    def __init__(self, src, rule, line):
        self.path = src.path
        self.rule = rule
        self.line = line
        self.snippet = src.line_text(line)
        self.justification = src.suppression(line, rule)
        self.suppressed = self.justification is not None
        self.baselined = False

    def __str__(self):
        return (f"{self.path}:{self.line}: [{self.rule}] "
                f"{RULES[self.rule]}")

    def to_json(self):
        return {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "snippet": self.snippet,
            "message": RULES[self.rule],
            "suppressed": self.suppressed,
            "justification": self.justification,
            "baselined": self.baselined,
        }


class Index:
    """Cross-file declaration index shared by every rule."""

    def __init__(self, sources):
        self.sources = sources
        self.status_fns = set()
        self.unordered_names = set()
        self.guarded = {}  # class name -> ClassInfo (merged view)
        for src in sources:
            self._collect_status_fns(src)
            self._collect_unordered(src)
            for c in src.classes:
                if not (c.guarded or c.mutexes or c.method_requires):
                    continue
                merged = self.guarded.setdefault(
                    c.name, ClassInfo(c.name, -1, -1))
                merged.guarded.update(c.guarded)
                merged.mutexes.update(c.mutexes)
                for fn, req in c.method_requires.items():
                    merged.method_requires.setdefault(fn, set()).update(req)

    def _collect_status_fns(self, src):
        toks = src.toks
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text != "Status":
                continue
            if i > 0 and toks[i - 1].text in ("class", "struct", "enum"):
                continue
            # `Status [Qualified::]Name (` declares/defines Name returning
            # Status; record the final name component.
            j = i + 1
            name = None
            while j + 1 < n and toks[j].kind == "id":
                if toks[j + 1].text == "(":
                    name = toks[j].text
                    break
                if toks[j + 1].text == "::" and j + 2 < n:
                    j += 2
                    continue
                break
            if name is not None and name not in ("operator",):
                self.status_fns.add(name)

    def _collect_unordered(self, src):
        toks = src.toks
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in UNORDERED_TYPES:
                continue
            if i + 1 >= n or toks[i + 1].text != "<":
                continue
            j = skip_angles(toks, i + 1)
            while j < n and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == "id" and j + 1 < n and \
                    toks[j + 1].text in (";", "=", "{", ",", ")", ":"):
                self.unordered_names.add(toks[j].text)


# ---------------------------------------------------------------------------
# Rule: label-choke-point
# ---------------------------------------------------------------------------

LABEL_FIELDS = ("category", "cid")


def value_locals(src, fn):
    """Names of by-value locals declared inside fn's body: `Type name ;`,
    `Type name = ...`, `Type name{...}` with no & or * in the declarator.
    A copied record is not the store, so label writes to it cannot bypass
    delta accounting."""
    toks = src.toks
    names = set()
    for k in range(fn.body_start + 1, fn.body_end - 1):
        t = toks[k]
        if t.kind != "id" or t.text in KEYWORDS and t.text != "auto":
            continue
        nxt = toks[k + 1] if k + 1 < fn.body_end else None
        if nxt is None or nxt.kind != "id" or nxt.text in KEYWORDS:
            continue
        after = toks[k + 2].text if k + 2 < fn.body_end else ""
        if after not in (";", "=", "{"):
            continue
        prev = toks[k - 1].text if k > 0 else ";"
        if prev in (".", "->", "::", "&", "*", "<", ","):
            continue
        if prev in (";", "{", "}", "(", "const") or toks[k - 1].kind != "id":
            names.add(nxt.text)
    return names


def check_label_choke_point(src, index):
    base = os.path.basename(src.path)
    if base.startswith("cluster_registry."):
        return
    in_core = f"{os.sep}core{os.sep}" in src.path or "/core/" in src.path
    setlabel_defs = [d for d in src.defs if d.name == "SetLabel"]
    if not in_core and not setlabel_defs:
        # From-scratch baselines rebuild whole labelings; the choke-point
        # invariant protects incremental delta accounting only.
        return
    toks = src.toks
    locals_cache = {}
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in LABEL_FIELDS:
            continue
        if i == 0 or toks[i - 1].text not in (".", "->"):
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "=":
            continue
        if any(d.body_start < i < d.body_end for d in setlabel_defs):
            continue
        # Scope tracking: a write through a by-value local (`Record rec;
        # rec.category = ...`) mutates a copy, not the record store.
        if toks[i - 1].text == "." and i >= 2 and toks[i - 2].kind == "id":
            fn = src.enclosing_def(i)
            if fn is not None:
                if fn not in locals_cache:
                    locals_cache[fn] = value_locals(src, fn)
                if toks[i - 2].text in locals_cache[fn]:
                    continue
        src.report(i, "label-choke-point")


# ---------------------------------------------------------------------------
# Rule: epoch-confinement
# ---------------------------------------------------------------------------

# The parallel stages: COLLECT fan-out, the parallel CLUSTER entry points
# (tick-free concurrent probes), the thread-pool lane entry points
# (everything a worker thread executes), and the engine scheduling stages
# (Drain/DrainLocked dispatch session slides across lanes;
# ExecuteSessionSlide is the per-lane slide body — epoch writes belong to
# the probing layer underneath, never to the scheduler).
EPOCH_STAGES = {
    "Collect", "FanOutProbes", "MsBfsStrided", "FanOutClusterProbes",
    "ProcessNeoCoresParallel", "NeoDiscoveryWorker", "DrainBatch",
    "WorkerLoop", "Drain", "DrainLocked", "ExecuteSessionSlide",
}

EPOCH_CALLS = {"NewTick", "EpochRangeSearch", "SearchMarking"}

TICK_MUTATORS = {"=", "+=", "-=", "++", "--"}


def check_epoch_confinement(src, index):
    toks = src.toks
    base = os.path.basename(src.path)
    if not base.startswith("rtree."):
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text != "tick_counter_":
                continue
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if prev in ("++", "--") or nxt in TICK_MUTATORS:
                src.report(i, "epoch-confinement")

    spans = [(d.body_start, d.body_end) for d in src.defs
             if d.name in EPOCH_STAGES]
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text == "ParallelFor" and \
                i + 1 < len(toks) and toks[i + 1].text == "(":
            spans.append((i + 1, src.match.get(i + 1, len(toks))))
    if not spans:
        return
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in EPOCH_CALLS:
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        # The definition of a stage-adjacent helper is not a call.
        if any(d.name_tok == i for d in src.defs):
            continue
        if any(s < i < e for s, e in spans):
            src.report(i, "epoch-confinement")


# ---------------------------------------------------------------------------
# Rules: unordered-emit / unordered-iteration
# ---------------------------------------------------------------------------

# Write: obs::HttpResponse body chunks (telemetry JSON built per-element).
EMIT_MEMBER_SINKS = {"push_back", "emplace_back", "write", "Write"}
# Str/Num: obs::LogEvent fields — key order in the JSON line follows call
# order, so appending them while walking an unordered container makes the
# log line nondeterministic.
ITER_MEMBER_SINKS = {"AddArg", "Observe", "Set", "Str", "Num"}
STREAMY = re.compile(r"out|os|stream")


class Loop:
    __slots__ = ("for_tok", "body_start", "body_end", "range_based")

    def __init__(self, for_tok, body_start, body_end, range_based):
        self.for_tok = for_tok
        self.body_start = body_start
        self.body_end = body_end
        self.range_based = range_based


def find_unordered_loops(src, unordered_names):
    """Loops (range-for or iterator-for) over unordered containers."""
    toks, match = src.toks, src.match
    n = len(toks)
    loops = []
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "for":
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        close = match.get(i + 1)
        if close is None:
            continue
        colon = None
        semis = []
        k = i + 2
        while k < close:
            x = toks[k].text
            if x in ("(", "[", "{"):
                k = match.get(k, close) + 1
                continue
            if x == ":" and colon is None:
                colon = k
            elif x == ";":
                semis.append(k)
            k += 1
        over_unordered = False
        range_based = False
        if colon is not None and not semis:
            range_based = True
            container = last_id(toks, colon + 1, close)
            over_unordered = container in unordered_names
        elif semis:
            # Iterator-style: look for <name>.begin()/cbegin() in the init
            # clause with <name> an unordered container.
            for k in range(i + 2, semis[0]):
                if toks[k].kind == "id" and \
                        toks[k].text in ("begin", "cbegin") and \
                        k >= 2 and toks[k - 1].text in (".", "->") and \
                        toks[k - 2].kind == "id" and \
                        toks[k - 2].text in unordered_names:
                    over_unordered = True
                    break
        if not over_unordered:
            continue
        j = close + 1
        if j < n and toks[j].text == "{":
            body_start, body_end = j, match.get(j, n)
        else:
            body_start = j
            body_end = j
            while body_end < n and toks[body_end].text != ";":
                if toks[body_end].text in ("(", "{", "["):
                    body_end = match.get(body_end, n)
                body_end += 1
        loops.append(Loop(i, body_start, body_end, range_based))
    return loops


def body_sinks(src, loop):
    """(emit, iter) sink hits inside the loop body."""
    toks = src.toks
    emit = iter_ = False
    for k in range(loop.body_start, loop.body_end + 1):
        if k >= len(toks):
            break
        t = toks[k]
        if t.kind == "id" and k > 0 and toks[k - 1].text in (".", "->") and \
                k + 1 < len(toks) and toks[k + 1].text == "(":
            if t.text in EMIT_MEMBER_SINKS:
                emit = True
            if t.text in ITER_MEMBER_SINKS:
                iter_ = True
        elif t.kind == "id" and t.text == "WritePod" and \
                k + 1 < len(toks) and toks[k + 1].text == "(":
            emit = True
        elif t.text == "<<" and k > 0 and toks[k - 1].kind == "id" and \
                STREAMY.search(toks[k - 1].text):
            emit = True
    return emit, iter_


def sorted_later(src, loop):
    """True when std::sort / std::stable_sort / SortById runs after the
    loop inside the same (exactly delimited) enclosing function."""
    toks = src.toks
    fn = src.enclosing_def(loop.for_tok)
    end = fn.body_end if fn is not None else len(toks)
    for k in range(loop.body_end, end):
        t = toks[k]
        if t.kind == "id" and t.text in ("sort", "stable_sort") and \
                k > 0 and toks[k - 1].text == "::" and \
                k + 1 < len(toks) and toks[k + 1].text == "(":
            return True
        if t.kind == "id" and t.text == "SortById" and \
                k + 1 < len(toks) and toks[k + 1].text == "(":
            return True
    return False


def check_unordered(src, index):
    for loop in find_unordered_loops(src, index.unordered_names):
        emit, iter_ = body_sinks(src, loop)
        if not emit and not iter_:
            continue
        if sorted_later(src, loop):
            continue
        if loop.range_based and emit:
            src.report(loop.for_tok, "unordered-emit")
        if iter_ or (emit and not loop.range_based):
            src.report(loop.for_tok, "unordered-iteration")


# ---------------------------------------------------------------------------
# Rule: unchecked-status
# ---------------------------------------------------------------------------

STMT_BOUNDARY = {";", "{", "}", "else", "do"}
COND_KEYWORDS = {"if", "while", "for", "switch"}


def chain_start(src, i):
    """Walks the call chain `a.b->c::Name` backwards from the callee name
    at i; returns the index of the chain's first token."""
    toks, match = src.toks, src.match
    s = i
    while s > 0:
        p = toks[s - 1].text
        if p in (".", "->", "::") and s >= 2:
            q = toks[s - 2]
            if q.kind == "id":
                s -= 2
                continue
            if q.text == ")":
                open_p = match.get(s - 2)
                if open_p is None:
                    break
                if open_p > 0 and toks[open_p - 1].kind == "id":
                    s = open_p - 1
                    continue
                break
        break
    return s


def statement_context(src, s):
    """True when the token before index s begins a statement — i.e. an
    expression starting at s has its value discarded."""
    toks, match = src.toks, src.match
    if s == 0:
        return True
    before = toks[s - 1]
    if before.text in STMT_BOUNDARY:
        return True
    if before.text == ")":
        open_p = match.get(s - 1)
        if open_p is not None and open_p > 0 and \
                toks[open_p - 1].text in COND_KEYWORDS:
            return True  # Single-statement if/while/for body.
    return False


def void_cast_context(src, s):
    """True for `(void) <expr>` in statement position."""
    toks, match = src.toks, src.match
    if s < 3 or toks[s - 1].text != ")":
        return False
    open_p = match.get(s - 1)
    if open_p is None or open_p != s - 3 or toks[s - 2].text != "void":
        return False
    return statement_context(src, open_p)


def check_unchecked_status(src, index):
    toks, match = src.toks, src.match
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in index.status_fns:
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        if any(d.name_tok == i for d in src.defs):
            continue  # This is the definition, not a call.
        close = match.get(i + 1)
        if close is None or close + 1 >= n:
            continue
        after = toks[close + 1].text
        discarded = False
        check_tok = i
        if after == ";":
            discarded = True
        elif after in (".", "->") and close + 3 < n and \
                toks[close + 2].kind == "id" and \
                toks[close + 2].text in ("ok", "message") and \
                toks[close + 3].text == "(":
            # `f().ok();` — the probe itself is computed, then dropped.
            chained_close = match.get(close + 3)
            if chained_close is not None and chained_close + 1 < n and \
                    toks[chained_close + 1].text == ";":
                discarded = True
        if not discarded:
            continue
        s = chain_start(src, i)
        if statement_context(src, s) or void_cast_context(src, s):
            src.report(check_tok, "unchecked-status")


# ---------------------------------------------------------------------------
# Rule: lock-discipline
# ---------------------------------------------------------------------------

LOCK_TYPES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}
DEFERRING_TAGS = {"defer_lock", "try_to_lock"}


def check_lock_discipline(src, index):
    for fn in src.defs:
        if fn.cls is None:
            continue
        cls = index.guarded.get(fn.cls)
        if cls is None or not cls.guarded:
            continue
        if fn.is_ctor_dtor:
            continue  # No concurrent access exists yet — matches Clang.
        requires = set(fn.requires) | cls.method_requires.get(fn.name, set())
        _scan_function_locks(src, fn, cls, requires)


def _scan_function_locks(src, fn, cls, requires):
    toks, match = src.toks, src.match
    # Scope stack: each entry is (brace_token_index, locks acquired in that
    # scope). `held` is the flat multiset of currently held mutexes.
    scope_stack = [(fn.body_start, [])]
    held = {m: 1 for m in requires}
    lock_vars = {}  # lock-object variable name -> list of mutex names

    def acquire(names, scope_entry):
        for m in names:
            held[m] = held.get(m, 0) + 1
            scope_entry.append(m)

    def release(names):
        for m in names:
            if held.get(m, 0) > 0:
                held[m] -= 1

    k = fn.body_start + 1
    end = fn.body_end
    while k < end:
        t = toks[k]
        x = t.text
        if x == "{":
            scope_stack.append((k, []))
            k += 1
            continue
        if x == "}":
            if len(scope_stack) > 1:
                _, acquired = scope_stack.pop()
                release(acquired)
            k += 1
            continue
        if t.kind == "id" and x in LOCK_TYPES:
            k = _parse_lock_decl(src, k, end, cls, scope_stack[-1][1],
                                 held, lock_vars, acquire)
            continue
        if t.kind == "id" and x in ("lock", "unlock") and k >= 2 and \
                toks[k - 1].text in (".", "->") and \
                toks[k - 2].kind == "id" and \
                k + 1 < end and toks[k + 1].text == "(":
            obj = toks[k - 2].text
            targets = lock_vars.get(obj)
            if targets is None and obj in cls.mutexes:
                targets = [obj]
            if targets is not None:
                if x == "lock":
                    acquire(targets, scope_stack[-1][1])
                else:
                    release(targets)
            k = match.get(k + 1, k + 1) + 1
            continue
        if t.kind == "id" and x in cls.guarded:
            prev = toks[k - 1].text if k > 0 else ""
            qualified = prev in (".", "->") and not (
                k >= 2 and toks[k - 2].text == "this")
            if not qualified:
                mutex = cls.guarded[x]
                if held.get(mutex, 0) <= 0:
                    src.report(k, "lock-discipline")
            k += 1
            continue
        if t.kind == "id" and x in cls.method_requires and \
                k + 1 < end and toks[k + 1].text == "(":
            prev = toks[k - 1].text if k > 0 else ""
            qualified = prev in (".", "->", "::") and not (
                k >= 2 and toks[k - 2].text == "this")
            if not qualified:
                needed = cls.method_requires[x]
                if any(held.get(m, 0) <= 0 for m in needed):
                    src.report(k, "lock-discipline")
            k += 1
            continue
        k += 1


def _parse_lock_decl(src, k, end, cls, scope_acquired, held, lock_vars,
                     acquire):
    """k at lock_guard/unique_lock/... — parses the declaration, records
    the acquisition, returns the resume index."""
    toks, match = src.toks, src.match
    j = k + 1
    if j < end and toks[j].text == "<":
        j = skip_angles(toks, j)
    var = None
    if j < end and toks[j].kind == "id":
        var = toks[j].text
        j += 1
    if j >= end or toks[j].text not in ("(", "{"):
        return k + 1
    args = paren_arg_names(toks, match, j) if toks[j].text == "(" else []
    close = match.get(j, j)
    deferred = any(a in DEFERRING_TAGS for a in args)
    mutexes = [a for a in args if a not in DEFERRING_TAGS and
               a != "adopt_lock"]
    if var is not None and mutexes:
        lock_vars[var] = mutexes
    if mutexes and not deferred:
        acquire(mutexes, scope_acquired)
    return close + 1


# ---------------------------------------------------------------------------
# Rule: distance-hot-path
# ---------------------------------------------------------------------------

HOT_PATH_DIRS = (f"{os.sep}index{os.sep}", f"{os.sep}core{os.sep}",
                 "/index/", "/core/")


def check_distance_hot_path(src, index):
    if not any(d in src.path for d in HOT_PATH_DIRS):
        return
    toks = src.toks
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "Distance":
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        if any(d.name_tok == i for d in src.defs):
            continue  # Definition of a Distance helper, not a call.
        prev = toks[i - 1] if i > 0 else None
        if prev is not None and prev.kind == "id" and \
                prev.text not in KEYWORDS:
            continue  # `double Distance(...)` declaration.
        src.report(i, "distance-hot-path")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

CHECKS = (
    check_label_choke_point,
    check_epoch_confinement,
    check_unordered,
    check_unchecked_status,
    check_lock_discipline,
    check_distance_hot_path,
)


def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith("build") and d != "fixtures")
                for name in sorted(names):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"disc_lint: no such file or directory: {p}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def load_baseline(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"disc_lint: cannot read baseline {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    entries = data.get("entries", [])
    for idx, entry in enumerate(entries):
        for key in ("rule", "file", "snippet"):
            if not entry.get(key):
                print(f"disc_lint: baseline entry {idx} lacks '{key}'",
                      file=sys.stderr)
                sys.exit(2)
        if not str(entry.get("justification", "")).strip():
            print(f"disc_lint: baseline entry {idx} "
                  f"({entry['rule']} in {entry['file']}) has no "
                  "justification; every legacy finding must say why it is "
                  "tolerated", file=sys.stderr)
            sys.exit(2)
    return entries


def apply_baseline(findings, entries):
    used = [False] * len(entries)
    for f in findings:
        if f.suppressed:
            continue
        for idx, entry in enumerate(entries):
            if entry["rule"] != f.rule:
                continue
            norm = f.path.replace(os.sep, "/")
            ef = entry["file"].replace(os.sep, "/")
            if not (norm.endswith(ef) or ef.endswith(norm)):
                continue
            if entry["snippet"].strip() != f.snippet:
                continue
            f.baselined = True
            f.justification = entry["justification"]
            used[idx] = True
            break
    return [entries[i] for i in range(len(entries)) if not used[i]]


def main(argv):
    parser = argparse.ArgumentParser(
        prog="disc_lint.py",
        description="DISC project invariant linter (see module docstring).")
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    parser.add_argument("--json", metavar="FILE",
                        help="write a machine-readable findings report")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON baseline of tolerated legacy findings")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, message in RULES.items():
            print(f"{rule}: {message}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2

    baseline_entries = load_baseline(args.baseline) if args.baseline else []

    files = gather_files(args.paths)
    sources = []
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            sources.append(Source(path, f.read()))

    index = Index(sources)
    findings = []
    for src in sources:
        for check in CHECKS:
            check(src, index)
        src.findings.sort(key=lambda v: (v.line, v.rule))
        findings.extend(src.findings)

    stale = apply_baseline(findings, baseline_entries) \
        if baseline_entries else []

    active = [f for f in findings if not f.suppressed and not f.baselined]
    for f in active:
        print(f)
    for entry in stale:
        print(f"disc_lint: note: stale baseline entry ({entry['rule']} in "
              f"{entry['file']}) no longer matches any finding — remove it",
              file=sys.stderr)

    if args.json:
        report = {
            "version": 2,
            "tool": "disc_lint",
            "rules": {rule: message for rule, message in RULES.items()},
            "files_scanned": len(files),
            "findings": [f.to_json() for f in findings],
            "stale_baseline_entries": stale,
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    if active:
        print(f"disc_lint: {len(active)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
