// Golden violation for the distance-hot-path rule. Lives under a core/
// directory because the rule is scoped to the probe hot paths (src/index/,
// src/core/).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

double Distance(const Point& a, const Point& b);

bool WithinEps(const Point& a, const Point& b, double eps) {
  return Distance(a, b) <= eps;  // VIOLATION: exact distance on a probe.
}
