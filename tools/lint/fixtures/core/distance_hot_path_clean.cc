// Clean twin for the distance-hot-path rule: squared radii compare without
// the sqrt.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

double SquaredDistance(const Point& a, const Point& b);

bool WithinEps(const Point& a, const Point& b, double eps) {
  return SquaredDistance(a, b) <= eps * eps;
}
