// Violation fixture for lock-discipline: GUARDED_BY fields touched without
// holding the named mutex — a bare read, and a call to a REQUIRES method
// without the lock.
#include <cstddef>
#include <mutex>
#include <vector>

#define GUARDED_BY(x)
#define REQUIRES(...)
#define EXCLUDES(...)

namespace disc {

class EventBuffer {
 public:
  void Append(int event) {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(event);
  }

  std::size_t size() const {
    return events_.size();  // BAD: mutex_ not held.
  }

  void Reset() {
    CompactLocked();  // BAD: callee REQUIRES(mutex_), caller holds nothing.
  }

 private:
  void CompactLocked() REQUIRES(mutex_) { events_.clear(); }

  mutable std::mutex mutex_;
  std::vector<int> events_ GUARDED_BY(mutex_);
};

}  // namespace disc
