// Clean twin of lock_discipline_violation.cc: every touch of a GUARDED_BY
// field holds its mutex — via lock_guard, unique_lock (including a cv wait
// and a manual unlock), a REQUIRES precondition, or manual lock()/unlock()
// on the mutex itself. Constructors are exempt: no concurrent access
// exists before the object is shared.
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#define GUARDED_BY(x)
#define REQUIRES(...)
#define EXCLUDES(...)

namespace disc {

class EventBuffer {
 public:
  explicit EventBuffer(std::size_t reserve) {
    events_.reserve(reserve);  // OK: ctor, object not yet shared.
  }

  void Append(int event) {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(event);
    cv_.notify_one();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
  }

  int WaitAndPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (events_.empty()) cv_.wait(lock);
    int event = events_.back();
    events_.pop_back();
    lock.unlock();
    return event;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    CompactLocked();  // OK: lock held at the call.
  }

  void ManualDance() {
    mutex_.lock();
    events_.clear();
    mutex_.unlock();
  }

 private:
  void CompactLocked() REQUIRES(mutex_) { events_.clear(); }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<int> events_ GUARDED_BY(mutex_);
};

}  // namespace disc
