// Clean twin for the label-choke-point rule: every label write is either
// inside the SetLabel definition or carries an explicit suppression.
#include <cstdint>

struct Record {
  int category = 0;
  std::int64_t cid = -1;
};

struct Clusterer {
  void SetLabel(Record* rec, int category, std::int64_t cid) {
    rec->category = category;
    rec->cid = cid;
  }

  void Promote(Record& rec) { SetLabel(&rec, 1, 7); }

  void Restore(Record& rec) {
    // Checkpoint-style state restore, not a clustering decision:
    // disc-lint: allow(label-choke-point) restoring persisted labels.
    rec.category = 2;
    rec.cid = 9;  // disc-lint: allow(label-choke-point) same restore path.
  }
};
