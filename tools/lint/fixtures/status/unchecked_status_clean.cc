// Clean twin of unchecked_status_violation.cc: every Status is consumed —
// assigned, returned, branched on, passed on — or explicitly allow()-ed
// with a reason.
#include <string>
#include <utility>

namespace disc {

class Status {
 public:
  static Status Ok();
  static Status Error(const std::string& message);
  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

class SpillStore {
 public:
  Status Flush();
  Status Close();
  Status Checkpoint();
};

void Log(const std::string& message);
void Consume(Status status);

namespace failpoint {
Status HitStatus(const char* site);
}  // namespace failpoint

Status GuardedSave(SpillStore* store) {
  // A Status-returning failpoint is consumed like any other Status: the
  // injected fault propagates to the caller (common/failpoint.h).
  Status injected = failpoint::HitStatus("spill.save.pre");
  if (!injected.ok()) return injected;
  return store->Flush();
}

Status ShutDown(SpillStore* store) {
  Status flushed = store->Flush();       // Assigned.
  if (!flushed.ok()) Log(flushed.message());
  if (store->Checkpoint().ok()) {        // Branched on.
    Log("checkpointed");
  }
  Consume(store->Flush());               // Passed on.
  // Best-effort close on the shutdown path; the store is gone either way:
  // disc-lint: allow(unchecked-status) best-effort close at shutdown.
  store->Close();
  return store->Checkpoint();            // Returned.
}

}  // namespace disc
