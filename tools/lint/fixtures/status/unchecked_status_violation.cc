// Violation fixture for unchecked-status: Status results dropped on the
// floor in every way the rule must catch — a bare expression statement, a
// (void) cast, and a chained probe whose own result is discarded.
#include <string>

namespace disc {

class Status {
 public:
  static Status Ok();
  static Status Error(const std::string& message);
  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

class SpillStore {
 public:
  Status Flush();
  Status Close();
  Status Checkpoint();
};

namespace failpoint {
Status HitStatus(const char* site);
}  // namespace failpoint

void ShutDown(SpillStore* store) {
  store->Flush();             // BAD: result dropped.
  (void)store->Close();       // BAD: a cast is not a decision.
  store->Checkpoint().ok();   // BAD: probed, then the probe is dropped.
}

Status GuardedSave(SpillStore* store) {
  // BAD: an injected fault silently evaporates — the whole point of a
  // Status-returning failpoint is that the caller propagates it.
  failpoint::HitStatus("spill.save.pre");
  return store->Flush();
}

}  // namespace disc
