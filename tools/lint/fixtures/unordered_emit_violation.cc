// Golden violation for the unordered-emit rule: hash-table iteration order
// leaks straight into an emitted vector with no sorted materialization.
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Snapshot {
  std::vector<std::uint64_t> ids;
};

struct Clusterer {
  std::unordered_map<std::uint64_t, int> records_;

  Snapshot Emit() const {
    Snapshot snap;
    for (const auto& [id, rec] : records_) {  // VIOLATION: unsorted emit.
      snap.ids.push_back(id);
    }
    return snap;
  }
};
