// Clean twin of unordered_iteration_violation.cc: unordered walks either
// feed order-independent accumulation (integer sums, max), or materialize
// into a vector that is sorted before anything order-sensitive happens —
// including before structured-log fields and HTTP response chunks.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace disc {

class TraceSpan {
 public:
  void AddArg(const char* key, std::uint64_t value);
};

class LogEvent {
 public:
  LogEvent& Str(const char* key, const std::string& value);
  LogEvent& Num(const char* key, std::uint64_t value);
};

struct HttpResponse {
  void Write(const std::string& chunk);
};

class Histogram {
 public:
  void Observe(double value);
};

struct Snapshot {
  std::vector<std::uint64_t> ids;
};

void ExportSessionStats(
    const std::unordered_map<std::string, std::uint64_t>& session_slides,
    TraceSpan* span, Histogram* histogram) {
  // Integer accumulation commutes — hash order cannot leak.
  std::uint64_t total = 0;
  for (const auto& [name, slides] : session_slides) {
    total += slides;
  }
  span->AddArg("slides_total", total);
  histogram->Observe(static_cast<double>(total));
}

Snapshot CollectIds(const std::unordered_map<std::uint64_t, int>& records) {
  Snapshot snapshot;
  for (auto it = records.begin(); it != records.end(); ++it) {
    snapshot.ids.push_back(it->first);
  }
  // Sorted materialization: the emitted order is id order, not hash order.
  std::sort(snapshot.ids.begin(), snapshot.ids.end());
  return snapshot;
}

void LogSessionSummary(
    const std::unordered_map<std::string, std::uint64_t>& session_slides,
    LogEvent& event) {
  // One field built from commutative accumulation, not one per element.
  std::uint64_t total = 0;
  for (const auto& [name, slides] : session_slides) {
    total += slides;
  }
  event.Num("sessions", session_slides.size());
  event.Num("slides_total", total);
}

void RenderSessions(
    const std::unordered_map<std::string, std::uint64_t>& session_slides,
    HttpResponse& response) {
  // Materialize, sort by name, then render — body order is name order.
  std::vector<std::string> names;
  for (const auto& [name, slides] : session_slides) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    response.Write(name);
  }
}

}  // namespace disc
