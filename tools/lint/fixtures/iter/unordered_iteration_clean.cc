// Clean twin of unordered_iteration_violation.cc: unordered walks either
// feed order-independent accumulation (integer sums, max), or materialize
// into a vector that is sorted before anything order-sensitive happens.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace disc {

class TraceSpan {
 public:
  void AddArg(const char* key, std::uint64_t value);
};

class Histogram {
 public:
  void Observe(double value);
};

struct Snapshot {
  std::vector<std::uint64_t> ids;
};

void ExportSessionStats(
    const std::unordered_map<std::string, std::uint64_t>& session_slides,
    TraceSpan* span, Histogram* histogram) {
  // Integer accumulation commutes — hash order cannot leak.
  std::uint64_t total = 0;
  for (const auto& [name, slides] : session_slides) {
    total += slides;
  }
  span->AddArg("slides_total", total);
  histogram->Observe(static_cast<double>(total));
}

Snapshot CollectIds(const std::unordered_map<std::uint64_t, int>& records) {
  Snapshot snapshot;
  for (auto it = records.begin(); it != records.end(); ++it) {
    snapshot.ids.push_back(it->first);
  }
  // Sorted materialization: the emitted order is id order, not hash order.
  std::sort(snapshot.ids.begin(), snapshot.ids.end());
  return snapshot;
}

}  // namespace disc
