// Violation fixture for unordered-iteration: loops over unordered
// containers feeding order-dependent sinks — trace args and histogram
// observations from a range-for, an iterator-style loop that emits, a
// structured-log event gaining fields in hash order, and a telemetry
// HTTP response body built per-element.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace disc {

class TraceSpan {
 public:
  void AddArg(const char* key, std::uint64_t value);
};

class LogEvent {
 public:
  LogEvent& Str(const char* key, const std::string& value);
  LogEvent& Num(const char* key, std::uint64_t value);
};

struct HttpResponse {
  void Write(const std::string& chunk);
};

class Histogram {
 public:
  void Observe(double value);
};

struct Snapshot {
  std::vector<std::uint64_t> ids;
};

void ExportSessionStats(
    const std::unordered_map<std::string, std::uint64_t>& session_slides,
    TraceSpan* span, Histogram* histogram) {
  for (const auto& [name, slides] : session_slides) {
    span->AddArg("slides", slides);  // BAD: arg order follows hash order.
    histogram->Observe(static_cast<double>(slides));  // BAD: float order.
  }
}

Snapshot CollectIds(const std::unordered_map<std::uint64_t, int>& records) {
  Snapshot snapshot;
  for (auto it = records.begin(); it != records.end(); ++it) {
    snapshot.ids.push_back(it->first);  // BAD: emitted in hash order.
  }
  return snapshot;
}

void LogSessionSummary(
    const std::unordered_map<std::string, std::uint64_t>& session_slides,
    LogEvent& event) {
  for (const auto& [name, slides] : session_slides) {
    event.Str("session", name);  // BAD: JSON key order follows hash order.
    event.Num("slides", slides);
  }
}

void RenderSessions(
    const std::unordered_map<std::string, std::uint64_t>& session_slides,
    HttpResponse& response) {
  for (const auto& [name, slides] : session_slides) {
    response.Write(name);  // BAD: response body order follows hash order.
  }
}

}  // namespace disc
