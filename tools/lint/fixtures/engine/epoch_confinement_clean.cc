// Clean twin of engine/epoch_confinement_violation.cc: the scheduler
// stages only move slides and fold results; epoch ticks happen in a
// sequential stage outside DrainLocked/ExecuteSessionSlide. The
// constructor initializer list again exercises the v2 signature parser.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace disc {

class Index {
 public:
  std::uint64_t NewTick();
  void EpochRangeSearch(double eps, std::uint64_t tick);
};

class Engine {
 public:
  explicit Engine(Index* index) : index_(index), executed_(0) {}

  // Sequential pre-stage: epoch work is fine outside the parallel stages.
  void PrepareRound() {
    const std::uint64_t tick = index_->NewTick();
    index_->EpochRangeSearch(0.5, tick);
  }

  std::size_t DrainLocked() {
    for (std::size_t s = 0; s < sessions_.size(); ++s) {
      ExecuteSessionSlide(s);
    }
    ++executed_;
    return executed_;
  }

  void ExecuteSessionSlide(std::size_t session) { sessions_[session] += 1; }

 private:
  Index* index_;
  std::size_t executed_;
  std::vector<int> sessions_;
};

}  // namespace disc
