// Violation fixture for epoch-confinement over the engine scheduling
// stages (new in disc_lint v2): epoch calls inside DrainLocked /
// ExecuteSessionSlide, which run on (or dispatch to) pool lanes. The
// constructor with an initializer list exercises the v2 parser — a v1-era
// lexical matcher misparsed `: member_(...)` as part of the signature.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace disc {

class Index {
 public:
  std::uint64_t NewTick();
  void EpochRangeSearch(double eps, std::uint64_t tick);
};

class Engine {
 public:
  explicit Engine(Index* index) : index_(index), executed_(0) {}

  std::size_t DrainLocked() {
    const std::uint64_t tick = index_->NewTick();  // BAD: scheduler stage.
    index_->EpochRangeSearch(0.5, tick);           // BAD: scheduler stage.
    ++executed_;
    return executed_;
  }

  void ExecuteSessionSlide(std::size_t session) {
    sessions_[session] += 1;
    index_->NewTick();  // BAD: runs on a pool lane.
  }

 private:
  Index* index_;
  std::size_t executed_;
  std::vector<int> sessions_;
};

}  // namespace disc
