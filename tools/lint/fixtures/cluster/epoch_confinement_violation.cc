// Golden violation for the epoch-confinement rule in the parallel CLUSTER
// stage: epoch ticks and epoch-probed searches inside the strided MS-BFS,
// the cluster-probe fan-out, and the speculative neo-discovery worker. All
// three run tick-free concurrent probes — writing entry epochs there races
// with in-flight readers.
#include <cstdint>
#include <vector>

struct Tree {
  std::uint64_t NewTick();
  void EpochRangeSearch(int center, double eps, std::uint64_t tick);
  void RangeSearch(int center, double eps) const;
};

struct Clusterer {
  Tree tree_;

  int MsBfsStrided(const std::vector<int>& m_minus) {
    // VIOLATION: the strided rounds fan probes out to pool lanes; a tick
    // here mutates epoch state while concurrent readers may be in flight.
    const std::uint64_t tick = tree_.NewTick();
    for (int center : m_minus) {
      tree_.EpochRangeSearch(center, 1.0, tick);  // VIOLATION: epoch probe.
    }
    return 1;
  }

  void FanOutClusterProbes(const std::vector<int>& centers) {
    for (int center : centers) {
      SearchMarking(center, 0);  // VIOLATION: epoch-marking in the fan-out.
    }
  }

  void NeoDiscoveryWorker(int seed) {
    // VIOLATION: speculative discovery runs on worker lanes concurrently.
    tree_.EpochRangeSearch(seed, 1.0, 0);
  }

  void SearchMarking(int center, std::uint64_t tick);
};
