// Clean twin for the parallel-CLUSTER epoch-confinement pair: the strided
// MS-BFS, the cluster-probe fan-out, and the neo-discovery worker issue
// tick-free (const) probes only; epoch ticks stay on the legacy sequential
// traversals, which never overlap concurrent readers.
#include <cstdint>
#include <vector>

struct Tree {
  std::uint64_t NewTick();
  void EpochRangeSearch(int center, double eps, std::uint64_t tick);
  void RangeSearch(int center, double eps) const;
};

struct Clusterer {
  Tree tree_;

  int MsBfsInterleaved(const std::vector<int>& m_minus) {
    // Legacy sequential traversal: epoch probing is the point (Alg. 4).
    const std::uint64_t tick = tree_.NewTick();
    for (int center : m_minus) {
      tree_.EpochRangeSearch(center, 1.0, tick);
    }
    return 1;
  }

  int MsBfsStrided(const std::vector<int>& m_minus) {
    FanOutClusterProbes(m_minus);  // Tick-free rounds only.
    return 1;
  }

  void FanOutClusterProbes(const std::vector<int>& centers) {
    for (int center : centers) {
      tree_.RangeSearch(center, 1.0);  // Const probe: no epoch writes.
    }
  }

  void NeoDiscoveryWorker(int seed) {
    tree_.RangeSearch(seed, 1.0);  // Tick-free speculative discovery.
  }
};
