// Golden violation for the epoch-confinement rule: a tick mutation outside
// rtree.*, a NewTick taken inside the COLLECT stage, and an epoch-probed
// search issued from a ParallelFor body.
#include <cstdint>
#include <vector>

struct Tree {
  std::uint64_t tick_counter_ = 0;
  std::uint64_t NewTick();
  void EpochRangeSearch(int center, double eps, std::uint64_t tick);
};

struct Clusterer {
  Tree tree_;

  void BumpTick() {
    ++tree_.tick_counter_;  // VIOLATION: tick mutated outside rtree.*.
  }

  void Collect(const std::vector<int>& incoming) {
    const std::uint64_t tick = tree_.NewTick();  // VIOLATION: COLLECT stage.
    for (int center : incoming) {
      ParallelFor(nullptr, 4, [&](std::size_t, std::size_t) {
        tree_.EpochRangeSearch(center, 1.0, tick);  // VIOLATION: in lanes.
      });
    }
  }

  void DrainBatch(std::size_t lane) {
    // VIOLATION: a pool lane must never touch epoch state — every worker
    // thread executes this body concurrently.
    tree_.EpochRangeSearch(static_cast<int>(lane), 1.0, tree_.NewTick());
  }

  template <typename Fn>
  static void ParallelFor(void* pool, std::size_t n, const Fn& fn);
};
