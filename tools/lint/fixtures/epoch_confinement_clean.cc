// Clean twin for the epoch-confinement rule: ticks are taken on the
// sequential CLUSTER path only, never inside Collect/FanOutProbes or a
// ParallelFor body.
#include <cstdint>
#include <vector>

struct Tree {
  std::uint64_t NewTick();
  void EpochRangeSearch(int center, double eps, std::uint64_t tick);
};

struct Clusterer {
  Tree tree_;

  void ProcessExGroup(int seed) {
    const std::uint64_t tick = tree_.NewTick();  // CLUSTER path: allowed.
    tree_.EpochRangeSearch(seed, 1.0, tick);
  }

  void Collect(const std::vector<int>& incoming) {
    std::vector<int> hits;
    for (int center : incoming) hits.push_back(center);  // No epoch probes.
  }

  void DrainBatch(std::size_t lane) {
    (void)lane;  // Lanes run plain (non-epoch) probes only.
  }
};
