// Golden violation for the label-choke-point rule: this file defines a
// SetLabel choke point, so the direct .category/.cid writes in Promote must
// be flagged.
#include <cstdint>

struct Record {
  int category = 0;
  std::int64_t cid = -1;
};

struct Clusterer {
  void SetLabel(Record* rec, int category, std::int64_t cid) {
    rec->category = category;
    rec->cid = cid;
  }

  void Promote(Record& rec) {
    rec.category = 1;  // VIOLATION: bypasses SetLabel.
    rec.cid = 7;       // VIOLATION: bypasses SetLabel.
  }
};
