// Clean twin for the unordered-emit rule: the emitted vector is sorted
// before the function returns, so iteration order cannot leak.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Snapshot {
  std::vector<std::uint64_t> ids;
};

struct Clusterer {
  std::unordered_map<std::uint64_t, int> records_;

  Snapshot Emit() const {
    Snapshot snap;
    for (const auto& [id, rec] : records_) {
      snap.ids.push_back(id);
    }
    std::sort(snap.ids.begin(), snap.ids.end());
    return snap;
  }

  int Total() const {
    int total = 0;
    // Order-independent accumulation over an unordered container is fine:
    // the rule only fires when the loop body emits.
    for (const auto& [id, rec] : records_) total += rec;
    return total;
  }
};
