#!/usr/bin/env python3
"""disc_top: a terminal dashboard for the DISC telemetry plane.

Polls a running telemetry server (DiscEngine::ServeTelemetry or the
standalone obs::HttpServer, see docs/OBSERVABILITY.md) and renders a
top(1)-style view: engine totals from /metrics.json plus a per-session
table from /sessions with throughput and backlog derived between polls.

  tools/disc_top.py --url http://127.0.0.1:9464
  tools/disc_top.py --url http://127.0.0.1:9464 --interval 0.5
  tools/disc_top.py --url http://127.0.0.1:9464 --once   # one frame, no
                                                         # screen clearing

Columns:
  SESSION   session name (creation order, as /sessions reports it)
  WINDOW    configured window size in points
  SLIDES    slides run so far
  QUEUE     slides admitted but not yet drained (queue depth gauge)
  LAG       watermark lag in slides (0 = keeping up with the fastest
            session; persistent growth = this session is stalled)
  SLIDE/S   slides drained per second since the previous poll
  LAST MS   wall-clock latency of the most recent slide

A failed poll is retried with exponential backoff (0.5 s doubling to a
cap of 8 s) before giving up, so a daemon restart — or watching a node
come up — does not kill the dashboard. --retries N bounds the budget of
*consecutive* failures (default 5, 0 = fail fast); any successful poll
resets it.

Exit status: 0 on quit (Ctrl-C) or --once success, 1 when the endpoint
cannot be reached --retries + 1 times in a row.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def fetch_json(base_url, route):
    with urllib.request.urlopen(base_url + route, timeout=5) as response:
        return json.loads(response.read().decode("utf-8"))


def render(base_url, previous, now_s):
    """Fetches one frame; returns (lines, sessions_by_name, now_s)."""
    metrics = fetch_json(base_url, "/metrics.json")
    sessions = fetch_json(base_url, "/sessions")["sessions"]
    health = fetch_json(base_url, "/healthz")

    counters = metrics.get("counters", {})
    lines = []
    ready = "ready" if health.get("ready") else "NOT READY"
    lines.append(
        f"disc_top — {base_url}  [{ready}]  "
        f"slides={counters.get('engine_slides_total', 0)}  "
        f"drains={counters.get('engine_drains_total', 0)}  "
        f"sessions={len(sessions)}"
    )
    lines.append("")
    lines.append(
        f"{'SESSION':<18} {'WINDOW':>7} {'SLIDES':>7} {'QUEUE':>6} "
        f"{'LAG':>5} {'SLIDE/S':>8} {'LAST MS':>8}"
    )
    prev_sessions, prev_s = previous
    for row in sessions:
        name = row["name"]
        rate = ""
        if name in prev_sessions and now_s > prev_s:
            delta = row["slides_run"] - prev_sessions[name]["slides_run"]
            rate = f"{delta / (now_s - prev_s):.2f}"
        lines.append(
            f"{name:<18} {row['window_size']:>7} {row['slides_run']:>7} "
            f"{row['queue_depth']:>6} {row['watermark_lag_slides']:>5} "
            f"{rate:>8} {row['last_slide_ms']:>8.2f}"
        )
    if not sessions:
        lines.append("(no sessions — engine idle or telemetry serving a "
                     "standalone registry)")
    return lines, {row["name"]: row for row in sessions}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url",
        required=True,
        help="telemetry base URL, e.g. http://127.0.0.1:9464",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default 2)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=5,
        help="consecutive poll failures tolerated before exiting "
             "(default 5; 0 = fail on the first)",
    )
    args = parser.parse_args()
    base_url = args.url.rstrip("/")

    previous = ({}, 0.0)
    failures = 0
    backoff_s = 0.5
    try:
        while True:
            now_s = time.monotonic()
            try:
                lines, sessions, = render(base_url, previous, now_s)[:2]
            except (urllib.error.URLError, OSError, json.JSONDecodeError,
                    KeyError) as error:
                failures += 1
                if failures > args.retries:
                    print(f"disc_top: cannot poll {base_url}: {error}",
                          file=sys.stderr)
                    return 1
                print(
                    f"disc_top: poll failed ({failures}/{args.retries}: "
                    f"{error}); retrying in {backoff_s:.1f}s",
                    file=sys.stderr,
                )
                time.sleep(backoff_s)
                backoff_s = min(backoff_s * 2, 8.0)
                continue
            failures = 0
            backoff_s = 0.5
            if not args.once:
                sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            print("\n".join(lines), flush=True)
            if args.once:
                return 0
            previous = (sessions, now_s)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
