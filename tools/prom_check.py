#!/usr/bin/env python3
"""prom_check: structural validator for DISC Prometheus expositions.

Checks the text exposition produced by obs::MetricsRegistry::WritePrometheus
(and served at the telemetry plane's GET /metrics). Used by the
scripts/ci.sh telemetry smoke stage and usable standalone on a file or a
live endpoint:

  tools/prom_check.py /tmp/metrics.prom
  tools/prom_check.py --url http://127.0.0.1:9464/metrics --rescrape
  tools/prom_check.py --deterministic a.prom b.prom   # compare subsets

Exposition checks (each input):
  * every metric name matches [a-zA-Z_][a-zA-Z0-9_]*
  * every sample line belongs to a family announced by a preceding
    # TYPE line, and every # TYPE has a # HELP on the line before it
    (the registry always writes HELP then TYPE)
  * TYPE is one of counter|gauge|summary; sample values parse as
    floats; counter samples are non-negative
  * the registry writes three std::map-ordered sections — counters,
    gauges, summaries — so families must be strictly increasing within
    each type section (a shuffled section means hash-order leaked)
  * summary families carry quantile="0.5|0.95|0.99" samples with
    non-decreasing values, plus _sum/_count/_min/_max with _min <= _max

--rescrape (needs --url): scrapes twice and requires every counter to be
monotone non-decreasing between the two scrapes.

--deterministic: with two inputs, strips wall-clock families (any line
touching a `_ms` family — latency gauges and summaries, including their
HELP/TYPE and quantile/_sum/_count/_min/_max lines) and requires the
remaining subsets to be byte-identical. This is the same filter
tests/engine_test.cc applies when comparing exports across pool lane
counts.

Exit status: 0 all checks pass, 1 a check failed, 2 usage error.
"""

import argparse
import re
import sys
import urllib.request

NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_][a-zA-Z0-9_]*)(\{[^}]*\})?\s+(\S+)$")
VALID_TYPES = ("counter", "gauge", "summary")
SUMMARY_SUFFIXES = ("_sum", "_count", "_min", "_max")


def fail(message):
    print(f"prom_check: FAIL: {message}", file=sys.stderr)
    return 1


def family_of(sample_name, families):
    """Maps a sample line to its family: exact match first, then the
    summary suffixes (_sum/_count/_min/_max)."""
    if sample_name in families:
        return sample_name
    for suffix in SUMMARY_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return None


def parse_exposition(text, label):
    """Returns (families, errors). families: name -> {type, samples}
    where samples is a list of (sample_name, labels, value) in file order."""
    families = {}
    errors = []
    order = []
    prev_line = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"{label}:{lineno}"
        if not line.strip():
            prev_line = line
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3]:
                errors.append(f"{where}: HELP line has no text: {line!r}")
            prev_line = line
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                errors.append(f"{where}: malformed TYPE line: {line!r}")
                prev_line = line
                continue
            name, mtype = parts[2], parts[3]
            if not NAME_RE.match(name):
                errors.append(f"{where}: invalid family name {name!r}")
            if mtype not in VALID_TYPES:
                errors.append(f"{where}: unknown metric type {mtype!r}")
            if name in families:
                errors.append(f"{where}: duplicate TYPE for family {name!r}")
            if prev_line is None or not prev_line.startswith(f"# HELP {name} "):
                errors.append(
                    f"{where}: TYPE for {name!r} not preceded by its HELP line"
                )
            families[name] = {"type": mtype, "samples": []}
            order.append(name)
            prev_line = line
            continue
        if line.startswith("#"):
            prev_line = line
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{where}: unparseable sample line: {line!r}")
            prev_line = line
            continue
        sample_name, labels, raw_value = m.group(1), m.group(2) or "", m.group(3)
        if not NAME_RE.match(sample_name):
            errors.append(f"{where}: invalid sample name {sample_name!r}")
        try:
            value = float(raw_value)
        except ValueError:
            errors.append(f"{where}: non-numeric value {raw_value!r}")
            prev_line = line
            continue
        fam = family_of(sample_name, families)
        if fam is None:
            errors.append(
                f"{where}: sample {sample_name!r} has no preceding # TYPE"
            )
            prev_line = line
            continue
        families[fam]["samples"].append((sample_name, labels, value))
        if families[fam]["type"] == "counter" and value < 0:
            errors.append(f"{where}: counter {sample_name!r} is negative")
        prev_line = line

    # The registry writes three sorted sections: counters, then gauges,
    # then summaries. Within each section names must be strictly
    # increasing, and a later section must never precede an earlier one.
    section_rank = {"counter": 0, "gauge": 1, "summary": 2}
    prev_rank, prev_name = -1, ""
    for name in order:
        rank = section_rank.get(families[name]["type"], 99)
        if rank < prev_rank:
            errors.append(
                f"{label}: {families[name]['type']} family {name!r} appears "
                f"after a later section (section order broken)"
            )
            break
        if rank == prev_rank and not prev_name < name:
            errors.append(
                f"{label}: family order not strictly increasing within the "
                f"{families[name]['type']} section: {prev_name!r} then "
                f"{name!r} (hash-order leak?)"
            )
            break
        prev_rank, prev_name = rank, name
    return families, errors


def check_summaries(families, label):
    errors = []
    for name, fam in families.items():
        if fam["type"] != "summary":
            continue
        by_name = {}
        quantiles = []
        for sample_name, labels, value in fam["samples"]:
            if sample_name == name and labels.startswith('{quantile="'):
                quantiles.append(value)
            else:
                by_name[sample_name] = value
        if len(quantiles) != 3:
            errors.append(
                f"{label}: summary {name!r} has {len(quantiles)} quantile "
                f"samples, want 3 (0.5/0.95/0.99)"
            )
        elif not quantiles[0] <= quantiles[1] <= quantiles[2]:
            errors.append(f"{label}: summary {name!r} quantiles decrease")
        for suffix in SUMMARY_SUFFIXES:
            if name + suffix not in by_name:
                errors.append(f"{label}: summary {name!r} missing {suffix}")
        low, high = by_name.get(name + "_min"), by_name.get(name + "_max")
        if low is not None and high is not None and low > high:
            errors.append(f"{label}: summary {name!r} has _min > _max")
    return errors


def deterministic_subset(text):
    """The run-invariant subset: drop every line touching a `_ms` family
    (wall-clock gauges and latency summaries, including their HELP/TYPE
    and quantile/_sum/_count/_min/_max sample lines)."""
    drop_re = re.compile(r"_ms(_sum|_count|_min|_max)?[ {]")
    return "\n".join(
        line for line in text.splitlines() if not drop_re.search(line + " ")
    )


def read_input(source):
    if source.startswith("http://") or source.startswith("https://"):
        with urllib.request.urlopen(source, timeout=10) as response:
            return response.read().decode("utf-8")
    with open(source, "r", encoding="utf-8") as handle:
        return handle.read()


def counters_of(families):
    out = {}
    for name, fam in families.items():
        if fam["type"] == "counter":
            for sample_name, labels, value in fam["samples"]:
                out[sample_name + labels] = value
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="*", help="exposition file(s) or URL(s)")
    parser.add_argument("--url", help="live /metrics endpoint to scrape")
    parser.add_argument(
        "--rescrape",
        action="store_true",
        help="scrape --url twice; counters must be monotone non-decreasing",
    )
    parser.add_argument(
        "--deterministic",
        action="store_true",
        help="with two inputs: _ms-filtered subsets must be byte-identical",
    )
    args = parser.parse_args()

    sources = list(args.inputs)
    if args.url:
        sources.append(args.url)
    if not sources:
        parser.error("no input: pass a file, a URL, or --url")
    if args.rescrape and not args.url:
        parser.error("--rescrape needs --url")
    if args.deterministic and len(sources) != 2:
        parser.error("--deterministic needs exactly two inputs")

    status = 0
    parsed = []
    for source in sources:
        try:
            text = read_input(source)
        except OSError as error:
            return fail(f"cannot read {source}: {error}")
        families, errors = parse_exposition(text, source)
        errors += check_summaries(families, source)
        for error in errors:
            status = fail(error)
        if not families:
            status = fail(f"{source}: no metric families found")
        parsed.append((source, text, families))
        print(
            f"prom_check: {source}: {len(families)} families, "
            f"{sum(len(f['samples']) for f in families.values())} samples"
        )

    if args.rescrape:
        first = counters_of(parsed[-1][2])
        try:
            text2 = read_input(args.url)
        except OSError as error:
            return fail(f"cannot re-scrape {args.url}: {error}")
        families2, errors2 = parse_exposition(text2, args.url + " (rescrape)")
        for error in errors2:
            status = fail(error)
        second = counters_of(families2)
        for key, value in first.items():
            if key not in second:
                status = fail(f"counter {key!r} vanished on re-scrape")
            elif second[key] < value:
                status = fail(
                    f"counter {key!r} went backwards: {value} -> {second[key]}"
                )
        print(f"prom_check: re-scrape monotone over {len(first)} counters")

    if args.deterministic:
        a = deterministic_subset(parsed[0][1])
        b = deterministic_subset(parsed[1][1])
        if a != b:
            status = fail(
                f"deterministic subsets differ between {parsed[0][0]} "
                f"and {parsed[1][0]}"
            )
        else:
            print("prom_check: deterministic subsets byte-identical")

    if status == 0:
        print("prom_check: OK")
    return status


if __name__ == "__main__":
    sys.exit(main())
