#include "baselines/graph_disc.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "common/timer.h"

namespace disc {

GraphDisc::GraphDisc(std::uint32_t dims, const DiscConfig& config)
    : config_(config), tree_(dims, config.rtree_max_entries) {}

GraphDisc::Record& GraphDisc::GetRecord(PointId id) {
  auto it = records_.find(id);
  assert(it != records_.end());
  return it->second;
}

void GraphDisc::AddRecheck(PointId id, Record* rec) {
  if (rec->recheck_serial == update_serial_) return;
  rec->recheck_serial = update_serial_;
  recheck_.push_back(id);
}

void GraphDisc::SetLabel(PointId id, Record* rec, Category category,
                         ClusterId cid) {
  if (rec->category == category && rec->cid == cid) return;
  rec->category = category;
  rec->cid = cid;
  if (rec->delta_serial != update_serial_) {
    rec->delta_serial = update_serial_;
    delta_.relabeled.push_back(id);
  }
}

// ---------------------------------------------------------------------------
// COLLECT over the materialized graph
// ---------------------------------------------------------------------------

void GraphDisc::Collect(const std::vector<Point>& incoming,
                        const std::vector<Point>& outgoing,
                        std::vector<PointId>* ex_cores,
                        std::vector<PointId>* neo_cores) {
  const std::uint64_t touch_serial = ++search_serial_;
  auto touch = [&](PointId id, Record* rec) {
    if (rec->visit_serial == touch_serial) return;
    rec->visit_serial = touch_serial;
    touched_.push_back(id);
  };

  for (const Point& p : outgoing) {
    auto it = records_.find(p.id);
    assert(it != records_.end());
    if (it == records_.end()) continue;
    Record& rec = it->second;
    // Unlink p from every live neighbor — the O(deg^2) maintenance the
    // paper's Sec. IV warns about (each unlink scans the neighbor's list).
    // Tombstone lists are left intact: the retro-reachability traversal
    // still needs the full adjacency among exited ex-cores.
    for (PointId qid : rec.neighbors) {
      auto qit = records_.find(qid);
      if (qit == records_.end()) continue;
      Record& q = qit->second;
      if (q.deleted) continue;
      auto pos = std::find(q.neighbors.begin(), q.neighbors.end(), p.id);
      if (pos != q.neighbors.end()) {
        *pos = q.neighbors.back();
        q.neighbors.pop_back();
        --total_directed_edges_;
        touch(qid, &q);
      }
    }
    total_directed_edges_ -= rec.neighbors.size();
    tree_.Delete(rec.pt);
    rec.deleted = true;
    touch(p.id, &rec);
    delta_.exited.push_back(p.id);
  }

  for (const Point& p : incoming) {
    if (!IsValidPoint(p) || p.dims != tree_.dims()) {
      assert(false && "invalid incoming point");
      continue;
    }
    auto [it, inserted] = records_.emplace(p.id, Record{});
    assert(inserted);
    if (!inserted) continue;
    Record& rec = it->second;
    rec.pt = p;
    rec.delta_serial = update_serial_;  // Listed in `entered`, not `relabeled`.
    delta_.entered.push_back(p.id);
    tree_.Insert(p);
    tree_.RangeSearch(p, config_.eps, [&](PointId qid, const Point&) {
      if (qid == p.id) return;
      Record& q = GetRecord(qid);
      if (q.deleted) return;
      rec.neighbors.push_back(qid);
      q.neighbors.push_back(p.id);
      total_directed_edges_ += 2;
      touch(qid, &q);
    });
    touch(p.id, &rec);
    AddRecheck(p.id, &rec);
  }

  for (PointId id : touched_) {
    Record& rec = GetRecord(id);
    if (IsExCore(rec)) {
      ex_cores->push_back(id);
    } else if (IsNeoCore(rec)) {
      neo_cores->push_back(id);
    }
  }
}

// ---------------------------------------------------------------------------
// CLUSTER over the materialized graph (no index probes at all)
// ---------------------------------------------------------------------------

void GraphDisc::ProcessExCores(const std::vector<PointId>& ex_cores) {
  std::unordered_map<ClusterId, std::vector<PointId>> pools;
  std::vector<ClusterId> pool_order;
  for (PointId id : ex_cores) {
    Record& rec = GetRecord(id);
    if (rec.group_serial == update_serial_) continue;
    CollectGroup(id, &pools, &pool_order);
  }
  for (ClusterId old_cid : pool_order) {
    std::vector<PointId>& members = pools[old_cid];
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    if (members.empty()) continue;  // Dissipated.
    MsBfs(members);
  }
}

void GraphDisc::CollectGroup(
    PointId seed, std::unordered_map<ClusterId, std::vector<PointId>>* pools,
    std::vector<ClusterId>* pool_order) {
  const std::uint64_t serial = ++search_serial_;
  Record& seed_rec = GetRecord(seed);
  const ClusterId old_cid = registry_.Find(seed_rec.cid);
  seed_rec.visit_serial = serial;
  std::deque<PointId> queue;
  std::vector<PointId> m_minus;
  queue.push_back(seed);
  while (!queue.empty()) {
    const PointId rid = queue.front();
    queue.pop_front();
    Record& r = GetRecord(rid);
    r.group_serial = update_serial_;
    if (!r.deleted) AddRecheck(rid, &r);
    for (PointId qid : r.neighbors) {
      auto qit = records_.find(qid);
      if (qit == records_.end()) continue;
      Record& q = qit->second;
      if (q.visit_serial == serial) continue;
      if (IsExCore(q)) {
        q.visit_serial = serial;
        queue.push_back(qid);
        continue;
      }
      if (q.deleted) continue;
      if (IsCoreNow(q)) {
        if (q.core_prev) {
          q.visit_serial = serial;
          m_minus.push_back(qid);
        }
        continue;
      }
      AddRecheck(qid, &q);
    }
  }
  auto [it, inserted] = pools->emplace(old_cid, std::vector<PointId>{});
  if (inserted) pool_order->push_back(old_cid);
  it->second.insert(it->second.end(), m_minus.begin(), m_minus.end());
}

void GraphDisc::MsBfs(const std::vector<PointId>& m_minus) {
  const std::uint64_t serial = ++search_serial_;
  const std::size_t k = m_minus.size();

  std::vector<std::uint32_t> parent(k);
  for (std::size_t i = 0; i < k; ++i) parent[i] = static_cast<std::uint32_t>(i);
  auto find_root = [&](std::uint32_t i) {
    std::uint32_t root = i;
    while (parent[root] != root) root = parent[root];
    while (parent[i] != root) {
      const std::uint32_t next = parent[i];
      parent[i] = root;
      i = next;
    }
    return root;
  };

  struct Thread {
    std::deque<PointId> queue;
    std::vector<PointId> cores;
    std::vector<PointId> borders;
  };
  std::vector<Thread> threads(k);
  for (std::size_t i = 0; i < k; ++i) {
    Record& rec = GetRecord(m_minus[i]);
    rec.visit_serial = serial;
    rec.owner = static_cast<std::uint32_t>(i);
    threads[i].queue.push_back(m_minus[i]);
    threads[i].cores.push_back(m_minus[i]);
  }

  std::size_t active_count = k;
  auto merge_threads = [&](std::uint32_t a, std::uint32_t b) {
    if (threads[a].queue.size() < threads[b].queue.size()) std::swap(a, b);
    Thread& ta = threads[a];
    Thread& tb = threads[b];
    ta.queue.insert(ta.queue.end(), tb.queue.begin(), tb.queue.end());
    ta.cores.insert(ta.cores.end(), tb.cores.begin(), tb.cores.end());
    ta.borders.insert(ta.borders.end(), tb.borders.begin(), tb.borders.end());
    tb = Thread{};
    parent[b] = a;
    --active_count;
  };

  std::vector<std::uint32_t> active;
  active.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    active.push_back(static_cast<std::uint32_t>(i));
  }

  while (active_count > 1) {
    for (std::size_t idx = 0; idx < active.size() && active_count > 1;) {
      const std::uint32_t root = active[idx];
      if (find_root(root) != root) {
        active[idx] = active.back();
        active.pop_back();
        continue;
      }
      Thread& th = threads[root];
      if (th.queue.empty()) {
        const ClusterId fresh = registry_.NewCluster();
        for (PointId cp : th.cores) {
          Record& rc = GetRecord(cp);
          SetLabel(cp, &rc, Category::kCore, fresh);
          rc.relabel_serial = update_serial_;
        }
        for (PointId bp : th.borders) {
          Record& rb = GetRecord(bp);
          if (rb.deleted || IsCoreNow(rb)) continue;
          SetLabel(bp, &rb, Category::kBorder, fresh);
          rb.relabel_serial = update_serial_;
        }
        --active_count;
        active[idx] = active.back();
        active.pop_back();
        continue;
      }
      const PointId rid = th.queue.front();
      th.queue.pop_front();
      const Record& r = GetRecord(rid);
      for (PointId qid : r.neighbors) {
        auto qit = records_.find(qid);
        if (qit == records_.end()) continue;
        Record& q = qit->second;
        if (q.deleted) continue;
        if (IsCoreNow(q)) {
          const std::uint32_t mine = find_root(root);
          if (q.visit_serial != serial) {
            q.visit_serial = serial;
            q.owner = mine;
            threads[mine].queue.push_back(qid);
            threads[mine].cores.push_back(qid);
          } else {
            const std::uint32_t other = find_root(q.owner);
            if (other != mine) merge_threads(mine, other);
          }
          continue;
        }
        if (q.visit_serial != serial) {
          q.visit_serial = serial;
          threads[find_root(root)].borders.push_back(qid);
        }
      }
      ++idx;
    }
  }
}

void GraphDisc::ProcessNeoCores(const std::vector<PointId>& neo_cores) {
  for (PointId id : neo_cores) {
    Record& rec = GetRecord(id);
    if (rec.group_serial == update_serial_) continue;
    ProcessNeoGroup(id);
  }
}

void GraphDisc::ProcessNeoGroup(PointId seed) {
  const std::uint64_t serial = ++search_serial_;
  GetRecord(seed).visit_serial = serial;
  std::deque<PointId> queue;
  std::vector<PointId> group;
  std::vector<PointId> borders;
  std::vector<ClusterId> cid_list;
  queue.push_back(seed);
  group.push_back(seed);
  while (!queue.empty()) {
    const PointId rid = queue.front();
    queue.pop_front();
    Record& r = GetRecord(rid);
    r.group_serial = update_serial_;
    for (PointId qid : r.neighbors) {
      auto qit = records_.find(qid);
      if (qit == records_.end()) continue;
      Record& q = qit->second;
      if (q.deleted || q.visit_serial == serial) continue;
      q.visit_serial = serial;
      if (IsCoreNow(q)) {
        if (IsNeoCore(q)) {
          queue.push_back(qid);
          group.push_back(qid);
        } else {
          const ClusterId c = registry_.Find(q.cid);
          if (std::find(cid_list.begin(), cid_list.end(), c) ==
              cid_list.end()) {
            cid_list.push_back(c);
          }
        }
      } else {
        borders.push_back(qid);
      }
    }
  }
  ClusterId g;
  if (cid_list.empty()) {
    g = registry_.NewCluster();
  } else {
    g = cid_list[0];
    for (std::size_t i = 1; i < cid_list.size(); ++i) {
      g = registry_.Union(g, cid_list[i]);
    }
  }
  for (PointId mp : group) {
    Record& rm = GetRecord(mp);
    SetLabel(mp, &rm, Category::kCore, g);
    rm.relabel_serial = update_serial_;
  }
  for (PointId bp : borders) {
    Record& rb = GetRecord(bp);
    if (rb.deleted || IsCoreNow(rb)) continue;
    SetLabel(bp, &rb, Category::kBorder, g);
    rb.relabel_serial = update_serial_;
  }
}

void GraphDisc::RecheckNonCores() {
  for (PointId id : recheck_) {
    auto it = records_.find(id);
    if (it == records_.end()) continue;
    Record& rec = it->second;
    if (rec.deleted || IsCoreNow(rec)) continue;
    if (rec.relabel_serial == update_serial_) continue;
    // A list scan replaces the range search — free adjacency, the variant's
    // whole appeal.
    bool found = false;
    ClusterId found_cid = kNoiseCluster;
    for (PointId qid : rec.neighbors) {
      auto qit = records_.find(qid);
      if (qit == records_.end()) continue;
      const Record& q = qit->second;
      if (!q.deleted && IsCoreNow(q)) {
        found = true;
        found_cid = q.cid;
        break;
      }
    }
    if (found) {
      SetLabel(id, &rec, Category::kBorder, found_cid);
    } else {
      SetLabel(id, &rec, Category::kNoise, kNoiseCluster);
    }
  }
}

// ---------------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------------

const UpdateDelta& GraphDisc::Update(const std::vector<Point>& incoming,
                                     const std::vector<Point>& outgoing) {
  ++update_serial_;
  delta_.Clear();
  recheck_.clear();
  touched_.clear();
  const RTreeStats before = tree_.stats();
  last_timings_ = PhaseTimings{};

  std::vector<PointId> ex_cores;
  std::vector<PointId> neo_cores;
  Timer phase_timer;
  Collect(incoming, outgoing, &ex_cores, &neo_cores);
  last_timings_.collect_ms = phase_timer.ElapsedMillis();
  phase_timer.Reset();
  ProcessExCores(ex_cores);
  last_timings_.ex_phase_ms = phase_timer.ElapsedMillis();
  phase_timer.Reset();
  ProcessNeoCores(neo_cores);
  last_timings_.neo_phase_ms = phase_timer.ElapsedMillis();
  phase_timer.Reset();
  RecheckNonCores();
  last_timings_.recheck_ms = phase_timer.ElapsedMillis();

  for (PointId id : touched_) {
    auto it = records_.find(id);
    if (it == records_.end()) continue;
    Record& rec = it->second;
    if (rec.deleted) {
      records_.erase(it);
      continue;
    }
    rec.core_prev = NEps(rec) >= config_.tau;
  }
  const RTreeStats& after = tree_.stats();
  last_searches_ = after.range_searches - before.range_searches;
  last_probes_.range_searches = last_searches_;
  last_probes_.nodes_visited = after.nodes_visited - before.nodes_visited;
  last_probes_.entries_checked =
      after.entries_checked - before.entries_checked;
  last_probes_.leaf_entries_tested =
      after.leaf_entries_tested - before.leaf_entries_tested;
  last_probes_.epoch_pruned = after.epoch_pruned - before.epoch_pruned;
  return delta_;
}

ClusteringSnapshot GraphDisc::Snapshot() const {
  ClusteringSnapshot snap;
  snap.ids.reserve(records_.size());
  snap.categories.reserve(records_.size());
  snap.cids.reserve(records_.size());
  for (const auto& [id, rec] : records_) {
    snap.ids.push_back(id);
    snap.categories.push_back(rec.category);
    snap.cids.push_back(rec.category == Category::kNoise
                            ? kNoiseCluster
                            : static_cast<const ClusterRegistry&>(registry_)
                                  .Find(rec.cid));
  }
  // Hash-ordered fill above; emit id-sorted (see ClusteringSnapshot).
  snap.SortById();
  return snap;
}

std::size_t GraphDisc::ApproxMemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& [id, rec] : records_) {
    bytes += sizeof(Record) + rec.neighbors.capacity() * sizeof(PointId);
  }
  return bytes;
}

}  // namespace disc
