#ifndef DISC_BASELINES_DBSCAN_H_
#define DISC_BASELINES_DBSCAN_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "index/rtree.h"
#include "stream/stream_clusterer.h"

namespace disc {

// Result of a from-scratch DBSCAN run over a static point set.
struct DbscanResult {
  ClusteringSnapshot snapshot;
  std::uint64_t range_searches = 0;
};

// Classic DBSCAN (Ester et al. '96) over a point set, using the provided
// R-tree fanout for the neighborhood index. A point is a core iff its
// eps-ball (including itself) holds at least tau points. This is the
// reference implementation the tests and the ARI truth labels use.
DbscanResult RunDbscan(const std::vector<Point>& points, double eps,
                       std::uint32_t tau, int rtree_max_entries = 16);

// DBSCAN as a windowed baseline: maintains the window points and an R-tree
// incrementally, and re-runs the full clustering from scratch on every slide
// — the paper's baseline whose cost is independent of the stride size.
class DbscanClusterer : public StreamClusterer {
 public:
  DbscanClusterer(std::uint32_t dims, double eps, std::uint32_t tau,
                  int rtree_max_entries = 16);

  const UpdateDelta& Update(const std::vector<Point>& incoming,
                            const std::vector<Point>& outgoing) override;
  ClusteringSnapshot Snapshot() const override { return snapshot_; }
  std::string name() const override { return "DBSCAN"; }

  // Range searches issued by the most recent Update (index maintenance
  // searches are zero for DBSCAN; everything happens in the clustering pass).
  std::uint64_t last_range_searches() const { return last_searches_; }

 private:
  void Recluster();

  double eps_;
  std::uint32_t tau_;
  RTree tree_;
  std::unordered_map<PointId, Point> window_;
  ClusteringSnapshot snapshot_;
  std::uint64_t last_searches_ = 0;
};

}  // namespace disc

#endif  // DISC_BASELINES_DBSCAN_H_
