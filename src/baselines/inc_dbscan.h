#ifndef DISC_BASELINES_INC_DBSCAN_H_
#define DISC_BASELINES_INC_DBSCAN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/cluster_registry.h"
#include "core/config.h"
#include "index/rtree.h"
#include "stream/stream_clusterer.h"

namespace disc {

// Incremental DBSCAN (Ester et al., VLDB '98): updates clusters one inserted
// or deleted point at a time. An insertion examines the cores that newly
// appear in the affected neighborhood (UpdSeed) to decide creation /
// absorption / merge; a deletion examines the cores that vanish and runs a
// density-connectedness check over the surviving cores around them to decide
// shrink / split / dissipation.
//
// As in the paper's evaluation, the implementation runs "with MS-BFS in its
// own favor": deletion-time connectivity checks use the Multi-Starter BFS and
// epoch-based index probing from DISC (both toggleable through DiscConfig).
// The crucial difference from DISC remains: every deleted point triggers its
// own connectivity check, where DISC consolidates all ex-cores of a slide
// into retro-reachable groups first.
//
// The clustering — borders included — is brought up to date after every
// single operation, which is IncDBSCAN's contract (and precisely the per-op
// redundancy DISC avoids). The final labeling is exactly DBSCAN's.
class IncDbscan : public StreamClusterer {
 public:
  IncDbscan(std::uint32_t dims, const DiscConfig& config);

  const UpdateDelta& Update(const std::vector<Point>& incoming,
                            const std::vector<Point>& outgoing) override;
  ClusteringSnapshot Snapshot() const override;
  std::string name() const override { return "IncDBSCAN"; }
  // Per-op deletions map to ex_phase_ms, insertions to neo_phase_ms, and the
  // per-op border relabeling to recheck_ms — the closest analogue of DISC's
  // phases, making per-phase comparisons in SlideReport meaningful.
  PhaseTimings LastPhaseTimings() const override { return last_timings_; }
  ProbeCounters LastProbeCounters() const override { return last_probes_; }

  const DiscConfig& config() const { return config_; }
  std::size_t window_size() const { return records_.size(); }

  // Range searches issued by the most recent Update.
  std::uint64_t last_range_searches() const { return last_searches_; }

 private:
  struct Record {
    Point pt;
    std::uint32_t n_eps = 0;
    Category category = Category::kNoise;
    ClusterId cid = kNoiseCluster;
    std::uint64_t visit_serial = 0;
    std::uint32_t owner = 0;
    std::uint64_t recheck_serial = 0;
    std::uint64_t witness_serial = 0;
    PointId witness = 0;
    std::uint64_t delta_serial = 0;  // Already listed in this batch's delta.
  };

  bool IsCore(const Record& r) const { return r.n_eps >= config_.tau; }

  void InsertOne(const Point& p);
  void DeleteOne(const Point& p);

  // MS-BFS (or sequential BFS) split check over the still-cores adjacent to
  // the cores lost by one deletion. Relabels detached components.
  void CheckSplit(const std::vector<PointId>& seeds);
  int MsBfs(const std::vector<PointId>& seeds);
  int SequentialBfs(const std::vector<PointId>& seeds);

  void AddRecheck(PointId id, Record* rec);
  void RecheckNonCores();

  // Single choke point for label writes; feeds delta_.relabeled, deduplicated
  // per Update batch (op_serial_ ticks per operation, so a separate serial).
  void SetLabel(PointId id, Record* rec, Category category, ClusterId cid);

  void SearchMarking(const Point& center, std::uint64_t tick,
                     const RTree::MarkingVisitor& visit);

  Record& GetRecord(PointId id);

  DiscConfig config_;
  RTree tree_;
  std::unordered_map<PointId, Record> records_;
  ClusterRegistry registry_;

  std::uint64_t op_serial_ = 0;      // Increments per operation.
  std::uint64_t batch_serial_ = 0;   // Increments per Update batch.
  std::uint64_t search_serial_ = 0;  // Increments per traversal.
  std::vector<PointId> recheck_;
  std::uint64_t last_searches_ = 0;
  PhaseTimings last_timings_;
  ProbeCounters last_probes_;
};

}  // namespace disc

#endif  // DISC_BASELINES_INC_DBSCAN_H_
