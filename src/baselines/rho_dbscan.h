#ifndef DISC_BASELINES_RHO_DBSCAN_H_
#define DISC_BASELINES_RHO_DBSCAN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/grid_index.h"
#include "stream/stream_clusterer.h"

namespace disc {

// rho-double-approximate DBSCAN (Gan & Tao, SIGMOD '15/'17): the dynamic
// grid-based approximate clusterer the paper compares against in Sec. VI-E.
//
// Space is partitioned into cells of side eps/sqrt(d), so any two points in
// one cell are eps-neighbors. Core status uses the grid: a cell holding at
// least tau points makes all of its points cores outright; points in sparse
// cells count exact neighbors over the surrounding cells (early exit at
// tau). Connectivity is approximate: two core cells are linked when some
// pair of their cores lies within eps*(1+rho) — pairs in (eps, eps*(1+rho)]
// may or may not be linked, which is exactly the rho-approximation
// guarantee. Clusters are connected components of core cells.
//
// Costs scale with the number of occupied cells, i.e., with 1/eps^d: at the
// small eps needed for high-resolution clusters the method slows down
// drastically (Fig. 11), while at very large eps it beats exact methods —
// after the clustering has already degenerated into one giant cluster.
//
// Dynamic-maintenance fidelity: the original maintains an approximate
// bichromatic closest pair (aBCP) per pair of nearby core cells, updated on
// every insertion/deletion at an amortized cost of O((1/rho)^(d-1)) — the
// term that makes high-accuracy (small rho) configurations expensive. We do
// not reimplement the aBCP structures; instead every update performs the
// equivalent amount of distance work per affected cell pair
// (min(|c1|*|c2|, ceil(1/rho)^(d-1)) point-pair evaluations), so the
// latency behaves like the published algorithm's.
class RhoDbscan : public StreamClusterer {
 public:
  struct Options {
    double eps = 1.0;
    std::uint32_t tau = 5;
    double rho = 0.001;  // Approximation parameter.
  };

  RhoDbscan(std::uint32_t dims, const Options& options);

  const UpdateDelta& Update(const std::vector<Point>& incoming,
                            const std::vector<Point>& outgoing) override;
  ClusteringSnapshot Snapshot() const override;
  std::string name() const override;

  const Options& options() const { return options_; }

 private:
  struct CellState {
    std::vector<std::uint8_t> is_core;  // Parallel to the cell's point list.
    std::int64_t cluster = -1;
    bool has_core = false;
  };

  void Recluster();
  void MaintainAbcp(const Point& p);

  std::uint32_t dims_;
  Options options_;
  GridIndex grid_;
  std::int64_t cell_radius_;    // Chebyshev cell radius covering eps.
  std::size_t abcp_budget_;     // ceil(1/rho)^(d-1), capped.
  double abcp_sink_ = 0.0;      // Keeps the emulated work observable.
  std::unordered_map<CellCoord, CellState, CellCoordHash> state_;
  ClusteringSnapshot prev_snapshot_;  // For relabel diffing across slides.
};

}  // namespace disc

#endif  // DISC_BASELINES_RHO_DBSCAN_H_
