#include "baselines/extra_n.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "common/timer.h"

namespace disc {

ExtraN::ExtraN(std::uint32_t dims, double eps, std::uint32_t tau,
               std::size_t window_size, std::size_t stride,
               int rtree_max_entries)
    : eps_(eps),
      tau_(tau),
      num_views_((window_size + stride - 1) / stride),
      tree_(dims, rtree_max_entries) {
  assert(stride >= 1 && stride <= window_size);
  assert(window_size % stride == 0 && "EXTRA-N requires aligned sub-windows");
}

const UpdateDelta& ExtraN::Update(const std::vector<Point>& incoming,
                                  const std::vector<Point>& outgoing) {
  delta_.Clear();
  ++current_slide_;
  const RTreeStats before = tree_.stats();
  last_timings_ = PhaseTimings{};
  Timer phase_timer;

  // Expiry is free: no index probes, just bookkeeping. This is the whole
  // point of the predicted views.
  for (const Point& p : outgoing) {
    auto it = records_.find(p.id);
    if (it == records_.end()) continue;
    tree_.Delete(it->second.pt);
    records_.erase(it);
    delta_.exited.push_back(p.id);
  }

  for (const Point& p : incoming) {
    auto [it, inserted] = records_.emplace(p.id, Record{});
    assert(inserted);
    if (!inserted) continue;
    delta_.entered.push_back(p.id);
    Record& rec = it->second;
    rec.pt = p;
    rec.arrival_slide = current_slide_;
    rec.view_counts.assign(num_views_, 1);  // Self in every lived-in window.
    tree_.Insert(p);
    tree_.RangeSearch(p, eps_, [&](PointId qid, const Point&) {
      if (qid == p.id) return;
      Record& q = records_.at(qid);
      // Both alive in windows [p.arrival, q.arrival + num_views): increment
      // the overlapped predicted views of each side.
      const std::uint64_t last_shared = q.arrival_slide + num_views_;  // Excl.
      for (std::uint64_t s = rec.arrival_slide; s < last_shared; ++s) {
        ++q.view_counts[s - q.arrival_slide];
        if (s - rec.arrival_slide < num_views_) {
          ++rec.view_counts[s - rec.arrival_slide];
        }
      }
      q.neighbors.push_back(p.id);
      rec.neighbors.push_back(qid);
    });
  }
  last_timings_.collect_ms = phase_timer.ElapsedMillis();
  const RTreeStats& after = tree_.stats();
  last_searches_ = after.range_searches - before.range_searches;
  last_probes_.range_searches = last_searches_;
  last_probes_.nodes_visited = after.nodes_visited - before.nodes_visited;
  last_probes_.entries_checked =
      after.entries_checked - before.entries_checked;
  last_probes_.leaf_entries_tested =
      after.leaf_entries_tested - before.leaf_entries_tested;
  last_probes_.epoch_pruned = after.epoch_pruned - before.epoch_pruned;
  // Extraction assigns fresh cluster ids each slide; recover the relabel set
  // by diffing the labelings up to a bijective renaming.
  const ClusteringSnapshot previous = std::move(snapshot_);
  phase_timer.Reset();
  Recluster();
  last_timings_.neo_phase_ms = phase_timer.ElapsedMillis();
  phase_timer.Reset();
  DiffLabelings(previous, snapshot_, &delta_);
  last_timings_.recheck_ms = phase_timer.ElapsedMillis();
  return delta_;
}

void ExtraN::Recluster() {
  // DBSCAN-equivalent extraction over the materialized neighbor graph; core
  // status comes straight out of the current predicted view.
  std::unordered_map<PointId, ClusterId> cid;
  std::unordered_map<PointId, Category> cat;
  cid.reserve(records_.size());
  cat.reserve(records_.size());

  auto is_core = [&](const Record& r) {
    const std::uint64_t view = current_slide_ - r.arrival_slide;
    assert(view < num_views_);
    return r.view_counts[view] >= tau_;
  };

  // Seed the expansions in ascending id order: cluster-id assignment and
  // border ties follow seed order, so iterating the hash table here would
  // leak its ordering into the labeling (and through DiffLabelings into the
  // reported delta).
  std::vector<PointId> sorted_ids;
  sorted_ids.reserve(records_.size());
  for (const auto& [id, rec] : records_) sorted_ids.push_back(id);
  std::sort(sorted_ids.begin(), sorted_ids.end());

  ClusterId next_cid = 0;
  std::deque<PointId> queue;
  for (PointId id : sorted_ids) {
    Record& rec = records_.at(id);
    if (!is_core(rec)) continue;
    if (cat.count(id) > 0) continue;
    const ClusterId c = next_cid++;
    cat[id] = Category::kCore;
    cid[id] = c;
    queue.clear();
    queue.push_back(id);
    while (!queue.empty()) {
      const PointId rid = queue.front();
      queue.pop_front();
      const Record& r = records_.at(rid);
      for (PointId qid : r.neighbors) {
        auto qit = records_.find(qid);
        if (qit == records_.end()) continue;  // Expired neighbor.
        if (is_core(qit->second)) {
          auto [cit, fresh] = cat.emplace(qid, Category::kCore);
          if (fresh) {
            cid[qid] = c;
            queue.push_back(qid);
          }
        } else {
          auto [cit, fresh] = cat.emplace(qid, Category::kBorder);
          if (fresh) cid[qid] = c;
        }
      }
    }
  }

  snapshot_ = ClusteringSnapshot{};
  snapshot_.ids.reserve(records_.size());
  snapshot_.categories.reserve(records_.size());
  snapshot_.cids.reserve(records_.size());
  for (PointId id : sorted_ids) {
    snapshot_.ids.push_back(id);
    auto it = cat.find(id);
    if (it == cat.end()) {
      snapshot_.categories.push_back(Category::kNoise);
      snapshot_.cids.push_back(kNoiseCluster);
    } else {
      snapshot_.categories.push_back(it->second);
      snapshot_.cids.push_back(cid.at(id));
    }
  }
}

std::size_t ExtraN::ApproxMemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& [id, rec] : records_) {
    bytes += sizeof(Record);
    bytes += rec.view_counts.capacity() * sizeof(std::uint32_t);
    bytes += rec.neighbors.capacity() * sizeof(PointId);
  }
  return bytes;
}

}  // namespace disc
