#ifndef DISC_BASELINES_GRAPH_DISC_H_
#define DISC_BASELINES_GRAPH_DISC_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/cluster_registry.h"
#include "core/config.h"
#include "index/rtree.h"
#include "stream/stream_clusterer.h"

namespace disc {

// The road not taken in the paper (Sec. IV): a DISC variant that
// *materializes* the eps-neighbor relation as adjacency lists instead of
// re-probing the R-tree. Every reachability question then becomes a list
// traversal — no range searches at all during CLUSTER, and none for
// deletions either (the lists already know the neighbors). The price is
// exactly what the paper warns about: maintaining the graph costs O(deg^2)
// per update in dense neighborhoods and O(sum of degrees) memory, which
// explodes as eps grows.
//
// The clustering logic mirrors Disc (ex-core pooling per previous cluster,
// MS-BFS with early exit, neo-core label inspection, border recheck) so the
// two are directly comparable; see bench_ablation's graph-vs-index section.
// Output is exactly DBSCAN's, like Disc's.
class GraphDisc : public StreamClusterer {
 public:
  GraphDisc(std::uint32_t dims, const DiscConfig& config);

  const UpdateDelta& Update(const std::vector<Point>& incoming,
                            const std::vector<Point>& outgoing) override;
  ClusteringSnapshot Snapshot() const override;
  std::string name() const override { return "DISC-graph"; }
  // Same four-phase structure as Disc, so the breakdown maps one-to-one.
  PhaseTimings LastPhaseTimings() const override { return last_timings_; }
  ProbeCounters LastProbeCounters() const override { return last_probes_; }

  const DiscConfig& config() const { return config_; }
  std::size_t window_size() const { return records_.size(); }

  // Range searches issued by the most recent Update (insertions only — that
  // is the variant's selling point).
  std::uint64_t last_range_searches() const { return last_searches_; }

  // Footprint of the materialized adjacency — the quantity that blows up
  // with eps.
  std::size_t ApproxMemoryBytes() const;
  std::size_t total_edges() const { return total_directed_edges_ / 2; }

 private:
  struct Record {
    Point pt;
    std::vector<PointId> neighbors;  // Materialized eps-adjacency.
    bool core_prev = false;
    bool deleted = false;
    Category category = Category::kNoise;
    ClusterId cid = kNoiseCluster;
    std::uint64_t visit_serial = 0;
    std::uint32_t owner = 0;
    std::uint64_t group_serial = 0;
    std::uint64_t relabel_serial = 0;
    std::uint64_t recheck_serial = 0;
    std::uint64_t delta_serial = 0;  // Already listed in this update's delta.
  };

  std::size_t NEps(const Record& r) const { return r.neighbors.size() + 1; }
  bool IsCoreNow(const Record& r) const {
    return !r.deleted && NEps(r) >= config_.tau;
  }
  bool IsExCore(const Record& r) const {
    return r.core_prev && (r.deleted || NEps(r) < config_.tau);
  }
  bool IsNeoCore(const Record& r) const {
    return !r.core_prev && IsCoreNow(r);
  }

  void Collect(const std::vector<Point>& incoming,
               const std::vector<Point>& outgoing,
               std::vector<PointId>* ex_cores,
               std::vector<PointId>* neo_cores);
  void ProcessExCores(const std::vector<PointId>& ex_cores);
  void CollectGroup(PointId seed,
                    std::unordered_map<ClusterId, std::vector<PointId>>* pools,
                    std::vector<ClusterId>* pool_order);
  void MsBfs(const std::vector<PointId>& m_minus);
  void ProcessNeoCores(const std::vector<PointId>& neo_cores);
  void ProcessNeoGroup(PointId seed);
  void RecheckNonCores();
  void AddRecheck(PointId id, Record* rec);
  // Single choke point for label writes; feeds delta_.relabeled exactly like
  // Disc::SetLabel so the two variants report identical deltas.
  void SetLabel(PointId id, Record* rec, Category category, ClusterId cid);
  Record& GetRecord(PointId id);

  DiscConfig config_;
  RTree tree_;  // Used only to find the neighbors of inserted points.
  std::unordered_map<PointId, Record> records_;
  ClusterRegistry registry_;

  std::uint64_t update_serial_ = 0;
  std::uint64_t search_serial_ = 0;
  std::vector<PointId> recheck_;
  std::vector<PointId> touched_;
  std::uint64_t last_searches_ = 0;
  std::size_t total_directed_edges_ = 0;
  PhaseTimings last_timings_;
  ProbeCounters last_probes_;
};

}  // namespace disc

#endif  // DISC_BASELINES_GRAPH_DISC_H_
