#ifndef DISC_BASELINES_EXTRA_N_H_
#define DISC_BASELINES_EXTRA_N_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/rtree.h"
#include "stream/stream_clusterer.h"

namespace disc {

// EXTRA-N (Yang, Rundensteiner, Ward — EDBT '09): an exact neighbor-based
// pattern detector designed around the *slow deletion* problem. Instead of
// issuing range searches when points expire, every point maintains
// "predicted view" neighbor counts — one count per future window it will
// live through — so its core status in any window is known the moment the
// window arrives, with zero expiry-time index work.
//
// The trade-off the paper exploits: a window of W points sliding by S keeps
// W/S predicted views per point plus materialized neighbor lists, so memory
// and per-insertion maintenance grow with the window-to-stride ratio, which
// is exactly where EXTRA-N saturates in Figs. 4 and 5.
//
// Cluster extraction runs per slide as a BFS over the materialized neighbor
// lists (no range searches). Labels equal DBSCAN's.
class ExtraN : public StreamClusterer {
 public:
  // window_size must be a multiple of stride (the sub-window model).
  ExtraN(std::uint32_t dims, double eps, std::uint32_t tau,
         std::size_t window_size, std::size_t stride,
         int rtree_max_entries = 16);

  const UpdateDelta& Update(const std::vector<Point>& incoming,
                            const std::vector<Point>& outgoing) override;
  ClusteringSnapshot Snapshot() const override { return snapshot_; }
  std::string name() const override { return "EXTRA-N"; }
  // Predicted-view maintenance maps to collect_ms, the per-slide extraction
  // to neo_phase_ms, and the labeling diff to recheck_ms; there is no
  // ex-core analogue (expiry is pure bookkeeping — EXTRA-N's selling point).
  PhaseTimings LastPhaseTimings() const override { return last_timings_; }
  ProbeCounters LastProbeCounters() const override { return last_probes_; }

  std::size_t num_views() const { return num_views_; }

  // Rough footprint of the per-point predicted views and neighbor lists, the
  // quantity that explodes for large window-to-stride ratios.
  std::size_t ApproxMemoryBytes() const;

  // Range searches issued by the most recent Update (insertions only).
  std::uint64_t last_range_searches() const { return last_searches_; }

 private:
  struct Record {
    Point pt;
    std::uint64_t arrival_slide = 0;
    // view_counts[i]: number of eps-neighbors (plus self) alive in window
    // arrival_slide + i.
    std::vector<std::uint32_t> view_counts;
    std::vector<PointId> neighbors;  // Materialized adjacency (lifetime).
  };

  void Recluster();

  double eps_;
  std::uint32_t tau_;
  std::size_t num_views_;
  RTree tree_;
  std::unordered_map<PointId, Record> records_;
  std::uint64_t current_slide_ = 0;
  ClusteringSnapshot snapshot_;
  std::uint64_t last_searches_ = 0;
  PhaseTimings last_timings_;
  ProbeCounters last_probes_;
};

}  // namespace disc

#endif  // DISC_BASELINES_EXTRA_N_H_
