#include "baselines/dbscan.h"

#include <algorithm>
#include <cassert>

namespace disc {

namespace {

// Shared clustering pass: classic DBSCAN over `points`, using `tree` for
// eps-range searches. One search per visited point, exactly as in the
// original algorithm.
ClusteringSnapshot DbscanOverTree(const RTree& tree,
                                  const std::vector<Point>& points, double eps,
                                  std::uint32_t tau) {
  enum class State : std::uint8_t { kUnclassified, kCore, kBorder, kNoise };
  struct Mark {
    State state = State::kUnclassified;
    ClusterId cid = kNoiseCluster;
  };
  std::unordered_map<PointId, Mark> marks;
  marks.reserve(points.size());
  for (const Point& p : points) marks.emplace(p.id, Mark{});

  ClusterId next_cid = 0;
  std::vector<Point> seeds;
  for (const Point& p : points) {
    Mark& mp = marks.at(p.id);
    if (mp.state != State::kUnclassified) continue;
    seeds.clear();
    std::size_t count = 0;
    tree.RangeSearch(p, eps, [&](PointId qid, const Point& q) {
      ++count;
      if (qid != p.id) seeds.push_back(q);
    });
    if (count < tau) {
      mp.state = State::kNoise;  // May be upgraded to border later.
      continue;
    }
    const ClusterId cid = next_cid++;
    mp.state = State::kCore;
    mp.cid = cid;
    // Grow the cluster from the seed list (the seeds vector doubles as the
    // BFS frontier; it may grow while we scan it).
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      const Point q = seeds[i];
      Mark& mq = marks.at(q.id);
      if (mq.state == State::kNoise) {
        mq.state = State::kBorder;
        mq.cid = cid;
        continue;
      }
      if (mq.state != State::kUnclassified) continue;
      mq.cid = cid;
      std::size_t qcount = 0;
      const std::size_t before = seeds.size();
      tree.RangeSearch(q, eps, [&](PointId rid, const Point& r) {
        ++qcount;
        if (rid != q.id) seeds.push_back(r);
      });
      if (qcount >= tau) {
        mq.state = State::kCore;
      } else {
        mq.state = State::kBorder;
        seeds.resize(before);  // Non-core points do not extend the cluster.
      }
    }
  }

  ClusteringSnapshot snap;
  snap.ids.reserve(points.size());
  snap.categories.reserve(points.size());
  snap.cids.reserve(points.size());
  for (const Point& p : points) {
    const Mark& m = marks.at(p.id);
    snap.ids.push_back(p.id);
    switch (m.state) {
      case State::kCore:
        snap.categories.push_back(Category::kCore);
        break;
      case State::kBorder:
        snap.categories.push_back(Category::kBorder);
        break;
      default:
        snap.categories.push_back(Category::kNoise);
        break;
    }
    snap.cids.push_back(m.state == State::kNoise ||
                                m.state == State::kUnclassified
                            ? kNoiseCluster
                            : m.cid);
  }
  return snap;
}

}  // namespace

DbscanResult RunDbscan(const std::vector<Point>& points, double eps,
                       std::uint32_t tau, int rtree_max_entries) {
  assert(!points.empty() || true);
  const std::uint32_t dims = points.empty() ? 2 : points[0].dims;
  RTree tree(dims, rtree_max_entries);
  tree.BulkLoad(points);
  const std::uint64_t before = tree.stats().range_searches;
  DbscanResult result;
  result.snapshot = DbscanOverTree(tree, points, eps, tau);
  result.range_searches = tree.stats().range_searches - before;
  return result;
}

DbscanClusterer::DbscanClusterer(std::uint32_t dims, double eps,
                                 std::uint32_t tau, int rtree_max_entries)
    : eps_(eps), tau_(tau), tree_(dims, rtree_max_entries) {}

const UpdateDelta& DbscanClusterer::Update(const std::vector<Point>& incoming,
                                           const std::vector<Point>& outgoing) {
  delta_.Clear();
  for (const Point& p : outgoing) {
    if (window_.erase(p.id) > 0) {
      tree_.Delete(p);
      delta_.exited.push_back(p.id);
    }
  }
  for (const Point& p : incoming) {
    auto [it, inserted] = window_.emplace(p.id, p);
    if (inserted) {
      tree_.Insert(p);
      delta_.entered.push_back(p.id);
    }
  }
  // Re-clustering assigns fresh cluster ids every slide, so the relabel set
  // is recovered by diffing the labelings up to a bijective renaming.
  const ClusteringSnapshot previous = std::move(snapshot_);
  Recluster();
  DiffLabelings(previous, snapshot_, &delta_);
  return delta_;
}

void DbscanClusterer::Recluster() {
  std::vector<Point> points;
  points.reserve(window_.size());
  for (const auto& [id, p] : window_) points.push_back(p);
  // DBSCAN's cluster-id assignment and border ties follow point order;
  // sort so hash-table iteration order cannot leak into the labeling.
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.id < b.id; });
  const std::uint64_t before = tree_.stats().range_searches;
  snapshot_ = DbscanOverTree(tree_, points, eps_, tau_);
  last_searches_ = tree_.stats().range_searches - before;
}

}  // namespace disc
