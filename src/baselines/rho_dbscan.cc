#include "baselines/rho_dbscan.h"

#include <cassert>
#include <cmath>
#include <deque>
#include <sstream>

namespace disc {

RhoDbscan::RhoDbscan(std::uint32_t dims, const Options& options)
    : dims_(dims),
      options_(options),
      grid_(dims, options.eps / std::sqrt(static_cast<double>(dims))) {
  assert(options.eps > 0.0);
  assert(options.rho >= 0.0);
  cell_radius_ = static_cast<std::int64_t>(
      std::ceil(options_.eps * (1.0 + options_.rho) / grid_.cell_side()));
  // Amortized aBCP refresh cost per affected cell pair (see header).
  const double per_pair =
      std::pow(std::ceil(1.0 / std::max(options_.rho, 1e-6)),
               static_cast<double>(dims - 1));
  abcp_budget_ = static_cast<std::size_t>(std::min(per_pair, 1e6));
}

// Emulates the aBCP refresh triggered by inserting or deleting p: for each
// nearby occupied cell, perform the distance evaluations the dynamic
// structure would need. Finding a witness pair within the link radius is
// cheap (the structure certifies connectivity as soon as one is seen);
// certifying that no such pair exists is where the O((1/rho)^(d-1))
// granularity bound bites.
void RhoDbscan::MaintainAbcp(const Point& p) {
  const CellCoord home = grid_.CellOf(p);
  const std::vector<Point>* mine = grid_.CellContents(home);
  const std::size_t my_size = (mine == nullptr) ? 1 : mine->size();
  const double link = options_.eps * (1.0 + options_.rho);
  const double link2 = link * link;
  grid_.ForEachNeighborCell(
      home, cell_radius_,
      [&](const CellCoord&, const std::vector<Point>& others) {
        const std::size_t pairs =
            std::min(my_size * others.size(), abcp_budget_);
        double acc = 0.0;
        for (std::size_t k = 0; k < pairs; ++k) {
          const Point& a =
              (mine == nullptr) ? p : (*mine)[k % my_size];
          const Point& b = others[(k / my_size) % others.size()];
          const double d = SquaredDistance(a, b);
          acc += d;
          if (d <= link2) break;  // Witness pair found: refresh certified.
        }
        abcp_sink_ += acc;
      });
}

std::string RhoDbscan::name() const {
  std::ostringstream os;
  os << "rho2-DBSCAN(rho=" << options_.rho << ")";
  return os.str();
}

const UpdateDelta& RhoDbscan::Update(const std::vector<Point>& incoming,
                                     const std::vector<Point>& outgoing) {
  delta_.Clear();
  for (const Point& p : outgoing) {
    grid_.Delete(p);
    MaintainAbcp(p);
    delta_.exited.push_back(p.id);
  }
  for (const Point& p : incoming) {
    grid_.Insert(p);
    MaintainAbcp(p);
    delta_.entered.push_back(p.id);
  }
  Recluster();
  // Connected components are renumbered from scratch every slide; diff the
  // labelings up to a bijective renaming to recover the relabel set.
  ClusteringSnapshot current = Snapshot();
  DiffLabelings(prev_snapshot_, current, &delta_);
  prev_snapshot_ = std::move(current);
  return delta_;
}

void RhoDbscan::Recluster() {
  state_.clear();

  // Core determination. A cell with >= tau points is all-core for free (its
  // diameter is eps); sparse cells count exact eps-neighbors with early exit.
  const double eps2 = options_.eps * options_.eps;
  grid_.ForEachCell([&](const CellCoord& cc, const std::vector<Point>& pts) {
    CellState& st = state_[cc];
    st.is_core.assign(pts.size(), 0);
    if (pts.size() >= options_.tau) {
      for (std::size_t i = 0; i < pts.size(); ++i) st.is_core[i] = 1;
      st.has_core = true;
      return;
    }
    for (std::size_t i = 0; i < pts.size(); ++i) {
      std::size_t count = 0;
      bool core = false;
      grid_.ForEachNeighborCell(
          cc, cell_radius_,
          [&](const CellCoord&, const std::vector<Point>& others) {
            if (core) return;
            for (const Point& q : others) {
              if (SquaredDistance(pts[i], q) <= eps2) {
                if (++count >= options_.tau) {
                  core = true;
                  return;
                }
              }
            }
          });
      if (core) {
        st.is_core[i] = 1;
        st.has_core = true;
      }
    }
  });

  // Approximate connectivity over core cells: BFS through neighbor cells,
  // linking when any core pair lies within eps*(1+rho).
  const double link = options_.eps * (1.0 + options_.rho);
  const double link2 = link * link;
  std::int64_t next_cluster = 0;
  grid_.ForEachCell([&](const CellCoord& cc, const std::vector<Point>&) {
    CellState& st = state_.at(cc);
    if (!st.has_core || st.cluster >= 0) return;
    const std::int64_t cluster = next_cluster++;
    std::deque<CellCoord> queue;
    st.cluster = cluster;
    queue.push_back(cc);
    while (!queue.empty()) {
      const CellCoord cur = queue.front();
      queue.pop_front();
      const std::vector<Point>* cur_pts = grid_.CellContents(cur);
      if (cur_pts == nullptr) continue;
      const CellState& cur_st = state_.at(cur);
      grid_.ForEachNeighborCell(
          cur, cell_radius_,
          [&](const CellCoord& other, const std::vector<Point>& opts) {
            auto oit = state_.find(other);
            if (oit == state_.end()) return;
            CellState& ost = oit->second;
            if (!ost.has_core || ost.cluster >= 0) return;
            // Any core-core pair within the approximate link radius?
            bool connected = false;
            for (std::size_t i = 0; i < cur_pts->size() && !connected; ++i) {
              if (!cur_st.is_core[i]) continue;
              for (std::size_t j = 0; j < opts.size(); ++j) {
                if (!ost.is_core[j]) continue;
                if (SquaredDistance((*cur_pts)[i], opts[j]) <= link2) {
                  connected = true;
                  break;
                }
              }
            }
            if (connected) {
              ost.cluster = cluster;
              queue.push_back(other);
            }
          });
    }
  });
}

ClusteringSnapshot RhoDbscan::Snapshot() const {
  ClusteringSnapshot snap;
  snap.ids.reserve(grid_.size());
  snap.categories.reserve(grid_.size());
  snap.cids.reserve(grid_.size());
  const double eps2 = options_.eps * options_.eps;
  grid_.ForEachCell([&](const CellCoord& cc, const std::vector<Point>& pts) {
    const CellState& st = state_.at(cc);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      snap.ids.push_back(pts[i].id);
      if (st.is_core[i]) {
        snap.categories.push_back(Category::kCore);
        snap.cids.push_back(st.cluster);
        continue;
      }
      // Border assignment: the cluster of any core within eps.
      std::int64_t label = kNoiseCluster;
      grid_.ForEachNeighborCell(
          cc, cell_radius_,
          [&](const CellCoord& other, const std::vector<Point>& opts) {
            if (label != kNoiseCluster) return;
            auto oit = state_.find(other);
            if (oit == state_.end() || !oit->second.has_core) return;
            for (std::size_t j = 0; j < opts.size(); ++j) {
              if (!oit->second.is_core[j]) continue;
              if (SquaredDistance(pts[i], opts[j]) <= eps2) {
                label = oit->second.cluster;
                return;
              }
            }
          });
      snap.categories.push_back(label == kNoiseCluster ? Category::kNoise
                                                       : Category::kBorder);
      snap.cids.push_back(label);
    }
  });
  // ForEachCell walks a hash-ordered cell table (a leak the lexical lint
  // cannot see through the callback); emit id-sorted regardless.
  snap.SortById();
  return snap;
}

}  // namespace disc
