#ifndef DISC_BASELINES_EDMSTREAM_H_
#define DISC_BASELINES_EDMSTREAM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/grid_index.h"
#include "stream/stream_clusterer.h"

namespace disc {

// EDMStream (Gong, Zhang, Yu — VLDB 2017): summarization-based clustering by
// tracking the evolution of the *density mountain*. Points are absorbed into
// fixed-radius cluster-cells with decaying densities. Every cell depends on
// its nearest cell of higher density; the dependent distance delta decides
// whether a cell is a density peak (a cluster root of the DP-tree) or a
// slope point attached to its dependency. Clusters are DP-tree subtrees.
//
// Insertions are extremely cheap (one nearest-cell lookup); the dependency
// tree is refreshed when a snapshot is taken, mirroring the on-demand
// cluster extraction of the original system. No deletion is supported; old
// mass decays away.
class EdmStream : public StreamClusterer {
 public:
  struct Options {
    double radius = 0.25;         // Cell radius.
    double decay_lambda = 1e-4;   // Per-point exponential decay rate.
    double delta_threshold = 1.0; // Dependent-distance cut for roots.
    double rho_min = 2.0;         // Minimum density of a non-outlier cell.
  };

  EdmStream(std::uint32_t dims, const Options& options);

  const UpdateDelta& Update(const std::vector<Point>& incoming,
                            const std::vector<Point>& outgoing) override;
  ClusteringSnapshot Snapshot() const override;
  std::string name() const override { return "EDMStream"; }

  std::size_t num_cells() const { return cells_.size(); }

 private:
  struct Cell {
    Point seed;
    double density = 0.0;
    std::uint64_t last_update = 0;
  };

  void Ingest(const Point& p);
  double Decayed(double value, std::uint64_t last) const;

  std::uint32_t dims_;
  Options options_;
  std::vector<Cell> cells_;
  GridIndex seeds_;  // Spatial index over cell seeds.
  std::uint64_t now_ = 0;
  std::unordered_map<PointId, std::uint64_t> assignment_;  // point -> cell.
  std::unordered_map<PointId, Point> window_;  // Evaluation bookkeeping only.
};

}  // namespace disc

#endif  // DISC_BASELINES_EDMSTREAM_H_
