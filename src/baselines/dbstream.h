#ifndef DISC_BASELINES_DBSTREAM_H_
#define DISC_BASELINES_DBSTREAM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/grid_index.h"
#include "stream/stream_clusterer.h"

namespace disc {

// DBSTREAM (Hahsler & Bolaños, TKDE 2016): a summarization-based stream
// clusterer. Points are absorbed into fixed-radius micro-clusters with
// exponentially decaying weights; for every pair of micro-clusters the
// stream also maintains a decaying *shared density* that measures how much
// traffic falls into their overlap. Macro-clusters are the connected
// components of micro-clusters whose shared density exceeds the
// intersection-factor threshold alpha.
//
// Like the original, the method supports no deletion: expired points simply
// stop contributing as the weights decay. Snapshot() assigns every live
// window point to the macro-cluster of its nearest micro-cluster within the
// radius (points are tracked for evaluation only; that bookkeeping is not
// part of the algorithm's work).
class DbStream : public StreamClusterer {
 public:
  struct Options {
    double radius = 0.3;        // Micro-cluster radius r.
    double decay_lambda = 1e-4; // Per-point exponential decay rate.
    double alpha = 0.3;         // Intersection factor for connectivity.
    double w_min = 0.5;         // Prune threshold for weak micro-clusters.
    double eta = 0.05;          // Center learning rate.
    std::uint64_t cleanup_every = 1000;  // Points between prune passes.
  };

  DbStream(std::uint32_t dims, const Options& options);

  const UpdateDelta& Update(const std::vector<Point>& incoming,
                            const std::vector<Point>& outgoing) override;
  ClusteringSnapshot Snapshot() const override;
  std::string name() const override { return "DBSTREAM"; }

  std::size_t num_micro_clusters() const;

 private:
  struct MicroCluster {
    Point center;
    double weight = 0.0;
    std::uint64_t last_update = 0;
    bool alive = true;
  };

  struct EdgeKey {
    std::uint64_t a, b;
    bool operator==(const EdgeKey& o) const { return a == o.a && b == o.b; }
  };
  struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& k) const {
      return std::hash<std::uint64_t>()(k.a * 1000003ULL + k.b);
    }
  };
  struct Edge {
    double shared = 0.0;
    std::uint64_t last_update = 0;
  };

  void Ingest(const Point& p);
  void Cleanup();
  double Decayed(double value, std::uint64_t last) const;

  std::uint32_t dims_;
  Options options_;
  std::vector<MicroCluster> mcs_;
  GridIndex centers_;  // Spatial index over live micro-cluster centers.
  std::unordered_map<EdgeKey, Edge, EdgeKeyHash> edges_;
  std::uint64_t now_ = 0;  // Point-count clock.
  std::unordered_map<PointId, Point> window_;  // Evaluation bookkeeping only.
};

}  // namespace disc

#endif  // DISC_BASELINES_DBSTREAM_H_
