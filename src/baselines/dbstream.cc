#include "baselines/dbstream.h"

#include <algorithm>
#include <unordered_set>
#include <cmath>

namespace disc {

DbStream::DbStream(std::uint32_t dims, const Options& options)
    : dims_(dims), options_(options), centers_(dims, options.radius) {}

double DbStream::Decayed(double value, std::uint64_t last) const {
  const double dt = static_cast<double>(now_ - last);
  return value * std::exp2(-options_.decay_lambda * dt);
}

void DbStream::Ingest(const Point& p) {
  ++now_;
  // Micro-clusters whose center is within the radius absorb the point.
  std::vector<std::uint64_t> hits;
  centers_.RangeSearch(p, options_.radius, [&](PointId mc_id, const Point&) {
    hits.push_back(mc_id);
  });
  if (hits.empty()) {
    MicroCluster mc;
    mc.center = p;
    mc.center.id = mcs_.size();
    mc.weight = 1.0;
    mc.last_update = now_;
    centers_.Insert(mc.center);
    mcs_.push_back(mc);
    return;
  }
  // Weight update for every hit; the closest center additionally moves
  // toward the point (competitive learning).
  std::uint64_t closest = hits[0];
  double best = SquaredDistance(mcs_[closest].center, p);
  for (std::uint64_t h : hits) {
    MicroCluster& mc = mcs_[h];
    mc.weight = Decayed(mc.weight, mc.last_update) + 1.0;
    mc.last_update = now_;
    const double d = SquaredDistance(mc.center, p);
    if (d < best) {
      best = d;
      closest = h;
    }
  }
  MicroCluster& near = mcs_[closest];
  centers_.Delete(near.center);
  for (std::uint32_t d = 0; d < dims_; ++d) {
    near.center.x[d] += options_.eta * (p.x[d] - near.center.x[d]);
  }
  centers_.Insert(near.center);
  // Shared-density bump for every pair of hit micro-clusters.
  for (std::size_t i = 0; i < hits.size(); ++i) {
    for (std::size_t j = i + 1; j < hits.size(); ++j) {
      EdgeKey key{std::min(hits[i], hits[j]), std::max(hits[i], hits[j])};
      Edge& e = edges_[key];
      e.shared = Decayed(e.shared, e.last_update) + 1.0;
      e.last_update = now_;
    }
  }
  if (now_ % options_.cleanup_every == 0) Cleanup();
}

void DbStream::Cleanup() {
  for (auto& mc : mcs_) {
    if (!mc.alive) continue;
    if (Decayed(mc.weight, mc.last_update) < options_.w_min) {
      mc.alive = false;
      centers_.Delete(mc.center);
    }
  }
  for (auto it = edges_.begin(); it != edges_.end();) {
    const bool weak = Decayed(it->second.shared, it->second.last_update) <
                      options_.alpha * options_.w_min;
    const bool dead =
        !mcs_[it->first.a].alive || !mcs_[it->first.b].alive;
    if (weak || dead) {
      it = edges_.erase(it);
    } else {
      ++it;
    }
  }
}

const UpdateDelta& DbStream::Update(const std::vector<Point>& incoming,
                                    const std::vector<Point>& outgoing) {
  // Summarization methods support no deletion (Sec. VI-E); expired points
  // leave the evaluation bookkeeping but the summaries only decay.
  delta_.Clear();
  for (const Point& p : outgoing) {
    if (window_.erase(p.id) > 0) delta_.exited.push_back(p.id);
  }
  std::unordered_set<PointId> fresh;
  for (const Point& p : incoming) {
    if (window_.emplace(p.id, p).second) {
      delta_.entered.push_back(p.id);
      fresh.insert(p.id);
    }
    Ingest(p);
  }
  // Conservative relabel report (see UpdateDelta's contract): weight decay
  // and center drift can silently move any survivor's nearest-micro-cluster
  // assignment, so every surviving point is listed.
  for (const auto& [id, p] : window_) {
    if (fresh.count(id) == 0) delta_.relabeled.push_back(id);
  }
  // The fill above walks a hash table; report the ids in a stable order.
  std::sort(delta_.relabeled.begin(), delta_.relabeled.end());
  return delta_;
}

std::size_t DbStream::num_micro_clusters() const {
  std::size_t n = 0;
  for (const auto& mc : mcs_) {
    if (mc.alive) ++n;
  }
  return n;
}

ClusteringSnapshot DbStream::Snapshot() const {
  // Macro-clusters: connected components over the shared-density graph with
  // intersection factor >= alpha.
  std::vector<std::int64_t> macro(mcs_.size(), -1);
  std::vector<std::uint64_t> parent(mcs_.size());
  for (std::size_t i = 0; i < mcs_.size(); ++i) parent[i] = i;
  auto find = [&](std::uint64_t i) {
    while (parent[i] != i) i = parent[i];
    return i;
  };
  for (const auto& [key, edge] : edges_) {
    if (!mcs_[key.a].alive || !mcs_[key.b].alive) continue;
    const double wa = Decayed(mcs_[key.a].weight, mcs_[key.a].last_update);
    const double wb = Decayed(mcs_[key.b].weight, mcs_[key.b].last_update);
    const double shared = Decayed(edge.shared, edge.last_update);
    if (wa <= 0.0 || wb <= 0.0) continue;
    if (shared / ((wa + wb) / 2.0) >= options_.alpha) {
      parent[find(key.a)] = find(key.b);
    }
  }
  std::int64_t next = 0;
  for (std::size_t i = 0; i < mcs_.size(); ++i) {
    if (!mcs_[i].alive) continue;
    const std::uint64_t root = find(i);
    if (macro[root] < 0) macro[root] = next++;
    macro[i] = macro[root];
  }

  ClusteringSnapshot snap;
  snap.ids.reserve(window_.size());
  snap.categories.reserve(window_.size());
  snap.cids.reserve(window_.size());
  for (const auto& [id, p] : window_) {
    // Nearest live micro-cluster within the radius.
    std::int64_t label = kNoiseCluster;
    double best = options_.radius * options_.radius;
    centers_.RangeSearch(p, options_.radius,
                         [&](PointId mc_id, const Point& c) {
                           const double d = SquaredDistance(c, p);
                           if (d <= best) {
                             best = d;
                             label = macro[mc_id];
                           }
                         });
    snap.ids.push_back(id);
    if (label == kNoiseCluster) {
      snap.categories.push_back(Category::kNoise);
      snap.cids.push_back(kNoiseCluster);
    } else {
      snap.categories.push_back(Category::kCore);
      snap.cids.push_back(label);
    }
  }
  // Hash-ordered fill above; emit id-sorted (see ClusteringSnapshot).
  snap.SortById();
  return snap;
}

}  // namespace disc
