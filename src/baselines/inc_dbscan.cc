#include "baselines/inc_dbscan.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "common/timer.h"

namespace disc {

IncDbscan::IncDbscan(std::uint32_t dims, const DiscConfig& config)
    : config_(config), tree_(dims, config.rtree_max_entries) {}

IncDbscan::Record& IncDbscan::GetRecord(PointId id) {
  auto it = records_.find(id);
  assert(it != records_.end());
  return it->second;
}

void IncDbscan::SearchMarking(const Point& center, std::uint64_t tick,
                              const RTree::MarkingVisitor& visit) {
  if (config_.use_epoch_probing) {
    tree_.EpochRangeSearch(center, config_.eps, tick, visit);
  } else {
    tree_.RangeSearch(center, config_.eps,
                      [&](PointId id, const Point& p) { visit(id, p); });
  }
}

void IncDbscan::AddRecheck(PointId id, Record* rec) {
  if (rec->recheck_serial == op_serial_) return;
  rec->recheck_serial = op_serial_;
  recheck_.push_back(id);
}

void IncDbscan::SetLabel(PointId id, Record* rec, Category category,
                         ClusterId cid) {
  if (rec->category == category && rec->cid == cid) return;
  rec->category = category;
  rec->cid = cid;
  if (rec->delta_serial != batch_serial_) {
    rec->delta_serial = batch_serial_;
    delta_.relabeled.push_back(id);
  }
}

const UpdateDelta& IncDbscan::Update(const std::vector<Point>& incoming,
                                     const std::vector<Point>& outgoing) {
  ++batch_serial_;
  delta_.Clear();
  const RTreeStats before = tree_.stats();
  last_timings_ = PhaseTimings{};
  // One point at a time: that is the defining property of IncDBSCAN. The
  // clustering (including border labels) is valid after every single
  // operation — per-op relabeling is the redundant work DISC's stride-level
  // consolidation eliminates. Deletions accumulate into ex_phase_ms and
  // insertions into neo_phase_ms (the per-op analogue of DISC's phases).
  Timer op_timer;
  for (const Point& p : outgoing) {
    ++op_serial_;
    recheck_.clear();
    op_timer.Reset();
    DeleteOne(p);
    last_timings_.ex_phase_ms += op_timer.ElapsedMillis();
    op_timer.Reset();
    RecheckNonCores();
    last_timings_.recheck_ms += op_timer.ElapsedMillis();
  }
  for (const Point& p : incoming) {
    ++op_serial_;
    recheck_.clear();
    op_timer.Reset();
    InsertOne(p);
    last_timings_.neo_phase_ms += op_timer.ElapsedMillis();
    op_timer.Reset();
    RecheckNonCores();
    last_timings_.recheck_ms += op_timer.ElapsedMillis();
  }
  const RTreeStats& after = tree_.stats();
  last_searches_ = after.range_searches - before.range_searches;
  last_probes_.range_searches = last_searches_;
  last_probes_.nodes_visited = after.nodes_visited - before.nodes_visited;
  last_probes_.entries_checked =
      after.entries_checked - before.entries_checked;
  last_probes_.leaf_entries_tested =
      after.leaf_entries_tested - before.leaf_entries_tested;
  last_probes_.epoch_pruned = after.epoch_pruned - before.epoch_pruned;
  // Points relabeled by an early operation and deleted by a later one are
  // gone from the window; `relabeled` reports survivors only.
  delta_.relabeled.erase(
      std::remove_if(delta_.relabeled.begin(), delta_.relabeled.end(),
                     [&](PointId id) { return records_.count(id) == 0; }),
      delta_.relabeled.end());
  return delta_;
}

// ---------------------------------------------------------------------------
// Insertion (creation / absorption / merge)
// ---------------------------------------------------------------------------

void IncDbscan::InsertOne(const Point& p) {
  if (!IsValidPoint(p) || p.dims != tree_.dims()) {
    assert(false && "invalid incoming point");
    return;
  }
  auto [it, inserted] = records_.emplace(p.id, Record{});
  assert(inserted);
  if (!inserted) return;
  Record& rec = it->second;
  rec.pt = p;
  rec.n_eps = 1;
  rec.delta_serial = batch_serial_;  // Listed in `entered`, not `relabeled`.
  delta_.entered.push_back(p.id);
  tree_.Insert(p);

  std::vector<PointId> new_cores;  // Points whose status flips to core.
  tree_.RangeSearch(p, config_.eps, [&](PointId qid, const Point&) {
    if (qid == p.id) return;
    Record& q = GetRecord(qid);
    ++q.n_eps;
    ++rec.n_eps;
    if (q.n_eps == config_.tau) new_cores.push_back(qid);
  });
  if (rec.n_eps >= config_.tau) new_cores.push_back(p.id);

  if (new_cores.empty()) {
    // No density-reachability change; p itself becomes border or noise.
    AddRecheck(p.id, &rec);
    return;
  }

  // Group the new cores into eps-connected components (they are all within
  // eps of p, so pairwise tests suffice), then decide the cluster evolution
  // per component from the labels of the surrounding old cores.
  const std::size_t k = new_cores.size();
  std::vector<std::uint32_t> comp(k);
  for (std::size_t i = 0; i < k; ++i) comp[i] = static_cast<std::uint32_t>(i);
  auto find_comp = [&](std::uint32_t i) {
    while (comp[i] != i) i = comp[i];
    return i;
  };
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      if (WithinEps(GetRecord(new_cores[i]).pt, GetRecord(new_cores[j]).pt,
                    config_.eps)) {
        comp[find_comp(static_cast<std::uint32_t>(j))] =
            find_comp(static_cast<std::uint32_t>(i));
      }
    }
  }

  for (std::size_t c = 0; c < k; ++c) {
    if (find_comp(static_cast<std::uint32_t>(c)) != c) continue;
    std::vector<PointId> members;
    for (std::size_t i = 0; i < k; ++i) {
      if (find_comp(static_cast<std::uint32_t>(i)) == c) {
        members.push_back(new_cores[i]);
      }
    }
    // UpdSeed examination: one range search per new core of the component.
    const std::uint64_t serial = ++search_serial_;
    const std::uint64_t tick = tree_.NewTick();
    for (PointId m : members) GetRecord(m).visit_serial = serial;
    std::vector<ClusterId> cid_list;
    std::vector<PointId> borders;
    for (PointId m : members) {
      const Point center = GetRecord(m).pt;
      SearchMarking(center, tick, [&](PointId qid, const Point&) -> bool {
        if (qid == m) return true;
        Record& q = GetRecord(qid);
        if (IsCore(q)) {
          if (q.visit_serial != serial) {
            q.visit_serial = serial;
            const ClusterId cq = registry_.Find(q.cid);
            if (std::find(cid_list.begin(), cid_list.end(), cq) ==
                cid_list.end()) {
              cid_list.push_back(cq);
            }
          }
          return true;
        }
        if (q.visit_serial != serial) {
          q.visit_serial = serial;
          q.witness = m;
          q.witness_serial = op_serial_;
          borders.push_back(qid);
        }
        return true;
      });
    }
    ClusterId g;
    if (cid_list.empty()) {
      g = registry_.NewCluster();  // Creation.
    } else {
      g = cid_list[0];  // Absorption, or merge when several.
      for (std::size_t i = 1; i < cid_list.size(); ++i) {
        g = registry_.Union(g, cid_list[i]);
      }
    }
    for (PointId m : members) {
      Record& rm = GetRecord(m);
      SetLabel(m, &rm, Category::kCore, g);
    }
    for (PointId b : borders) {
      Record& rb = GetRecord(b);
      if (IsCore(rb)) continue;
      SetLabel(b, &rb, Category::kBorder, g);
    }
  }
  if (!IsCore(rec)) AddRecheck(p.id, &rec);
}

// ---------------------------------------------------------------------------
// Deletion (shrink / split / dissipation) — the slow path
// ---------------------------------------------------------------------------

void IncDbscan::DeleteOne(const Point& p) {
  auto it = records_.find(p.id);
  assert(it != records_.end());
  if (it == records_.end()) return;
  Record rec = it->second;  // Copy; the record dies at the end of this op.
  const bool was_core = IsCore(rec);
  tree_.Delete(rec.pt);
  records_.erase(it);
  delta_.exited.push_back(p.id);

  std::vector<PointId> lost;  // Still-present cores that lose core status.
  tree_.RangeSearch(rec.pt, config_.eps, [&](PointId qid, const Point&) {
    Record& q = GetRecord(qid);
    assert(q.n_eps > 0);
    --q.n_eps;
    if (q.n_eps == config_.tau - 1) {
      lost.push_back(qid);
      AddRecheck(qid, &q);  // Demoted core: border or noise now.
    } else if (was_core && !IsCore(q)) {
      AddRecheck(qid, &q);  // May have lost its only adjacent core.
    }
  });

  if (!was_core && lost.empty()) return;  // No reachability change.

  // Collect the seed cores (UpdSeed_del): cores that are still cores and are
  // adjacent to a lost core — one range search per lost core, plus one for p
  // itself when it was a core. One consolidated connectivity check per
  // deletion: every fragment the deletion creates contains a seed, and a
  // single check never leaves two components sharing an old cluster id
  // (running one check per lost-core subset would — see the corresponding
  // note in Disc::CheckConnectivity).
  const std::uint64_t serial = ++search_serial_;
  const std::uint64_t tick = tree_.NewTick();
  std::vector<PointId> group = lost;
  if (was_core) group.push_back(p.id);  // p's neighborhood needs scanning too.
  std::vector<PointId> seeds;
  for (PointId l : group) {
    const Point center = (l == p.id) ? rec.pt : GetRecord(l).pt;
    SearchMarking(center, tick, [&](PointId qid, const Point&) -> bool {
      if (qid == l) return true;
      auto qit = records_.find(qid);
      if (qit == records_.end()) return true;
      Record& q = qit->second;
      if (IsCore(q)) {
        if (q.visit_serial != serial) {
          q.visit_serial = serial;
          seeds.push_back(qid);
        }
        return true;
      }
      AddRecheck(qid, &q);  // Non-core near a lost core.
      return true;
    });
  }
  if (seeds.size() > 1) CheckSplit(seeds);
  // Empty seeds: the cluster dissipated; stragglers go through recheck.
}

void IncDbscan::CheckSplit(const std::vector<PointId>& seeds) {
  if (config_.use_msbfs) {
    MsBfs(seeds);
  } else {
    SequentialBfs(seeds);
  }
}

// ---------------------------------------------------------------------------
// Connectivity checks (shared shape with DISC's; see disc_cluster.cc)
// ---------------------------------------------------------------------------

namespace {

struct MsThread {
  std::deque<PointId> queue;
  std::vector<PointId> cores;
  std::vector<PointId> borders;
};

}  // namespace

int IncDbscan::MsBfs(const std::vector<PointId>& seeds) {
  const std::uint64_t serial = ++search_serial_;
  const std::uint64_t tick = tree_.NewTick();
  const std::size_t k = seeds.size();

  std::vector<std::uint32_t> parent(k);
  for (std::size_t i = 0; i < k; ++i) parent[i] = static_cast<std::uint32_t>(i);
  auto find_root = [&](std::uint32_t i) {
    std::uint32_t root = i;
    while (parent[root] != root) root = parent[root];
    while (parent[i] != root) {
      const std::uint32_t next = parent[i];
      parent[i] = root;
      i = next;
    }
    return root;
  };

  std::vector<MsThread> threads(k);
  for (std::size_t i = 0; i < k; ++i) {
    Record& r = GetRecord(seeds[i]);
    r.visit_serial = serial;
    r.owner = static_cast<std::uint32_t>(i);
    threads[i].queue.push_back(seeds[i]);
    threads[i].cores.push_back(seeds[i]);
  }

  std::size_t active_count = k;
  auto merge_threads = [&](std::uint32_t a, std::uint32_t b) {
    if (threads[a].queue.size() < threads[b].queue.size()) std::swap(a, b);
    MsThread& ta = threads[a];
    MsThread& tb = threads[b];
    ta.queue.insert(ta.queue.end(), tb.queue.begin(), tb.queue.end());
    ta.cores.insert(ta.cores.end(), tb.cores.begin(), tb.cores.end());
    ta.borders.insert(ta.borders.end(), tb.borders.begin(), tb.borders.end());
    tb = MsThread{};
    parent[b] = a;
    --active_count;
  };

  std::vector<std::uint32_t> active;
  active.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    active.push_back(static_cast<std::uint32_t>(i));
  }

  int drained = 0;
  while (active_count > 1) {
    for (std::size_t idx = 0; idx < active.size() && active_count > 1;) {
      const std::uint32_t root = active[idx];
      if (find_root(root) != root) {
        active[idx] = active.back();
        active.pop_back();
        continue;
      }
      MsThread& th = threads[root];
      if (th.queue.empty()) {
        const ClusterId fresh = registry_.NewCluster();
        for (PointId cp : th.cores) {
          Record& rc = GetRecord(cp);
          SetLabel(cp, &rc, Category::kCore, fresh);
        }
        for (PointId bp : th.borders) {
          Record& rb = GetRecord(bp);
          if (IsCore(rb)) continue;
          SetLabel(bp, &rb, Category::kBorder, fresh);
        }
        ++drained;
        --active_count;
        active[idx] = active.back();
        active.pop_back();
        continue;
      }
      const PointId rid = th.queue.front();
      th.queue.pop_front();
      const Point center = GetRecord(rid).pt;
      SearchMarking(center, tick, [&](PointId qid, const Point&) -> bool {
        if (qid == rid) return true;
        auto qit = records_.find(qid);
        if (qit == records_.end()) return true;
        Record& q = qit->second;
        if (IsCore(q)) {
          const std::uint32_t mine = find_root(root);
          if (q.visit_serial != serial) {
            q.visit_serial = serial;
            q.owner = mine;
            threads[mine].queue.push_back(qid);
            threads[mine].cores.push_back(qid);
          } else {
            const std::uint32_t other = find_root(q.owner);
            if (other != mine) merge_threads(mine, other);
          }
          return false;
        }
        if (q.visit_serial != serial) {
          q.visit_serial = serial;
          q.witness = rid;
          q.witness_serial = op_serial_;
          threads[find_root(root)].borders.push_back(qid);
        }
        return true;
      });
      ++idx;
    }
  }
  return drained + 1;
}

int IncDbscan::SequentialBfs(const std::vector<PointId>& seeds) {
  const std::uint64_t member_serial = ++search_serial_;
  for (PointId m : seeds) GetRecord(m).visit_serial = member_serial;
  std::size_t members_left = seeds.size();

  int ncc = 0;
  bool first = true;
  for (PointId start : seeds) {
    Record& start_rec = GetRecord(start);
    if (start_rec.visit_serial != member_serial) continue;
    ++ncc;
    const std::uint64_t serial = ++search_serial_;
    const std::uint64_t tick = tree_.NewTick();
    std::deque<PointId> queue;
    std::vector<PointId> cores;
    std::vector<PointId> borders;
    start_rec.visit_serial = serial;
    --members_left;
    queue.push_back(start);
    cores.push_back(start);
    bool early_exit = false;
    while (!queue.empty()) {
      if (first && members_left == 0) {
        early_exit = true;
        break;
      }
      const PointId rid = queue.front();
      queue.pop_front();
      const Point center = GetRecord(rid).pt;
      SearchMarking(center, tick, [&](PointId qid, const Point&) -> bool {
        if (qid == rid) return true;
        auto qit = records_.find(qid);
        if (qit == records_.end()) return true;
        Record& q = qit->second;
        if (IsCore(q)) {
          if (q.visit_serial != serial) {
            if (q.visit_serial == member_serial) --members_left;
            q.visit_serial = serial;
            queue.push_back(qid);
            cores.push_back(qid);
          }
          return false;
        }
        if (q.visit_serial != serial) {
          q.visit_serial = serial;
          q.witness = rid;
          q.witness_serial = op_serial_;
          borders.push_back(qid);
        }
        return true;
      });
    }
    if (!first && !early_exit) {
      const ClusterId fresh = registry_.NewCluster();
      for (PointId cp : cores) {
        Record& rc = GetRecord(cp);
        SetLabel(cp, &rc, Category::kCore, fresh);
      }
      for (PointId bp : borders) {
        Record& rb = GetRecord(bp);
        if (IsCore(rb)) continue;
        SetLabel(bp, &rb, Category::kBorder, fresh);
      }
    }
    first = false;
    if (members_left == 0 && early_exit) break;
  }
  return ncc;
}

// ---------------------------------------------------------------------------
// Deferred border/noise relabeling
// ---------------------------------------------------------------------------

void IncDbscan::RecheckNonCores() {
  for (PointId id : recheck_) {
    auto it = records_.find(id);
    if (it == records_.end()) continue;  // Deleted later in the same batch.
    Record& rec = it->second;
    if (IsCore(rec)) continue;
    if (rec.witness_serial == op_serial_) {
      auto wit = records_.find(rec.witness);
      if (wit != records_.end() && IsCore(wit->second)) {
        SetLabel(id, &rec, Category::kBorder, wit->second.cid);
        continue;
      }
    }
    bool found = false;
    ClusterId found_cid = kNoiseCluster;
    tree_.RangeSearch(rec.pt, config_.eps, [&](PointId qid, const Point&) {
      if (found || qid == id) return;
      auto qit = records_.find(qid);
      if (qit == records_.end()) return;
      const Record& q = qit->second;
      if (IsCore(q)) {
        found = true;
        found_cid = q.cid;
      }
    });
    if (found) {
      SetLabel(id, &rec, Category::kBorder, found_cid);
    } else {
      SetLabel(id, &rec, Category::kNoise, kNoiseCluster);
    }
  }
}

ClusteringSnapshot IncDbscan::Snapshot() const {
  ClusteringSnapshot snap;
  snap.ids.reserve(records_.size());
  snap.categories.reserve(records_.size());
  snap.cids.reserve(records_.size());
  for (const auto& [id, rec] : records_) {
    snap.ids.push_back(id);
    snap.categories.push_back(rec.category);
    snap.cids.push_back(rec.category == Category::kNoise
                            ? kNoiseCluster
                            : static_cast<const ClusterRegistry&>(registry_)
                                  .Find(rec.cid));
  }
  // Hash-ordered fill above; emit id-sorted (see ClusteringSnapshot).
  snap.SortById();
  return snap;
}

}  // namespace disc
