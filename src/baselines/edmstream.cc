#include "baselines/edmstream.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <limits>

namespace disc {

EdmStream::EdmStream(std::uint32_t dims, const Options& options)
    : dims_(dims), options_(options), seeds_(dims, options.radius) {}

double EdmStream::Decayed(double value, std::uint64_t last) const {
  const double dt = static_cast<double>(now_ - last);
  return value * std::exp2(-options_.decay_lambda * dt);
}

void EdmStream::Ingest(const Point& p) {
  ++now_;
  // Nearest cell within the radius absorbs the point.
  std::int64_t best_cell = -1;
  double best = options_.radius * options_.radius;
  seeds_.RangeSearch(p, options_.radius, [&](PointId cell_id, const Point& s) {
    const double d = SquaredDistance(s, p);
    if (d <= best) {
      best = d;
      best_cell = static_cast<std::int64_t>(cell_id);
    }
  });
  if (best_cell < 0) {
    Cell cell;
    cell.seed = p;
    cell.seed.id = cells_.size();
    cell.density = 1.0;
    cell.last_update = now_;
    seeds_.Insert(cell.seed);
    cells_.push_back(cell);
    assignment_[p.id] = cells_.size() - 1;
    return;
  }
  Cell& cell = cells_[best_cell];
  cell.density = Decayed(cell.density, cell.last_update) + 1.0;
  cell.last_update = now_;
  assignment_[p.id] = static_cast<std::uint64_t>(best_cell);
}

const UpdateDelta& EdmStream::Update(const std::vector<Point>& incoming,
                                     const std::vector<Point>& outgoing) {
  delta_.Clear();
  for (const Point& p : outgoing) {
    if (window_.erase(p.id) > 0) delta_.exited.push_back(p.id);
    assignment_.erase(p.id);
  }
  std::unordered_set<PointId> fresh;
  for (const Point& p : incoming) {
    if (window_.emplace(p.id, p).second) {
      delta_.entered.push_back(p.id);
      fresh.insert(p.id);
    }
    Ingest(p);
  }
  // Conservative relabel report (see UpdateDelta's contract): density decay
  // reshapes the DP-tree on every snapshot, so every surviving point is
  // listed.
  for (const auto& [id, p] : window_) {
    if (fresh.count(id) == 0) delta_.relabeled.push_back(id);
  }
  // The fill above walks a hash table; report the ids in a stable order.
  std::sort(delta_.relabeled.begin(), delta_.relabeled.end());
  return delta_;
}

ClusteringSnapshot EdmStream::Snapshot() const {
  // Rebuild the DP-tree: each cell depends on its nearest higher-density
  // cell; cells whose dependent distance exceeds the threshold (or that have
  // the globally highest density) become cluster roots.
  const std::size_t n = cells_.size();
  std::vector<double> rho(n);
  for (std::size_t i = 0; i < n; ++i) {
    rho[i] = Decayed(cells_[i].density, cells_[i].last_update);
  }
  std::vector<std::int64_t> parent(n, -1);
  std::vector<double> delta(n, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      // Ties on density broken by index so the dependency graph is acyclic.
      if (rho[j] > rho[i] || (rho[j] == rho[i] && j < i)) {
        const double d = SquaredDistance(cells_[j].seed, cells_[i].seed);
        if (d < delta[i]) {
          delta[i] = d;
          parent[i] = static_cast<std::int64_t>(j);
        }
      }
    }
  }
  const double cut2 = options_.delta_threshold * options_.delta_threshold;
  std::vector<std::int64_t> cluster(n, -2);  // -2 unresolved, -1 outlier.
  std::int64_t next = 0;
  // Resolve each cell by walking up the dependency chain.
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> path;
    std::size_t cur = i;
    while (cluster[cur] == -2) {
      if (rho[cur] < options_.rho_min) {
        cluster[cur] = -1;  // Outlier cell.
        break;
      }
      if (parent[cur] < 0 || delta[cur] > cut2) {
        cluster[cur] = next++;  // Density peak: new cluster root.
        break;
      }
      path.push_back(cur);
      cur = static_cast<std::size_t>(parent[cur]);
    }
    const std::int64_t c = cluster[cur];
    for (std::size_t node : path) cluster[node] = c;
  }

  ClusteringSnapshot snap;
  snap.ids.reserve(window_.size());
  snap.categories.reserve(window_.size());
  snap.cids.reserve(window_.size());
  for (const auto& [id, p] : window_) {
    snap.ids.push_back(id);
    auto it = assignment_.find(id);
    std::int64_t label = -1;
    if (it != assignment_.end()) label = cluster[it->second];
    if (label < 0) {
      snap.categories.push_back(Category::kNoise);
      snap.cids.push_back(kNoiseCluster);
    } else {
      snap.categories.push_back(Category::kCore);
      snap.cids.push_back(label);
    }
  }
  // Hash-ordered fill above; emit id-sorted (see ClusteringSnapshot).
  snap.SortById();
  return snap;
}

}  // namespace disc
