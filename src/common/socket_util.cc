#include "common/socket_util.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <exception>
#include <utility>

#include "common/failpoint.h"
#include "obs/log.h"

namespace disc {

namespace {

// Table-driven IEEE CRC-32. The table is a pure function of the
// polynomial, built once at first use (thread-safe since C++11 via the
// function-local static).
const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status OpenTcpListener(const std::string& bind_address, std::uint16_t port,
                       int backlog, int* listen_fd,
                       std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Error(std::string("socket(): ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Error("bad bind address \"" + bind_address + "\"");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Error("cannot bind " + bind_address + ":" +
                         std::to_string(port) + ": " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Error(std::string("getsockname(): ") + error);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Error(std::string("listen(): ") + error);
  }
  *listen_fd = fd;
  *bound_port = ntohs(bound.sin_port);
  return Status::Ok();
}

void SetIoTimeouts(int fd, int seconds) {
  timeval timeout{};
  timeout.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
}

bool SendAllBytes(int fd, const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;  // Peer went away; nothing useful to do.
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t RecvFully(int fd, void* data, std::size_t size) {
  char* bytes = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, bytes + got, size - got, 0);
    if (n <= 0) break;  // EOF, reset, or timeout: report the torn count.
    got += static_cast<std::size_t>(n);
  }
  return got;
}

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

SocketServer::SocketServer(SocketServerOptions options)
    : options_(std::move(options)) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Error(options_.name + " server already running on port " +
                         std::to_string(bound_port_));
  }
  if (!options_.handler) {
    return Status::Error(options_.name +
                         " server needs a connection handler");
  }
  int fd = -1;
  std::uint16_t bound = 0;
  if (Status opened =
          OpenTcpListener(options_.bind_address, options_.port,
                          options_.listen_backlog, &fd, &bound);
      !opened.ok()) {
    return opened;
  }
  int wake[2] = {-1, -1};
  if (::pipe(wake) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Error(std::string("pipe(): ") + error);
  }
  listen_fd_ = fd;
  wake_read_fd_ = wake[0];
  wake_write_fd_ = wake[1];
  bound_port_ = bound;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  const std::size_t workers =
      options_.worker_threads == 0 ? 1 : options_.worker_threads;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  DISC_LOG(kInfo, "sockserv.started")
      .Str("server", options_.name)
      .Str("address", options_.bind_address)
      .Num("port", bound_port_)
      .Num("workers", workers);
  return Status::Ok();
}

void SocketServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  const char wake_byte = 'x';
  // A failed wake write leaves the 1 s poll timeout as the fallback.
  if (wake_write_fd_ >= 0) {
    [[maybe_unused]] const ssize_t written =
        ::write(wake_write_fd_, &wake_byte, 1);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Workers exit once the queue drains, so nothing should be left; close
  // defensively anyway.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (const int pending_fd : pending_) ::close(pending_fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  DISC_LOG(kInfo, "sockserv.stopped")
      .Str("server", options_.name)
      .Num("port", bound_port_);
  bound_port_ = 0;
}

void SocketServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_read_fd_;
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int ready = ::poll(fds, 2, /*timeout_ms=*/1000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Stop() wrote the wake byte.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    if (options_.accept_failpoint != nullptr && failpoint::Armed()) {
      try {
        failpoint::Hit(options_.accept_failpoint);
      } catch (const std::exception& e) {
        // An injected accept fault costs one connection (the client sees
        // a reset), never the accept thread.
        DISC_LOG(kError, "sockserv.accept_fault")
            .Str("server", options_.name)
            .Str("error", e.what());
        ::close(conn);
        continue;
      }
    }
    // A stuck client must not wedge a worker: cap both directions.
    SetIoTimeouts(conn, options_.io_timeout_s);
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_.size() < options_.max_queued_connections) {
        pending_.push_back(conn);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Bounded handling: shed load in the accept thread with the owner's
      // canned response instead of queueing without limit.
      if (options_.on_overload) options_.on_overload(conn);
      ::close(conn);
      DISC_LOG(kWarn, "sockserv.overloaded")
          .Str("server", options_.name)
          .Num("queued", options_.max_queued_connections);
    }
  }
}

void SocketServer::WorkerLoop() {
  for (;;) {
    int conn = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this]() REQUIRES(queue_mutex_) {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) return;  // Stopping and drained.
      conn = pending_.front();
      pending_.pop_front();
    }
    // A throwing handler (a bug, or an injected fault) must cost one
    // connection, never the worker lane — the fd still closes and the
    // loop keeps serving.
    try {
      options_.handler(conn);
    } catch (const std::exception& e) {
      DISC_LOG(kError, "sockserv.worker_error")
          .Str("server", options_.name)
          .Str("error", e.what());
    }
    ::close(conn);
  }
}

}  // namespace disc
