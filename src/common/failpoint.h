#ifndef DISC_COMMON_FAILPOINT_H_
#define DISC_COMMON_FAILPOINT_H_

// Deterministic fault injection (docs/ANALYSIS.md §Fault injection).
//
// Production code marks its failure-prone seams with named failpoints:
//
//   DISC_FAILPOINT("checkpoint.write.pre_rename");          // throw/delay
//   DISC_FAILPOINT_STATUS("engine.feed.pre");               // early-return
//   DISC_FAILPOINT_STREAM("checkpoint.save.record", os);    // torn write
//
// A test arms the process-wide registry with a seeded FailPlan
// (failpoint::ScopedFailPlan raii); each armed rule decides per hit —
// deterministically from (plan seed, site name, per-site hit index), so the
// fire pattern at a site is reproducible regardless of thread interleaving —
// whether to inject a disc::Status error, throw failpoint::InjectedFault,
// poison an output stream after a torn prefix, or delay. Per-site hit/fire
// counters survive Disarm() and export through obs::MetricsRegistry so
// harnesses can assert a fault actually fired.
//
// Cost model: with the DISC_FAILPOINTS CMake option OFF the macros compile
// to nothing. With it ON (the default, so sanitizer and chaos legs exercise
// the same binaries CI ships), an unarmed site is one relaxed atomic load
// and a predictable branch — no registry access, no allocation, no lock.
// Only an armed plan pays the slow path.
//
// Naming convention: "<layer>.<operation>[.<phase>]", lower-case, dots as
// separators — e.g. "engine.session.slide", "http.response.send". The site
// string is the stable identity tests key rules and counter assertions on;
// renaming one is an API change for the chaos harness.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace disc {
namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace failpoint {

// What an armed rule injects when it fires. Sites honor the closest
// behavior their macro form can express (see the Hit* helpers): a kStatus
// rule at a void site throws InjectedFault, a kShortWrite rule at a stream
// site poisons the stream's failbit after the bytes already written.
enum class FailAction : std::uint8_t {
  kStatus,      // Return Status::Error(message) from the enclosing function.
  kThrow,       // Throw failpoint::InjectedFault(message).
  kShortWrite,  // Truncate the write: poison the stream / cap bytes sent.
  kDelay,       // Sleep delay_ms, then continue normally.
};

const char* FailActionName(FailAction action);

// One armed site. Every hit past `skip` fires with `probability` (decided
// by the plan's seeded rng) until `max_fires` faults have been injected.
struct FailRule {
  std::string site;
  FailAction action = FailAction::kStatus;
  double probability = 1.0;  // Chance each eligible hit fires, in [0, 1].
  std::uint64_t skip = 0;    // Hits at this site that never fire.
  std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max();
  std::uint32_t delay_ms = 1;          // kDelay sleep length.
  std::size_t short_write_limit = 0;   // kShortWrite: bytes allowed through.
  std::string message;                 // Defaults to "injected fault at <site>".
};

// A seeded set of rules. The seed fully determines which hits fire: the
// decision for hit #i at a site is a pure function of (seed, site, i).
struct FailPlan {
  std::uint64_t seed = 0;
  std::vector<FailRule> rules;
};

// Thrown by kThrow rules (and by kStatus rules at void sites, so the fault
// still surfaces instead of vanishing). Chaos harnesses catch this type to
// distinguish injected faults from genuine bugs.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {
// Process-wide armed flag, read on every compiled-in site. Relaxed is
// sufficient: arming happens-before the workload via the test's own
// synchronization (threads started after Arm, or a joined drain).
extern std::atomic<bool> g_armed;
}  // namespace internal

// True while a FailPlan is armed. The macros check this inline so unarmed
// sites never reach the registry.
inline bool Armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

// Process-wide failpoint state: at most one armed plan, plus per-site
// hit/fire counters that persist until the next Arm().
class Registry {
 public:
  static Registry& Instance();

  // Installs `plan` and resets all counters. Arming while armed replaces
  // the previous plan. Do not race Arm/Disarm with a workload mid-flight;
  // hits themselves are thread-safe.
  void Arm(FailPlan plan) EXCLUDES(mutex_);
  void Disarm() EXCLUDES(mutex_);

  // Counters from the most recent armed run. A *hit* is one evaluation of
  // an armed site (whether or not any rule matched); a *fire* is one
  // injected fault. Both survive Disarm() so tests assert after teardown.
  std::uint64_t Hits(std::string_view site) const EXCLUDES(mutex_);
  std::uint64_t Fires(std::string_view site) const EXCLUDES(mutex_);
  std::uint64_t TotalFires() const EXCLUDES(mutex_);

  // Snapshots every per-site counter into `metrics` as
  //   disc_failpoint_hits_<site> / disc_failpoint_fires_<site>
  // (site sanitized by MetricsRegistry::SanitizeName, counters created on
  // first export). Call after — or during — a chaos run to assert firing
  // through the same exposition pipeline production scrapes use.
  void ExportCounters(obs::MetricsRegistry& metrics) const EXCLUDES(mutex_);

  // Slow-path entry points behind the DISC_FAILPOINT* macros; callers must
  // have seen Armed() == true (they re-check under the lock, so a benign
  // race with Disarm is safe). Exposed for function-form call sites (e.g.
  // inside lambdas where an early `return Status` does not fit).
  struct Decision {
    bool fire = false;
    FailAction action = FailAction::kStatus;
    std::uint32_t delay_ms = 0;
    std::size_t short_write_limit = 0;
    std::string message;
  };
  Decision Evaluate(const char* site) EXCLUDES(mutex_);

 private:
  Registry() = default;

  struct SiteState {
    const FailRule* rule = nullptr;  // Into plan_.rules; null = counting only.
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  mutable std::mutex mutex_;
  bool armed_ GUARDED_BY(mutex_) = false;
  FailPlan plan_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, SiteState> sites_ GUARDED_BY(mutex_);
};

// --- Slow-path helpers the macros expand to (armed sites only). ---

// Void site: kThrow and kStatus throw InjectedFault, kDelay sleeps,
// kShortWrite counts the fire but has nothing to truncate.
void Hit(const char* site);

// Status site: kStatus returns the injected error, kThrow throws, kDelay
// sleeps then returns Ok, kShortWrite returns Ok (counted).
Status HitStatus(const char* site);

// Stream site: kShortWrite and kStatus set failbit on `os` — every byte
// already written stays, forming a torn prefix the next reader must
// survive; kThrow throws, kDelay sleeps.
void HitStream(const char* site, std::ostream& os);

// Send-budget site for raw-fd writers (http response path): returns how
// many of `full_size` bytes the caller may actually send — `full_size`
// normally, the rule's short_write_limit when a kShortWrite fires. kThrow
// throws, kDelay sleeps, kStatus returns 0 (abandon the response).
std::size_t HitSendBudget(const char* site, std::size_t full_size);

// Arms on construction, disarms on destruction. Counters remain readable
// after destruction (until the next Arm).
class ScopedFailPlan {
 public:
  explicit ScopedFailPlan(FailPlan plan) {
    Registry::Instance().Arm(std::move(plan));
  }
  ~ScopedFailPlan() { Registry::Instance().Disarm(); }

  ScopedFailPlan(const ScopedFailPlan&) = delete;
  ScopedFailPlan& operator=(const ScopedFailPlan&) = delete;
};

}  // namespace failpoint
}  // namespace disc

// DISC_FAILPOINTS_ENABLED comes in on the compile line (PUBLIC on
// disc_obs, mirroring DISC_TRACING_ENABLED); default off so embedding
// this header without the build flag costs nothing.
#ifndef DISC_FAILPOINTS_ENABLED
#define DISC_FAILPOINTS_ENABLED 0
#endif

#if DISC_FAILPOINTS_ENABLED

// Side-effect site inside any function: may throw or delay.
#define DISC_FAILPOINT(site_name)                               \
  do {                                                          \
    if (::disc::failpoint::Armed()) {                           \
      ::disc::failpoint::Hit(site_name);                        \
    }                                                           \
  } while (0)

// Site inside a Status-returning function: a fired kStatus rule makes the
// enclosing function return the injected error.
#define DISC_FAILPOINT_STATUS(site_name)                        \
  do {                                                          \
    if (::disc::failpoint::Armed()) {                           \
      ::disc::Status disc_failpoint_status =                    \
          ::disc::failpoint::HitStatus(site_name);              \
      if (!disc_failpoint_status.ok()) {                        \
        return disc_failpoint_status;                           \
      }                                                         \
    }                                                           \
  } while (0)

// Site inside serialization code writing to `stream_expr`: a fired
// kShortWrite poisons the stream, leaving a torn prefix on disk.
#define DISC_FAILPOINT_STREAM(site_name, stream_expr)           \
  do {                                                          \
    if (::disc::failpoint::Armed()) {                           \
      ::disc::failpoint::HitStream(site_name, stream_expr);     \
    }                                                           \
  } while (0)

#else  // !DISC_FAILPOINTS_ENABLED

#define DISC_FAILPOINT(site_name) \
  do {                            \
  } while (0)
#define DISC_FAILPOINT_STATUS(site_name) \
  do {                                   \
  } while (0)
#define DISC_FAILPOINT_STREAM(site_name, stream_expr) \
  do {                                                \
  } while (0)

#endif  // DISC_FAILPOINTS_ENABLED

#endif  // DISC_COMMON_FAILPOINT_H_
