#include "common/stats.h"

namespace disc {

void StatsAccumulator::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  sum_ += value;
  ++count_;
}

}  // namespace disc
