#ifndef DISC_COMMON_STATUS_H_
#define DISC_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace disc {

// Lightweight operation status: ok, or an error with a human-readable
// message. Fallible library operations that used to return bare bools
// (checkpoint save/load, engine session admission, config validation)
// return a Status instead, so multi-tenant callers can report *which*
// resource failed and why — e.g. DiscEngine::Open names the session whose
// recovery failed rather than collapsing everything into `false`.
//
// A default-constructed Status is OK. The message of an OK status is empty.
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

  // `if (status) ...` reads as "if the operation succeeded".
  explicit operator bool() const { return ok_; }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace disc

#endif  // DISC_COMMON_STATUS_H_
