#include "common/thread_pool.h"

#include <algorithm>

#include "common/failpoint.h"
#include "obs/trace.h"

namespace disc {

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::DrainBatch(std::size_t lane) {
  obs::TraceSpan span("pool.drain", obs::TraceLevel::kDetail);
  span.AddArg("lane", lane);
  std::size_t items = 0;
  try {
    for (;;) {
      const std::size_t begin = batch_next_.fetch_add(batch_chunk_);
      if (begin >= batch_n_) {
        span.AddArg("items", items);
        return;
      }
      const std::size_t end = std::min(batch_n_, begin + batch_chunk_);
      // A fired throw lands in the catch below exactly like a throwing
      // body: batch_error_ records it, the cursor parks, ParallelFor
      // rethrows on the calling thread.
      DISC_FAILPOINT("threadpool.dispatch");
      for (std::size_t i = begin; i < end; ++i) (*batch_fn_)(lane, i);
      items += end - begin;
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!batch_error_) batch_error_ = std::current_exception();
    // Park the shared cursor at the end so every lane stops claiming work.
    batch_next_.store(batch_n_);
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t chunk) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_n_ = n;
    // Small chunks balance skewed per-index costs (a probe in a dense region
    // costs far more than one in a sparse region); 8 chunks per lane keeps
    // the fetch_add traffic negligible. Callers with wildly uneven bodies
    // override with chunk = 1.
    batch_chunk_ =
        chunk != 0 ? chunk : std::max<std::size_t>(1, n / (lanes() * 8));
    batch_fn_ = &fn;
    batch_next_.store(0);
    batch_error_ = nullptr;
    workers_active_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  DrainBatch(lanes() - 1);  // The calling thread is the last lane.
  std::unique_lock<std::mutex> lock(mutex_);
  // Explicit wait loop (not the predicate overload): thread-safety analysis
  // checks a predicate lambda as a free function and would flag the
  // workers_active_ read as unguarded.
  while (workers_active_ != 0) done_cv_.wait(lock);
  batch_fn_ = nullptr;
  if (batch_error_) {
    std::exception_ptr error = batch_error_;
    batch_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop(std::size_t lane) {
  // Trace tid 0 belongs to the thread that owns the clusterer; workers are
  // lane + 1 so trace files name lanes deterministically across runs.
  obs::SetThreadTraceTid(static_cast<std::uint32_t>(lane) + 1);
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!shutdown_ && generation_ == seen) start_cv_.wait(lock);
      if (shutdown_) return;
      seen = generation_;
    }
    DrainBatch(lane);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_active_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace disc
