#ifndef DISC_COMMON_POINT_H_
#define DISC_COMMON_POINT_H_

#include <array>
#include <cstdint>
#include <string>

namespace disc {

// Maximum spatial dimensionality supported by the library. The paper's
// datasets use 2-D (DTG, COVID-19), 3-D (GeoLife) and 4-D (IRIS) points;
// eight leaves headroom without making Point heavyweight.
inline constexpr int kMaxDims = 8;

// Identifier of a streamed data point. Ids are assigned by the stream source
// in arrival order and are unique for the lifetime of a stream.
using PointId = std::uint64_t;

// A single streamed data point: an id plus a dims-dimensional coordinate.
// Points are cheap to copy and carry no clustering state; per-point
// clustering state lives inside each clusterer.
struct Point {
  PointId id = 0;
  std::uint32_t dims = 2;
  std::array<double, kMaxDims> x{};

  double operator[](int i) const { return x[i]; }
  double& operator[](int i) { return x[i]; }
};

// Squared Euclidean distance over the first `a.dims` coordinates.
// Both points must have the same dimensionality.
double SquaredDistance(const Point& a, const Point& b);

// True iff the Euclidean distance between a and b is <= eps.
bool WithinEps(const Point& a, const Point& b, double eps);

// True iff every coordinate of p is finite and p.dims is in [1, kMaxDims].
bool IsValidPoint(const Point& p);

// "(x0, x1, ...)" representation for diagnostics.
std::string ToString(const Point& p);

}  // namespace disc

#endif  // DISC_COMMON_POINT_H_
