#ifndef DISC_COMMON_THREAD_POOL_H_
#define DISC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace disc {

// A fixed-size pool of worker threads for data-parallel index-space loops.
//
// The pool exists for DISC's COLLECT fan-out: a batch of independent
// eps-range probes dispatched across lanes, with per-lane accumulators
// merged by the caller afterwards. It is intentionally minimal — no task
// queue, no futures — because every use in this codebase is a blocking
// parallel-for over a dense index range.
//
// Concurrency contract:
//  * ParallelFor may be called from ONE external thread at a time (the pool
//    is not reentrant and not usable from inside its own body).
//  * The body runs as fn(lane, index). `lane` < lanes() and is stable for
//    the duration of one index, so it can address per-lane scratch without
//    synchronization. The calling thread participates as the last lane.
//  * Index-to-lane assignment is load-balanced and therefore NOT
//    deterministic; bodies must write only to per-index or per-lane slots,
//    never to shared state, if the caller needs reproducible results.
//  * The first exception thrown by a body is rethrown on the calling thread
//    after the loop drains; remaining indices may be skipped.
class ThreadPool {
 public:
  // Spawns `workers` threads. Zero workers is valid: ParallelFor then runs
  // entirely on the calling thread with no synchronization at all.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of concurrent lanes: workers + the calling thread.
  std::size_t lanes() const { return workers_.size() + 1; }

  // Runs fn(lane, i) for every i in [0, n). Blocks until every index has
  // been executed (or abandoned after an exception). `chunk` is the number
  // of consecutive indices a lane claims per fetch_add: 0 picks the default
  // (8 chunks per lane, good for cheap mildly-skewed bodies such as range
  // probes); pass 1 when per-index costs are wildly uneven — e.g. CLUSTER's
  // speculative neo-core discoveries, where one index explores a whole
  // component while its neighbors abort instantly — so no expensive index
  // queues behind another inside one claimed chunk.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn,
                   std::size_t chunk = 0) EXCLUDES(mutex_);

 private:
  void WorkerLoop(std::size_t lane) EXCLUDES(mutex_);
  // Claims chunks of the current batch until the range is exhausted.
  void DrainBatch(std::size_t lane) EXCLUDES(mutex_);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  // Bumped once per ParallelFor batch.
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;

  // Descriptor of the in-flight batch. NOT GUARDED_BY(mutex_): the fields
  // are written under mutex_ before the generation_ bump publishes them,
  // and workers read them lock-free only after observing the bump (the
  // mutex release/acquire pair around the bump is the fence). Lock-based
  // analysis cannot express that protocol; changing the publication order
  // here is a data race even though no annotation fires.
  std::size_t batch_n_ = 0;
  std::size_t batch_chunk_ = 1;
  const std::function<void(std::size_t, std::size_t)>* batch_fn_ = nullptr;
  std::atomic<std::size_t> batch_next_{0};
  // Workers still draining the current batch; ParallelFor returns at zero.
  std::size_t workers_active_ GUARDED_BY(mutex_) = 0;
  // First exception thrown by a batch body, rethrown by ParallelFor.
  std::exception_ptr batch_error_ GUARDED_BY(mutex_);
};

// Convenience wrapper: tolerates a null pool (plain sequential loop), which
// lets call sites keep one code path for the 1-thread and N-thread configs.
inline void ParallelFor(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t chunk = 0) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  pool->ParallelFor(n, fn, chunk);
}

}  // namespace disc

#endif  // DISC_COMMON_THREAD_POOL_H_
