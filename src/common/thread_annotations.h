#ifndef DISC_COMMON_THREAD_ANNOTATIONS_H_
#define DISC_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis annotations, compiled away on other
// compilers. Annotating a member with GUARDED_BY(mutex_) lets
// `clang -Wthread-safety` (enabled through the disc_warnings target, see
// the top-level CMakeLists) prove at compile time that every access holds
// the named mutex; REQUIRES/EXCLUDES state a function's locking
// precondition. GCC accepts the code unchanged because every macro expands
// to nothing there.
//
// Only members whose EVERY access is lock-protected may carry GUARDED_BY —
// fields published through a release/acquire protocol (e.g. ThreadPool's
// batch descriptor, sequenced by the generation counter) must instead
// document their protocol in a comment, or the analysis reports false
// positives.

#if defined(__clang__) && (!defined(SWIG))
#define DISC_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define DISC_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

#define CAPABILITY(x) DISC_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

// An RAII class whose constructor acquires and destructor releases a
// capability (e.g. RTree::ConcurrentProbeScope).
#define SCOPED_CAPABILITY DISC_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define GUARDED_BY(x) DISC_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define PT_GUARDED_BY(x) DISC_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define REQUIRES(...) \
  DISC_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  DISC_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  DISC_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define ACQUIRE(...) \
  DISC_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  DISC_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  DISC_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  DISC_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

#define NO_THREAD_SAFETY_ANALYSIS \
  DISC_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // DISC_COMMON_THREAD_ANNOTATIONS_H_
