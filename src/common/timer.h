#ifndef DISC_COMMON_TIMER_H_
#define DISC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace disc {

// Monotonic wall-clock stopwatch. Mirrors the paper's use of
// System.nanoTime for elapsed-time measurements.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace disc

#endif  // DISC_COMMON_TIMER_H_
