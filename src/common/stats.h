#ifndef DISC_COMMON_STATS_H_
#define DISC_COMMON_STATS_H_

#include <cstdint>

namespace disc {

// Streaming accumulator for count / mean / min / max of a series of samples.
// Used by the benchmark harness to aggregate per-slide measurements.
class StatsAccumulator {
 public:
  void Add(double value);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace disc

#endif  // DISC_COMMON_STATS_H_
