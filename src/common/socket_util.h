#ifndef DISC_COMMON_SOCKET_UTIL_H_
#define DISC_COMMON_SOCKET_UTIL_H_

// Shared POSIX-socket plumbing for the embedded servers (the telemetry
// HTTP server, obs/http_server.h, and the binary ingest plane,
// net/ingest_server.h) plus the CRC32 the wire protocol frames carry.
//
// The serving shape both servers proved out is factored here once:
//
//   * OpenTcpListener — bind/listen with a descriptive Status and the
//     ephemeral-port readback tests rely on;
//   * SocketServer — one accept thread (poll over the listener and a
//     self-pipe wake fd, so Stop() interrupts a blocked accept instantly)
//     feeding a *bounded* queue of accepted connections drained by a
//     fixed pool of worker lanes. A full queue is shed in the accept
//     thread through the owner's `on_overload` callback (a canned 503 for
//     HTTP, a BUSY frame for the ingest plane) — bounded handling,
//     never unbounded queueing, never a silent drop;
//   * SendAllBytes / RecvFully — the partial-read/partial-write loops
//     every framed protocol needs;
//   * Crc32 — the IEEE CRC-32 the ingest frames are checked with.
//
// Concurrency: the pending-connection queue is the only shared state and
// is GUARDED_BY its mutex (machine-checked by disc_lint's lock-discipline
// rule and clang -Wthread-safety). Worker lanes own their fd exclusively
// from Pop to close. Like the servers built on it, SocketServer is
// loopback-oriented: per-connection I/O timeouts cap how long a stuck
// peer can hold a lane.
//
// Lives under src/common (a common facility, like failpoint.h) but is
// compiled into disc_obs: the implementation logs through obs/log.h and
// disc_common links disc_obs PUBLIC, so building it into disc_common
// would cycle the static-library layering.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace disc {

// IEEE CRC-32 (polynomial 0xEDB88320, the zlib/Ethernet one) over `size`
// bytes. `seed` chains incremental computation: Crc32(b, n2, Crc32(a, n1))
// equals the CRC of a||b. Deterministic across platforms, so a frame
// checksummed by any producer verifies on any consumer.
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

// Opens a listening TCP socket on bind_address:port (port 0 = ephemeral)
// with SO_REUSEADDR. On success stores the fd into *listen_fd and the
// actually-bound port into *bound_port; on failure returns a descriptive
// Status (bad address, address in use, ...) without leaking any fd.
Status OpenTcpListener(const std::string& bind_address, std::uint16_t port,
                       int backlog, int* listen_fd, std::uint16_t* bound_port);

// Applies SO_RCVTIMEO and SO_SNDTIMEO of `seconds` to `fd`, so a stuck
// peer can never wedge a worker lane indefinitely.
void SetIoTimeouts(int fd, int seconds);

// Writes all `size` bytes with MSG_NOSIGNAL, looping over short writes.
// Returns false when the peer went away mid-send (nothing useful to do
// beyond reporting).
bool SendAllBytes(int fd, const void* data, std::size_t size);

// Reads exactly `size` bytes, looping over short reads. Returns the byte
// count actually read: `size` on success, 0 on a clean EOF before any
// byte, and anything in between when the stream ended (or timed out)
// mid-read — the torn-frame case framed protocols must report.
std::size_t RecvFully(int fd, void* data, std::size_t size);

struct SocketServerOptions {
  // Short label carried on every log event this server emits
  // (`sockserv.*` with a "server" field), e.g. "telemetry" or "ingest".
  std::string name = "socket";

  std::string bind_address = "127.0.0.1";
  // 0 binds an ephemeral port; read it back via port().
  std::uint16_t port = 0;
  // Worker lanes draining accepted connections; at least 1 is enforced.
  std::size_t worker_threads = 2;
  // Accepted-but-unhandled connections beyond this are shed in the accept
  // thread via on_overload (bounded backlog instead of unbounded queueing).
  std::size_t max_queued_connections = 16;
  // Per-connection SO_RCVTIMEO/SO_SNDTIMEO, seconds.
  int io_timeout_s = 5;
  int listen_backlog = 16;

  // Optional DISC_FAILPOINT site evaluated in the accept thread right
  // after accept(); an injected throw costs that one connection (closed,
  // logged), never the accept thread.
  const char* accept_failpoint = nullptr;

  // Handles one accepted connection on a worker lane. The server closes
  // the fd after the call; a throwing handler costs one connection, never
  // the lane (the exception is caught and logged). Required.
  std::function<void(int fd)> handler;

  // Runs in the accept thread when the queue is full, before the server
  // closes the fd — send the protocol's canned shed-load response here
  // (503 for HTTP, BUSY for the ingest plane). Optional.
  std::function<void(int fd)> on_overload;
};

// The accept-thread + bounded-worker-lane server core shared by the
// telemetry HTTP server and the ingest plane. Lifecycle: Start() binds
// (port 0 = ephemeral, see port()), Stop() wakes the accept poll through
// the self-pipe, joins every thread, and closes queued connections; the
// destructor calls Stop().
class SocketServer {
 public:
  explicit SocketServer(SocketServerOptions options);
  ~SocketServer();  // Stops if running.

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds, listens, and spawns the accept + worker threads. Fails with a
  // descriptive Status without leaking any fd or thread.
  Status Start();

  // Graceful shutdown: stops accepting, joins every thread, closes queued
  // connections. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // The bound port (the ephemeral one when options.port == 0); 0 when not
  // running.
  std::uint16_t port() const {
    return running_.load(std::memory_order_acquire) ? bound_port_ : 0;
  }

 private:
  void AcceptLoop();
  void WorkerLoop();

  SocketServerOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t bound_port_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_ GUARDED_BY(queue_mutex_);
};

}  // namespace disc

#endif  // DISC_COMMON_SOCKET_UTIL_H_
