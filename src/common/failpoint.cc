#include "common/failpoint.h"

#include <chrono>
#include <ostream>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"

namespace disc {
namespace failpoint {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

// FNV-1a: a stable site hash (std::hash would do today, but its value is
// implementation-defined and this one is pinned for replay logs).
std::uint64_t HashSite(std::string_view site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// splitmix64 finalizer, mixing (plan seed, site hash, hit index) into one
// well-distributed Rng seed per hit.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void Sleep(std::uint32_t delay_ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
}

void LogFire(const char* site, const Registry::Decision& d) {
  DISC_LOG(kWarn, "failpoint.fired")
      .Str("failpoint", site)
      .Str("action", FailActionName(d.action));
}

}  // namespace

const char* FailActionName(FailAction action) {
  switch (action) {
    case FailAction::kStatus:
      return "status";
    case FailAction::kThrow:
      return "throw";
    case FailAction::kShortWrite:
      return "short_write";
    case FailAction::kDelay:
      return "delay";
  }
  return "unknown";
}

Registry& Registry::Instance() {
  static Registry* instance = new Registry();  // Leaked: process lifetime.
  return *instance;
}

void Registry::Arm(FailPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = std::move(plan);
  sites_.clear();
  for (const FailRule& rule : plan_.rules) {
    SiteState& state = sites_[rule.site];
    // First rule for a site wins; a duplicate is almost certainly a typo'd
    // plan, so say so instead of silently shadowing.
    if (state.rule != nullptr) {
      DISC_LOG(kWarn, "failpoint.duplicate_rule").Str("failpoint", rule.site);
      continue;
    }
    state.rule = &rule;
  }
  armed_ = true;
  internal::g_armed.store(true, std::memory_order_relaxed);
}

void Registry::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  internal::g_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t Registry::Hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t Registry::Fires(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0 : it->second.fires;
}

std::uint64_t Registry::TotalFires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [site, state] : sites_) total += state.fires;
  return total;
}

void Registry::ExportCounters(obs::MetricsRegistry& metrics) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [site, state] : sites_) {
    const std::string suffix = obs::MetricsRegistry::SanitizeName(site);
    obs::Counter& hits = metrics.counter(
        "disc_failpoint_hits_" + suffix,
        "Evaluations of this armed failpoint site.");
    obs::Counter& fires = metrics.counter(
        "disc_failpoint_fires_" + suffix,
        "Faults injected at this failpoint site.");
    // Counters only grow between exports (Arm resets sites_, but a fresh
    // export then restarts from the new totals), so top up the delta.
    if (state.hits > hits.value()) hits.Add(state.hits - hits.value());
    if (state.fires > fires.value()) fires.Add(state.fires - fires.value());
  }
}

Registry::Decision Registry::Evaluate(const char* site) {
  Decision decision;
  std::uint64_t hit_index = 0;
  const FailRule* rule = nullptr;
  std::uint64_t plan_seed = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_) return decision;  // Benign race with Disarm.
    SiteState& state = sites_[site];
    hit_index = state.hits++;
    rule = state.rule;
    if (rule == nullptr) return decision;  // Counting-only site.
    if (hit_index < rule->skip) return decision;
    if (state.fires >= rule->max_fires) return decision;
    plan_seed = plan_.seed;
    // The per-hit draw depends only on (seed, site, hit index) — never on
    // which thread got here first — so fire patterns replay exactly.
    if (rule->probability < 1.0) {
      Rng rng(Mix(plan_seed ^ HashSite(rule->site) ^
                  Mix(hit_index + 0x51ed270b0a1882f1ULL)));
      if (!rng.Bernoulli(rule->probability)) return decision;
    }
    ++state.fires;
    decision.fire = true;
    decision.action = rule->action;
    decision.delay_ms = rule->delay_ms;
    decision.short_write_limit = rule->short_write_limit;
    decision.message = rule->message.empty()
                           ? std::string("injected fault at ") + rule->site
                           : rule->message;
  }
  LogFire(site, decision);  // Outside the lock: the log layer has its own.
  return decision;
}

void Hit(const char* site) {
  const Registry::Decision d = Registry::Instance().Evaluate(site);
  if (!d.fire) return;
  switch (d.action) {
    case FailAction::kStatus:
    case FailAction::kThrow:
      throw InjectedFault(d.message);
    case FailAction::kDelay:
      Sleep(d.delay_ms);
      return;
    case FailAction::kShortWrite:
      return;  // Nothing to truncate at a void site; the fire is counted.
  }
}

Status HitStatus(const char* site) {
  const Registry::Decision d = Registry::Instance().Evaluate(site);
  if (!d.fire) return Status::Ok();
  switch (d.action) {
    case FailAction::kStatus:
      return Status::Error(d.message);
    case FailAction::kThrow:
      throw InjectedFault(d.message);
    case FailAction::kDelay:
      Sleep(d.delay_ms);
      return Status::Ok();
    case FailAction::kShortWrite:
      return Status::Ok();
  }
  return Status::Ok();
}

void HitStream(const char* site, std::ostream& os) {
  const Registry::Decision d = Registry::Instance().Evaluate(site);
  if (!d.fire) return;
  switch (d.action) {
    case FailAction::kShortWrite:
    case FailAction::kStatus:
      // Everything already written stays put; the poisoned stream swallows
      // the rest, so the file ends as a torn prefix.
      os.setstate(std::ios_base::failbit);
      return;
    case FailAction::kThrow:
      throw InjectedFault(d.message);
    case FailAction::kDelay:
      Sleep(d.delay_ms);
      return;
  }
}

std::size_t HitSendBudget(const char* site, std::size_t full_size) {
  const Registry::Decision d = Registry::Instance().Evaluate(site);
  if (!d.fire) return full_size;
  switch (d.action) {
    case FailAction::kShortWrite:
      return d.short_write_limit < full_size ? d.short_write_limit : full_size;
    case FailAction::kStatus:
      return 0;  // Abandon the response outright.
    case FailAction::kThrow:
      throw InjectedFault(d.message);
    case FailAction::kDelay:
      Sleep(d.delay_ms);
      return full_size;
  }
  return full_size;
}

}  // namespace failpoint
}  // namespace disc
