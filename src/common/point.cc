#include "common/point.h"

#include <cmath>
#include <sstream>

namespace disc {

double SquaredDistance(const Point& a, const Point& b) {
  double sum = 0.0;
  for (std::uint32_t i = 0; i < a.dims; ++i) {
    const double d = a.x[i] - b.x[i];
    sum += d * d;
  }
  return sum;
}

bool WithinEps(const Point& a, const Point& b, double eps) {
  return SquaredDistance(a, b) <= eps * eps;
}

bool IsValidPoint(const Point& p) {
  if (p.dims < 1 || p.dims > static_cast<std::uint32_t>(kMaxDims)) {
    return false;
  }
  for (std::uint32_t i = 0; i < p.dims; ++i) {
    if (!std::isfinite(p.x[i])) return false;
  }
  return true;
}

std::string ToString(const Point& p) {
  std::ostringstream os;
  os << "#" << p.id << "(";
  for (std::uint32_t i = 0; i < p.dims; ++i) {
    if (i > 0) os << ", ";
    os << p.x[i];
  }
  os << ")";
  return os.str();
}

}  // namespace disc
