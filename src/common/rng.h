#ifndef DISC_COMMON_RNG_H_
#define DISC_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace disc {

// Deterministic pseudo-random number generator used throughout the library.
// A thin wrapper around std::mt19937_64 with convenience draws; every
// generator and benchmark takes an explicit seed so runs are reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace disc

#endif  // DISC_COMMON_RNG_H_
