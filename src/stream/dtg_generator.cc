#include "stream/dtg_generator.h"

#include <algorithm>
#include <cmath>

namespace disc {

DtgGenerator::DtgGenerator(const Options& options)
    : options_(options), rng_(options.seed) {
  num_roads_ = std::max(
      2, static_cast<int>(options_.extent / options_.road_spacing) + 1);
  zones_.reserve(options_.num_zones);
  for (int i = 0; i < options_.num_zones; ++i) {
    Zone z;
    z.horizontal = rng_.Bernoulli(0.5);
    z.road_pos = options_.road_spacing *
                 static_cast<double>(rng_.UniformInt(0, num_roads_ - 1));
    z.center = rng_.Uniform(options_.zone_length,
                            options_.extent - options_.zone_length);
    zones_.push_back(z);
  }
}

LabeledPoint DtgGenerator::Next() {
  LabeledPoint lp;
  lp.point.id = TakeId();
  lp.point.dims = 2;

  double along, across;
  bool horizontal;
  if (!rng_.Bernoulli(options_.background_fraction)) {
    const int zi = static_cast<int>(
        rng_.UniformInt(0, static_cast<std::int64_t>(zones_.size()) - 1));
    const Zone& z = zones_[zi];
    horizontal = z.horizontal;
    // Congested vehicles bunch up along the zone.
    along = z.center + rng_.Uniform(-options_.zone_length / 2.0,
                                    options_.zone_length / 2.0);
    across = z.road_pos + rng_.Normal(0.0, options_.lane_stddev);
    lp.true_label = zi;
  } else {
    // Free-flow vehicle anywhere on the network.
    horizontal = rng_.Bernoulli(0.5);
    along = rng_.Uniform(0.0, options_.extent);
    across = options_.road_spacing *
                 static_cast<double>(rng_.UniformInt(0, num_roads_ - 1)) +
             rng_.Normal(0.0, options_.lane_stddev);
    lp.true_label = -1;
  }
  if (horizontal) {
    lp.point.x[0] = along;
    lp.point.x[1] = across;
  } else {
    lp.point.x[0] = across;
    lp.point.x[1] = along;
  }
  return lp;
}

}  // namespace disc
