#ifndef DISC_STREAM_SLIDING_WINDOW_H_
#define DISC_STREAM_SLIDING_WINDOW_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "common/point.h"

namespace disc {

// The batch of points entering and exiting the window in one slide.
struct WindowDelta {
  std::vector<Point> incoming;
  std::vector<Point> outgoing;
};

// Count-based sliding window (Sec. II-B): `window_size` points are live at a
// time and the window advances by `stride` points per slide. The first
// window fills gradually: slides before the window is full evict nothing.
class CountBasedWindow {
 public:
  CountBasedWindow(std::size_t window_size, std::size_t stride);

  // Resumption constructor: seeds the window with existing contents in
  // arrival order (e.g., Disc::WindowContents() after LoadCheckpoint).
  CountBasedWindow(std::size_t window_size, std::size_t stride,
                   std::vector<Point> contents);

  // Pushes the next stride of points (must have exactly stride() elements
  // unless the stream is ending) and returns what entered/exited.
  WindowDelta Advance(std::vector<Point> next_stride);

  const std::deque<Point>& contents() const { return contents_; }
  std::size_t window_size() const { return window_size_; }
  std::size_t stride() const { return stride_; }
  bool full() const { return contents_.size() >= window_size_; }

 private:
  std::size_t window_size_;
  std::size_t stride_;
  std::deque<Point> contents_;
};

// Time-based sliding window: points carry a timestamp (seconds); the window
// keeps points with timestamp in (now - window_span, now] and advances by
// stride_span at a time. DISC is agnostic to which model feeds it (Sec. II-B).
class TimeBasedWindow {
 public:
  struct TimedPoint {
    Point point;
    double timestamp = 0.0;
  };

  TimeBasedWindow(double window_span, double stride_span);

  // Ingests points with timestamps <= the new window end and evicts expired
  // ones. Points must arrive in non-decreasing timestamp order.
  WindowDelta Advance(const std::vector<TimedPoint>& arrivals);

  double window_end() const { return window_end_; }
  const std::deque<TimedPoint>& contents() const { return contents_; }

 private:
  double window_span_;
  double stride_span_;
  double window_end_ = 0.0;
  std::deque<TimedPoint> contents_;
};

}  // namespace disc

#endif  // DISC_STREAM_SLIDING_WINDOW_H_
