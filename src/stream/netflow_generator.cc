#include "stream/netflow_generator.h"

namespace disc {

NetflowGenerator::NetflowGenerator(const Options& options)
    : options_(options), rng_(options.seed) {
  profiles_.reserve(options_.num_profiles);
  for (int i = 0; i < options_.num_profiles; ++i) {
    // Spread profiles across the feature space with a minimum separation so
    // normal services form distinct clusters.
    Profile p;
    p.log_bytes = 2.0 + 2.0 * (i % 3) + rng_.Uniform(-0.3, 0.3);
    p.log_duration = 1.0 + 1.8 * (i / 3) + rng_.Uniform(-0.3, 0.3);
    p.port_bucket = static_cast<double>(rng_.UniformInt(0, 7));
    profiles_.push_back(p);
  }
}

LabeledPoint NetflowGenerator::Next() {
  ++emitted_;
  // Toggle burst phases: during a burst most traffic hits one profile.
  if (emitted_ % static_cast<std::uint64_t>(options_.burst_every) == 0) {
    burst_profile_ =
        static_cast<int>(rng_.UniformInt(0, options_.num_profiles - 1));
  } else if (burst_profile_ >= 0 &&
             emitted_ % static_cast<std::uint64_t>(options_.burst_every) >
                 static_cast<std::uint64_t>(options_.burst_length)) {
    burst_profile_ = -1;
  }

  LabeledPoint lp;
  lp.point.id = TakeId();
  lp.point.dims = 3;

  if (rng_.Bernoulli(options_.anomaly_fraction)) {
    // Anomalous flow: extreme byte counts / durations / odd ports, far from
    // every profile.
    lp.point.x[0] = rng_.Uniform(8.0, 12.0);
    lp.point.x[1] = rng_.Uniform(-2.0, 0.0);
    lp.point.x[2] = 8.0 + rng_.Uniform(0.0, 4.0);
    lp.true_label = -1;
    return lp;
  }

  int pi;
  if (burst_profile_ >= 0 && rng_.Bernoulli(0.7)) {
    pi = burst_profile_;
  } else {
    pi = static_cast<int>(rng_.UniformInt(0, options_.num_profiles - 1));
  }
  const Profile& p = profiles_[pi];
  lp.point.x[0] = p.log_bytes + rng_.Normal(0.0, options_.profile_stddev);
  lp.point.x[1] = p.log_duration + rng_.Normal(0.0, options_.profile_stddev);
  lp.point.x[2] = p.port_bucket + rng_.Normal(0.0, 0.1);
  lp.true_label = pi;
  return lp;
}

}  // namespace disc
