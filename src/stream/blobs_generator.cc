#include "stream/blobs_generator.h"

namespace disc {

BlobsGenerator::BlobsGenerator(const Options& options)
    : options_(options), rng_(options.seed) {
  centers_.reserve(options_.num_blobs);
  for (int i = 0; i < options_.num_blobs; ++i) {
    Point c;
    c.dims = options_.dims;
    for (std::uint32_t d = 0; d < options_.dims; ++d) {
      c.x[d] = rng_.Uniform(0.0, options_.extent);
    }
    centers_.push_back(c);
  }
}

LabeledPoint BlobsGenerator::Next() {
  LabeledPoint lp;
  lp.point.id = TakeId();
  lp.point.dims = options_.dims;

  if (rng_.Bernoulli(options_.noise_fraction)) {
    for (std::uint32_t d = 0; d < options_.dims; ++d) {
      lp.point.x[d] = rng_.Uniform(0.0, options_.extent);
    }
    lp.true_label = -1;
    return lp;
  }

  const int bi = static_cast<int>(rng_.UniformInt(0, options_.num_blobs - 1));
  Point& c = centers_[bi];
  if (options_.drift > 0.0) {
    for (std::uint32_t d = 0; d < options_.dims; ++d) {
      c.x[d] += rng_.Normal(0.0, options_.drift);
      if (c.x[d] < 0.0) c.x[d] = -c.x[d];
      if (c.x[d] > options_.extent) c.x[d] = 2.0 * options_.extent - c.x[d];
    }
  }
  for (std::uint32_t d = 0; d < options_.dims; ++d) {
    lp.point.x[d] = c.x[d] + rng_.Normal(0.0, options_.stddev);
  }
  lp.true_label = bi;
  return lp;
}

}  // namespace disc
