#include "stream/stream_source.h"

namespace disc {

std::vector<LabeledPoint> StreamSource::NextBatch(std::size_t n) {
  std::vector<LabeledPoint> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(Next());
  return batch;
}

std::vector<Point> StreamSource::NextPoints(std::size_t n) {
  std::vector<Point> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(Next().point);
  return batch;
}

UniformGenerator::UniformGenerator(std::uint32_t dims, double lo, double hi,
                                   std::uint64_t seed)
    : dims_(dims), lo_(lo), hi_(hi), rng_(seed) {}

LabeledPoint UniformGenerator::Next() {
  LabeledPoint lp;
  lp.point.id = TakeId();
  lp.point.dims = dims_;
  for (std::uint32_t i = 0; i < dims_; ++i) {
    lp.point.x[i] = rng_.Uniform(lo_, hi_);
  }
  return lp;
}

}  // namespace disc
