#include "stream/clusterer_factory.h"

#include <cctype>
#include <sstream>
#include <string>

#include "baselines/dbscan.h"
#include "baselines/extra_n.h"
#include "baselines/graph_disc.h"
#include "baselines/inc_dbscan.h"
#include "baselines/rho_dbscan.h"
#include "core/disc.h"

namespace disc {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void SetError(Status* error, Status status) {
  if (error != nullptr) *error = std::move(status);
}

}  // namespace

std::vector<std::string_view> KnownClustererMethods() {
  return {"DISC",    "DISC-graph", "IncDBSCAN", "DBSCAN",
          "EXTRA-N", "rho-DBSCAN", "DBSTREAM",  "EDMStream"};
}

std::unique_ptr<StreamClusterer> MakeClusterer(std::string_view method,
                                               const ClustererSpec& spec,
                                               Status* error) {
  SetError(error, Status::Ok());

  // The exact methods all consume the DiscConfig thresholds; reject a bad
  // config here so no constructor gets the chance to throw or assert.
  auto validated_disc_config = [&]() -> bool {
    Status valid = spec.disc.Validate();
    if (!valid.ok()) SetError(error, std::move(valid));
    return valid.ok();
  };

  if (EqualsIgnoreCase(method, "DISC")) {
    if (!validated_disc_config()) return nullptr;
    return std::make_unique<Disc>(spec.dims, spec.disc);
  }
  if (EqualsIgnoreCase(method, "DISC-graph")) {
    if (!validated_disc_config()) return nullptr;
    return std::make_unique<GraphDisc>(spec.dims, spec.disc);
  }
  if (EqualsIgnoreCase(method, "IncDBSCAN")) {
    if (!validated_disc_config()) return nullptr;
    return std::make_unique<IncDbscan>(spec.dims, spec.disc);
  }
  if (EqualsIgnoreCase(method, "DBSCAN")) {
    if (!validated_disc_config()) return nullptr;
    return std::make_unique<DbscanClusterer>(spec.dims, spec.disc.eps,
                                             spec.disc.tau,
                                             spec.disc.rtree_max_entries);
  }
  if (EqualsIgnoreCase(method, "EXTRA-N")) {
    if (!validated_disc_config()) return nullptr;
    if (spec.stride == 0 || spec.window_size == 0 ||
        spec.window_size % spec.stride != 0) {
      std::ostringstream os;
      os << "EXTRA-N needs window_size a nonzero multiple of stride, got "
         << "window_size=" << spec.window_size << " stride=" << spec.stride;
      SetError(error, Status::Error(os.str()));
      return nullptr;
    }
    return std::make_unique<ExtraN>(spec.dims, spec.disc.eps, spec.disc.tau,
                                    spec.window_size, spec.stride,
                                    spec.disc.rtree_max_entries);
  }
  if (EqualsIgnoreCase(method, "rho-DBSCAN")) {
    if (!validated_disc_config()) return nullptr;
    RhoDbscan::Options options;
    options.eps = spec.disc.eps;
    options.tau = spec.disc.tau;
    options.rho = spec.rho;
    return std::make_unique<RhoDbscan>(spec.dims, options);
  }
  if (EqualsIgnoreCase(method, "DBSTREAM")) {
    return std::make_unique<DbStream>(spec.dims, spec.dbstream);
  }
  if (EqualsIgnoreCase(method, "EDMStream")) {
    return std::make_unique<EdmStream>(spec.dims, spec.edmstream);
  }

  std::ostringstream os;
  os << "unknown clustering method \"" << std::string(method)
     << "\"; known methods:";
  for (std::string_view known : KnownClustererMethods()) os << ' ' << known;
  SetError(error, Status::Error(os.str()));
  return nullptr;
}

}  // namespace disc
