#ifndef DISC_STREAM_COVID_GENERATOR_H_
#define DISC_STREAM_COVID_GENERATOR_H_

#include <vector>

#include "stream/stream_source.h"

namespace disc {

// Synthetic analogue of the COVID-19 geo-tagged tweet dataset: a sparse,
// world-wide 2-D point stream drawn from a mixture of city hotspots with
// heavy-tailed (Zipf) popularity plus uniform background noise. Hotspot
// activity drifts slowly, emulating the epidemic's moving focus over the
// March-September 2020 span. True label = hotspot index, -1 for noise.
class CovidGenerator : public StreamSource {
 public:
  struct Options {
    int num_hotspots = 30;
    double lat_extent = 180.0;   // Domain [-90, 90] mapped to [0, 180].
    double lon_extent = 360.0;   // Domain [-180, 180] mapped to [0, 360].
    double hotspot_stddev = 0.8; // City-scale scatter (degrees).
    double noise_fraction = 0.2;
    double drift = 0.02;         // Hotspot-center drift per emission.
    std::uint64_t seed = 17;
  };

  explicit CovidGenerator(const Options& options);

  LabeledPoint Next() override;

 private:
  struct Hotspot {
    double lat, lon;
    double weight;  // Zipf popularity.
  };

  Options options_;
  Rng rng_;
  std::vector<Hotspot> hotspots_;
  double total_weight_ = 0.0;
};

}  // namespace disc

#endif  // DISC_STREAM_COVID_GENERATOR_H_
