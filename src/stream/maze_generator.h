#ifndef DISC_STREAM_MAZE_GENERATOR_H_
#define DISC_STREAM_MAZE_GENERATOR_H_

#include <vector>

#include "stream/stream_source.h"

namespace disc {

// The paper's synthetic "Maze" dataset (Sec. VI-E): `num_seeds` random seeds
// are placed in the 2-D plane and spread out over time; the trajectory traced
// by each seed forms a single ground-truth cluster. As the window grows, the
// trajectories become longer and closer to one another, so cluster shapes get
// more complicated — exactly the regime where summarization-based methods
// lose resolution.
//
// Each seed carries a walker with a persistent heading; every emission the
// walker steps forward (with slight heading jitter and reflection at the
// domain boundary) and emits `points_per_step` points jittered around its
// position, so each trajectory is locally dense. Seeds emit round-robin.
class MazeGenerator : public StreamSource {
 public:
  struct Options {
    int num_seeds = 100;
    double extent = 100.0;         // Domain is [0, extent]^2.
    double step = 0.05;            // Walker advance per emission round.
    double jitter = 0.02;          // Point scatter around the walker.
    double turn_stddev = 0.15;     // Heading drift (radians) per step.
    int points_per_step = 4;       // Points emitted per walker advance.
    std::uint64_t seed = 7;
  };

  explicit MazeGenerator(const Options& options);

  LabeledPoint Next() override;

  const Options& options() const { return options_; }

 private:
  struct Walker {
    double x, y;
    double heading;
  };

  Options options_;
  Rng rng_;
  std::vector<Walker> walkers_;
  int current_seed_ = 0;
  int emitted_at_current_ = 0;
};

}  // namespace disc

#endif  // DISC_STREAM_MAZE_GENERATOR_H_
