#ifndef DISC_STREAM_STREAM_SOURCE_H_
#define DISC_STREAM_STREAM_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/point.h"
#include "common/rng.h"

namespace disc {

// A streamed point together with its generator-assigned ground-truth label
// (-1 when the generator has no notion of truth, e.g., background noise).
struct LabeledPoint {
  Point point;
  std::int64_t true_label = -1;
};

// Base class of every synthetic data stream. Sources are endless; ids are
// assigned in arrival order starting at 0 and never repeat.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  // Produces the next point of the stream.
  virtual LabeledPoint Next() = 0;

  // Convenience: pulls n points at once.
  std::vector<LabeledPoint> NextBatch(std::size_t n);

  // Strips labels; handy when feeding clusterers directly.
  std::vector<Point> NextPoints(std::size_t n);

 protected:
  PointId TakeId() { return next_id_++; }

 private:
  PointId next_id_ = 0;
};

// Uniform noise over [lo, hi]^dims. True label is always -1.
class UniformGenerator : public StreamSource {
 public:
  UniformGenerator(std::uint32_t dims, double lo, double hi,
                   std::uint64_t seed = 1);

  LabeledPoint Next() override;

 private:
  std::uint32_t dims_;
  double lo_;
  double hi_;
  Rng rng_;
};

}  // namespace disc

#endif  // DISC_STREAM_STREAM_SOURCE_H_
