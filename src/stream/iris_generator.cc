#include "stream/iris_generator.h"

#include <cmath>

namespace disc {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

IrisGenerator::IrisGenerator(const Options& options)
    : options_(options), rng_(options.seed) {
  faults_.reserve(options_.num_faults);
  for (int i = 0; i < options_.num_faults; ++i) {
    Fault f;
    f.x0 = rng_.Uniform(0.0, options_.extent);
    f.y0 = rng_.Uniform(0.0, options_.extent);
    const double angle = rng_.Uniform(0.0, kPi);
    f.dx = std::cos(angle);
    f.dy = std::sin(angle);
    f.length = rng_.Uniform(options_.fault_length * 0.5,
                            options_.fault_length * 1.5);
    f.depth_mean = rng_.Uniform(0.5, options_.depth_scale);
    // Magnitude*10 in roughly [25, 75]; each fault has a characteristic band.
    f.mag_base = rng_.Uniform(30.0, 60.0);
    faults_.push_back(f);
  }
}

LabeledPoint IrisGenerator::Next() {
  const int fi =
      static_cast<int>(rng_.UniformInt(0, options_.num_faults - 1));
  const Fault& f = faults_[fi];

  const double along = rng_.Uniform(0.0, f.length);
  const double cross = rng_.Normal(0.0, options_.scatter);

  LabeledPoint lp;
  lp.point.id = TakeId();
  lp.point.dims = 4;
  lp.point.x[0] = f.x0 + along * f.dx - cross * f.dy;
  lp.point.x[1] = f.y0 + along * f.dy + cross * f.dx;
  // depth/10: exponential profile around the fault's characteristic depth.
  lp.point.x[2] = f.depth_mean - f.depth_mean * std::log(rng_.Uniform(1e-6, 1.0)) * 0.15;
  // magnitude*10: Gutenberg-Richter-ish, clamped to the fault's band.
  double mag = f.mag_base - 10.0 * std::log(rng_.Uniform(1e-6, 1.0)) * 0.3;
  if (mag > f.mag_base + 15.0) mag = f.mag_base + 15.0;
  lp.point.x[3] = mag;
  lp.true_label = fi;
  return lp;
}

}  // namespace disc
