#include "stream/geolife_generator.h"

#include <cmath>

namespace disc {

GeolifeGenerator::GeolifeGenerator(const Options& options)
    : options_(options), rng_(options.seed) {
  places_.reserve(options_.num_places);
  for (int i = 0; i < options_.num_places; ++i) {
    places_.push_back(Place{rng_.Uniform(0.0, options_.extent),
                            rng_.Uniform(0.0, options_.extent),
                            rng_.Uniform(0.0, options_.alt_extent)});
  }
  users_.reserve(options_.num_users);
  for (int i = 0; i < options_.num_users; ++i) {
    User u;
    const Place& start =
        places_[rng_.UniformInt(0, options_.num_places - 1)];
    u.x = start.x;
    u.y = start.y;
    u.z = start.z;
    u.target_place = -1;
    PickNewTarget(&u);
    users_.push_back(u);
  }
}

void GeolifeGenerator::PickNewTarget(User* user) {
  int next = static_cast<int>(rng_.UniformInt(0, options_.num_places - 1));
  if (next == user->target_place) {
    next = (next + 1) % options_.num_places;
  }
  user->target_place = next;
}

LabeledPoint GeolifeGenerator::Next() {
  User& u = users_[current_user_];
  const Place& target = places_[u.target_place];
  const double dx = target.x - u.x;
  const double dy = target.y - u.y;
  const double dz = target.z - u.z;
  const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
  if (dist < options_.speed) {
    u.x = target.x;
    u.y = target.y;
    u.z = target.z;
    PickNewTarget(&u);
  } else {
    const double f = options_.speed / dist;
    u.x += f * dx;
    u.y += f * dy;
    u.z += f * dz;
  }

  LabeledPoint lp;
  lp.point.id = TakeId();
  lp.point.dims = 3;
  lp.point.x[0] = u.x + rng_.Normal(0.0, options_.jitter);
  lp.point.x[1] = u.y + rng_.Normal(0.0, options_.jitter);
  lp.point.x[2] = u.z + rng_.Normal(0.0, options_.jitter / 3.0);
  lp.true_label = current_user_;

  current_user_ = (current_user_ + 1) % options_.num_users;
  return lp;
}

}  // namespace disc
