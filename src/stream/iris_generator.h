#ifndef DISC_STREAM_IRIS_GENERATOR_H_
#define DISC_STREAM_IRIS_GENERATOR_H_

#include <vector>

#include "stream/stream_source.h"

namespace disc {

// Synthetic analogue of the IRIS earthquake-event dataset: 4-D events
// (lat, lon, depth/10, magnitude*10) clustered along synthetic fault lines.
// Each event picks a fault, a position along it, a depth from an exponential
// profile characteristic of the fault, and a Gutenberg-Richter magnitude.
// True label = fault index.
class IrisGenerator : public StreamSource {
 public:
  struct Options {
    int num_faults = 25;
    double extent = 100.0;       // Lat/lon domain is [0, extent]^2.
    double fault_length = 20.0;  // Typical fault extent.
    double scatter = 0.4;        // Cross-fault scatter (degrees).
    double depth_scale = 3.0;    // Mean of depth/10 per fault family.
    std::uint64_t seed = 19;
  };

  explicit IrisGenerator(const Options& options);

  LabeledPoint Next() override;

 private:
  struct Fault {
    double x0, y0;       // One endpoint.
    double dx, dy;       // Unit direction.
    double length;
    double depth_mean;   // Characteristic depth/10 of this fault.
    double mag_base;     // Characteristic magnitude*10 (already scaled).
  };

  Options options_;
  Rng rng_;
  std::vector<Fault> faults_;
};

}  // namespace disc

#endif  // DISC_STREAM_IRIS_GENERATOR_H_
