#include "stream/sliding_window.h"

#include <cassert>

namespace disc {

CountBasedWindow::CountBasedWindow(std::size_t window_size, std::size_t stride)
    : window_size_(window_size), stride_(stride) {
  assert(window_size >= 1);
  assert(stride >= 1 && stride <= window_size);
}

CountBasedWindow::CountBasedWindow(std::size_t window_size, std::size_t stride,
                                   std::vector<Point> contents)
    : CountBasedWindow(window_size, stride) {
  assert(contents.size() <= window_size);
  for (Point& p : contents) contents_.push_back(std::move(p));
}

WindowDelta CountBasedWindow::Advance(std::vector<Point> next_stride) {
  WindowDelta delta;
  for (const Point& p : next_stride) contents_.push_back(p);
  while (contents_.size() > window_size_) {
    delta.outgoing.push_back(contents_.front());
    contents_.pop_front();
  }
  delta.incoming = std::move(next_stride);
  return delta;
}

TimeBasedWindow::TimeBasedWindow(double window_span, double stride_span)
    : window_span_(window_span), stride_span_(stride_span) {
  assert(window_span > 0.0);
  assert(stride_span > 0.0 && stride_span <= window_span);
}

WindowDelta TimeBasedWindow::Advance(const std::vector<TimedPoint>& arrivals) {
  window_end_ += stride_span_;
  WindowDelta delta;
  for (const TimedPoint& tp : arrivals) {
    assert(tp.timestamp <= window_end_);
    assert(contents_.empty() || contents_.back().timestamp <= tp.timestamp);
    contents_.push_back(tp);
    delta.incoming.push_back(tp.point);
  }
  const double cutoff = window_end_ - window_span_;
  while (!contents_.empty() && contents_.front().timestamp <= cutoff) {
    delta.outgoing.push_back(contents_.front().point);
    contents_.pop_front();
  }
  return delta;
}

}  // namespace disc
