#ifndef DISC_STREAM_RECORDING_H_
#define DISC_STREAM_RECORDING_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "stream/stream_source.h"

namespace disc {

// Binary record/replay of labeled point streams, so an experiment's exact
// input can be captured once and replayed byte-for-byte (complementing the
// seeded generators). Same-machine byte order is assumed.

// Serializes the stream prefix to `out` / the file at `path`.
bool WriteRecording(std::ostream& out, const std::vector<LabeledPoint>& points);
bool WriteRecordingFile(const std::string& path,
                        const std::vector<LabeledPoint>& points);

// Deserializes a recording; returns false (and leaves *points untouched) on
// any validation failure.
bool ReadRecording(std::istream& in, std::vector<LabeledPoint>* points);
bool ReadRecordingFile(const std::string& path,
                       std::vector<LabeledPoint>* points);

// A StreamSource replaying a recording. Ids are taken verbatim from the
// recording (they are already unique). The source is finite: callers must
// not pull more than size() points; remaining() says how many are left.
class RecordedSource : public StreamSource {
 public:
  explicit RecordedSource(std::vector<LabeledPoint> points);

  LabeledPoint Next() override;

  std::size_t size() const { return points_.size(); }
  std::size_t remaining() const { return points_.size() - position_; }

 private:
  std::vector<LabeledPoint> points_;
  std::size_t position_ = 0;
};

}  // namespace disc

#endif  // DISC_STREAM_RECORDING_H_
