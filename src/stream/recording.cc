#include "stream/recording.h"

#include <cassert>
#include <fstream>
#include <istream>
#include <ostream>

namespace disc {

namespace {

constexpr std::uint64_t kMagic = 0x44495343'53545231ULL;  // "DISCSTR1"

}  // namespace

bool WriteRecording(std::ostream& out,
                    const std::vector<LabeledPoint>& points) {
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const std::uint64_t n = points.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const LabeledPoint& lp : points) {
    out.write(reinterpret_cast<const char*>(&lp.point.id),
              sizeof(lp.point.id));
    out.write(reinterpret_cast<const char*>(&lp.point.dims),
              sizeof(lp.point.dims));
    out.write(reinterpret_cast<const char*>(lp.point.x.data()),
              sizeof(double) * kMaxDims);
    out.write(reinterpret_cast<const char*>(&lp.true_label),
              sizeof(lp.true_label));
  }
  return static_cast<bool>(out);
}

bool WriteRecordingFile(const std::string& path,
                        const std::vector<LabeledPoint>& points) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return WriteRecording(out, points);
}

bool ReadRecording(std::istream& in, std::vector<LabeledPoint>* points) {
  std::uint64_t magic = 0;
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) return false;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return false;
  std::vector<LabeledPoint> loaded;
  loaded.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    LabeledPoint lp;
    in.read(reinterpret_cast<char*>(&lp.point.id), sizeof(lp.point.id));
    in.read(reinterpret_cast<char*>(&lp.point.dims), sizeof(lp.point.dims));
    in.read(reinterpret_cast<char*>(lp.point.x.data()),
            sizeof(double) * kMaxDims);
    in.read(reinterpret_cast<char*>(&lp.true_label), sizeof(lp.true_label));
    if (!in || !IsValidPoint(lp.point)) return false;
    loaded.push_back(lp);
  }
  points->swap(loaded);
  return true;
}

bool ReadRecordingFile(const std::string& path,
                       std::vector<LabeledPoint>* points) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  return ReadRecording(in, points);
}

RecordedSource::RecordedSource(std::vector<LabeledPoint> points)
    : points_(std::move(points)) {}

LabeledPoint RecordedSource::Next() {
  assert(position_ < points_.size() && "recording exhausted");
  return points_[position_++];
}

}  // namespace disc
