#ifndef DISC_STREAM_GEOLIFE_GENERATOR_H_
#define DISC_STREAM_GEOLIFE_GENERATOR_H_

#include <vector>

#include "stream/stream_source.h"

namespace disc {

// Synthetic analogue of the GeoLife GPS-trajectory dataset: `num_users`
// users move through a 3-D space (lat, lon, normalized altitude) following a
// random-waypoint model; every emission advances one user toward its current
// waypoint and emits the position with GPS jitter. Trajectories of users who
// frequent the same places overlap, creating the merged/split cluster
// evolution typical of trajectory streams. True label = user index.
class GeolifeGenerator : public StreamSource {
 public:
  struct Options {
    int num_users = 60;
    double extent = 10.0;       // Horizontal domain is [0, extent]^2.
    double alt_extent = 0.5;    // Altitude domain (already normalized).
    int num_places = 15;        // Popular destinations users travel between.
    double speed = 0.02;        // Advance per emission.
    double jitter = 0.01;       // GPS noise.
    std::uint64_t seed = 13;
  };

  explicit GeolifeGenerator(const Options& options);

  LabeledPoint Next() override;

 private:
  struct User {
    double x, y, z;
    int target_place;
  };
  struct Place {
    double x, y, z;
  };

  void PickNewTarget(User* user);

  Options options_;
  Rng rng_;
  std::vector<Place> places_;
  std::vector<User> users_;
  int current_user_ = 0;
};

}  // namespace disc

#endif  // DISC_STREAM_GEOLIFE_GENERATOR_H_
