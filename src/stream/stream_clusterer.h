#ifndef DISC_STREAM_STREAM_CLUSTERER_H_
#define DISC_STREAM_STREAM_CLUSTERER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point.h"

namespace disc {

// Category of a point in a density-based clustering (Ester et al. '96).
enum class Category : std::uint8_t { kCore, kBorder, kNoise };

// Cluster identifier. kNoiseCluster marks points outside every cluster.
using ClusterId = std::int64_t;
inline constexpr ClusterId kNoiseCluster = -1;

// A full labeling of the current window: parallel arrays of point id,
// category, and cluster id. Cluster ids are only meaningful up to renaming;
// use eval/partition.h to canonicalize before comparing.
struct ClusteringSnapshot {
  std::vector<PointId> ids;
  std::vector<Category> categories;
  std::vector<ClusterId> cids;

  std::size_t size() const { return ids.size(); }
  // Number of distinct non-noise cluster ids.
  std::size_t NumClusters() const;
};

// Interface every windowed clustering method in this repository implements —
// DISC itself and all baselines. The stream engine calls Update once per
// window slide with the batch of points entering and exiting the window.
//
// Methods that do not support deletion (the summarization-based baselines)
// ignore `outgoing` and instead decay their internal summaries.
class StreamClusterer {
 public:
  virtual ~StreamClusterer() = default;

  // Advances the clusterer by one slide. `incoming` holds the points entering
  // the window and `outgoing` the points leaving it, in arbitrary order.
  virtual void Update(const std::vector<Point>& incoming,
                      const std::vector<Point>& outgoing) = 0;

  // Returns the labeling of every point currently in the window.
  virtual ClusteringSnapshot Snapshot() const = 0;

  // Human-readable method name for tables ("DISC", "IncDBSCAN", ...).
  virtual std::string name() const = 0;
};

}  // namespace disc

#endif  // DISC_STREAM_STREAM_CLUSTERER_H_
