#ifndef DISC_STREAM_STREAM_CLUSTERER_H_
#define DISC_STREAM_STREAM_CLUSTERER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point.h"

namespace disc {

// Category of a point in a density-based clustering (Ester et al. '96).
enum class Category : std::uint8_t { kCore, kBorder, kNoise };

// Cluster identifier. kNoiseCluster marks points outside every cluster.
using ClusterId = std::int64_t;
inline constexpr ClusterId kNoiseCluster = -1;

// A full labeling of the current window: parallel arrays of point id,
// category, and cluster id. Cluster ids are only meaningful up to renaming;
// use eval/partition.h to canonicalize before comparing.
struct ClusteringSnapshot {
  std::vector<PointId> ids;
  std::vector<Category> categories;
  std::vector<ClusterId> cids;

  std::size_t size() const { return ids.size(); }
  // Number of distinct non-noise cluster ids.
  std::size_t NumClusters() const;

  // Reorders the three parallel arrays by ascending point id. Snapshot
  // producers that fill from hash-ordered state MUST call this before
  // returning: consumers like DiffLabelings build their old/new cluster
  // bijection greedily in array order, so an unsorted snapshot leaks the
  // container's iteration order into the reported delta (enforced by the
  // unordered-emit lint rule, docs/ANALYSIS.md).
  void SortById();
};

// What one Update call changed — the unit consumers process instead of
// diffing full snapshots.
//
//  * `entered`  — points that joined the window this update.
//  * `exited`   — points that left the window this update.
//  * `relabeled`— surviving points whose stored category or cluster handle
//                 changed. Entered points are never repeated here.
//
// Precision contract: exact incremental methods (DISC, IncDBSCAN,
// DISC-graph) fill `relabeled` precisely. Methods that recompute their
// labeling from scratch each slide (DBSCAN, EXTRA-N, rho-DBSCAN) report it
// up to a bijective renaming of cluster ids (see DiffLabelings below). The
// summarization baselines (DBSTREAM, EDMStream) cannot attribute label
// changes at all and conservatively list every surviving point. In every
// case `relabeled` is a superset of the points whose label truly changed —
// implementations may over-report, never under-report. Cluster-id renaming
// that reaches untouched points only through merges is carried by the
// method's event stream (see core/events.h), not by `relabeled`.
struct UpdateDelta {
  std::vector<PointId> entered;
  std::vector<PointId> exited;
  std::vector<PointId> relabeled;

  void Clear() {
    entered.clear();
    exited.clear();
    relabeled.clear();
  }
};

// Per-phase wall-clock of the most recent Update, in milliseconds. Methods
// without a phase structure report zeros and the update's total stands in
// for the breakdown.
struct PhaseTimings {
  double collect_ms = 0.0;   // Density maintenance (DISC's COLLECT).
  double ex_phase_ms = 0.0;  // Ex-core closures + split checks.
  double neo_phase_ms = 0.0; // Neo-core closures + merge decisions.
  double recheck_ms = 0.0;   // Border/noise relabeling.
  // Portion of collect_ms spent inside the parallel probe fan-out, and the
  // number of lanes it ran on (1 = sequential).
  double collect_parallel_ms = 0.0;
  std::uint64_t threads_used = 1;
};

// Index-probe counters of the most recent Update — the "common currency"
// the paper's Figs. 7–8 use to explain speedups (range-search volume) plus
// the drill-down the epoch-probing ablation needs (docs/OBSERVABILITY.md).
// All-zero for methods whose index work is not instrumented; counters are
// workload-deterministic (identical for every thread count).
struct ProbeCounters {
  std::uint64_t range_searches = 0;      // Index probes issued.
  std::uint64_t nodes_visited = 0;       // Tree nodes expanded.
  std::uint64_t entries_checked = 0;     // Node entries examined.
  std::uint64_t leaf_entries_tested = 0; // Leaf entries distance-tested.
  std::uint64_t epoch_pruned = 0;        // Entries skipped by the epoch
                                         // check (Alg. 4 subtree pruning).
};

// Interface every windowed clustering method in this repository implements —
// DISC itself and all baselines. The stream engine calls Update once per
// window slide with the batch of points entering and exiting the window.
//
// Methods that do not support deletion (the summarization-based baselines)
// ignore `outgoing` and instead decay their internal summaries.
class StreamClusterer {
 public:
  virtual ~StreamClusterer() = default;

  // Advances the clusterer by one slide. `incoming` holds the points entering
  // the window and `outgoing` the points leaving it, in arbitrary order.
  // Returns the delta this slide produced; the reference stays valid until
  // the next Update call on the same object.
  virtual const UpdateDelta& Update(const std::vector<Point>& incoming,
                                    const std::vector<Point>& outgoing) = 0;

  // The delta returned by the most recent Update (empty before the first).
  const UpdateDelta& last_delta() const { return delta_; }

  // Wall-clock breakdown of the most recent Update, for observability
  // surfaces (SlideReport). Defaults to all-zero for methods that do not
  // instrument their phases.
  virtual PhaseTimings LastPhaseTimings() const { return PhaseTimings{}; }

  // Index-probe counters of the most recent Update (SlideReport::probes).
  // Defaults to all-zero for methods without an instrumented index.
  virtual ProbeCounters LastProbeCounters() const { return ProbeCounters{}; }

  // Returns the labeling of every point currently in the window.
  virtual ClusteringSnapshot Snapshot() const = 0;

  // Human-readable method name for tables ("DISC", "IncDBSCAN", ...).
  virtual std::string name() const = 0;

 protected:
  // Implementations fill this during Update and return it.
  UpdateDelta delta_;
};

// Fills delta->relabeled for methods that recompute their labeling from
// scratch: a surviving point counts as relabeled when its category changed
// or when its old-to-new cluster correspondence falls outside the greedy
// bijection built over the common points (first-seen pairs claim the
// mapping; later conflicts are flagged). Precise up to cluster renaming:
// every point whose label genuinely changed is listed; points caught on the
// wrong side of an ambiguous split/merge may be over-reported. `prev` and
// `curr` are the labelings before and after the update.
void DiffLabelings(const ClusteringSnapshot& prev,
                   const ClusteringSnapshot& curr, UpdateDelta* delta);

}  // namespace disc

#endif  // DISC_STREAM_STREAM_CLUSTERER_H_
