#include "stream/maze_generator.h"

#include <cmath>

namespace disc {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

MazeGenerator::MazeGenerator(const Options& options)
    : options_(options), rng_(options.seed) {
  walkers_.reserve(options_.num_seeds);
  for (int i = 0; i < options_.num_seeds; ++i) {
    Walker w;
    w.x = rng_.Uniform(0.0, options_.extent);
    w.y = rng_.Uniform(0.0, options_.extent);
    w.heading = rng_.Uniform(0.0, 2.0 * kPi);
    walkers_.push_back(w);
  }
}

LabeledPoint MazeGenerator::Next() {
  Walker& w = walkers_[current_seed_];
  if (emitted_at_current_ == 0) {
    // Advance the walker before its first emission of this round.
    w.heading += rng_.Normal(0.0, options_.turn_stddev);
    w.x += options_.step * std::cos(w.heading);
    w.y += options_.step * std::sin(w.heading);
    // Reflect at the boundary so trajectories stay inside the domain.
    if (w.x < 0.0) {
      w.x = -w.x;
      w.heading = kPi - w.heading;
    } else if (w.x > options_.extent) {
      w.x = 2.0 * options_.extent - w.x;
      w.heading = kPi - w.heading;
    }
    if (w.y < 0.0) {
      w.y = -w.y;
      w.heading = -w.heading;
    } else if (w.y > options_.extent) {
      w.y = 2.0 * options_.extent - w.y;
      w.heading = -w.heading;
    }
  }

  LabeledPoint lp;
  lp.point.id = TakeId();
  lp.point.dims = 2;
  lp.point.x[0] = w.x + rng_.Normal(0.0, options_.jitter);
  lp.point.x[1] = w.y + rng_.Normal(0.0, options_.jitter);
  lp.true_label = current_seed_;

  if (++emitted_at_current_ >= options_.points_per_step) {
    emitted_at_current_ = 0;
    current_seed_ = (current_seed_ + 1) % options_.num_seeds;
  }
  return lp;
}

}  // namespace disc
