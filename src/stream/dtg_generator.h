#ifndef DISC_STREAM_DTG_GENERATOR_H_
#define DISC_STREAM_DTG_GENERATOR_H_

#include <vector>

#include "stream/stream_source.h"

namespace disc {

// Synthetic analogue of the paper's DTG dataset (digital tachograph records
// of commercial vehicles in a metropolitan city): 2-D vehicle positions
// concentrated along a grid road network, with congestion hotspots on the
// roads forming the density-based clusters. The roads run in close proximity
// (spacing configurable), which is exactly why the paper needs a small
// distance threshold eps to distinguish them.
//
// Each emitted point picks a congestion zone with probability
// (1 - background_fraction) or a uniformly random road position otherwise.
// A congestion zone lives on one road and spreads along it; across-road
// scatter is a few lane widths. True label = zone index, -1 for background.
class DtgGenerator : public StreamSource {
 public:
  struct Options {
    double extent = 10.0;          // City is [0, extent]^2.
    double road_spacing = 1.0;     // Distance between parallel roads.
    double lane_stddev = 0.005;    // Across-road scatter.
    int num_zones = 40;            // Congestion zones (dense clusters).
    double zone_length = 0.35;     // Along-road extent of a zone.
    double background_fraction = 0.25;  // Free-flow traffic share.
    std::uint64_t seed = 11;
  };

  explicit DtgGenerator(const Options& options);

  LabeledPoint Next() override;

  const Options& options() const { return options_; }

 private:
  struct Zone {
    bool horizontal;   // Orientation of the road the zone sits on.
    double road_pos;   // Coordinate of the road line.
    double center;     // Along-road center of the congestion.
  };

  Options options_;
  Rng rng_;
  std::vector<Zone> zones_;
  int num_roads_;
};

}  // namespace disc

#endif  // DISC_STREAM_DTG_GENERATOR_H_
