#ifndef DISC_STREAM_CLUSTERER_FACTORY_H_
#define DISC_STREAM_CLUSTERER_FACTORY_H_

// Name-keyed construction of every windowed clustering method in the
// repository, so hosts that select a method at runtime — DiscEngine
// sessions, benchmark drivers, examples — share one switch instead of each
// hand-rolling its own.

#include <memory>
#include <string_view>
#include <vector>

#include "baselines/dbstream.h"
#include "baselines/edmstream.h"
#include "common/status.h"
#include "core/config.h"
#include "stream/stream_clusterer.h"

namespace disc {

// Everything MakeClusterer needs to instantiate any method. The exact
// methods read eps/tau (and the index/threading knobs) from `disc`; the
// summarization baselines carry their own option structs, defaulted to the
// regimes the paper benchmarks use.
struct ClustererSpec {
  std::uint32_t dims = 2;

  // Window geometry. Required by EXTRA-N (its predicted-view state is laid
  // out in window/stride sub-windows, so window_size must be a nonzero
  // multiple of stride); ignored by every other method.
  std::size_t window_size = 0;
  std::size_t stride = 0;

  // Shared thresholds and execution knobs (DISC, DISC-graph, IncDBSCAN,
  // DBSCAN, EXTRA-N), and the source of rho-DBSCAN's eps/tau.
  DiscConfig disc;

  // rho-DBSCAN approximation parameter (its eps/tau come from `disc`).
  double rho = 0.001;

  // Summarization-method options.
  DbStream::Options dbstream;
  EdmStream::Options edmstream;
};

// Constructs the method named by `method`. Accepted keys (matching the
// name() of the produced clusterer, compared case-insensitively):
//
//   "DISC", "DISC-graph", "IncDBSCAN", "DBSCAN", "EXTRA-N", "rho-DBSCAN",
//   "DBSTREAM", "EDMStream"
//
// Returns null — with the reason in *error when provided — for an unknown
// method or a spec the method rejects (invalid DiscConfig, EXTRA-N without
// a window/stride). Never throws.
std::unique_ptr<StreamClusterer> MakeClusterer(std::string_view method,
                                               const ClustererSpec& spec,
                                               Status* error = nullptr);

// The keys MakeClusterer accepts, in canonical order (DISC first).
std::vector<std::string_view> KnownClustererMethods();

}  // namespace disc

#endif  // DISC_STREAM_CLUSTERER_FACTORY_H_
