#ifndef DISC_STREAM_BLOBS_GENERATOR_H_
#define DISC_STREAM_BLOBS_GENERATOR_H_

#include <vector>

#include "stream/stream_source.h"

namespace disc {

// Gaussian-blob mixture stream with optional center drift and background
// noise. Primarily used by tests: drifting blobs force every kind of cluster
// evolution (emergence, growth, merger, split, shrink, dissipation) as the
// window slides. True label = blob index, -1 for noise.
class BlobsGenerator : public StreamSource {
 public:
  struct Options {
    std::uint32_t dims = 2;
    int num_blobs = 5;
    double extent = 10.0;      // Domain is [0, extent]^dims.
    double stddev = 0.15;      // Blob scatter.
    double noise_fraction = 0.1;
    double drift = 0.0;        // Per-emission center drift stddev.
    std::uint64_t seed = 23;
  };

  explicit BlobsGenerator(const Options& options);

  LabeledPoint Next() override;

  // Current blob centers (test hooks).
  const std::vector<Point>& centers() const { return centers_; }

 private:
  Options options_;
  Rng rng_;
  std::vector<Point> centers_;
};

}  // namespace disc

#endif  // DISC_STREAM_BLOBS_GENERATOR_H_
