#include "stream/covid_generator.h"

#include <cmath>

namespace disc {

CovidGenerator::CovidGenerator(const Options& options)
    : options_(options), rng_(options.seed) {
  hotspots_.reserve(options_.num_hotspots);
  for (int i = 0; i < options_.num_hotspots; ++i) {
    Hotspot h;
    h.lat = rng_.Uniform(0.0, options_.lat_extent);
    h.lon = rng_.Uniform(0.0, options_.lon_extent);
    h.weight = 1.0 / static_cast<double>(i + 1);  // Zipf(1).
    total_weight_ += h.weight;
    hotspots_.push_back(h);
  }
}

LabeledPoint CovidGenerator::Next() {
  LabeledPoint lp;
  lp.point.id = TakeId();
  lp.point.dims = 2;

  if (rng_.Bernoulli(options_.noise_fraction)) {
    lp.point.x[0] = rng_.Uniform(0.0, options_.lat_extent);
    lp.point.x[1] = rng_.Uniform(0.0, options_.lon_extent);
    lp.true_label = -1;
    return lp;
  }

  // Weighted hotspot pick.
  double r = rng_.Uniform(0.0, total_weight_);
  std::size_t hi = 0;
  for (; hi + 1 < hotspots_.size(); ++hi) {
    if (r < hotspots_[hi].weight) break;
    r -= hotspots_[hi].weight;
  }
  Hotspot& h = hotspots_[hi];
  // The epidemic focus drifts slowly.
  h.lat += rng_.Normal(0.0, options_.drift);
  h.lon += rng_.Normal(0.0, options_.drift);
  if (h.lat < 0.0) h.lat = -h.lat;
  if (h.lat > options_.lat_extent) h.lat = 2.0 * options_.lat_extent - h.lat;
  if (h.lon < 0.0) h.lon = -h.lon;
  if (h.lon > options_.lon_extent) h.lon = 2.0 * options_.lon_extent - h.lon;

  lp.point.x[0] = h.lat + rng_.Normal(0.0, options_.hotspot_stddev);
  lp.point.x[1] = h.lon + rng_.Normal(0.0, options_.hotspot_stddev);
  lp.true_label = static_cast<std::int64_t>(hi);
  return lp;
}

}  // namespace disc
