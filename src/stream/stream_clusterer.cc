#include "stream/stream_clusterer.h"

#include <unordered_set>

namespace disc {

std::size_t ClusteringSnapshot::NumClusters() const {
  std::unordered_set<ClusterId> distinct;
  for (std::size_t i = 0; i < cids.size(); ++i) {
    if (cids[i] != kNoiseCluster) distinct.insert(cids[i]);
  }
  return distinct.size();
}

}  // namespace disc
