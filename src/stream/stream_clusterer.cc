#include "stream/stream_clusterer.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace disc {

std::size_t ClusteringSnapshot::NumClusters() const {
  std::unordered_set<ClusterId> distinct;
  for (std::size_t i = 0; i < cids.size(); ++i) {
    if (cids[i] != kNoiseCluster) distinct.insert(cids[i]);
  }
  return distinct.size();
}

void ClusteringSnapshot::SortById() {
  std::vector<std::size_t> order(ids.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ids[a] < ids[b]; });
  ClusteringSnapshot sorted;
  sorted.ids.reserve(ids.size());
  sorted.categories.reserve(ids.size());
  sorted.cids.reserve(ids.size());
  for (std::size_t i : order) {
    sorted.ids.push_back(ids[i]);
    sorted.categories.push_back(categories[i]);
    sorted.cids.push_back(cids[i]);
  }
  *this = std::move(sorted);
}

void DiffLabelings(const ClusteringSnapshot& prev,
                   const ClusteringSnapshot& curr, UpdateDelta* delta) {
  struct Label {
    Category category;
    ClusterId cid;
  };
  std::unordered_map<PointId, Label> before;
  before.reserve(prev.size());
  for (std::size_t i = 0; i < prev.size(); ++i) {
    before.emplace(prev.ids[i], Label{prev.categories[i], prev.cids[i]});
  }

  // Greedy bijection between old and new cluster ids, claimed by the first
  // surviving point seen with each id pair. Both directions must agree:
  // splits break the forward map for the minority side, merges break the
  // backward map for the absorbed side.
  std::unordered_map<ClusterId, ClusterId> forward;
  std::unordered_map<ClusterId, ClusterId> backward;
  for (std::size_t i = 0; i < curr.size(); ++i) {
    const auto it = before.find(curr.ids[i]);
    if (it == before.end()) continue;  // Entered; not a relabel.
    const Label& old = it->second;
    if (old.category != curr.categories[i]) {
      delta->relabeled.push_back(curr.ids[i]);
      continue;
    }
    if (old.cid == kNoiseCluster && curr.cids[i] == kNoiseCluster) continue;
    const auto [fit, f_new] = forward.emplace(old.cid, curr.cids[i]);
    const auto [bit, b_new] = backward.emplace(curr.cids[i], old.cid);
    if ((!f_new && fit->second != curr.cids[i]) ||
        (!b_new && bit->second != old.cid)) {
      delta->relabeled.push_back(curr.ids[i]);
    }
  }
}

}  // namespace disc
