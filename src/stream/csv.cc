#include "stream/csv.h"

#include <fstream>
#include <sstream>

namespace disc {

bool WriteLabeledCsv(const std::string& path, const std::vector<Point>& points,
                     const std::vector<ClusterId>& cids) {
  if (!cids.empty() && cids.size() != points.size()) return false;
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  const std::uint32_t dims = points.empty() ? 2 : points[0].dims;
  out << "id";
  for (std::uint32_t d = 0; d < dims; ++d) out << ",x" << d;
  out << ",cid\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    out << points[i].id;
    for (std::uint32_t d = 0; d < dims; ++d) out << "," << points[i].x[d];
    out << "," << (cids.empty() ? kNoiseCluster : cids[i]) << "\n";
  }
  return static_cast<bool>(out);
}

bool ReadPointsCsv(const std::string& path, std::vector<Point>* points,
                   std::vector<ClusterId>* cids) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;  // Header.
  // Count columns from the header: id + dims + cid.
  int cols = 1;
  for (char ch : line) {
    if (ch == ',') ++cols;
  }
  const int dims = cols - 2;
  if (dims < 1 || dims > kMaxDims) return false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string field;
    Point p;
    p.dims = static_cast<std::uint32_t>(dims);
    if (!std::getline(ss, field, ',')) return false;
    p.id = std::stoull(field);
    for (int d = 0; d < dims; ++d) {
      if (!std::getline(ss, field, ',')) return false;
      p.x[d] = std::stod(field);
    }
    if (cids != nullptr) {
      if (!std::getline(ss, field, ',')) return false;
      cids->push_back(std::stoll(field));
    }
    points->push_back(p);
  }
  return true;
}

}  // namespace disc
