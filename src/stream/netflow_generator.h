#ifndef DISC_STREAM_NETFLOW_GENERATOR_H_
#define DISC_STREAM_NETFLOW_GENERATOR_H_

#include <vector>

#include "stream/stream_source.h"

namespace disc {

// Synthetic network-communication stream for the paper's third motivating
// application (outlier detection in network traffic, Sec. I). Each point is
// a flow record embedded in a 3-D feature space: (log bytes, log duration,
// destination-port bucket). Normal traffic comes from a handful of service
// profiles (web, dns, ssh, bulk transfer, ...) that form dense clusters;
// attack/abnormal flows are drawn far from every profile and should surface
// as DBSCAN noise. Occasional "burst" phases concentrate traffic on one
// profile, letting windowed clustering show emerging/dissipating clusters.
//
// True label = profile index; -1 for injected anomalies.
class NetflowGenerator : public StreamSource {
 public:
  struct Options {
    int num_profiles = 6;
    double profile_stddev = 0.25;
    double anomaly_fraction = 0.02;
    int burst_every = 4000;   // Points between burst-phase toggles.
    int burst_length = 1000;  // Points per burst phase.
    std::uint64_t seed = 43;
  };

  explicit NetflowGenerator(const Options& options);

  LabeledPoint Next() override;

 private:
  struct Profile {
    double log_bytes;
    double log_duration;
    double port_bucket;
  };

  Options options_;
  Rng rng_;
  std::vector<Profile> profiles_;
  std::uint64_t emitted_ = 0;
  int burst_profile_ = -1;
};

}  // namespace disc

#endif  // DISC_STREAM_NETFLOW_GENERATOR_H_
