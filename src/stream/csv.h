#ifndef DISC_STREAM_CSV_H_
#define DISC_STREAM_CSV_H_

#include <string>
#include <vector>

#include "common/point.h"
#include "stream/stream_clusterer.h"

namespace disc {

// Writes "id,x0,...,x{d-1},cid" rows (with header) for plotting; used by the
// Fig. 12 bench to dump cluster illustrations. Returns false on I/O error.
bool WriteLabeledCsv(const std::string& path, const std::vector<Point>& points,
                     const std::vector<ClusterId>& cids);

// Reads points written by WriteLabeledCsv (cid column optional). Returns
// false on I/O or parse error.
bool ReadPointsCsv(const std::string& path, std::vector<Point>* points,
                   std::vector<ClusterId>* cids);

}  // namespace disc

#endif  // DISC_STREAM_CSV_H_
