#include "core/events.h"

namespace disc {

const char* ToString(ClusterEventType type) {
  switch (type) {
    case ClusterEventType::kEmerge:
      return "emerge";
    case ClusterEventType::kDissipate:
      return "dissipate";
    case ClusterEventType::kSplit:
      return "split";
    case ClusterEventType::kShrink:
      return "shrink";
    case ClusterEventType::kMerge:
      return "merge";
    case ClusterEventType::kGrow:
      return "grow";
  }
  return "unknown";
}

}  // namespace disc
