#ifndef DISC_CORE_EVENTS_H_
#define DISC_CORE_EVENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/stream_clusterer.h"

namespace disc {

// Types of cluster evolution DISC detects while the window slides (Sec. III).
// Splits/shrinks/dissipations are driven by ex-cores; merges/expansions/
// emergences by neo-cores.
enum class ClusterEventType : std::uint8_t {
  kEmerge,     // A brand-new cluster appears (empty M+).
  kDissipate,  // A cluster loses all its cores (empty M-).
  kSplit,      // M- has more than one connected component.
  kShrink,     // Ex-cores left but the cluster stayed connected.
  kMerge,      // M+ spans more than one existing cluster.
  kGrow,       // Neo-cores extended a single existing cluster.
};

const char* ToString(ClusterEventType type);

// One evolution event observed during an Update call.
struct ClusterEvent {
  ClusterEventType type;
  // Clusters involved: the surviving/receiving cluster first. For kSplit the
  // list holds the surviving cid followed by the freshly created cids; for
  // kMerge the absorbing cid followed by the absorbed ones.
  std::vector<ClusterId> cids;
};

}  // namespace disc

#endif  // DISC_CORE_EVENTS_H_
