#include "core/cluster_tracker.h"

#include <algorithm>

namespace disc {

ClusterLife& ClusterTracker::GetOrCreate(ClusterId id, std::size_t slide) {
  auto [it, inserted] = lives_.emplace(id, ClusterLife{});
  if (inserted) {
    it->second.id = id;
    it->second.born_slide = slide;
    it->second.alive = true;
  }
  return it->second;
}

void ClusterTracker::Observe(std::size_t slide_index,
                             const std::vector<ClusterEvent>& events,
                             const ClusteringSnapshot& snapshot) {
  // Structural transitions first.
  for (const ClusterEvent& event : events) {
    switch (event.type) {
      case ClusterEventType::kEmerge:
        GetOrCreate(event.cids[0], slide_index);
        break;
      case ClusterEventType::kDissipate: {
        ClusterLife& life = GetOrCreate(event.cids[0], slide_index);
        life.alive = false;
        life.current_size = 0;
        break;
      }
      case ClusterEventType::kSplit: {
        // cids[0] survives; the rest split off from it.
        for (std::size_t i = 1; i < event.cids.size(); ++i) {
          ClusterLife& child = GetOrCreate(event.cids[i], slide_index);
          child.split_child = true;
          child.split_from = event.cids[0];
        }
        break;
      }
      case ClusterEventType::kMerge: {
        // cids[0] absorbs the rest.
        GetOrCreate(event.cids[0], slide_index);
        for (std::size_t i = 1; i < event.cids.size(); ++i) {
          ClusterLife& gone = GetOrCreate(event.cids[i], slide_index);
          gone.alive = false;
          gone.merged_away = true;
          gone.merged_into = event.cids[0];
          gone.current_size = 0;
        }
        break;
      }
      case ClusterEventType::kShrink:
      case ClusterEventType::kGrow:
        break;
    }
  }

  // Size accounting from the snapshot (canonical ids).
  std::unordered_map<ClusterId, std::size_t> sizes;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (snapshot.cids[i] != kNoiseCluster) ++sizes[snapshot.cids[i]];
  }
  for (auto& [id, life] : lives_) {
    if (!life.alive) continue;
    auto it = sizes.find(id);
    if (it == sizes.end()) {
      // No members left and no explicit dissipate event reached us (e.g.,
      // the cluster emptied through relabeling): close it out.
      life.alive = false;
      life.current_size = 0;
      continue;
    }
    life.current_size = it->second;
    if (it->second > life.peak_size) life.peak_size = it->second;
    life.last_slide = slide_index;
  }
  // Clusters present in the snapshot but unknown to the tracker (possible
  // when observation starts mid-stream) are adopted.
  for (const auto& [id, size] : sizes) {
    ClusterLife& life = GetOrCreate(id, slide_index);
    if (life.alive && life.current_size == 0) {
      life.current_size = size;
      if (size > life.peak_size) life.peak_size = size;
      life.last_slide = slide_index;
    }
  }
}

const ClusterLife* ClusterTracker::Find(ClusterId id) const {
  auto it = lives_.find(id);
  return it == lives_.end() ? nullptr : &it->second;
}

std::vector<const ClusterLife*> ClusterTracker::AllClusters() const {
  std::vector<const ClusterLife*> out;
  out.reserve(lives_.size());
  for (const auto& [id, life] : lives_) out.push_back(&life);
  std::sort(out.begin(), out.end(),
            [](const ClusterLife* a, const ClusterLife* b) {
              return a->id < b->id;
            });
  return out;
}

std::size_t ClusterTracker::num_alive() const {
  std::size_t n = 0;
  for (const auto& [id, life] : lives_) {
    if (life.alive) ++n;
  }
  return n;
}

}  // namespace disc
