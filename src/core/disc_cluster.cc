// CLUSTER step of DISC (Algorithm 2): ex-core groups and split checks via
// MS-BFS (Algorithm 3), neo-core groups and merge decisions, and the final
// label recheck pass of Section V.

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

#include "common/timer.h"
#include "core/disc.h"
#include "obs/trace.h"

namespace disc {

// ---------------------------------------------------------------------------
// Ex-core phase: retro-reachability closures and split checks
// ---------------------------------------------------------------------------

void Disc::ProcessExCores(const std::vector<PointId>& ex_cores) {
  split_survivors_.clear();
  for (PointId id : ex_cores) {
    Record& rec = GetRecord(id);
    if (rec.group_serial == update_serial_) continue;  // Alg. 2, line 7.
    ProcessExGroup(id);
    ++metrics_.num_ex_groups;
  }
}

void Disc::ProcessExGroup(PointId seed) {
  const std::uint64_t serial = ++search_serial_;
  const std::uint64_t tick = tree_.NewTick();

  Record& seed_rec = GetRecord(seed);
  const ClusterId old_cid = registry_.Find(seed_rec.cid);
  seed_rec.visit_serial = serial;

  // BFS over ex-cores computes R-(seed); the minimal bonding cores M-(seed)
  // (cores in both windows adjacent to some member of R-) fall out of the
  // same range searches at no extra cost.
  std::deque<PointId> queue;
  std::vector<PointId> m_minus;
  queue.push_back(seed);
  while (!queue.empty()) {
    const PointId rid = queue.front();
    queue.pop_front();
    Record& r = GetRecord(rid);
    r.group_serial = update_serial_;
    if (!r.deleted) {
      // An ex-core still in the window demotes to border or noise; the
      // recheck pass settles which.
      AddRecheck(rid, &r);
    }
    const Point center = r.pt;
    SearchMarking(center, tick, [&](PointId qid, const Point&) -> bool {
      if (qid == rid) return true;  // Own entry: expansion complete.
      auto qit = records_.find(qid);
      if (qit == records_.end()) return true;
      Record& q = qit->second;
      if (IsExCore(q)) {
        if (q.visit_serial != serial) {
          q.visit_serial = serial;
          queue.push_back(qid);
        }
        return false;  // Marked when it is expanded itself.
      }
      if (q.deleted) return true;
      if (IsCoreNow(q)) {
        if (q.core_prev && q.visit_serial != serial) {
          q.visit_serial = serial;
          m_minus.push_back(qid);  // Core in both windows: M- member.
        }
        return true;
      }
      // Non-core survivor near an ex-core: its border/noise status may have
      // changed.
      AddRecheck(qid, &q);
      return true;
    });
  }

  if (m_minus.empty()) {
    // Every core the group could bond to is gone: the cluster dissipates.
    if (old_cid != kNoiseCluster) {
      events_.push_back({ClusterEventType::kDissipate, {old_cid}});
    }
    return;
  }
  CheckConnectivity(m_minus, old_cid);
}

int Disc::CheckConnectivity(const std::vector<PointId>& m_minus,
                            ClusterId old_cid) {
  // Canonical cids the bonding cores carry right now (they key the
  // survivor-reconciliation claims; an earlier drain may already have given
  // some of them a fresh id).
  std::vector<ClusterId> m_cids;
  for (PointId m : m_minus) {
    const ClusterId c = registry_.Find(GetRecord(m).cid);
    if (std::find(m_cids.begin(), m_cids.end(), c) == m_cids.end()) {
      m_cids.push_back(c);
    }
  }

  std::size_t handles_before = registry_.num_handles();
  PointId survivor = m_minus[0];
  const int ncc = config_.use_msbfs ? MsBfs(m_minus, &survivor)
                                    : SequentialBfs(m_minus, &survivor);
  std::size_t fresh = registry_.num_handles() - handles_before;
  if (fresh > 0) {
    ClusterEvent event{ClusterEventType::kSplit, {old_cid}};
    for (std::size_t i = 0; i < fresh; ++i) {
      event.cids.push_back(static_cast<ClusterId>(handles_before + i));
    }
    events_.push_back(std::move(event));
  } else {
    events_.push_back({ClusterEventType::kShrink, {old_cid}});
  }

  if (ncc > 1) {
    // Reconcile this split's surviving component with any survivor an
    // earlier split group recorded under one of the same cluster ids: when
    // the two are actually disconnected, one of them must stop carrying the
    // shared labels.
    for (ClusterId c : m_cids) {
      auto it = split_survivors_.find(c);
      if (it == split_survivors_.end() || it->second == survivor) continue;
      Record& other = GetRecord(it->second);
      if (other.deleted || !IsCoreNow(other)) continue;  // Stale rep.
      handles_before = registry_.num_handles();
      ++metrics_.survivor_reconciliations;
      PointId winner = survivor;
      MsBfs({it->second, survivor}, &winner);
      fresh = registry_.num_handles() - handles_before;
      if (fresh > 0) {
        ClusterEvent event{ClusterEventType::kSplit, {old_cid}};
        for (std::size_t i = 0; i < fresh; ++i) {
          event.cids.push_back(static_cast<ClusterId>(handles_before + i));
        }
        events_.push_back(std::move(event));
      }
      survivor = winner;
    }
    for (ClusterId c : m_cids) split_survivors_[c] = survivor;
  }
  return ncc;
}

// ---------------------------------------------------------------------------
// Multi-Starter BFS (Algorithm 3)
// ---------------------------------------------------------------------------

namespace {

// Per-starter state of MS-BFS. Queues, claimed cores, and adjacent non-cores
// are concatenated whenever two searches meet.
struct MsThread {
  std::deque<PointId> queue;
  std::vector<PointId> cores;
  std::vector<PointId> borders;
};

}  // namespace

int Disc::MsBfs(const std::vector<PointId>& m_minus, PointId* survivor_rep) {
  return config_.parallel_cluster ? MsBfsStrided(m_minus, survivor_rep)
                                  : MsBfsInterleaved(m_minus, survivor_rep);
}

int Disc::MsBfsInterleaved(const std::vector<PointId>& m_minus,
                           PointId* survivor_rep) {
  obs::TraceSpan span("disc.msbfs", obs::TraceLevel::kDetail);
  span.AddArg("starters", m_minus.size());
  const std::uint64_t expansions_before = metrics_.msbfs_expansions;
  const std::uint64_t serial = ++search_serial_;
  const std::uint64_t tick = tree_.NewTick();
  const std::size_t k = m_minus.size();

  // Union-find over starter indices: merged searches share one root thread.
  std::vector<std::uint32_t> parent(k);
  for (std::size_t i = 0; i < k; ++i) parent[i] = static_cast<std::uint32_t>(i);
  auto find_root = [&](std::uint32_t i) {
    std::uint32_t root = i;
    while (parent[root] != root) root = parent[root];
    while (parent[i] != root) {
      const std::uint32_t next = parent[i];
      parent[i] = root;
      i = next;
    }
    return root;
  };

  std::vector<MsThread> threads(k);
  for (std::size_t i = 0; i < k; ++i) {
    Record& rec = GetRecord(m_minus[i]);
    rec.visit_serial = serial;
    rec.owner = static_cast<std::uint32_t>(i);
    threads[i].queue.push_back(m_minus[i]);
    threads[i].cores.push_back(m_minus[i]);
  }

  std::size_t active_count = k;
  auto merge_threads = [&](std::uint32_t a, std::uint32_t b) {
    // Pre: a and b are distinct roots. The larger queue absorbs the smaller.
    if (threads[a].queue.size() < threads[b].queue.size()) std::swap(a, b);
    MsThread& ta = threads[a];
    MsThread& tb = threads[b];
    ta.queue.insert(ta.queue.end(), tb.queue.begin(), tb.queue.end());
    ta.cores.insert(ta.cores.end(), tb.cores.begin(), tb.cores.end());
    ta.borders.insert(ta.borders.end(), tb.borders.begin(), tb.borders.end());
    tb = MsThread{};
    parent[b] = a;
    --active_count;
  };

  std::vector<std::uint32_t> active;
  active.reserve(k);
  for (std::size_t i = 0; i < k; ++i) active.push_back(static_cast<std::uint32_t>(i));

  int drained = 0;
  // Run the k searches simultaneously (round-robin, one expansion each) until
  // a single search remains (Alg. 3, line 5). A search whose queue empties
  // has fully explored one detaching component.
  while (active_count > 1) {
    for (std::size_t idx = 0; idx < active.size() && active_count > 1;) {
      const std::uint32_t root = active[idx];
      if (find_root(root) != root) {
        // Merged into another search; drop from the rotation.
        active[idx] = active.back();
        active.pop_back();
        continue;
      }
      MsThread& th = threads[root];
      if (th.queue.empty()) {
        // Component complete: detach it under a fresh cluster id.
        const ClusterId fresh = registry_.NewCluster();
        for (PointId cp : th.cores) {
          Record& rc = GetRecord(cp);
          SetLabel(cp, &rc, Category::kCore, fresh);
        }
        for (PointId bp : th.borders) {
          Record& rb = GetRecord(bp);
          if (rb.deleted || IsCoreNow(rb)) continue;
          SetLabel(bp, &rb, Category::kBorder, fresh);
          // A later drain may relabel this fragment's cores again, so the
          // border assignment is re-validated in the recheck pass.
          AddRecheck(bp, &rb);
        }
        th = MsThread{};  // Distinguishes drained roots from the survivor.
        ++drained;
        --active_count;
        active[idx] = active.back();
        active.pop_back();
        continue;
      }

      const PointId rid = th.queue.front();
      th.queue.pop_front();
      ++metrics_.msbfs_expansions;
      const Point center = GetRecord(rid).pt;
      SearchMarking(center, tick, [&](PointId qid, const Point&) -> bool {
        if (qid == rid) return true;  // Own entry: r is now expanded.
        auto qit = records_.find(qid);
        if (qit == records_.end()) return true;
        Record& q = qit->second;
        if (q.deleted) return true;
        if (IsCoreNow(q)) {
          const std::uint32_t mine = find_root(root);
          if (q.visit_serial != serial) {
            q.visit_serial = serial;
            q.owner = mine;
            threads[mine].queue.push_back(qid);
            threads[mine].cores.push_back(qid);
          } else {
            const std::uint32_t other = find_root(q.owner);
            if (other != mine) merge_threads(mine, other);
          }
          // Frontier cores stay visible until their own expansion; this is
          // what lets two searches detect that they met (see header notes).
          return false;
        }
        // Non-core in the current window: remember the adjacency for label
        // maintenance, then prune it from this MS-BFS instance.
        if (q.visit_serial != serial) {
          q.visit_serial = serial;
          q.witness = rid;
          q.witness_serial = update_serial_;
          threads[find_root(root)].borders.push_back(qid);
        }
        return true;
      });
      ++idx;
    }
  }
  // The last remaining search keeps the previous cluster id for everything
  // it touched (and everything it never had to explore) — the early exit
  // that makes unsplit slides cheap. Its reported borders may reference
  // clusters whose cores another drain of this update relabels, so they go
  // through the recheck pass (cheap: each carries a surviving-side witness).
  for (std::size_t i = 0; i < k; ++i) {
    if (find_root(static_cast<std::uint32_t>(i)) !=
            static_cast<std::uint32_t>(i) ||
        threads[i].cores.empty()) {
      continue;
    }
    *survivor_rep = m_minus[i];
    for (PointId bp : threads[i].borders) {
      Record& rb = GetRecord(bp);
      if (!rb.deleted && !IsCoreNow(rb)) AddRecheck(bp, &rb);
    }
    break;
  }
  span.AddArg("expansions", metrics_.msbfs_expansions - expansions_before);
  span.AddArg("components", static_cast<std::uint64_t>(drained) + 1);
  return drained + 1;
}

// ---------------------------------------------------------------------------
// Strided MS-BFS: level-synchronous rounds with parallel tick-free probes
// ---------------------------------------------------------------------------

void Disc::FanOutClusterProbes(const std::vector<const Point*>& centers,
                               std::vector<std::vector<PointId>>* hits) {
  hits->assign(centers.size(), {});
  ThreadPool* pool = centers.size() >= config_.parallel_cluster_min_batch
                         ? execution_pool()
                         : nullptr;
  const std::size_t lanes = pool ? pool->lanes() : 1;
  std::vector<RTreeStats> lane_stats(lanes);
  Timer timer;
  {
    RTree::ConcurrentProbeScope probe_scope(tree_);
    ParallelFor(pool, centers.size(), [&](std::size_t lane, std::size_t i) {
      if (centers[i] == nullptr) return;
      std::vector<PointId>& out = (*hits)[i];
      tree_.RangeSearch(
          *centers[i], config_.eps,
          [&out](PointId qid, const Point&) { out.push_back(qid); },
          &lane_stats[lane]);
    });
  }
  metrics_.cluster_parallel_ms += timer.ElapsedMillis();
  for (const RTreeStats& s : lane_stats) tree_.stats().MergeFrom(s);
}

// The parallel MS-BFS. Structurally the same search as MsBfsInterleaved —
// union-find over starters, one popped queue head per live search per round,
// drains detach completed components — but the round's probes all run first
// (tick-free, fanned out across lanes via FanOutClusterProbes), and their
// hit lists are then applied to the live state sequentially in round order.
// Two consequences:
//  * Determinism by construction: every state mutation is a pure function
//    of the hit lists, which depend only on the frozen tree — not on lane
//    count or timing. A front meet is detected when an applied hit finds a
//    core already claimed by a different root, and the min-starter merge
//    rule (smaller starter index absorbs the larger) fixes the surviving
//    search independently of discovery order.
//  * Tick-free re-visits are no-ops: a probe may re-deliver an already
//    claimed core or recorded non-core that epoch marking would have
//    pruned, but the visit_serial guards make every such application a
//    no-op (the only live effect, the claimed-by-other merge check, fires
//    identically — both owners were already unified when the edge was first
//    seen from its earlier-expanded endpoint).
int Disc::MsBfsStrided(const std::vector<PointId>& m_minus,
                       PointId* survivor_rep) {
  obs::TraceSpan span("disc.msbfs", obs::TraceLevel::kDetail);
  span.AddArg("starters", m_minus.size());
  const std::uint64_t expansions_before = metrics_.msbfs_expansions;
  const std::uint64_t serial = ++search_serial_;
  const std::size_t k = m_minus.size();

  std::vector<std::uint32_t> parent(k);
  for (std::size_t i = 0; i < k; ++i) parent[i] = static_cast<std::uint32_t>(i);
  auto find_root = [&](std::uint32_t i) {
    std::uint32_t root = i;
    while (parent[root] != root) root = parent[root];
    while (parent[i] != root) {
      const std::uint32_t next = parent[i];
      parent[i] = root;
      i = next;
    }
    return root;
  };

  std::vector<MsThread> threads(k);
  for (std::size_t i = 0; i < k; ++i) {
    Record& rec = GetRecord(m_minus[i]);
    rec.visit_serial = serial;
    rec.owner = static_cast<std::uint32_t>(i);
    threads[i].queue.push_back(m_minus[i]);
    threads[i].cores.push_back(m_minus[i]);
  }

  std::size_t active_count = k;
  auto merge_threads = [&](std::uint32_t a, std::uint32_t b) {
    // Pre: a and b are distinct roots. Min-starter rule: the smaller starter
    // index absorbs the larger, so the merged search's identity never
    // depends on which round or probe discovered the meet.
    if (b < a) std::swap(a, b);
    MsThread& ta = threads[a];
    MsThread& tb = threads[b];
    ta.queue.insert(ta.queue.end(), tb.queue.begin(), tb.queue.end());
    ta.cores.insert(ta.cores.end(), tb.cores.begin(), tb.cores.end());
    ta.borders.insert(ta.borders.end(), tb.borders.begin(), tb.borders.end());
    tb = MsThread{};
    parent[b] = a;
    --active_count;
  };

  std::vector<std::uint32_t> active;
  active.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    active.push_back(static_cast<std::uint32_t>(i));
  }

  int drained = 0;
  std::uint64_t rounds = 0;
  // Round scratch, reused across iterations.
  std::vector<std::uint32_t> batch_roots;
  std::vector<PointId> batch_ids;
  std::vector<const Point*> batch_centers;
  std::vector<std::vector<PointId>> batch_hits;

  while (active_count > 1) {
    obs::TraceSpan round_span("disc.msbfs.round", obs::TraceLevel::kDetail);
    ++rounds;
    // Build the round: pop one queue head per live search, in rotation
    // order, draining any search whose component is complete (exactly the
    // per-visit bookkeeping of the interleaved loop; merges cannot happen
    // here — they only fire while hits are applied).
    batch_roots.clear();
    batch_ids.clear();
    for (std::size_t idx = 0; idx < active.size() && active_count > 1;) {
      const std::uint32_t root = active[idx];
      if (find_root(root) != root) {
        active[idx] = active.back();
        active.pop_back();
        continue;
      }
      MsThread& th = threads[root];
      if (th.queue.empty()) {
        // Component complete: detach it under a fresh cluster id.
        const ClusterId fresh = registry_.NewCluster();
        for (PointId cp : th.cores) {
          Record& rc = GetRecord(cp);
          SetLabel(cp, &rc, Category::kCore, fresh);
        }
        for (PointId bp : th.borders) {
          Record& rb = GetRecord(bp);
          if (rb.deleted || IsCoreNow(rb)) continue;
          SetLabel(bp, &rb, Category::kBorder, fresh);
          // Re-validated in the recheck pass; see MsBfsInterleaved.
          AddRecheck(bp, &rb);
        }
        th = MsThread{};  // Distinguishes drained roots from the survivor.
        ++drained;
        --active_count;
        active[idx] = active.back();
        active.pop_back();
        continue;
      }
      batch_roots.push_back(root);
      batch_ids.push_back(th.queue.front());
      th.queue.pop_front();
      ++idx;
    }
    round_span.AddArg("batch", batch_ids.size());
    round_span.AddArg("live_searches", active_count);
    if (active_count <= 1) break;  // A popped-but-unapplied head only held
                                   // queue state; cores/borders were already
                                   // recorded when it was claimed.

    // Probe the frozen tree for every popped head at once.
    batch_centers.assign(batch_ids.size(), nullptr);
    for (std::size_t j = 0; j < batch_ids.size(); ++j) {
      batch_centers[j] = &GetRecord(batch_ids[j]).pt;
    }
    FanOutClusterProbes(batch_centers, &batch_hits);

    // Apply the hit lists to the live state, sequentially in round order.
    for (std::size_t j = 0;
         j < batch_ids.size() && active_count > 1; ++j) {
      const PointId rid = batch_ids[j];
      ++metrics_.msbfs_expansions;
      for (PointId qid : batch_hits[j]) {
        if (qid == rid) continue;
        auto qit = records_.find(qid);
        if (qit == records_.end()) continue;
        Record& q = qit->second;
        if (q.deleted) continue;
        const std::uint32_t mine = find_root(batch_roots[j]);
        if (IsCoreNow(q)) {
          if (q.visit_serial != serial) {
            q.visit_serial = serial;
            q.owner = mine;
            threads[mine].queue.push_back(qid);
            threads[mine].cores.push_back(qid);
          } else {
            const std::uint32_t other = find_root(q.owner);
            if (other != mine) merge_threads(mine, other);
          }
          continue;
        }
        if (q.visit_serial != serial) {
          q.visit_serial = serial;
          q.witness = rid;
          q.witness_serial = update_serial_;
          threads[mine].borders.push_back(qid);
        }
      }
    }
  }

  // Survivor selection and border rechecks, exactly as in the interleaved
  // implementation.
  for (std::size_t i = 0; i < k; ++i) {
    if (find_root(static_cast<std::uint32_t>(i)) !=
            static_cast<std::uint32_t>(i) ||
        threads[i].cores.empty()) {
      continue;
    }
    *survivor_rep = m_minus[i];
    for (PointId bp : threads[i].borders) {
      Record& rb = GetRecord(bp);
      if (!rb.deleted && !IsCoreNow(rb)) AddRecheck(bp, &rb);
    }
    break;
  }
  metrics_.msbfs_rounds += rounds;
  span.AddArg("expansions", metrics_.msbfs_expansions - expansions_before);
  span.AddArg("components", static_cast<std::uint64_t>(drained) + 1);
  span.AddArg("rounds", rounds);
  return drained + 1;
}

// ---------------------------------------------------------------------------
// Sequential connectivity check (DISC with MS-BFS disabled)
// ---------------------------------------------------------------------------

int Disc::SequentialBfs(const std::vector<PointId>& m_minus,
                        PointId* survivor_rep) {
  // Repeated single-source BFS: the first search may stop early once every
  // minimal bonding core has been reached (the no-split fast path), but any
  // further component must be explored exhaustively — the cost MS-BFS avoids.
  int ncc = 0;
  bool first = true;
  std::uint64_t member_serial = ++search_serial_;
  for (PointId m : m_minus) GetRecord(m).visit_serial = member_serial;
  std::size_t members_left = m_minus.size();

  for (PointId start : m_minus) {
    Record& start_rec = GetRecord(start);
    if (start_rec.visit_serial != member_serial) continue;  // Already reached.
    ++ncc;
    if (ncc == 1) *survivor_rep = start;  // First component keeps its labels.
    const std::uint64_t serial = ++search_serial_;
    const std::uint64_t tick = tree_.NewTick();
    std::deque<PointId> queue;
    std::vector<PointId> cores;
    std::vector<PointId> borders;
    start_rec.visit_serial = serial;
    --members_left;
    queue.push_back(start);
    cores.push_back(start);
    bool early_exit = false;
    while (!queue.empty()) {
      if (first && members_left == 0) {
        early_exit = true;  // All bonding cores connected: no split.
        break;
      }
      const PointId rid = queue.front();
      queue.pop_front();
      ++metrics_.msbfs_expansions;
      const Point center = GetRecord(rid).pt;
      SearchMarking(center, tick, [&](PointId qid, const Point&) -> bool {
        if (qid == rid) return true;
        auto qit = records_.find(qid);
        if (qit == records_.end()) return true;
        Record& q = qit->second;
        if (q.deleted) return true;
        if (IsCoreNow(q)) {
          if (q.visit_serial != serial) {
            if (q.visit_serial == member_serial) --members_left;
            q.visit_serial = serial;
            queue.push_back(qid);
            cores.push_back(qid);
          }
          return false;
        }
        if (q.visit_serial != serial) {
          q.visit_serial = serial;
          q.witness = rid;
          q.witness_serial = update_serial_;
          borders.push_back(qid);
        }
        return true;
      });
    }
    if (!first && !early_exit) {
      // Detached component: fresh cluster id.
      const ClusterId fresh = registry_.NewCluster();
      for (PointId cp : cores) {
        Record& rc = GetRecord(cp);
        SetLabel(cp, &rc, Category::kCore, fresh);
      }
      for (PointId bp : borders) {
        Record& rb = GetRecord(bp);
        if (rb.deleted || IsCoreNow(rb)) continue;
        SetLabel(bp, &rb, Category::kBorder, fresh);
        AddRecheck(bp, &rb);  // See the matching note in MsBfs.
      }
    } else {
      // This component keeps its labels; its reported borders re-resolve in
      // the recheck pass (see the matching note in MsBfs).
      for (PointId bp : borders) {
        Record& rb = GetRecord(bp);
        if (!rb.deleted && !IsCoreNow(rb)) AddRecheck(bp, &rb);
      }
    }
    first = false;
    if (members_left == 0 && early_exit) break;
  }
  return ncc;
}

// ---------------------------------------------------------------------------
// Neo-core phase: nascent-reachability closures and merge decisions
// ---------------------------------------------------------------------------

void Disc::ProcessNeoCores(const std::vector<PointId>& neo_cores) {
  if (config_.parallel_cluster) {
    ProcessNeoCoresParallel(neo_cores);
    return;
  }
  for (PointId id : neo_cores) {
    Record& rec = GetRecord(id);
    if (rec.group_serial == update_serial_) continue;  // Alg. 2, line 13.
    ProcessNeoGroup(id);
    ++metrics_.num_neo_groups;
  }
}

void Disc::ProcessNeoGroup(PointId seed) {
  const std::uint64_t serial = ++search_serial_;
  const std::uint64_t tick = tree_.NewTick();

  GetRecord(seed).visit_serial = serial;
  std::deque<PointId> queue;
  std::vector<PointId> group;
  std::vector<PointId> borders;
  std::vector<ClusterId> cid_list;  // Distinct clusters M+ spreads over.
  queue.push_back(seed);
  group.push_back(seed);
  while (!queue.empty()) {
    const PointId rid = queue.front();
    queue.pop_front();
    Record& r = GetRecord(rid);
    r.group_serial = update_serial_;
    const Point center = r.pt;
    SearchMarking(center, tick, [&](PointId qid, const Point&) -> bool {
      if (qid == rid) return true;
      auto qit = records_.find(qid);
      if (qit == records_.end()) return true;
      Record& q = qit->second;
      if (q.deleted) return true;
      if (IsCoreNow(q)) {
        if (IsNeoCore(q)) {
          if (q.visit_serial != serial) {
            q.visit_serial = serial;
            queue.push_back(qid);
            group.push_back(qid);
          }
          return false;
        }
        // Core in both windows: an M+ member. Only its label matters
        // (Alg. 2, line 11) — no connectivity check is needed.
        if (q.visit_serial != serial) {
          q.visit_serial = serial;
          const ClusterId c = registry_.Find(q.cid);
          if (std::find(cid_list.begin(), cid_list.end(), c) ==
              cid_list.end()) {
            cid_list.push_back(c);
          }
        }
        return true;
      }
      // Non-core neighbor of a neo-core: becomes a border of this group's
      // cluster.
      if (q.visit_serial != serial) {
        q.visit_serial = serial;
        q.witness = rid;
        q.witness_serial = update_serial_;
        borders.push_back(qid);
      }
      return true;
    });
  }

  ClusterId g;
  if (cid_list.empty()) {
    g = registry_.NewCluster();  // Emergence.
    events_.push_back({ClusterEventType::kEmerge, {g}});
  } else if (cid_list.size() == 1) {
    g = cid_list[0];  // Expansion.
    events_.push_back({ClusterEventType::kGrow, {g}});
  } else {
    // M+ spreads over several clusters: merge them all (constant-time unions
    // in the registry — no relabeling pass).
    g = cid_list[0];
    for (std::size_t i = 1; i < cid_list.size(); ++i) {
      g = registry_.Union(g, cid_list[i]);
    }
    ClusterEvent event{ClusterEventType::kMerge, {g}};
    for (ClusterId c : cid_list) {
      if (c != g) event.cids.push_back(c);
    }
    events_.push_back(std::move(event));
  }
  for (PointId mp : group) {
    Record& rm = GetRecord(mp);
    SetLabel(mp, &rm, Category::kCore, g);
  }
  for (PointId bp : borders) {
    Record& rb = GetRecord(bp);
    if (rb.deleted || IsCoreNow(rb)) continue;
    SetLabel(bp, &rb, Category::kBorder, g);
    // The witness recorded during this traversal keeps any later recheck of
    // this border consistent with the group's final label.
  }
}

// ---------------------------------------------------------------------------
// Parallel neo-core phase: speculative discovery, sequential commit
// ---------------------------------------------------------------------------
//
// The sequential loop above interleaves traversal and mutation per group.
// The parallel path splits them: every neo-core speculatively runs a
// *read-only* BFS of its component on the pool (NeoDiscoveryWorker — no
// record, registry, or tree writes at all), then discoveries are committed
// on the calling thread in seed order. An atomic CAS-min claim table prunes
// the speculation: a worker that reaches a neo-core already claimed by a
// smaller seed aborts, because that seed is exploring the same component
// and — being smaller — can itself never lose a claim race within it, so it
// always completes. Claims are purely advisory (relaxed ordering suffices):
// whatever the timing, each component's minimum seed completes its
// discovery, commits first among the component's seeds, and stamps the
// members' group_serial so every duplicate is discarded — which is why the
// committed output is bit-identical to the sequential loop's for any lane
// count, including the inline zero-worker execution.
//
// Probe accounting follows determinism: only committed discoveries' counters
// merge into the tree's shared statistics (keeping range_searches et al.
// lane-count-deterministic); discarded work is tallied separately under the
// speculative_* metrics, which are timing-dependent by nature.

void Disc::ProcessNeoCoresParallel(const std::vector<PointId>& neo_cores) {
  if (neo_cores.empty()) return;
  const std::size_t n = neo_cores.size();

  // Claim-table index of each neo-core: its position in the neo_cores list.
  std::unordered_map<PointId, std::uint32_t> seed_index;
  seed_index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seed_index.emplace(neo_cores[i], static_cast<std::uint32_t>(i));
  }
  std::vector<std::atomic<std::uint32_t>> claims(n);
  for (auto& c : claims) {
    c.store(std::numeric_limits<std::uint32_t>::max(),
            std::memory_order_relaxed);
  }
  std::vector<NeoDiscovery> discoveries(n);

  Timer timer;
  {
    RTree::ConcurrentProbeScope probe_scope(tree_);
    // chunk = 1: one discovery explores a whole component while its
    // neighbors abort after a single claim check — the worst per-index skew
    // in the codebase.
    ParallelFor(
        execution_pool(), n,
        [&](std::size_t, std::size_t i) {
          NeoDiscoveryWorker(static_cast<std::uint32_t>(i), neo_cores,
                             seed_index, &claims, &discoveries[i]);
        },
        /*chunk=*/1);
  }
  metrics_.cluster_parallel_ms += timer.ElapsedMillis();
  metrics_.neo_discoveries += n;

  for (std::size_t i = 0; i < n; ++i) {
    const NeoDiscovery& d = discoveries[i];
    if (d.aborted || GetRecord(neo_cores[i]).group_serial == update_serial_) {
      ++metrics_.neo_discoveries_discarded;
      metrics_.speculative_searches += d.stats.range_searches;
      continue;
    }
    CommitNeoGroup(d);
    ++metrics_.num_neo_groups;
  }
}

void Disc::NeoDiscoveryWorker(
    std::uint32_t seed_idx, const std::vector<PointId>& neo_cores,
    const std::unordered_map<PointId, std::uint32_t>& seed_index,
    std::vector<std::atomic<std::uint32_t>>* claims, NeoDiscovery* out) {
  obs::TraceSpan span("disc.neo_discovery", obs::TraceLevel::kDetail);
  span.AddArg("seed", neo_cores[seed_idx]);

  // CAS-min on the claim slot. Returns false when a smaller seed holds it:
  // that seed is exploring this component and will complete it.
  auto try_claim = [&](std::uint32_t j) {
    std::uint32_t cur = (*claims)[j].load(std::memory_order_relaxed);
    while (seed_idx < cur) {
      if ((*claims)[j].compare_exchange_weak(cur, seed_idx,
                                             std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  };

  if (!try_claim(seed_idx)) {
    out->aborted = true;
    span.AddArg("aborted", 1);
    return;
  }

  // The sequential traversal's per-branch visit_serial checks amount to one
  // first-visit filter per point (the branches are mutually exclusive and
  // share one serial), so a single local set reproduces them — without
  // writing any record field from a lane.
  std::unordered_set<PointId> seen;
  std::deque<PointId> queue;
  seen.insert(neo_cores[seed_idx]);
  queue.push_back(neo_cores[seed_idx]);
  out->group.push_back(neo_cores[seed_idx]);
  bool lost = false;
  while (!queue.empty() && !lost) {
    const PointId rid = queue.front();
    queue.pop_front();
    const Point center = GetRecord(rid).pt;
    tree_.RangeSearch(
        center, config_.eps,
        [&](PointId qid, const Point&) {
          if (lost || qid == rid) return;
          auto qit = records_.find(qid);
          if (qit == records_.end()) return;
          const Record& q = qit->second;
          if (q.deleted) return;
          if (!seen.insert(qid).second) return;  // Already first-visited.
          if (IsCoreNow(q)) {
            if (IsNeoCore(q)) {
              // Every neo-core appears in neo_cores (COLLECT touches any
              // point whose core status flips), so the lookup cannot miss.
              if (!try_claim(seed_index.find(qid)->second)) {
                lost = true;
                return;
              }
              queue.push_back(qid);
              out->group.push_back(qid);
              return;
            }
            out->raw_cids.push_back(q.cid);  // M+ member; canonicalized at
            return;                          // commit time.
          }
          out->borders.emplace_back(qid, rid);
        },
        &out->stats);
  }
  if (lost) {
    out->aborted = true;
    span.AddArg("aborted", 1);
    return;
  }
  span.AddArg("cores", out->group.size());
  span.AddArg("borders", out->borders.size());
}

void Disc::CommitNeoGroup(const NeoDiscovery& d) {
  // Canonicalize the recorded raw handles in encounter order. The registry
  // holds exactly the unions of all earlier commits — the same state the
  // sequential algorithm had while traversing this group — so this list
  // equals the sequential cid_list verbatim.
  std::vector<ClusterId> cid_list;
  for (ClusterId raw : d.raw_cids) {
    const ClusterId c = registry_.Find(raw);
    if (std::find(cid_list.begin(), cid_list.end(), c) == cid_list.end()) {
      cid_list.push_back(c);
    }
  }

  ClusterId g;
  if (cid_list.empty()) {
    g = registry_.NewCluster();  // Emergence.
    events_.push_back({ClusterEventType::kEmerge, {g}});
  } else if (cid_list.size() == 1) {
    g = cid_list[0];  // Expansion.
    events_.push_back({ClusterEventType::kGrow, {g}});
  } else {
    g = cid_list[0];
    for (std::size_t i = 1; i < cid_list.size(); ++i) {
      g = registry_.Union(g, cid_list[i]);
    }
    ClusterEvent event{ClusterEventType::kMerge, {g}};
    for (ClusterId c : cid_list) {
      if (c != g) event.cids.push_back(c);
    }
    events_.push_back(std::move(event));
  }
  for (PointId mp : d.group) {
    Record& rm = GetRecord(mp);
    rm.group_serial = update_serial_;
    SetLabel(mp, &rm, Category::kCore, g);
  }
  for (const auto& [bp, wit] : d.borders) {
    Record& rb = GetRecord(bp);
    // The deferred witness write the sequential traversal did inline.
    rb.witness = wit;
    rb.witness_serial = update_serial_;
    if (rb.deleted || IsCoreNow(rb)) continue;
    SetLabel(bp, &rb, Category::kBorder, g);
  }
  // Only committed probe work reaches the shared (deterministic) counters.
  tree_.stats().MergeFrom(d.stats);
}

// ---------------------------------------------------------------------------
// Label recheck (Section V)
// ---------------------------------------------------------------------------

void Disc::RecheckNonCores() {
  for (PointId id : recheck_) {
    auto it = records_.find(id);
    if (it == records_.end()) continue;
    Record& rec = it->second;
    if (rec.deleted || IsCoreNow(rec)) continue;

    // Witness shortcut: a neighbor known to be a current core.
    if (config_.use_border_witness && rec.witness_serial == update_serial_) {
      auto wit = records_.find(rec.witness);
      if (wit != records_.end() && IsCoreNow(wit->second)) {
        SetLabel(id, &rec, Category::kBorder, wit->second.cid);
        continue;
      }
    }
    // Full neighborhood examination.
    bool found = false;
    ClusterId found_cid = kNoiseCluster;
    tree_.RangeSearch(rec.pt, config_.eps, [&](PointId qid, const Point&) {
      if (found || qid == id) return;
      auto qit = records_.find(qid);
      if (qit == records_.end()) return;
      const Record& q = qit->second;
      if (!q.deleted && IsCoreNow(q)) {
        found = true;
        found_cid = q.cid;
      }
    });
    if (found) {
      SetLabel(id, &rec, Category::kBorder, found_cid);
    } else {
      SetLabel(id, &rec, Category::kNoise, kNoiseCluster);
    }
  }
}

}  // namespace disc
