#include "core/cluster_registry.h"

#include <cassert>
#include <istream>
#include <ostream>

namespace disc {

ClusterId ClusterRegistry::NewCluster() {
  const ClusterId h = static_cast<ClusterId>(parent_.size());
  parent_.push_back(h);
  rank_.push_back(0);
  return h;
}

ClusterId ClusterRegistry::Find(ClusterId h) {
  if (h == kNoiseCluster) return kNoiseCluster;
  assert(h >= 0 && static_cast<std::size_t>(h) < parent_.size());
  ClusterId root = h;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[h] != root) {
    const ClusterId next = parent_[h];
    parent_[h] = root;
    h = next;
  }
  return root;
}

ClusterId ClusterRegistry::Find(ClusterId h) const {
  if (h == kNoiseCluster) return kNoiseCluster;
  assert(h >= 0 && static_cast<std::size_t>(h) < parent_.size());
  while (parent_[h] != h) h = parent_[h];
  return h;
}

ClusterId ClusterRegistry::Union(ClusterId a, ClusterId b) {
  ClusterId ra = Find(a);
  ClusterId rb = Find(b);
  if (ra == rb) return ra;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  return ra;
}

bool ClusterRegistry::Save(std::ostream& out) const {
  const std::uint64_t n = parent_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  if (n > 0) {
    out.write(reinterpret_cast<const char*>(parent_.data()),
              static_cast<std::streamsize>(n * sizeof(ClusterId)));
  }
  return static_cast<bool>(out);
}

bool ClusterRegistry::Load(std::istream& in) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return false;
  parent_.assign(n, 0);
  rank_.assign(n, 0);
  if (n > 0) {
    in.read(reinterpret_cast<char*>(parent_.data()),
            static_cast<std::streamsize>(n * sizeof(ClusterId)));
  }
  if (!in) return false;
  // Validate: parents must be in range.
  for (ClusterId p : parent_) {
    if (p < 0 || static_cast<std::uint64_t>(p) >= n) return false;
  }
  return true;
}

}  // namespace disc
