#ifndef DISC_CORE_CLUSTER_TRACKER_H_
#define DISC_CORE_CLUSTER_TRACKER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/events.h"
#include "stream/stream_clusterer.h"

namespace disc {

// Lifecycle record of one cluster across window slides.
struct ClusterLife {
  ClusterId id = kNoiseCluster;
  std::size_t born_slide = 0;     // First slide the cluster existed.
  std::size_t last_slide = 0;     // Most recent slide it was alive.
  bool alive = false;
  // How it ended (valid when !alive): merged into another cluster, split off
  // by nobody (it dissipated), or still running.
  bool merged_away = false;
  ClusterId merged_into = kNoiseCluster;
  // Provenance: the cluster this one split off from, if any.
  bool split_child = false;
  ClusterId split_from = kNoiseCluster;
  std::size_t peak_size = 0;
  std::size_t current_size = 0;
};

// Consumes DISC's per-slide evolution events and snapshots and maintains the
// lifecycle of every cluster: birth, death, provenance (split parent / merge
// target), and size statistics. This is the bookkeeping a monitoring
// application (community tracking, congestion analysis) layers on top of the
// raw clustering — possible with DISC because its cluster ids are stable
// across slides rather than recomputed.
class ClusterTracker {
 public:
  // Feed once per slide, in order.
  void Observe(std::size_t slide_index, const std::vector<ClusterEvent>& events,
               const ClusteringSnapshot& snapshot);

  // Lifecycle of a specific cluster; nullptr when never seen.
  const ClusterLife* Find(ClusterId id) const;

  // All clusters ever seen (arbitrary order).
  std::vector<const ClusterLife*> AllClusters() const;

  std::size_t num_alive() const;
  std::size_t num_ever() const { return lives_.size(); }

 private:
  ClusterLife& GetOrCreate(ClusterId id, std::size_t slide);

  std::unordered_map<ClusterId, ClusterLife> lives_;
};

}  // namespace disc

#endif  // DISC_CORE_CLUSTER_TRACKER_H_
