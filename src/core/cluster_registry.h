#ifndef DISC_CORE_CLUSTER_REGISTRY_H_
#define DISC_CORE_CLUSTER_REGISTRY_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "stream/stream_clusterer.h"

namespace disc {

// Union-find over cluster ids. DISC stores a registry handle in each point
// record; merging clusters (the neo-core phase) is then a constant-time
// Union instead of a mass relabeling, and lookups resolve through Find.
// Handles are never recycled; memory grows by one integer per cluster ever
// created, which is negligible for realistic streams.
class ClusterRegistry {
 public:
  // Creates a new singleton cluster and returns its handle.
  ClusterId NewCluster();

  // Canonical representative of the cluster h belongs to. kNoiseCluster maps
  // to itself. Path-compressing; amortized near-constant.
  ClusterId Find(ClusterId h);

  // Non-compressing lookup for const contexts (snapshots).
  ClusterId Find(ClusterId h) const;

  // Merges the clusters of a and b; returns the surviving representative.
  ClusterId Union(ClusterId a, ClusterId b);

  std::size_t num_handles() const { return parent_.size(); }

  // Binary (de)serialization for checkpointing. Load replaces the current
  // state; ranks are reset (they only affect union balance). Same-machine
  // byte order is assumed.
  bool Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  std::vector<ClusterId> parent_;
  std::vector<std::uint32_t> rank_;
};

}  // namespace disc

#endif  // DISC_CORE_CLUSTER_REGISTRY_H_
