#include "core/pipeline.h"

#include "obs/log.h"
#include "obs/trace.h"

namespace disc {

StreamingPipeline::StreamingPipeline(StreamSource* source,
                                     StreamClusterer* clusterer,
                                     std::size_t window_size,
                                     std::size_t stride)
    : source_(source),
      clusterer_(clusterer),
      window_(window_size, stride),
      stride_(stride) {}

StreamingPipeline::StreamingPipeline(StreamSource* source,
                                     StreamClusterer* clusterer,
                                     std::size_t window_size,
                                     std::size_t stride,
                                     std::vector<Point> window_contents,
                                     std::size_t slides_already_run)
    : source_(source),
      clusterer_(clusterer),
      window_(window_size, stride, std::move(window_contents)),
      stride_(stride),
      slide_index_(slides_already_run) {}

std::size_t StreamingPipeline::Run(std::size_t max_slides,
                                   const Observer& observe) {
  std::size_t executed = 0;
  for (; executed < max_slides; ++executed) {
    obs::TraceSpan slide_span("pipeline.slide");
    slide_span.AddArg("slide", slide_index_);
    WindowDelta delta = window_.Advance(source_->NextPoints(stride_));
    Timer timer;
    const UpdateDelta& update_delta =
        clusterer_->Update(delta.incoming, delta.outgoing);
    SlideReport report;
    report.slide_index = slide_index_++;
    report.window_size = window_.contents().size();
    report.incoming = delta.incoming.size();
    report.outgoing = delta.outgoing.size();
    report.entered = update_delta.entered.size();
    report.exited = update_delta.exited.size();
    report.relabeled = update_delta.relabeled.size();
    report.update_ms = timer.ElapsedMillis();
    report.phases = clusterer_->LastPhaseTimings();
    report.probes = clusterer_->LastProbeCounters();
    report.window_full = window_.full();
    slide_span.AddArg("window", report.window_size);
    slide_span.AddArg("relabeled", report.relabeled);
    // Off by default (kDebug < the kInfo floor): one relaxed load per
    // slide. Turned on via SetLogLevel(kDebug) it narrates the stream.
    DISC_LOG(kDebug, "pipeline.slide")
        .Num("slide", report.slide_index)
        .Num("window", report.window_size)
        .Num("relabeled", report.relabeled)
        .Num("update_ms", report.update_ms);
    if (observe && !observe(report)) {
      DISC_LOG(kInfo, "pipeline.halted_by_observer")
          .Num("slide", report.slide_index);
      ++executed;
      break;
    }
  }
  return executed;
}

}  // namespace disc
