#ifndef DISC_CORE_PIPELINE_H_
#define DISC_CORE_PIPELINE_H_

#include <functional>
#include <memory>

#include "common/timer.h"
#include "stream/sliding_window.h"
#include "stream/stream_clusterer.h"
#include "stream/stream_source.h"

namespace disc {

// Everything an observer needs to know about one completed slide. Delta
// sizes and the per-phase breakdown come straight from the clusterer, so
// observers building timing tables never need to downcast to a concrete
// method or diff snapshots.
struct SlideReport {
  std::size_t slide_index = 0;
  std::size_t window_size = 0;
  std::size_t incoming = 0;
  std::size_t outgoing = 0;
  // Sizes of the UpdateDelta this slide's Update returned.
  std::size_t entered = 0;
  std::size_t exited = 0;
  std::size_t relabeled = 0;
  double update_ms = 0.0;
  // Per-phase wall-clock of the update (all-zero for methods that do not
  // instrument their phases; update_ms is always populated).
  PhaseTimings phases;
  // Index-probe counters of the update (all-zero for methods without an
  // instrumented index). Unlike the timings, these are deterministic: same
  // workload ⇒ same counts, regardless of thread count.
  ProbeCounters probes;
  bool window_full = false;
};

// Convenience wiring of source -> count-based window -> clusterer, the loop
// every example and benchmark repeats. Run() pulls strides from the source,
// advances the window, updates the clusterer, and invokes the observer after
// each slide; the observer can stop the pipeline early by returning false.
//
// The pipeline borrows the source and clusterer (no ownership); both must
// outlive it.
class StreamingPipeline {
 public:
  // Observer: return false to stop. Called after every slide.
  using Observer = std::function<bool(const SlideReport&)>;

  StreamingPipeline(StreamSource* source, StreamClusterer* clusterer,
                    std::size_t window_size, std::size_t stride);

  // Resumption constructor: seeds the window with existing contents (e.g.,
  // Disc::WindowContents() after LoadCheckpoint) so eviction continues from
  // where the checkpointed run left off. `slides_already_run` seeds the
  // slide counter, so resumed SlideReports (and the traces/metrics built
  // from them) continue the original numbering instead of restarting at 0.
  StreamingPipeline(StreamSource* source, StreamClusterer* clusterer,
                    std::size_t window_size, std::size_t stride,
                    std::vector<Point> window_contents,
                    std::size_t slides_already_run = 0);

  // Processes up to max_slides slides (or until the observer stops it).
  // Returns the number of slides executed. May be called repeatedly; the
  // window and slide counter persist across calls.
  std::size_t Run(std::size_t max_slides, const Observer& observe = nullptr);

  const CountBasedWindow& window() const { return window_; }
  std::size_t slides_run() const { return slide_index_; }
  StreamClusterer* clusterer() { return clusterer_; }

 private:
  StreamSource* source_;
  StreamClusterer* clusterer_;
  CountBasedWindow window_;
  std::size_t stride_;
  std::size_t slide_index_ = 0;
};

}  // namespace disc

#endif  // DISC_CORE_PIPELINE_H_
