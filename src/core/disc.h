#ifndef DISC_CORE_DISC_H_
#define DISC_CORE_DISC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cluster_registry.h"
#include "core/config.h"
#include "core/events.h"
#include "core/metrics.h"
#include "index/rtree.h"
#include "stream/stream_clusterer.h"

namespace disc {

// DISC: Density-based Incremental Striding Cluster (Kim et al., ICDE 2021).
//
// An exact incremental DBSCAN for the sliding-window model. Each Update call
// executes the paper's two steps:
//
//  * COLLECT (Alg. 1)  — maintains n_eps for every window point as the batch
//    of points enters/exits, and identifies the *ex-cores* (cores of the
//    previous window that lost core status or left) and *neo-cores* (cores of
//    the current window that gained the status or just arrived).
//  * CLUSTER (Alg. 2)  — groups ex-cores by retro-reachability and neo-cores
//    by nascent-reachability, computes each group's *minimal bonding cores*
//    (M- / M+), and decides cluster evolution: a split check per ex-core
//    group via Multi-Starter BFS (Alg. 3) over the current core graph, and a
//    label inspection per neo-core group. Labels of affected borders are
//    then refreshed (Sec. V).
//
// The two Section-IV optimizations — MS-BFS and epoch-based probing of the
// R-tree (Alg. 4) — can be toggled independently through DiscConfig; the
// produced clustering is identical either way.
//
// With DiscConfig::parallel_cluster (the default) the CLUSTER step's two
// traversal-heavy passes run their probes on the COLLECT thread pool:
// MS-BFS expands level-synchronous rounds of tick-free probes and merges
// fronts under a deterministic min-starter rule, and neo-core closures run
// as speculative concurrent discoveries committed sequentially in seed
// order (docs/ALGORITHM.md §4.6). Snapshots, checkpoints, deltas, and
// events are bit-identical for every num_threads value.
//
// The resulting labeling equals what DBSCAN computes from scratch on the
// window contents (up to cluster-id renaming and the usual DBSCAN tie on
// borders adjacent to several clusters).
class Disc : public StreamClusterer {
 public:
  // Throws std::invalid_argument when config.Validate() fails; validate
  // up front (e.g. DiscEngine session admission) to reject bad configs
  // without the exception.
  Disc(std::uint32_t dims, const DiscConfig& config);

  // StreamClusterer. The returned delta is precise: `relabeled` lists
  // exactly the surviving points whose stored category or cluster handle
  // changed. Cluster-id renaming that happens purely through merges (the
  // union-find representative of an untouched point's handle changing) is
  // deliberately not listed — the kMerge event carries that information.
  const UpdateDelta& Update(const std::vector<Point>& incoming,
                            const std::vector<Point>& outgoing) override;
  ClusteringSnapshot Snapshot() const override;
  std::string name() const override { return "DISC"; }
  PhaseTimings LastPhaseTimings() const override;
  ProbeCounters LastProbeCounters() const override;

  // Convenience single-point operations (Update with singleton batches).
  void Insert(const Point& p) { Update({p}, {}); }
  void Remove(const Point& p) { Update({}, {p}); }

  // Checkpointing: serializes the full clusterer state (window points,
  // densities, labels, cluster registry) so a stream processor can restart
  // without replaying the window. Restore into a Disc constructed with the
  // same dims; eps/tau are verified against the checkpoint. The R-tree is
  // rebuilt by bulk load. Same-machine byte order is assumed. Both return a
  // Status naming the first I/O or validation failure (the target is
  // unusable after a failed Load).
  Status SaveCheckpoint(std::ostream& out) const;
  Status LoadCheckpoint(std::istream& in);

  // Replaces the probe-fan-out pool for every subsequent Update: probes run
  // on `pool` (borrowed; the caller owns it and must not run two clusterers
  // on it concurrently), or inline on the calling thread when `pool` is
  // null. ReleaseExecutionPool() returns to the config-owned pool. Because
  // results are byte-identical for every lane count, switching pools never
  // changes any output — this is how DiscEngine multiplexes many sessions
  // over one shared pool (a lone runnable session borrows every lane;
  // concurrently scheduled sessions run single-lane internally).
  void SetExecutionPool(ThreadPool* pool);
  void ReleaseExecutionPool();

  // Cluster-evolution events observed during the most recent Update.
  const std::vector<ClusterEvent>& last_events() const { return events_; }

  // Counters for the most recent Update (range searches etc.).
  const DiscMetrics& last_metrics() const { return metrics_; }

  const DiscConfig& config() const { return config_; }
  std::size_t window_size() const { return records_.size(); }

  // The window's points sorted by id. Stream sources assign ids in arrival
  // order, so this doubles as the arrival-ordered contents — what a
  // CountBasedWindow needs to resume after LoadCheckpoint (see the seeded
  // window constructor).
  std::vector<Point> WindowContents() const;

  // Cumulative R-tree probe statistics.
  const RTreeStats& tree_stats() const { return tree_.stats(); }

 private:
  // Per-point state. `cid` is a ClusterRegistry handle; the canonical cluster
  // is registry_.Find(cid). The *_serial fields are scratch marks keyed to
  // either the per-Update serial or a per-traversal serial, so no per-slide
  // clearing pass is ever needed.
  struct Record {
    Point pt;
    std::uint32_t n_eps = 0;
    bool core_prev = false;  // Core at the end of the previous Update.
    bool deleted = false;    // Exited in the current Update (tombstone).
    Category category = Category::kNoise;
    ClusterId cid = kNoiseCluster;

    std::uint64_t visit_serial = 0;    // Visited marker of BFS traversals.
    std::uint32_t owner = 0;           // MS-BFS starter that claimed the point.
    std::uint64_t witness_serial = 0;  // Validity marker of `witness`.
    PointId witness = 0;               // A current-core eps-neighbor.
    std::uint64_t group_serial = 0;    // Already consumed by an ex/neo group.
    std::uint64_t recheck_serial = 0;  // Queued for the border recheck pass.
    std::uint64_t delta_serial = 0;    // Already listed in delta_.relabeled.
    std::uint32_t enter_rank = 0;      // Position in this update's incoming
                                       // batch (valid while delta_serial ==
                                       // update_serial_ during COLLECT).
  };

  // Assigns a label and records the point in delta_.relabeled when the label
  // actually changed. All CLUSTER-step label writes go through here.
  void SetLabel(PointId id, Record* rec, Category category, ClusterId cid);

  bool IsCoreNow(const Record& r) const {
    return !r.deleted && r.n_eps >= config_.tau;
  }
  bool IsExCore(const Record& r) const {
    return r.core_prev && (r.deleted || r.n_eps < config_.tau);
  }
  bool IsNeoCore(const Record& r) const {
    return !r.core_prev && IsCoreNow(r);
  }

  // COLLECT step. Fills the ex-core/neo-core id lists and the list of
  // ex-cores that exited the window (C_out, still present in the R-tree).
  //
  // Staged for parallelism: index mutations and record bookkeeping run
  // sequentially in batch order, while the per-point eps-range probes — the
  // step's dominant cost — fan out across the thread pool as read-only
  // searches whose candidate lists are then merged sequentially in batch
  // order. The merge applies exactly the per-point effects the sequential
  // algorithm would, so the result is independent of the lane count.
  void Collect(const std::vector<Point>& incoming,
               const std::vector<Point>& outgoing,
               std::vector<PointId>* ex_cores, std::vector<PointId>* neo_cores,
               std::vector<Point>* c_out);

  // Fans one read-only eps-range probe per non-null center out across the
  // pool (sequentially when the pool is absent). (*hits)[i] receives the
  // ids within eps of *centers[i] in index-traversal order — deterministic
  // because the tree is not mutated while the probes run. Probe counters
  // accumulate per lane and are merged into the tree's statistics.
  void FanOutProbes(const std::vector<const Point*>& centers,
                    std::vector<std::vector<PointId>>* hits);

  // Ex-core phase of CLUSTER: one retro-reachability closure + split check
  // per unprocessed ex-core group, exactly as Algorithm 2 reads — plus a
  // survivor-reconciliation step the paper's phrasing leaves open.
  //
  // MS-BFS's early exit leaves the last remaining component with its old
  // labels, which is sound at most once per previous cluster per update: if
  // two ex-core groups of the same cluster each report a split and each
  // leaves an unexplored "survivor", two *disconnected* components could
  // silently share the old cluster id (observed on 4-D streams where the
  // cut between two surviving parts is witnessed only transitively, across
  // groups). Every such hazard involves split-reporting groups only, so
  // CheckConnectivity records each split group's surviving component
  // (keyed by the canonical cids its bonding cores carried) and, on a
  // collision, runs a two-starter MS-BFS between the two survivors: if they
  // are one component nothing changes; otherwise the drained one is
  // relabeled fresh. The no-split fast path pays nothing.
  // See docs/ALGORITHM.md §4.2.
  void ProcessExCores(const std::vector<PointId>& ex_cores);
  void ProcessExGroup(PointId seed);

  // Runs the split check over the minimal bonding cores m_minus of an
  // ex-core group whose previous cluster is old_cid; relabels the cores and
  // borders of every component that detaches. Returns the component count.
  int CheckConnectivity(const std::vector<PointId>& m_minus, ClusterId old_cid);

  // Connectivity checks. *survivor_rep receives a core id inside the
  // component that kept its labels (the early-exit survivor). MsBfs
  // dispatches on config_.parallel_cluster between the strided (parallel
  // probes, min-starter merges) and the original interleaved (epoch-probed)
  // implementation; both are Algorithm 3, and both are deterministic, but
  // their cluster-id assignments can differ from each other.
  int MsBfs(const std::vector<PointId>& m_minus, PointId* survivor_rep);
  int MsBfsStrided(const std::vector<PointId>& m_minus, PointId* survivor_rep);
  int MsBfsInterleaved(const std::vector<PointId>& m_minus,
                       PointId* survivor_rep);
  int SequentialBfs(const std::vector<PointId>& m_minus,
                    PointId* survivor_rep);

  // Fans one tick-free eps-range probe per non-null center out across the
  // pool — the CLUSTER-side sibling of FanOutProbes (inline when the pool is
  // absent or the batch is smaller than parallel_cluster_min_batch; the
  // candidate lists are identical either way). No epoch ticks are taken, so
  // any number of these probes may run concurrently against the frozen tree.
  void FanOutClusterProbes(const std::vector<const Point*>& centers,
                           std::vector<std::vector<PointId>>* hits);

  // Neo-core phase of CLUSTER: one nascent-reachability closure + label
  // inspection per unprocessed neo-core. ProcessNeoCores dispatches on
  // config_.parallel_cluster between the speculative concurrent path and
  // the original sequential group loop; their outputs are bit-identical
  // (see ProcessNeoCoresParallel).
  void ProcessNeoCores(const std::vector<PointId>& neo_cores);
  void ProcessNeoGroup(PointId seed);

  // Result of one speculative neo-core discovery: a read-only BFS that
  // records everything the sequential traversal would have written, so the
  // commit step can replay it. `raw_cids` keeps the *uncanonicalized*
  // cluster handles of the M+ members in encounter order — canonicalization
  // is deferred to commit time, where the registry is in exactly the state
  // the sequential algorithm's traversal would have observed.
  struct NeoDiscovery {
    std::vector<PointId> group;  // Neo-cores of the component, BFS order.
    std::vector<std::pair<PointId, PointId>> borders;  // (non-core, witness).
    std::vector<ClusterId> raw_cids;
    RTreeStats stats;  // This discovery's probe counters.
    bool aborted = false;
  };

  // Parallel neo phase: every neo-core starts a NeoDiscoveryWorker on the
  // pool; workers race claims through an atomic CAS-min table so that the
  // smallest seed of each nascent-reachable component always completes its
  // discovery while larger seeds abort early. Completed discoveries are then
  // committed sequentially in seed order (duplicates and aborts discarded),
  // which makes labels, events, deltas, and the registry evolve exactly as
  // under the sequential loop — for any lane count, including zero workers.
  void ProcessNeoCoresParallel(const std::vector<PointId>& neo_cores);
  void NeoDiscoveryWorker(
      std::uint32_t seed_idx, const std::vector<PointId>& neo_cores,
      const std::unordered_map<PointId, std::uint32_t>& seed_index,
      std::vector<std::atomic<std::uint32_t>>* claims, NeoDiscovery* out);
  void CommitNeoGroup(const NeoDiscovery& d);

  // Final pass of Sec. V: refreshes the category/cid of non-core points
  // whose adjacent core set may have changed.
  void RecheckNonCores();

  // Issues an eps-range search around `center`, honoring the epoch-probing
  // switch. The visitor returns true when the point needs no further visits
  // under this tick (only enforced when epoch probing is enabled, so
  // visitors must stay idempotent).
  void SearchMarking(const Point& center, std::uint64_t tick,
                     const RTree::MarkingVisitor& visit);

  void AddRecheck(PointId id, Record* rec);

  Record& GetRecord(PointId id);

  // The pool the parallel stages fan out on: the external pool when one is
  // installed (even if null — that means "run inline"), else the internal
  // config-owned pool.
  ThreadPool* execution_pool() const {
    return use_external_pool_ ? external_pool_ : pool_.get();
  }

  DiscConfig config_;
  RTree tree_;
  std::unordered_map<PointId, Record> records_;
  ClusterRegistry registry_;
  // COLLECT's probe fan-out pool; null when config_.num_threads resolves
  // to 1 (the sequential path then runs without any synchronization).
  std::unique_ptr<ThreadPool> pool_;
  // SetExecutionPool state; see execution_pool().
  ThreadPool* external_pool_ = nullptr;
  bool use_external_pool_ = false;

  std::vector<ClusterEvent> events_;
  DiscMetrics metrics_;

  std::uint64_t update_serial_ = 0;  // Increments once per Update.
  std::uint64_t search_serial_ = 0;  // Increments once per graph traversal.
  std::vector<PointId> recheck_;     // Non-cores to re-label at Update end.
  std::vector<PointId> touched_;     // Points whose n_eps changed.
  // Per-update: representative core of the surviving component of each
  // cluster that a split group touched (see ProcessExCores comment).
  std::unordered_map<ClusterId, PointId> split_survivors_;
};

}  // namespace disc

#endif  // DISC_CORE_DISC_H_
