// Checkpoint save/restore for Disc. The persisted state is exactly what the
// algorithm needs across slides: per-point coordinates, density, previous
// core status, category, and cluster handle, plus the cluster registry. The
// spatial index and all per-update scratch fields are rebuilt/reset.
//
// Both operations return a Status whose message names the first thing that
// went wrong (bad magic, dims/eps/tau mismatch, truncation, corrupt
// record), so a multi-session host like DiscEngine can report which
// checkpoint failed to recover and why.

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/failpoint.h"
#include "core/disc.h"
#include "obs/log.h"

namespace disc {

namespace {

constexpr std::uint64_t kMagic = 0x44495343'43503031ULL;  // "DISCCP01"

// Every checkpoint failure funnels through here so the structured log
// stream carries the same message the Status does (one rate-limited site).
Status Fail(const std::string& message) {
  DISC_LOG(kError, "checkpoint.failed").Str("error", message);
  return Status::Error(message);
}

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status Disc::SaveCheckpoint(std::ostream& out) const {
  DISC_FAILPOINT_STATUS("checkpoint.save.pre");
  WritePod(out, kMagic);
  WritePod(out, static_cast<std::uint32_t>(tree_.dims()));
  WritePod(out, config_.eps);
  WritePod(out, config_.tau);
  WritePod(out, static_cast<std::uint64_t>(records_.size()));
  // Serialize in ascending id order so identical clusterer states produce
  // byte-identical checkpoints regardless of hash-table layout.
  std::vector<PointId> sorted_ids;
  sorted_ids.reserve(records_.size());
  for (const auto& [id, rec] : records_) sorted_ids.push_back(id);
  std::sort(sorted_ids.begin(), sorted_ids.end());
  for (PointId id : sorted_ids) {
    const Record& rec = records_.at(id);
    // A fired short-write poisons `out` mid-record: everything emitted so
    // far stays on disk as a torn prefix, caught by the !out check below.
    DISC_FAILPOINT_STREAM("checkpoint.save.record", out);
    WritePod(out, id);
    out.write(reinterpret_cast<const char*>(rec.pt.x.data()),
              sizeof(double) * kMaxDims);
    WritePod(out, rec.n_eps);
    WritePod(out, static_cast<std::uint8_t>(rec.core_prev ? 1 : 0));
    WritePod(out, static_cast<std::uint8_t>(rec.category));
    WritePod(out, rec.cid);
  }
  if (!registry_.Save(out)) {
    return Fail("checkpoint save: cluster-registry write failed");
  }
  if (!out) {
    return Fail("checkpoint save: stream write failed");
  }
  return Status::Ok();
}

Status Disc::LoadCheckpoint(std::istream& in) {
  DISC_FAILPOINT_STATUS("checkpoint.load.pre");
  std::uint64_t magic = 0;
  std::uint32_t dims = 0;
  double eps = 0.0;
  std::uint32_t tau = 0;
  std::uint64_t count = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Fail("checkpoint load: bad magic (not a DISC checkpoint)");
  }
  if (!ReadPod(in, &dims) || dims != tree_.dims()) {
    std::ostringstream os;
    os << "checkpoint load: dims mismatch (checkpoint " << dims
       << ", clusterer " << tree_.dims() << ")";
    return Fail(os.str());
  }
  if (!ReadPod(in, &eps) || eps != config_.eps) {
    std::ostringstream os;
    os << "checkpoint load: eps mismatch (checkpoint " << eps
       << ", clusterer " << config_.eps << ")";
    return Fail(os.str());
  }
  if (!ReadPod(in, &tau) || tau != config_.tau) {
    std::ostringstream os;
    os << "checkpoint load: tau mismatch (checkpoint " << tau
       << ", clusterer " << config_.tau << ")";
    return Fail(os.str());
  }
  if (!ReadPod(in, &count)) {
    return Fail("checkpoint load: truncated header");
  }

  records_.clear();
  records_.reserve(count);
  std::vector<Point> points;
  points.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PointId id = 0;
    Record rec;
    std::uint8_t core_prev = 0;
    std::uint8_t category = 0;
    // Built only on failure; the success path never touches a stream.
    auto record_error = [&](const char* what) {
      std::ostringstream os;
      os << "checkpoint load: record " << i << " of " << count << ": " << what;
      return Fail(os.str());
    };
    if (!ReadPod(in, &id)) return record_error("truncated");
    in.read(reinterpret_cast<char*>(rec.pt.x.data()),
            sizeof(double) * kMaxDims);
    if (!in) return record_error("truncated coordinates");
    if (!ReadPod(in, &rec.n_eps)) return record_error("truncated");
    if (!ReadPod(in, &core_prev)) return record_error("truncated");
    if (!ReadPod(in, &category)) return record_error("truncated");
    if (!ReadPod(in, &rec.cid)) return record_error("truncated");
    if (category > static_cast<std::uint8_t>(Category::kNoise)) {
      return record_error("invalid category byte");
    }
    rec.pt.id = id;
    rec.pt.dims = dims;
    if (!IsValidPoint(rec.pt)) {
      return record_error("invalid point coordinates");
    }
    rec.core_prev = core_prev != 0;
    // `rec` is a by-value local: restoring persisted bytes into a copy is
    // not a clustering decision, and disc_lint v2's scope tracking knows
    // it (the v1 allow(label-choke-point) suppression is gone).
    rec.category = static_cast<Category>(category);
    points.push_back(rec.pt);
    if (!records_.emplace(id, rec).second) {
      return record_error("duplicate point id");
    }
  }
  if (!registry_.Load(in)) {
    return Fail("checkpoint load: corrupt cluster registry");
  }
  // Validate handles against the restored registry. Iterates the points in
  // file order (not the hash map) so the first reported offender is stable.
  for (const Point& pt : points) {
    const Record& rec = records_.at(pt.id);
    if (rec.cid != kNoiseCluster &&
        (rec.cid < 0 ||
         static_cast<std::size_t>(rec.cid) >= registry_.num_handles())) {
      std::ostringstream os;
      os << "checkpoint load: point " << pt.id << " references cluster handle "
         << rec.cid << " outside the restored registry";
      return Fail(os.str());
    }
  }

  // Rebuild the index; reset per-update scratch state.
  tree_.Clear();
  tree_.BulkLoad(std::move(points));
  events_.clear();
  metrics_.Reset();
  delta_ = UpdateDelta{};
  recheck_.clear();
  touched_.clear();
  update_serial_ = 0;
  search_serial_ = 0;
  return Status::Ok();
}

}  // namespace disc
