// Checkpoint save/restore for Disc. The persisted state is exactly what the
// algorithm needs across slides: per-point coordinates, density, previous
// core status, category, and cluster handle, plus the cluster registry. The
// spatial index and all per-update scratch fields are rebuilt/reset.

#include <algorithm>
#include <istream>
#include <ostream>
#include <vector>

#include "core/disc.h"

namespace disc {

namespace {

constexpr std::uint64_t kMagic = 0x44495343'43503031ULL;  // "DISCCP01"

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

bool Disc::SaveCheckpoint(std::ostream& out) const {
  WritePod(out, kMagic);
  WritePod(out, static_cast<std::uint32_t>(tree_.dims()));
  WritePod(out, config_.eps);
  WritePod(out, config_.tau);
  WritePod(out, static_cast<std::uint64_t>(records_.size()));
  // Serialize in ascending id order so identical clusterer states produce
  // byte-identical checkpoints regardless of hash-table layout.
  std::vector<PointId> sorted_ids;
  sorted_ids.reserve(records_.size());
  for (const auto& [id, rec] : records_) sorted_ids.push_back(id);
  std::sort(sorted_ids.begin(), sorted_ids.end());
  for (PointId id : sorted_ids) {
    const Record& rec = records_.at(id);
    WritePod(out, id);
    out.write(reinterpret_cast<const char*>(rec.pt.x.data()),
              sizeof(double) * kMaxDims);
    WritePod(out, rec.n_eps);
    WritePod(out, static_cast<std::uint8_t>(rec.core_prev ? 1 : 0));
    WritePod(out, static_cast<std::uint8_t>(rec.category));
    WritePod(out, rec.cid);
  }
  if (!registry_.Save(out)) return false;
  return static_cast<bool>(out);
}

bool Disc::LoadCheckpoint(std::istream& in) {
  std::uint64_t magic = 0;
  std::uint32_t dims = 0;
  double eps = 0.0;
  std::uint32_t tau = 0;
  std::uint64_t count = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) return false;
  if (!ReadPod(in, &dims) || dims != tree_.dims()) return false;
  if (!ReadPod(in, &eps) || eps != config_.eps) return false;
  if (!ReadPod(in, &tau) || tau != config_.tau) return false;
  if (!ReadPod(in, &count)) return false;

  records_.clear();
  records_.reserve(count);
  std::vector<Point> points;
  points.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PointId id = 0;
    Record rec;
    std::uint8_t core_prev = 0;
    std::uint8_t category = 0;
    if (!ReadPod(in, &id)) return false;
    in.read(reinterpret_cast<char*>(rec.pt.x.data()),
            sizeof(double) * kMaxDims);
    if (!in) return false;
    if (!ReadPod(in, &rec.n_eps)) return false;
    if (!ReadPod(in, &core_prev)) return false;
    if (!ReadPod(in, &category)) return false;
    if (!ReadPod(in, &rec.cid)) return false;
    if (category > static_cast<std::uint8_t>(Category::kNoise)) return false;
    rec.pt.id = id;
    rec.pt.dims = dims;
    if (!IsValidPoint(rec.pt)) return false;
    rec.core_prev = core_prev != 0;
    // Restoring persisted labels, not making a clustering decision — the
    // SetLabel choke point (and its delta accounting) does not apply here:
    // disc-lint: allow(label-choke-point) checkpoint restore.
    rec.category = static_cast<Category>(category);
    points.push_back(rec.pt);
    if (!records_.emplace(id, rec).second) return false;  // Duplicate id.
  }
  if (!registry_.Load(in)) return false;
  // Validate handles against the restored registry.
  for (const auto& [id, rec] : records_) {
    if (rec.cid != kNoiseCluster &&
        (rec.cid < 0 ||
         static_cast<std::size_t>(rec.cid) >= registry_.num_handles())) {
      return false;
    }
  }

  // Rebuild the index; reset per-update scratch state.
  tree_.Clear();
  tree_.BulkLoad(std::move(points));
  events_.clear();
  metrics_.Reset();
  delta_ = UpdateDelta{};
  recheck_.clear();
  touched_.clear();
  update_serial_ = 0;
  search_serial_ = 0;
  return true;
}

}  // namespace disc
