#include "core/config.h"

#include <cmath>
#include <sstream>

namespace disc {

Status DiscConfig::Validate() const {
  if (!std::isfinite(eps) || eps <= 0.0) {
    std::ostringstream os;
    os << "DiscConfig: eps must be a positive finite number, got " << eps;
    return Status::Error(os.str());
  }
  if (tau < 1) {
    return Status::Error(
        "DiscConfig: tau must be >= 1 (a point is always its own "
        "eps-neighbor)");
  }
  if (rtree_max_entries < 4) {
    std::ostringstream os;
    os << "DiscConfig: rtree_max_entries must be >= 4 (node splits need at "
          "least two entries per half), got "
       << rtree_max_entries;
    return Status::Error(os.str());
  }
  return Status::Ok();
}

}  // namespace disc
