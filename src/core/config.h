#ifndef DISC_CORE_CONFIG_H_
#define DISC_CORE_CONFIG_H_

#include <cstdint>

#include "common/status.h"
#include "index/rtree.h"

namespace disc {

// Parameters of the DISC clusterer. eps and tau are DBSCAN's distance and
// density thresholds (Table I); a point is a core iff its eps-neighborhood,
// including itself, holds at least tau points. The two booleans toggle the
// Section IV optimizations independently, matching the Fig. 8 ablation.
struct DiscConfig {
  double eps = 1.0;
  std::uint32_t tau = 5;

  // Multi-Starter BFS (Alg. 3). When false, density-connectedness of the
  // minimal bonding cores is checked with repeated single-source BFS.
  bool use_msbfs = true;

  // Epoch-based probing of the R-tree (Alg. 4). When false, range searches
  // revisit already-explored index regions and the traversal filters
  // duplicates on the client side.
  bool use_epoch_probing = true;

  // Border-witness shortcut (this implementation's addition, not in the
  // paper): remember one adjacent current-core per touched non-core during
  // the CLUSTER traversals so the Sec.-V label recheck can usually skip its
  // range search. Off = every rechecked point pays a full search.
  bool use_border_witness = true;

  // Fanout and node-split heuristic of the R-tree index.
  int rtree_max_entries = 16;
  SplitPolicy rtree_split_policy = SplitPolicy::kQuadratic;

  // Lanes for the COLLECT probe fan-out. 1 = fully sequential (no pool is
  // even created); 0 = one lane per hardware thread. The produced
  // clustering, deltas, and events are bit-identical for every value: the
  // parallel phases are read-only and their results are merged in a
  // thread-count-independent order (see docs/ALGORITHM.md).
  std::uint32_t num_threads = 1;

  // Parallel CLUSTER stage (docs/ALGORITHM.md §4.6): MS-BFS expands its
  // frontier in level-synchronous rounds whose probes fan out across the
  // pool, with a deterministic min-starter merge rule, and neo-core group
  // closures run as speculative concurrent discoveries committed in seed
  // order. Both paths probe the R-tree tick-free (plain read-only searches,
  // no epoch marks), so lanes never race on entry epochs, and every state
  // mutation stays on the calling thread — output is bit-identical for any
  // num_threads. When false, CLUSTER runs the original interleaved
  // epoch-probed traversals (the ablation baseline); the clustering is
  // DBSCAN-identical either way, but cluster-id assignment between the two
  // modes may differ.
  bool parallel_cluster = true;

  // Minimum per-round probe batch worth dispatching to the pool; smaller
  // batches run inline on the calling thread. Purely an execution knob —
  // inline and pooled probes return identical candidate lists.
  std::uint32_t parallel_cluster_min_batch = 2;

  // Checks every parameter and returns a descriptive error for the first
  // violation (eps must be a positive finite number, tau >= 1,
  // rtree_max_entries >= 4). Called by the Disc constructor — which throws
  // std::invalid_argument with the message on failure — and by
  // DiscEngine session admission, which surfaces the Status instead of
  // failing deep inside the index.
  Status Validate() const;
};

}  // namespace disc

#endif  // DISC_CORE_CONFIG_H_
