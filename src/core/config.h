#ifndef DISC_CORE_CONFIG_H_
#define DISC_CORE_CONFIG_H_

#include <cstdint>

#include "index/rtree.h"

namespace disc {

// Parameters of the DISC clusterer. eps and tau are DBSCAN's distance and
// density thresholds (Table I); a point is a core iff its eps-neighborhood,
// including itself, holds at least tau points. The two booleans toggle the
// Section IV optimizations independently, matching the Fig. 8 ablation.
struct DiscConfig {
  double eps = 1.0;
  std::uint32_t tau = 5;

  // Multi-Starter BFS (Alg. 3). When false, density-connectedness of the
  // minimal bonding cores is checked with repeated single-source BFS.
  bool use_msbfs = true;

  // Epoch-based probing of the R-tree (Alg. 4). When false, range searches
  // revisit already-explored index regions and the traversal filters
  // duplicates on the client side.
  bool use_epoch_probing = true;

  // Border-witness shortcut (this implementation's addition, not in the
  // paper): remember one adjacent current-core per touched non-core during
  // the CLUSTER traversals so the Sec.-V label recheck can usually skip its
  // range search. Off = every rechecked point pays a full search.
  bool use_border_witness = true;

  // Fanout and node-split heuristic of the R-tree index.
  int rtree_max_entries = 16;
  SplitPolicy rtree_split_policy = SplitPolicy::kQuadratic;

  // Lanes for the COLLECT probe fan-out. 1 = fully sequential (no pool is
  // even created); 0 = one lane per hardware thread. The produced
  // clustering, deltas, and events are bit-identical for every value: the
  // parallel phases are read-only and their results are merged in a
  // thread-count-independent order (see docs/ALGORITHM.md).
  std::uint32_t num_threads = 1;
};

}  // namespace disc

#endif  // DISC_CORE_CONFIG_H_
