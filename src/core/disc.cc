#include "core/disc.h"

#include <algorithm>
#include <cassert>

#include "common/timer.h"

namespace disc {

Disc::Disc(std::uint32_t dims, const DiscConfig& config)
    : config_(config),
      tree_(dims, config.rtree_max_entries, config.rtree_split_policy) {
  assert(config.eps > 0.0);
  assert(config.tau >= 1);
}

Disc::Record& Disc::GetRecord(PointId id) {
  auto it = records_.find(id);
  assert(it != records_.end());
  return it->second;
}

void Disc::SearchMarking(const Point& center, std::uint64_t tick,
                         const RTree::MarkingVisitor& visit) {
  if (config_.use_epoch_probing) {
    tree_.EpochRangeSearch(center, config_.eps, tick, visit);
  } else {
    tree_.RangeSearch(center, config_.eps,
                      [&](PointId id, const Point& p) { visit(id, p); });
  }
}

void Disc::AddRecheck(PointId id, Record* rec) {
  if (rec->recheck_serial == update_serial_) return;
  rec->recheck_serial = update_serial_;
  recheck_.push_back(id);
}

void Disc::SetLabel(PointId id, Record* rec, Category category,
                    ClusterId cid) {
  if (rec->category == category && rec->cid == cid) return;
  rec->category = category;
  rec->cid = cid;
  if (rec->delta_serial != update_serial_) {
    rec->delta_serial = update_serial_;
    delta_.relabeled.push_back(id);
  }
}

// ---------------------------------------------------------------------------
// COLLECT (Algorithm 1)
// ---------------------------------------------------------------------------

void Disc::Collect(const std::vector<Point>& incoming,
                   const std::vector<Point>& outgoing,
                   std::vector<PointId>* ex_cores,
                   std::vector<PointId>* neo_cores, std::vector<Point>* c_out) {
  // touched_ records every point whose n_eps changed this update, deduplicated
  // by marking records under a dedicated traversal serial.
  const std::uint64_t touch_serial = ++search_serial_;
  auto touch = [&](PointId id, Record* rec) {
    if (rec->visit_serial == touch_serial) return;
    rec->visit_serial = touch_serial;
    touched_.push_back(id);
  };

  // --- Points exiting the window (Alg. 1, lines 2-7). ---
  for (const Point& p : outgoing) {
    auto it = records_.find(p.id);
    assert(it != records_.end());
    if (it == records_.end()) continue;  // Tolerate misuse in release builds.
    Record& rec = it->second;
    if (rec.core_prev) {
      // Ex-cores in Delta_out stay in the R-tree until CLUSTER finishes.
      c_out->push_back(rec.pt);
    } else {
      tree_.Delete(rec.pt);
    }
    tree_.RangeSearch(rec.pt, config_.eps, [&](PointId qid, const Point&) {
      if (qid == p.id) return;
      auto qit = records_.find(qid);
      if (qit == records_.end()) return;
      Record& q = qit->second;
      if (q.deleted) return;
      assert(q.n_eps > 0);
      --q.n_eps;
      touch(qid, &q);
    });
    rec.deleted = true;
    rec.n_eps = 0;
    touch(p.id, &rec);
    delta_.exited.push_back(p.id);
  }

  // --- Points entering the window (Alg. 1, lines 8-12). ---
  for (const Point& p : incoming) {
    if (!IsValidPoint(p) || p.dims != tree_.dims()) {
      assert(false && "invalid incoming point");
      continue;  // Reject non-finite or mis-dimensioned points.
    }
    auto [it, inserted] = records_.emplace(p.id, Record{});
    assert(inserted);
    if (!inserted) continue;  // Duplicate id: ignore.
    Record& rec = it->second;
    rec.pt = p;
    rec.n_eps = 1;  // The neighborhood includes the point itself.
    rec.delta_serial = update_serial_;  // Listed in `entered`, not `relabeled`.
    delta_.entered.push_back(p.id);
    tree_.Insert(p);
    tree_.RangeSearch(p, config_.eps, [&](PointId qid, const Point&) {
      if (qid == p.id) return;
      auto qit = records_.find(qid);
      if (qit == records_.end()) return;
      Record& q = qit->second;
      if (q.deleted) return;
      ++q.n_eps;
      ++rec.n_eps;
      touch(qid, &q);
      if (q.n_eps >= config_.tau) {
        // q is a core from here on (n_eps only grows for the rest of this
        // update), so it can serve as rec's border witness.
        rec.witness = qid;
        rec.witness_serial = update_serial_;
      }
    });
    touch(p.id, &rec);
    // The new point's category is settled by the recheck pass unless the
    // CLUSTER step labels it first.
    AddRecheck(p.id, &rec);
  }

  // --- Ex-core / neo-core identification (Alg. 1, line 13). ---
  for (PointId id : touched_) {
    Record& rec = GetRecord(id);
    if (IsExCore(rec)) {
      ex_cores->push_back(id);
    } else if (IsNeoCore(rec)) {
      neo_cores->push_back(id);
    }
  }
}

// ---------------------------------------------------------------------------
// Update orchestration
// ---------------------------------------------------------------------------

void Disc::Update(const std::vector<Point>& incoming,
                  const std::vector<Point>& outgoing) {
  ++update_serial_;
  events_.clear();
  metrics_.Reset();
  recheck_.clear();
  touched_.clear();
  delta_.entered.clear();
  delta_.exited.clear();
  delta_.relabeled.clear();

  const std::uint64_t searches_at_start = tree_.stats().range_searches;

  std::vector<PointId> ex_cores;
  std::vector<PointId> neo_cores;
  std::vector<Point> c_out;
  Timer phase_timer;
  Collect(incoming, outgoing, &ex_cores, &neo_cores, &c_out);
  metrics_.collect_ms = phase_timer.ElapsedMillis();

  metrics_.num_ex_cores = ex_cores.size();
  metrics_.num_neo_cores = neo_cores.size();
  metrics_.collect_searches = tree_.stats().range_searches - searches_at_start;

  // CLUSTER (Algorithm 2): splits first, then remove C_out, then mergers.
  phase_timer.Reset();
  ProcessExCores(ex_cores);
  for (const Point& p : c_out) tree_.Delete(p);
  metrics_.ex_phase_ms = phase_timer.ElapsedMillis();
  phase_timer.Reset();
  ProcessNeoCores(neo_cores);
  metrics_.neo_phase_ms = phase_timer.ElapsedMillis();
  phase_timer.Reset();
  RecheckNonCores();
  metrics_.recheck_ms = phase_timer.ElapsedMillis();

  // Finalize: refresh core_prev for every point whose density changed and
  // drop the tombstones of exited points.
  for (PointId id : touched_) {
    auto it = records_.find(id);
    if (it == records_.end()) continue;
    Record& rec = it->second;
    if (rec.deleted) {
      records_.erase(it);
      continue;
    }
    rec.core_prev = rec.n_eps >= config_.tau;
  }

  metrics_.range_searches = tree_.stats().range_searches - searches_at_start;
  metrics_.cluster_searches =
      metrics_.range_searches - metrics_.collect_searches;
}

std::vector<Point> Disc::WindowContents() const {
  std::vector<Point> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec.pt);
  std::sort(out.begin(), out.end(),
            [](const Point& a, const Point& b) { return a.id < b.id; });
  return out;
}

ClusteringSnapshot Disc::Snapshot() const {
  ClusteringSnapshot snap;
  snap.ids.reserve(records_.size());
  snap.categories.reserve(records_.size());
  snap.cids.reserve(records_.size());
  for (const auto& [id, rec] : records_) {
    assert(!rec.deleted);
    snap.ids.push_back(id);
    snap.categories.push_back(rec.category);
    snap.cids.push_back(rec.category == Category::kNoise
                            ? kNoiseCluster
                            : static_cast<const ClusterRegistry&>(registry_)
                                  .Find(rec.cid));
  }
  return snap;
}

}  // namespace disc
