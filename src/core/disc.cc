#include "core/disc.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <thread>

#include "common/timer.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace disc {

namespace {

std::uint32_t ResolveThreads(std::uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Runs before any member that consumes config values (the R-tree asserts on
// its fanout), so an invalid config surfaces as one descriptive exception
// instead of an assert deep in the index.
const DiscConfig& ValidateOrThrow(const DiscConfig& config) {
  if (Status valid = config.Validate(); !valid.ok()) {
    throw std::invalid_argument(valid.message());
  }
  return config;
}

}  // namespace

Disc::Disc(std::uint32_t dims, const DiscConfig& config)
    : config_(ValidateOrThrow(config)),
      tree_(dims, config.rtree_max_entries, config.rtree_split_policy) {
  config_.num_threads = ResolveThreads(config_.num_threads);
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads - 1);
  }
}

void Disc::SetExecutionPool(ThreadPool* pool) {
  external_pool_ = pool;
  use_external_pool_ = true;
}

void Disc::ReleaseExecutionPool() {
  external_pool_ = nullptr;
  use_external_pool_ = false;
}

Disc::Record& Disc::GetRecord(PointId id) {
  auto it = records_.find(id);
  assert(it != records_.end());
  return it->second;
}

void Disc::SearchMarking(const Point& center, std::uint64_t tick,
                         const RTree::MarkingVisitor& visit) {
  if (config_.use_epoch_probing) {
    tree_.EpochRangeSearch(center, config_.eps, tick, visit);
  } else {
    tree_.RangeSearch(center, config_.eps,
                      [&](PointId id, const Point& p) { visit(id, p); });
  }
}

void Disc::AddRecheck(PointId id, Record* rec) {
  if (rec->recheck_serial == update_serial_) return;
  rec->recheck_serial = update_serial_;
  recheck_.push_back(id);
}

void Disc::SetLabel(PointId id, Record* rec, Category category,
                    ClusterId cid) {
  if (rec->category == category && rec->cid == cid) return;
  rec->category = category;
  rec->cid = cid;
  if (rec->delta_serial != update_serial_) {
    rec->delta_serial = update_serial_;
    delta_.relabeled.push_back(id);
  }
}

// ---------------------------------------------------------------------------
// COLLECT (Algorithm 1)
// ---------------------------------------------------------------------------

void Disc::FanOutProbes(const std::vector<const Point*>& centers,
                        std::vector<std::vector<PointId>>* hits) {
  hits->assign(centers.size(), {});
  ThreadPool* pool = execution_pool();
  const std::size_t lanes = pool ? pool->lanes() : 1;
  std::vector<RTreeStats> lane_stats(lanes);
  Timer timer;
  {
    RTree::ConcurrentProbeScope probe_scope(tree_);
    ParallelFor(pool, centers.size(),
                [&](std::size_t lane, std::size_t i) {
                  if (centers[i] == nullptr) return;
                  std::vector<PointId>& out = (*hits)[i];
                  tree_.RangeSearch(
                      *centers[i], config_.eps,
                      [&out](PointId qid, const Point&) { out.push_back(qid); },
                      &lane_stats[lane]);
                });
  }
  metrics_.collect_parallel_ms += timer.ElapsedMillis();
  for (const RTreeStats& s : lane_stats) tree_.stats().MergeFrom(s);
}

void Disc::Collect(const std::vector<Point>& incoming,
                   const std::vector<Point>& outgoing,
                   std::vector<PointId>* ex_cores,
                   std::vector<PointId>* neo_cores, std::vector<Point>* c_out) {
  // touched_ records every point whose n_eps changed this update, deduplicated
  // by marking records under a dedicated traversal serial.
  const std::uint64_t touch_serial = ++search_serial_;
  auto touch = [&](PointId id, Record* rec) {
    if (rec->visit_serial == touch_serial) return;
    rec->visit_serial = touch_serial;
    touched_.push_back(id);
  };

  // --- Points exiting the window (Alg. 1, lines 2-7). ---
  //
  // Tombstone every exit and prune the index first, so the per-exit probes
  // all run against one fixed tree and can fan out across lanes. Exits are
  // invisible to each other's probes either way (the sequential algorithm
  // only zeroed their densities), so the merged outcome is unchanged.
  std::vector<Record*> out_recs(outgoing.size(), nullptr);
  for (std::size_t i = 0; i < outgoing.size(); ++i) {
    const Point& p = outgoing[i];
    auto it = records_.find(p.id);
    if (it == records_.end()) {
      // Caller misuse (an id that never entered the window), not an
      // internal invariant: reject with a rate-limited warning in every
      // build so the Debug sanitizer legs exercise the same tolerant path
      // production runs.
      DISC_LOG(kWarn, "disc.unknown_outgoing_ignored").Num("id", p.id);
      continue;
    }
    Record& rec = it->second;
    if (rec.core_prev) {
      // Ex-cores in Delta_out stay in the R-tree until CLUSTER finishes.
      c_out->push_back(rec.pt);
    } else {
      tree_.Delete(rec.pt);
    }
    rec.deleted = true;
    out_recs[i] = &rec;
  }

  std::vector<const Point*> centers(outgoing.size(), nullptr);
  for (std::size_t i = 0; i < outgoing.size(); ++i) {
    if (out_recs[i] != nullptr) centers[i] = &out_recs[i]->pt;
  }
  std::vector<std::vector<PointId>> hits;
  FanOutProbes(centers, &hits);

  // Merge in batch order: decrement each surviving neighbor once per exit.
  for (std::size_t i = 0; i < outgoing.size(); ++i) {
    Record* rec = out_recs[i];
    if (rec == nullptr) continue;
    const PointId pid = outgoing[i].id;
    for (PointId qid : hits[i]) {
      if (qid == pid) continue;
      auto qit = records_.find(qid);
      if (qit == records_.end()) continue;
      Record& q = qit->second;
      if (q.deleted) continue;
      assert(q.n_eps > 0);
      --q.n_eps;
      touch(qid, &q);
    }
    rec->n_eps = 0;
    touch(pid, rec);
    delta_.exited.push_back(pid);
  }

  // --- Points entering the window (Alg. 1, lines 8-12). ---
  //
  // Same staging: materialize every record and index entry sequentially,
  // probe the now-stable tree in parallel, then merge in batch order. Each
  // probe's candidate list covers the FULL incoming batch, so the merge
  // counts an incoming pair once by keeping only the earlier-ranked side —
  // reproducing exactly the increments the sequential interleaving applied.
  std::vector<Record*> in_recs(incoming.size(), nullptr);
  for (std::size_t j = 0; j < incoming.size(); ++j) {
    const Point& p = incoming[j];
    if (!IsValidPoint(p) || p.dims != tree_.dims()) {
      // Reject non-finite or mis-dimensioned points — caller misuse, so
      // warn-and-drop in every build rather than asserting.
      DISC_LOG(kWarn, "disc.invalid_incoming_rejected")
          .Num("id", p.id)
          .Num("dims", p.dims);
      continue;
    }
    auto [it, inserted] = records_.emplace(p.id, Record{});
    if (!inserted) {
      DISC_LOG(kWarn, "disc.duplicate_incoming_ignored").Num("id", p.id);
      continue;  // Duplicate id: ignore.
    }
    Record& rec = it->second;
    rec.pt = p;
    rec.n_eps = 1;  // The neighborhood includes the point itself.
    rec.delta_serial = update_serial_;  // Listed in `entered`, not `relabeled`.
    rec.enter_rank = static_cast<std::uint32_t>(j);
    delta_.entered.push_back(p.id);
    tree_.Insert(p);
    in_recs[j] = &rec;
  }

  centers.assign(incoming.size(), nullptr);
  for (std::size_t j = 0; j < incoming.size(); ++j) {
    if (in_recs[j] != nullptr) centers[j] = &in_recs[j]->pt;
  }
  FanOutProbes(centers, &hits);

  for (std::size_t j = 0; j < incoming.size(); ++j) {
    Record* recp = in_recs[j];
    if (recp == nullptr) continue;
    Record& rec = *recp;
    const PointId pid = incoming[j].id;
    for (PointId qid : hits[j]) {
      if (qid == pid) continue;
      auto qit = records_.find(qid);
      if (qit == records_.end()) continue;
      Record& q = qit->second;
      if (q.deleted) continue;
      // A later-ranked entrant: the pair is counted when its own candidate
      // list, which contains this point, is merged.
      if (q.delta_serial == update_serial_ && q.enter_rank > j) continue;
      ++q.n_eps;
      ++rec.n_eps;
      touch(qid, &q);
      if (q.n_eps >= config_.tau) {
        // q is a core from here on (n_eps only grows for the rest of this
        // update), so it can serve as rec's border witness.
        rec.witness = qid;
        rec.witness_serial = update_serial_;
      }
    }
    touch(pid, &rec);
    // The new point's category is settled by the recheck pass unless the
    // CLUSTER step labels it first.
    AddRecheck(pid, &rec);
  }

  // --- Ex-core / neo-core identification (Alg. 1, line 13). ---
  for (PointId id : touched_) {
    Record& rec = GetRecord(id);
    if (IsExCore(rec)) {
      ex_cores->push_back(id);
    } else if (IsNeoCore(rec)) {
      neo_cores->push_back(id);
    }
  }
}

// ---------------------------------------------------------------------------
// Update orchestration
// ---------------------------------------------------------------------------

const UpdateDelta& Disc::Update(const std::vector<Point>& incoming,
                                const std::vector<Point>& outgoing) {
  ++update_serial_;
  events_.clear();
  metrics_.Reset();
  metrics_.threads_used = config_.num_threads;
  recheck_.clear();
  touched_.clear();
  delta_.Clear();

  const RTreeStats stats_at_start = tree_.stats();

  obs::TraceSpan update_span("disc.update");
  update_span.AddArg("incoming", incoming.size());
  update_span.AddArg("outgoing", outgoing.size());

  std::vector<PointId> ex_cores;
  std::vector<PointId> neo_cores;
  std::vector<Point> c_out;
  Timer phase_timer;
  {
    obs::TraceSpan span("disc.collect");
    Collect(incoming, outgoing, &ex_cores, &neo_cores, &c_out);
    metrics_.collect_ms = phase_timer.ElapsedMillis();
    span.AddArg("ex_cores", ex_cores.size());
    span.AddArg("neo_cores", neo_cores.size());
  }

  metrics_.num_ex_cores = ex_cores.size();
  metrics_.num_neo_cores = neo_cores.size();
  metrics_.collect_searches =
      tree_.stats().range_searches - stats_at_start.range_searches;

  // CLUSTER (Algorithm 2): splits first, then remove C_out, then mergers.
  phase_timer.Reset();
  {
    obs::TraceSpan span("disc.ex_phase");
    ProcessExCores(ex_cores);
    for (const Point& p : c_out) tree_.Delete(p);
    metrics_.ex_phase_ms = phase_timer.ElapsedMillis();
    span.AddArg("ex_groups", metrics_.num_ex_groups);
  }
  phase_timer.Reset();
  {
    obs::TraceSpan span("disc.neo_phase");
    ProcessNeoCores(neo_cores);
    metrics_.neo_phase_ms = phase_timer.ElapsedMillis();
    span.AddArg("neo_groups", metrics_.num_neo_groups);
  }
  phase_timer.Reset();
  {
    obs::TraceSpan span("disc.recheck");
    RecheckNonCores();
    metrics_.recheck_ms = phase_timer.ElapsedMillis();
    span.AddArg("rechecked", recheck_.size());
  }

  // Finalize: refresh core_prev for every point whose density changed and
  // drop the tombstones of exited points.
  for (PointId id : touched_) {
    auto it = records_.find(id);
    if (it == records_.end()) continue;
    Record& rec = it->second;
    if (rec.deleted) {
      records_.erase(it);
      continue;
    }
    rec.core_prev = rec.n_eps >= config_.tau;
  }

  const RTreeStats& ts = tree_.stats();
  metrics_.range_searches = ts.range_searches - stats_at_start.range_searches;
  metrics_.cluster_searches =
      metrics_.range_searches - metrics_.collect_searches;
  metrics_.nodes_visited = ts.nodes_visited - stats_at_start.nodes_visited;
  metrics_.entries_checked =
      ts.entries_checked - stats_at_start.entries_checked;
  metrics_.leaf_entries_tested =
      ts.leaf_entries_tested - stats_at_start.leaf_entries_tested;
  metrics_.epoch_pruned = ts.epoch_pruned - stats_at_start.epoch_pruned;
  update_span.AddArg("range_searches", metrics_.range_searches);
  update_span.AddArg("relabeled", delta_.relabeled.size());
  return delta_;
}

ProbeCounters Disc::LastProbeCounters() const {
  ProbeCounters c;
  c.range_searches = metrics_.range_searches;
  c.nodes_visited = metrics_.nodes_visited;
  c.entries_checked = metrics_.entries_checked;
  c.leaf_entries_tested = metrics_.leaf_entries_tested;
  c.epoch_pruned = metrics_.epoch_pruned;
  return c;
}

PhaseTimings Disc::LastPhaseTimings() const {
  PhaseTimings t;
  t.collect_ms = metrics_.collect_ms;
  t.ex_phase_ms = metrics_.ex_phase_ms;
  t.neo_phase_ms = metrics_.neo_phase_ms;
  t.recheck_ms = metrics_.recheck_ms;
  t.collect_parallel_ms = metrics_.collect_parallel_ms;
  t.threads_used = metrics_.threads_used;
  return t;
}

std::vector<Point> Disc::WindowContents() const {
  std::vector<Point> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec.pt);
  std::sort(out.begin(), out.end(),
            [](const Point& a, const Point& b) { return a.id < b.id; });
  return out;
}

ClusteringSnapshot Disc::Snapshot() const {
  ClusteringSnapshot snap;
  snap.ids.reserve(records_.size());
  snap.categories.reserve(records_.size());
  snap.cids.reserve(records_.size());
  for (const auto& [id, rec] : records_) {
    assert(!rec.deleted);
    snap.ids.push_back(id);
    snap.categories.push_back(rec.category);
    snap.cids.push_back(rec.category == Category::kNoise
                            ? kNoiseCluster
                            : static_cast<const ClusterRegistry&>(registry_)
                                  .Find(rec.cid));
  }
  // Hash-ordered fill above; emit id-sorted (see ClusteringSnapshot).
  snap.SortById();
  return snap;
}

}  // namespace disc
