#ifndef DISC_CORE_METRICS_H_
#define DISC_CORE_METRICS_H_

#include <cstdint>

namespace disc {

// Per-Update counters. Range-search counts reproduce the paper's Fig. 7;
// the remaining counters support the drill-down analyses.
struct DiscMetrics {
  std::uint64_t range_searches = 0;   // All index probes this update.
  std::uint64_t collect_searches = 0; // Probes issued by COLLECT.
  std::uint64_t cluster_searches = 0; // Probes issued by CLUSTER.
  std::uint64_t num_ex_cores = 0;
  std::uint64_t num_neo_cores = 0;
  std::uint64_t num_ex_groups = 0;    // Retro-reachable equivalence classes.
  std::uint64_t num_neo_groups = 0;   // Nascent-reachable equivalence classes.
  std::uint64_t msbfs_expansions = 0; // Vertices expanded by reachability checks.
  // Survivor reconciliations between split groups of one cluster (see
  // Disc::ProcessExCores); nonzero only on slides where one cluster split
  // under more than one ex-core group.
  std::uint64_t survivor_reconciliations = 0;
  // Level-synchronous rounds executed by the strided MS-BFS (zero when
  // parallel_cluster is off). Deterministic for any lane count.
  std::uint64_t msbfs_rounds = 0;
  // Speculative neo-core discoveries launched and the subset whose results
  // were discarded (aborted by a smaller seed's claim, or completed as a
  // duplicate of a committed group). The discard count — and the probe work
  // charged to speculative_searches below — depends on lane timing, so these
  // three counters are NOT lane-count-deterministic and are deliberately
  // excluded from every exported/serialized metric surface.
  std::uint64_t neo_discoveries = 0;
  std::uint64_t neo_discoveries_discarded = 0;
  std::uint64_t speculative_searches = 0;

  // Index-probe drill-down, aggregated from RTreeStats over the update:
  // how much tree the probes actually walked, and how much Algorithm 4's
  // epoch check pruned away (the count-level view of the Fig. 8 ablation).
  std::uint64_t nodes_visited = 0;
  std::uint64_t entries_checked = 0;
  std::uint64_t leaf_entries_tested = 0;
  std::uint64_t epoch_pruned = 0;

  // Wall-clock breakdown of the update (milliseconds).
  double collect_ms = 0.0;   // COLLECT: density maintenance.
  double ex_phase_ms = 0.0;  // Ex-core closures + split checks.
  double neo_phase_ms = 0.0; // Neo-core closures + merge decisions.
  double recheck_ms = 0.0;   // Sec.-V border/noise relabeling.
  // Time inside COLLECT's parallel probe fan-out (contained in collect_ms)
  // and the number of lanes the fan-out ran on (1 = sequential path).
  double collect_parallel_ms = 0.0;
  // Time inside CLUSTER's parallel regions: strided MS-BFS probe rounds and
  // the speculative neo-discovery fan-out (contained in ex_phase_ms /
  // neo_phase_ms).
  double cluster_parallel_ms = 0.0;
  std::uint64_t threads_used = 1;

  void Reset() { *this = DiscMetrics{}; }
};

}  // namespace disc

#endif  // DISC_CORE_METRICS_H_
