#include "net/ingest_server.h"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "obs/log.h"

namespace disc {
namespace net {

namespace {

// Canned shed-load frame the accept thread answers when the connection
// queue is full. Built once: the overload path must stay allocation-light
// and — because it runs on the accept thread, outside the worker lanes'
// try/catch — must never throw, so no failpoint sits on it.
const std::string& OverloadFrame() {
  static const std::string frame = EncodeFrame(
      MessageType::kBusy,
      "ingest server overloaded: connection queue full, retry later");
  return frame;
}

}  // namespace

IngestServer::IngestServer(const IngestServerOptions& options)
    : options_(options) {}

IngestServer::~IngestServer() { Stop(); }

Status IngestServer::Start() {
  if (options_.engine == nullptr) {
    return Status::Error("ingest server needs an engine to front");
  }
  if (options_.max_pending_slides == 0) {
    return Status::Error(
        "ingest server needs max_pending_slides >= 1 (bounded admission is "
        "the backpressure contract)");
  }
  if (server_ != nullptr && server_->running()) {
    return Status::Error("ingest server already running on port " +
                         std::to_string(server_->port()));
  }

  SocketServerOptions socket_options;
  socket_options.name = "ingest";
  socket_options.bind_address = options_.bind_address;
  socket_options.port = options_.port;
  socket_options.worker_threads = options_.worker_threads;
  socket_options.max_queued_connections = options_.max_queued_connections;
  socket_options.io_timeout_s = options_.io_timeout_s;
  socket_options.accept_failpoint = "net.accept";
  socket_options.handler = [this](int fd) { HandleConnection(fd); };
  socket_options.on_overload = [this](int fd) {
    if (options_.metrics != nullptr) {
      options_.metrics->counter("net_busy_rejections_total").Add();
    }
    const std::string& frame = OverloadFrame();
    SendAllBytes(fd, frame.data(), frame.size());
  };

  auto server = std::make_unique<SocketServer>(std::move(socket_options));
  if (Status started = server->Start(); !started.ok()) return started;
  server_ = std::move(server);

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    m.counter("net_connections_total",
              "Connections the ingest server accepted");
    m.counter("net_frames_total",
              "Request frames the ingest server processed");
    m.counter("net_frames_bad_total",
              "Frames rejected before dispatch: torn, malformed, "
              "CRC-corrupt, or oversized");
    m.counter("net_busy_rejections_total",
              "Explicit BUSY answers: full admission queue or shed "
              "connection (never a silent drop)");
    m.counter("net_bytes_rx_total", "Frame bytes received by the ingest "
                                    "server (headers + payloads)");
    m.counter("net_bytes_tx_total",
              "Frame bytes sent by the ingest server");
    m.gauge("net_connections_open",
            "Ingest connections currently being served");
  }
  DISC_LOG(kInfo, "net.started")
      .Str("address", options_.bind_address)
      .Num("port", server_->port())
      .Num("lanes", options_.worker_threads)
      .Num("max_pending_slides", options_.max_pending_slides);
  return Status::Ok();
}

void IngestServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

bool IngestServer::running() const {
  return server_ != nullptr && server_->running();
}

std::uint16_t IngestServer::port() const {
  return server_ != nullptr ? server_->port() : 0;
}

bool IngestServer::SendFrame(int fd, MessageType type,
                             std::string_view payload) {
  // An injected write fault drops the connection (the worker lane's
  // try/catch closes the fd); the client sees a disconnect with the
  // request's outcome unknown — exactly the ambiguity a real network
  // failure produces, which the chaos harness drives clients through.
  DISC_FAILPOINT("net.frame.write");
  const std::string frame = EncodeFrame(type, payload);
  if (!SendAllBytes(fd, frame.data(), frame.size())) {
    DISC_LOG(kWarn, "net.send_failed")
        .Str("type", MessageTypeName(type))
        .Num("bytes", frame.size());
    return false;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("net_bytes_tx_total").Add(frame.size());
  }
  return true;
}

void IngestServer::HandleConnection(int fd) {
  obs::MetricsRegistry* metrics = options_.metrics;
  if (metrics != nullptr) metrics->counter("net_connections_total").Add();
  const std::int64_t open =
      open_connections_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (metrics != nullptr) {
    metrics->gauge("net_connections_open").Set(static_cast<double>(open));
  }
  // The gauge must come back down however the connection ends — including
  // an injected fault unwinding through the worker lane's try/catch.
  struct ConnectionScope {
    IngestServer* server;
    ~ConnectionScope() {
      const std::int64_t now_open =
          server->open_connections_.fetch_sub(1, std::memory_order_relaxed) -
          1;
      if (server->options_.metrics != nullptr) {
        server->options_.metrics->gauge("net_connections_open")
            .Set(static_cast<double>(now_open));
      }
    }
  } scope{this};

  DISC_LOG(kDebug, "net.connected").Num("open", open);
  char header_buf[kFrameHeaderBytes];
  for (;;) {
    const std::size_t header_got =
        RecvFully(fd, header_buf, kFrameHeaderBytes);
    if (header_got == 0) break;  // Clean EOF between frames.
    if (header_got < kFrameHeaderBytes) {
      // Torn header: without the full 16 bytes there is no trustworthy
      // type to answer, so the clean disconnect is the whole response.
      if (metrics != nullptr) metrics->counter("net_frames_bad_total").Add();
      DISC_LOG(kWarn, "net.frame_torn")
          .Str("where", "header")
          .Num("got", header_got)
          .Num("need", kFrameHeaderBytes);
      break;
    }
    DISC_FAILPOINT("net.frame.read");

    FrameHeader header;
    if (Status parsed =
            ParseFrameHeader(header_buf, options_.max_frame_bytes, &header);
        !parsed.ok()) {
      if (metrics != nullptr) metrics->counter("net_frames_bad_total").Add();
      DISC_LOG(kWarn, "net.frame_rejected").Str("error", parsed.message());
      // Answer with the reason, then disconnect: past a bad header the
      // stream's framing cannot be trusted.
      SendFrame(fd, MessageType::kError, parsed.message());
      break;
    }

    std::string payload(header.payload_size, '\0');
    if (header.payload_size > 0) {
      const std::size_t payload_got =
          RecvFully(fd, payload.data(), payload.size());
      if (payload_got < payload.size()) {
        if (metrics != nullptr) {
          metrics->counter("net_frames_bad_total").Add();
        }
        DISC_LOG(kWarn, "net.frame_torn")
            .Str("where", "payload")
            .Num("got", payload_got)
            .Num("need", payload.size());
        SendFrame(fd, MessageType::kError,
                  "torn frame: got " + std::to_string(payload_got) + " of " +
                      std::to_string(payload.size()) + " payload bytes");
        break;
      }
    }

    if (Status crc = VerifyPayloadCrc(header, payload); !crc.ok()) {
      if (metrics != nullptr) metrics->counter("net_frames_bad_total").Add();
      DISC_LOG(kWarn, "net.frame_rejected").Str("error", crc.message());
      SendFrame(fd, MessageType::kError, crc.message());
      break;  // Corruption in transit: resynchronization is hopeless.
    }
    if (!IsRequestType(static_cast<std::uint8_t>(header.type))) {
      if (metrics != nullptr) metrics->counter("net_frames_bad_total").Add();
      const std::string error =
          std::string("expected a request frame, got response type ") +
          MessageTypeName(header.type);
      DISC_LOG(kWarn, "net.frame_rejected").Str("error", error);
      SendFrame(fd, MessageType::kError, error);
      break;
    }

    if (metrics != nullptr) {
      metrics->counter("net_frames_total").Add();
      metrics->counter("net_bytes_rx_total")
          .Add(kFrameHeaderBytes + payload.size());
    }
    std::string response_payload;
    const MessageType response_type =
        Dispatch(header.type, payload, &response_payload);
    if (!SendFrame(fd, response_type, response_payload)) break;
  }
  DISC_LOG(kDebug, "net.disconnected").Num("open", open - 1);
}

MessageType IngestServer::Dispatch(MessageType type,
                                   const std::string& payload,
                                   std::string* response_payload) {
  response_payload->clear();
  switch (type) {
    case MessageType::kCreateSession: {
      CreateSessionRequest request;
      if (Status decoded = DecodeCreateSession(payload, &request);
          !decoded.ok()) {
        *response_payload = decoded.message();
        return MessageType::kError;
      }
      SessionOptions session;
      session.method = request.method;
      session.spec.dims = request.dims;
      session.spec.window_size = request.window_size;
      session.spec.stride = request.stride;
      session.spec.disc.eps = request.eps;
      session.spec.disc.tau = request.tau;
      if (Status created = options_.engine->CreateSession(request.name,
                                                          session);
          !created.ok()) {
        *response_payload = created.message();
        return MessageType::kError;
      }
      DISC_LOG(kInfo, "net.session_created")
          .Str("session", request.name)
          .Str("method", request.method);
      return MessageType::kOk;
    }

    case MessageType::kFeedSlide: {
      FeedSlideRequest request;
      if (Status decoded = DecodeFeedSlide(payload, &request);
          !decoded.ok()) {
        *response_payload = decoded.message();
        return MessageType::kError;
      }
      // The admission fault surface: a kStatus rule rejects the slide
      // (answered kError, nothing admitted — the producer retries), a
      // kThrow rule kills the connection before any admission.
      if (failpoint::Armed()) {
        if (Status injected = failpoint::HitStatus("net.admit");
            !injected.ok()) {
          *response_payload = injected.message();
          return MessageType::kError;
        }
      }
      bool busy = false;
      const Status fed = options_.engine->FeedSlideBounded(
          request.name, request.points, options_.max_pending_slides, &busy);
      if (busy) {
        if (options_.metrics != nullptr) {
          options_.metrics->counter("net_busy_rejections_total").Add();
        }
        DISC_LOG(kWarn, "net.busy")
            .Str("session", request.name)
            .Num("bound", options_.max_pending_slides);
        *response_payload = fed.message();
        return MessageType::kBusy;
      }
      if (!fed.ok()) {
        *response_payload = fed.message();
        return MessageType::kError;
      }
      return MessageType::kOk;
    }

    case MessageType::kDrain: {
      if (!payload.empty()) {
        *response_payload = "Drain carries no payload";
        return MessageType::kError;
      }
      const std::uint64_t executed = options_.engine->Drain();
      *response_payload = EncodeU64(executed);
      return MessageType::kDrained;
    }

    case MessageType::kQuerySnapshot: {
      std::string name;
      if (Status decoded = DecodeSessionName(payload, &name);
          !decoded.ok()) {
        *response_payload = decoded.message();
        return MessageType::kError;
      }
      ClusteringSnapshot snapshot;
      if (Status queried = options_.engine->QuerySnapshot(name, &snapshot);
          !queried.ok()) {
        *response_payload = queried.message();
        return MessageType::kError;
      }
      *response_payload = EncodeSnapshot(snapshot);
      return MessageType::kSnapshot;
    }

    case MessageType::kCloseSession: {
      std::string name;
      if (Status decoded = DecodeSessionName(payload, &name);
          !decoded.ok()) {
        *response_payload = decoded.message();
        return MessageType::kError;
      }
      if (Status closed = options_.engine->CloseSession(name);
          !closed.ok()) {
        *response_payload = closed.message();
        return MessageType::kError;
      }
      DISC_LOG(kInfo, "net.session_closed").Str("session", name);
      return MessageType::kOk;
    }

    case MessageType::kPing:
      *response_payload = payload;  // Echo.
      return MessageType::kPong;

    default:
      // Unreachable: HandleConnection filters to request types. Kept so a
      // future MessageType gains an explicit answer instead of UB.
      *response_payload = std::string("unhandled request type ") +
                          MessageTypeName(type);
      return MessageType::kError;
  }
}

}  // namespace net
}  // namespace disc
