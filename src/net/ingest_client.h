#ifndef DISC_NET_INGEST_CLIENT_H_
#define DISC_NET_INGEST_CLIENT_H_

// Blocking client for the ingest plane (net/ingest_server.h): one TCP
// connection, one request in flight at a time — which is exactly what the
// determinism contract wants, since requests on one connection execute in
// order on one worker lane.
//
// Every call returns disc::Status. A kBusy answer surfaces as a failed
// Status with *busy set (FeedSlide): the slide was NOT admitted and the
// producer owns the retry — back off, drain, or drop with its own
// bookkeeping, but never assume the engine took it. A connection-level
// failure (disconnect, torn response, CRC mismatch) also fails the call
// and closes the socket; Connect() again to resume. After a mid-request
// disconnect the outcome of that request is genuinely unknown — the
// server may or may not have applied it — the same ambiguity any network
// RPC has; the chaos tests drive this path deliberately.
//
// Not thread-safe: one client per thread (connections are cheap; the
// server multiplexes).

#include <cstdint>
#include <string>
#include <vector>

#include "common/point.h"
#include "common/status.h"
#include "net/wire.h"
#include "stream/stream_clusterer.h"

namespace disc {
namespace net {

struct IngestClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  // SO_RCVTIMEO/SO_SNDTIMEO: a Drain over a large backlog must finish
  // within this, so keep it comfortably above expected drain times.
  int io_timeout_s = 30;
  // Response frames above this cap fail the call (mirrors the server cap).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class IngestClient {
 public:
  explicit IngestClient(const IngestClientOptions& options);
  ~IngestClient();  // Closes.

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  // Connects (reconnects after Close or a connection-level failure).
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  // The remote calls, mirroring the DiscEngine surface. Each sends one
  // request frame and blocks for the response.
  Status CreateSession(const CreateSessionRequest& request);
  // On a kBusy answer: fails and sets *busy (when non-null) — the slide
  // was not admitted; retry after a drain. Other failures leave *busy
  // false.
  Status FeedSlide(const std::string& name, const std::vector<Point>& points,
                   bool* busy = nullptr);
  // Drains every session the remote engine hosts; stores the executed
  // slide count into *executed when non-null.
  Status Drain(std::uint64_t* executed = nullptr);
  Status QuerySnapshot(const std::string& name, ClusteringSnapshot* out);
  Status CloseSession(const std::string& name);
  // Round-trip liveness probe; the payload is echoed and verified.
  Status Ping();

 private:
  // Sends one frame, receives one, validates framing + CRC. Closes the
  // socket on any connection-level failure so the next call fails fast
  // and the caller can Connect() again.
  Status Call(MessageType request_type, const std::string& request_payload,
              MessageType* response_type, std::string* response_payload);
  // Maps the common kOk/kError/kBusy answers onto a Status.
  Status ExpectOk(MessageType response_type, const std::string& payload,
                  bool* busy);

  IngestClientOptions options_;
  int fd_ = -1;
  std::uint64_t ping_sequence_ = 0;
};

}  // namespace net
}  // namespace disc

#endif  // DISC_NET_INGEST_CLIENT_H_
