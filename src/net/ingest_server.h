#ifndef DISC_NET_INGEST_SERVER_H_
#define DISC_NET_INGEST_SERVER_H_

// Binary-framed TCP ingest/query service in front of DiscEngine
// (docs/API.md §net). The wire between stream producers and the engine:
// lightweight feeders connect, create sessions, push stride-sized slides,
// drive drains, and query labelings — all through the CRC-checked frames
// of net/wire.h, with the same validation DiscEngine applies in-process.
//
// Serving shape: the accept-thread + bounded-worker-lane core factored
// into common/socket_util.h (shared with the telemetry HTTP server). A
// connection is pinned to one worker lane for its lifetime and its
// requests execute in arrival order, so a producer that feeds and drains
// over one connection observes exactly the in-process call sequence —
// the engine's determinism guarantee (byte-identical state for any lane
// count) extends over the wire unchanged.
//
// Backpressure is explicit, never silent: each session's admission queue
// is bounded by max_pending_slides, enforced atomically inside
// DiscEngine::FeedSlideBounded. A full queue answers a kBusy frame (the
// slide was NOT admitted; retry after a drain) and bumps
// net_busy_rejections_total; an accepted slide (kOk answered) is in the
// engine's queue and inherits the chaos suite's "no accepted slide is
// ever dropped" invariant. A malformed, torn, oversized, or CRC-corrupt
// frame yields a descriptive kError frame or a clean disconnect — never
// a crash, never a partially-admitted slide (frame decoding is
// all-or-nothing before the engine sees any point).
//
// Observability (docs/OBSERVABILITY.md §Net): net_* counters and gauges
// in the bound registry, structured DISC_LOG events on connect /
// disconnect / reject, and failpoints net.accept / net.frame.read /
// net.frame.write / net.admit for the chaos harness. Readiness exports
// through running() — wire it into HttpServerOptions::ingest_ready so
// /healthz covers the ingest listener.
//
// Intended for trusted loopback/LAN producers, like the telemetry
// server: frames are size-capped and CRC-checked, but there is no
// authentication or TLS.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/socket_util.h"
#include "common/status.h"
#include "engine/disc_engine.h"
#include "net/wire.h"
#include "obs/metrics_registry.h"

namespace disc {
namespace net {

struct IngestServerOptions {
  std::string bind_address = "127.0.0.1";
  // 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  // Worker lanes; one connection is handled per lane at a time.
  std::size_t worker_threads = 2;
  // Accepted connections queued beyond this are answered kBusy and closed
  // by the accept thread (bounded backlog, counted in
  // net_busy_rejections_total).
  std::size_t max_queued_connections = 16;
  // Frames whose length prefix exceeds this are rejected before any
  // payload byte is read.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Per-session admission bound: a FeedSlide finding this many slides
  // already queued is answered kBusy. Must be >= 1.
  std::size_t max_pending_slides = 64;
  // Per-connection SO_RCVTIMEO/SO_SNDTIMEO: a byte-trickling or stalled
  // peer is disconnected after this long without progress.
  int io_timeout_s = 5;

  // The hosted engine, borrowed (must outlive the server). Required.
  DiscEngine* engine = nullptr;
  // Telemetry sink for the net_* metrics, borrowed and optional.
  obs::MetricsRegistry* metrics = nullptr;
};

class IngestServer {
 public:
  explicit IngestServer(const IngestServerOptions& options);
  ~IngestServer();  // Stops if running.

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  // Binds, listens, and spawns the accept + worker threads. Fails with a
  // descriptive Status (no engine bound, address in use, ...) without
  // leaking any fd or thread.
  Status Start();

  // Graceful shutdown: stops accepting, joins every thread, closes queued
  // connections. In-flight requests finish first (a lane drains its
  // current connection before exiting). Idempotent.
  void Stop();

  bool running() const;

  // The bound port (the ephemeral one when options.port == 0); 0 when not
  // running.
  std::uint16_t port() const;

 private:
  void HandleConnection(int fd);
  // Dispatches one decoded request; returns the response frame's type and
  // stores its payload into *response_payload.
  MessageType Dispatch(MessageType type, const std::string& payload,
                       std::string* response_payload);
  bool SendFrame(int fd, MessageType type, std::string_view payload);

  IngestServerOptions options_;
  std::unique_ptr<SocketServer> server_;
  // Live connection count for the net_connections_open gauge (the gauge
  // itself is last-write-wins; this atomic is the source of truth).
  std::atomic<std::int64_t> open_connections_{0};
};

}  // namespace net
}  // namespace disc

#endif  // DISC_NET_INGEST_SERVER_H_
