#ifndef DISC_NET_WIRE_H_
#define DISC_NET_WIRE_H_

// Binary wire protocol of the ingest/query plane (docs/API.md §net).
//
// Every message travels as one length-prefixed, CRC32-checked frame:
//
//   offset  size  field
//        0     4  magic 0x43534944 — the bytes "DISC" on the wire
//        4     1  message type (MessageType)
//        5     1  flags, must be 0 (reserved)
//        6     2  reserved, must be 0
//        8     4  payload size in bytes
//       12     4  CRC32 (IEEE, common/socket_util.h) of the payload
//       16     …  payload
//
// All integers are little-endian on the wire, floats are IEEE-754 binary64
// bit patterns — explicitly serialized byte by byte, so the format does
// not depend on host endianness or struct layout. Strings are a u32
// length followed by raw bytes.
//
// The receiving side validates in this order: magic, flags/reserved
// zero, known type, payload size against the frame cap, then — after the
// payload arrives — the CRC. A violation at any step yields a descriptive
// kError frame (or a clean disconnect when the stream died mid-frame),
// never a partially-admitted message: decoding is all-or-nothing.
//
// Requests mirror the DiscEngine surface (CreateSession / FeedSlide /
// Drain / QuerySnapshot / CloseSession) plus Ping; responses mirror
// disc::Status — kOk/kError carry the outcome, kBusy is the explicit
// backpressure signal (admission queue full: retry after a drain, the
// slide was NOT admitted), kDrained/kSnapshot/kPong carry result
// payloads.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/point.h"
#include "common/status.h"
#include "stream/stream_clusterer.h"

namespace disc {
namespace net {

// "DISC" read little-endian.
inline constexpr std::uint32_t kFrameMagic = 0x43534944u;
inline constexpr std::size_t kFrameHeaderBytes = 16;
// Default cap on a frame's payload; IngestServerOptions/IngestClientOptions
// can lower it. A length prefix above the cap is rejected before any
// payload byte is read.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

enum class MessageType : std::uint8_t {
  // Requests.
  kCreateSession = 1,
  kFeedSlide = 2,
  kDrain = 3,
  kQuerySnapshot = 4,
  kCloseSession = 5,
  kPing = 6,
  // Responses.
  kOk = 64,        // Empty payload: the request succeeded.
  kError = 65,     // Payload: the Status message (request rejected/failed).
  kBusy = 66,      // Payload: message; admission queue full, retry later.
  kDrained = 67,   // Payload: u64 — slides executed by the drain.
  kSnapshot = 68,  // Payload: an encoded ClusteringSnapshot.
  kPong = 69,      // Payload: the ping payload, echoed.
};

const char* MessageTypeName(MessageType type);
bool IsRequestType(std::uint8_t type);
bool IsResponseType(std::uint8_t type);

// Parsed frame header (the fixed 16 bytes, already validated).
struct FrameHeader {
  MessageType type = MessageType::kPing;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc = 0;
};

// One whole frame ready to serialize: EncodeFrame computes size + CRC.
std::string EncodeFrame(MessageType type, std::string_view payload);

// Validates and parses the fixed header from `data` (which must hold at
// least kFrameHeaderBytes). Fails with a descriptive Status on a bad
// magic, nonzero flags/reserved bytes, an unknown type, or a payload size
// above `max_frame_bytes`.
Status ParseFrameHeader(const char* data, std::size_t max_frame_bytes,
                        FrameHeader* out);

// CRC-checks `payload` against the header. Fails with a descriptive
// Status naming both CRCs on mismatch.
Status VerifyPayloadCrc(const FrameHeader& header, std::string_view payload);

// ---------------------------------------------------------------------------
// Payload serialization
// ---------------------------------------------------------------------------

// Append-only little-endian payload builder.
class WireWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v);
  void Str(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

// Sticky-failure little-endian payload reader: the first short or invalid
// read fails every later call, so decoders check ok() once at the end.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::uint8_t U8();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64();
  // Caps a single string at 1 MiB — no message carries more.
  std::string Str();

  bool ok() const { return ok_; }
  // True when every byte was consumed; decoders require this so trailing
  // garbage (a mis-framed payload) cannot pass silently.
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Take(std::size_t n, const char** out);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

// kCreateSession: the remotable subset of SessionOptions — method key,
// dims, window geometry, and the DISC thresholds. Everything else keeps
// its DiscConfig default, matching what in-process hosts typically set.
struct CreateSessionRequest {
  std::string name;
  std::string method = "DISC";
  std::uint32_t dims = 2;
  std::uint64_t window_size = 0;
  std::uint64_t stride = 0;
  double eps = 0.5;
  std::uint32_t tau = 5;
};

std::string EncodeCreateSession(const CreateSessionRequest& request);
Status DecodeCreateSession(std::string_view payload,
                           CreateSessionRequest* out);

// kFeedSlide: one stride of points for a named session. All points carry
// the same dims (validated on decode, like DiscEngine::FeedSlide).
struct FeedSlideRequest {
  std::string name;
  std::vector<Point> points;
};

std::string EncodeFeedSlide(const FeedSlideRequest& request);
Status DecodeFeedSlide(std::string_view payload, FeedSlideRequest* out);

// kQuerySnapshot / kCloseSession: just the session name.
std::string EncodeSessionName(std::string_view name);
Status DecodeSessionName(std::string_view payload, std::string* out);

// kDrained: the executed-slide count.
std::string EncodeU64(std::uint64_t value);
Status DecodeU64(std::string_view payload, std::uint64_t* out);

// kSnapshot: the full labeling, rows ordered by ascending point id (the
// snapshot contract, see stream/stream_clusterer.h).
std::string EncodeSnapshot(const ClusteringSnapshot& snapshot);
Status DecodeSnapshot(std::string_view payload, ClusteringSnapshot* out);

}  // namespace net
}  // namespace disc

#endif  // DISC_NET_WIRE_H_
