#include "net/ingest_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/socket_util.h"

namespace disc {
namespace net {

IngestClient::IngestClient(const IngestClientOptions& options)
    : options_(options) {}

IngestClient::~IngestClient() { Close(); }

Status IngestClient::Connect() {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Error(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Error("bad ingest host \"" + options_.host + "\"");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Error("cannot connect to ingest server " + options_.host +
                         ":" + std::to_string(options_.port) + ": " + error);
  }
  SetIoTimeouts(fd, options_.io_timeout_s);
  fd_ = fd;
  return Status::Ok();
}

void IngestClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status IngestClient::Call(MessageType request_type,
                          const std::string& request_payload,
                          MessageType* response_type,
                          std::string* response_payload) {
  if (fd_ < 0) {
    return Status::Error("ingest client is not connected");
  }
  const std::string frame = EncodeFrame(request_type, request_payload);
  if (!SendAllBytes(fd_, frame.data(), frame.size())) {
    Close();
    return Status::Error(std::string("connection lost sending ") +
                         MessageTypeName(request_type) + " frame");
  }
  char header_buf[kFrameHeaderBytes];
  const std::size_t header_got =
      RecvFully(fd_, header_buf, kFrameHeaderBytes);
  if (header_got < kFrameHeaderBytes) {
    Close();
    return Status::Error(
        std::string("connection lost awaiting the response to ") +
        MessageTypeName(request_type) + " (outcome unknown)");
  }
  FrameHeader header;
  if (Status parsed =
          ParseFrameHeader(header_buf, options_.max_frame_bytes, &header);
      !parsed.ok()) {
    Close();
    return parsed;
  }
  std::string payload(header.payload_size, '\0');
  if (header.payload_size > 0) {
    const std::size_t payload_got =
        RecvFully(fd_, payload.data(), payload.size());
    if (payload_got < payload.size()) {
      Close();
      return Status::Error("torn response frame: got " +
                           std::to_string(payload_got) + " of " +
                           std::to_string(payload.size()) + " payload bytes");
    }
  }
  if (Status crc = VerifyPayloadCrc(header, payload); !crc.ok()) {
    Close();
    return crc;
  }
  if (!IsResponseType(static_cast<std::uint8_t>(header.type))) {
    Close();
    return Status::Error(std::string("expected a response frame, got ") +
                         MessageTypeName(header.type));
  }
  *response_type = header.type;
  *response_payload = std::move(payload);
  return Status::Ok();
}

Status IngestClient::ExpectOk(MessageType response_type,
                              const std::string& payload, bool* busy) {
  switch (response_type) {
    case MessageType::kOk:
      return Status::Ok();
    case MessageType::kBusy:
      if (busy != nullptr) *busy = true;
      return Status::Error("BUSY: " + payload);
    case MessageType::kError:
      return Status::Error(payload);
    default:
      return Status::Error(std::string("unexpected response type ") +
                           MessageTypeName(response_type));
  }
}

Status IngestClient::CreateSession(const CreateSessionRequest& request) {
  MessageType type = MessageType::kError;
  std::string payload;
  if (Status called = Call(MessageType::kCreateSession,
                           EncodeCreateSession(request), &type, &payload);
      !called.ok()) {
    return called;
  }
  return ExpectOk(type, payload, nullptr);
}

Status IngestClient::FeedSlide(const std::string& name,
                               const std::vector<Point>& points, bool* busy) {
  if (busy != nullptr) *busy = false;
  FeedSlideRequest request;
  request.name = name;
  request.points = points;
  MessageType type = MessageType::kError;
  std::string payload;
  if (Status called = Call(MessageType::kFeedSlide, EncodeFeedSlide(request),
                           &type, &payload);
      !called.ok()) {
    return called;
  }
  return ExpectOk(type, payload, busy);
}

Status IngestClient::Drain(std::uint64_t* executed) {
  MessageType type = MessageType::kError;
  std::string payload;
  if (Status called =
          Call(MessageType::kDrain, std::string(), &type, &payload);
      !called.ok()) {
    return called;
  }
  if (type == MessageType::kError) return Status::Error(payload);
  if (type != MessageType::kDrained) {
    return Status::Error(std::string("expected a Drained response, got ") +
                         MessageTypeName(type));
  }
  std::uint64_t count = 0;
  if (Status decoded = DecodeU64(payload, &count); !decoded.ok()) {
    return decoded;
  }
  if (executed != nullptr) *executed = count;
  return Status::Ok();
}

Status IngestClient::QuerySnapshot(const std::string& name,
                                   ClusteringSnapshot* out) {
  MessageType type = MessageType::kError;
  std::string payload;
  if (Status called = Call(MessageType::kQuerySnapshot,
                           EncodeSessionName(name), &type, &payload);
      !called.ok()) {
    return called;
  }
  if (type == MessageType::kError) return Status::Error(payload);
  if (type != MessageType::kSnapshot) {
    return Status::Error(std::string("expected a Snapshot response, got ") +
                         MessageTypeName(type));
  }
  return DecodeSnapshot(payload, out);
}

Status IngestClient::CloseSession(const std::string& name) {
  MessageType type = MessageType::kError;
  std::string payload;
  if (Status called = Call(MessageType::kCloseSession,
                           EncodeSessionName(name), &type, &payload);
      !called.ok()) {
    return called;
  }
  return ExpectOk(type, payload, nullptr);
}

Status IngestClient::Ping() {
  const std::string token = "ping-" + std::to_string(++ping_sequence_);
  MessageType type = MessageType::kError;
  std::string payload;
  if (Status called = Call(MessageType::kPing, token, &type, &payload);
      !called.ok()) {
    return called;
  }
  if (type == MessageType::kError) return Status::Error(payload);
  if (type != MessageType::kPong) {
    return Status::Error(std::string("expected a Pong response, got ") +
                         MessageTypeName(type));
  }
  if (payload != token) {
    return Status::Error("Pong payload mismatch: sent \"" + token +
                         "\", got \"" + payload.substr(0, 64) + "\"");
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace disc
