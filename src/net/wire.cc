#include "net/wire.h"

#include <cstdio>
#include <cstring>

#include "common/socket_util.h"

namespace disc {
namespace net {

namespace {

void PutLe16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFFu));
  out->push_back(static_cast<char>((v >> 8) & 0xFFu));
}

void PutLe32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t GetLe32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

constexpr std::size_t kMaxWireString = 1u << 20;

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kCreateSession: return "CreateSession";
    case MessageType::kFeedSlide: return "FeedSlide";
    case MessageType::kDrain: return "Drain";
    case MessageType::kQuerySnapshot: return "QuerySnapshot";
    case MessageType::kCloseSession: return "CloseSession";
    case MessageType::kPing: return "Ping";
    case MessageType::kOk: return "Ok";
    case MessageType::kError: return "Error";
    case MessageType::kBusy: return "Busy";
    case MessageType::kDrained: return "Drained";
    case MessageType::kSnapshot: return "Snapshot";
    case MessageType::kPong: return "Pong";
  }
  return "Unknown";
}

bool IsRequestType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MessageType::kCreateSession) &&
         type <= static_cast<std::uint8_t>(MessageType::kPing);
}

bool IsResponseType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MessageType::kOk) &&
         type <= static_cast<std::uint8_t>(MessageType::kPong);
}

std::string EncodeFrame(MessageType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutLe32(&out, kFrameMagic);
  out.push_back(static_cast<char>(type));
  out.push_back('\0');  // flags
  PutLe16(&out, 0);     // reserved
  PutLe32(&out, static_cast<std::uint32_t>(payload.size()));
  PutLe32(&out, Crc32(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

Status ParseFrameHeader(const char* data, std::size_t max_frame_bytes,
                        FrameHeader* out) {
  const std::uint32_t magic = GetLe32(data);
  if (magic != kFrameMagic) {
    return Status::Error("bad frame magic 0x" + [magic] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", magic);
      return std::string(buf);
    }());
  }
  const std::uint8_t type = static_cast<std::uint8_t>(data[4]);
  if (!IsRequestType(type) && !IsResponseType(type)) {
    return Status::Error("unknown frame type " + std::to_string(type));
  }
  if (data[5] != 0 || data[6] != 0 || data[7] != 0) {
    return Status::Error("nonzero flags/reserved bytes in frame header");
  }
  const std::uint32_t payload_size = GetLe32(data + 8);
  if (payload_size > max_frame_bytes) {
    return Status::Error("frame payload of " + std::to_string(payload_size) +
                         " bytes exceeds the " +
                         std::to_string(max_frame_bytes) + "-byte frame cap");
  }
  out->type = static_cast<MessageType>(type);
  out->payload_size = payload_size;
  out->payload_crc = GetLe32(data + 12);
  return Status::Ok();
}

Status VerifyPayloadCrc(const FrameHeader& header, std::string_view payload) {
  const std::uint32_t actual = Crc32(payload.data(), payload.size());
  if (actual != header.payload_crc) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "payload CRC mismatch: header %08x, "
                  "computed %08x", header.payload_crc, actual);
    return Status::Error(buf);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// WireWriter / WireReader
// ---------------------------------------------------------------------------

void WireWriter::U32(std::uint32_t v) { PutLe32(&out_, v); }

void WireWriter::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void WireWriter::F64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}

bool WireReader::Take(std::size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t WireReader::U8() {
  const char* p = nullptr;
  if (!Take(1, &p)) return 0;
  return static_cast<std::uint8_t>(*p);
}

std::uint32_t WireReader::U32() {
  const char* p = nullptr;
  if (!Take(4, &p)) return 0;
  return GetLe32(p);
}

std::uint64_t WireReader::U64() {
  const char* p = nullptr;
  if (!Take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

double WireReader::F64() {
  const std::uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::Str() {
  const std::uint32_t size = U32();
  if (size > kMaxWireString) {
    ok_ = false;
    return std::string();
  }
  const char* p = nullptr;
  if (!Take(size, &p)) return std::string();
  return std::string(p, size);
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

std::string EncodeCreateSession(const CreateSessionRequest& request) {
  WireWriter w;
  w.Str(request.name);
  w.Str(request.method);
  w.U32(request.dims);
  w.U64(request.window_size);
  w.U64(request.stride);
  w.F64(request.eps);
  w.U32(request.tau);
  return w.Take();
}

Status DecodeCreateSession(std::string_view payload,
                           CreateSessionRequest* out) {
  WireReader r(payload);
  out->name = r.Str();
  out->method = r.Str();
  out->dims = r.U32();
  out->window_size = r.U64();
  out->stride = r.U64();
  out->eps = r.F64();
  out->tau = r.U32();
  if (!r.AtEnd()) {
    return Status::Error("malformed CreateSession payload");
  }
  return Status::Ok();
}

std::string EncodeFeedSlide(const FeedSlideRequest& request) {
  WireWriter w;
  w.Str(request.name);
  const std::uint32_t dims =
      request.points.empty() ? 0 : request.points.front().dims;
  w.U32(dims);
  w.U32(static_cast<std::uint32_t>(request.points.size()));
  for (const Point& p : request.points) {
    w.U64(p.id);
    for (std::uint32_t d = 0; d < dims; ++d) w.F64(p.x[d]);
  }
  return w.Take();
}

Status DecodeFeedSlide(std::string_view payload, FeedSlideRequest* out) {
  WireReader r(payload);
  out->name = r.Str();
  const std::uint32_t dims = r.U32();
  const std::uint32_t count = r.U32();
  if (!r.ok()) return Status::Error("malformed FeedSlide payload");
  // Geometry gates before any allocation sized by attacker-controlled
  // counts: dims must fit a Point, and the byte math must square with the
  // actual payload size (the CRC already passed, so a mismatch here is a
  // mis-encoded frame, not corruption).
  if (dims < 1 || dims > static_cast<std::uint32_t>(kMaxDims)) {
    return Status::Error("FeedSlide dims=" + std::to_string(dims) +
                         " outside [1, " + std::to_string(kMaxDims) + "]");
  }
  const std::size_t per_point = 8 + std::size_t{dims} * 8;
  const std::size_t expected = std::size_t{count} * per_point;
  const std::size_t remaining = payload.size() - (out->name.size() + 12);
  if (remaining != expected) {
    return Status::Error(
        "FeedSlide payload size mismatch: " + std::to_string(count) +
        " points at dims=" + std::to_string(dims) + " need " +
        std::to_string(expected) + " bytes, got " + std::to_string(remaining));
  }
  out->points.clear();
  out->points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Point p;
    p.id = r.U64();
    p.dims = dims;
    for (std::uint32_t d = 0; d < dims; ++d) p.x[d] = r.F64();
    out->points.push_back(p);
  }
  if (!r.AtEnd()) return Status::Error("malformed FeedSlide payload");
  return Status::Ok();
}

std::string EncodeSessionName(std::string_view name) {
  WireWriter w;
  w.Str(name);
  return w.Take();
}

Status DecodeSessionName(std::string_view payload, std::string* out) {
  WireReader r(payload);
  *out = r.Str();
  if (!r.AtEnd()) return Status::Error("malformed session-name payload");
  return Status::Ok();
}

std::string EncodeU64(std::uint64_t value) {
  WireWriter w;
  w.U64(value);
  return w.Take();
}

Status DecodeU64(std::string_view payload, std::uint64_t* out) {
  WireReader r(payload);
  *out = r.U64();
  if (!r.AtEnd()) return Status::Error("malformed u64 payload");
  return Status::Ok();
}

std::string EncodeSnapshot(const ClusteringSnapshot& snapshot) {
  WireWriter w;
  w.U64(snapshot.size());
  // Parallel arrays walked by index — snapshot order (ascending point id,
  // the producer contract), never container hash order.
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    w.U64(snapshot.ids[i]);
    w.U8(static_cast<std::uint8_t>(snapshot.categories[i]));
    w.I64(snapshot.cids[i]);
  }
  return w.Take();
}

Status DecodeSnapshot(std::string_view payload, ClusteringSnapshot* out) {
  WireReader r(payload);
  const std::uint64_t count = r.U64();
  if (!r.ok()) return Status::Error("malformed Snapshot payload");
  const std::size_t expected = 8 + static_cast<std::size_t>(count) * 17;
  if (payload.size() != expected) {
    return Status::Error("Snapshot payload size mismatch: " +
                         std::to_string(count) + " rows need " +
                         std::to_string(expected) + " bytes, got " +
                         std::to_string(payload.size()));
  }
  out->ids.clear();
  out->categories.clear();
  out->cids.clear();
  out->ids.reserve(count);
  out->categories.reserve(count);
  out->cids.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    out->ids.push_back(r.U64());
    const std::uint8_t category = r.U8();
    if (category > static_cast<std::uint8_t>(Category::kNoise)) {
      return Status::Error("Snapshot row " + std::to_string(i) +
                           ": unknown category byte " +
                           std::to_string(category));
    }
    out->categories.push_back(static_cast<Category>(category));
    out->cids.push_back(r.I64());
  }
  if (!r.AtEnd()) return Status::Error("malformed Snapshot payload");
  return Status::Ok();
}

}  // namespace net
}  // namespace disc
