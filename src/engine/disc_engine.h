#ifndef DISC_ENGINE_DISC_ENGINE_H_
#define DISC_ENGINE_DISC_ENGINE_H_

// DiscEngine: many concurrent clustering sessions multiplexed over one
// shared thread pool, with checkpointed recovery (docs/API.md §Engine).
//
// A *session* is a named (clusterer, window, slide queue) triple. Hosts
// feed raw point strides with FeedSlide and call Drain() to advance every
// session that has work; the engine schedules ready sessions round-robin
// onto the pool's lanes. Scheduling never changes results: when several
// sessions run concurrently each update runs single-lane internally, and a
// lone runnable session borrows the whole pool — DISC's output is
// bit-identical for every lane count (see core/disc.h), so per-session
// snapshots, deltas, and checkpoints are byte-identical to a standalone
// single-threaded run of the same stream.
//
// Checkpoint() persists every session into the engine's spill directory
// (drained first, so no queued slide is lost); DiscEngine::Open() restores
// all of them — window contents, labels, slide numbering — and the resumed
// streams continue exactly as if never interrupted.
//
// Scheduler state (the session table, the admission counter, the
// round-robin cursor) is guarded by an internal mutex: every public entry
// point takes it, so concurrent surface calls serialize instead of
// corrupting the table. The intended usage is still one driving thread —
// Drain holds the lock for the whole drain, so a second thread's calls
// would simply block — but the lock discipline is machine-checked
// (GUARDED_BY/REQUIRES, enforced by disc_lint's lock-discipline rule and
// by clang -Wthread-safety where available). Per-session telemetry —
// `engine_session_<name>_*` metrics, "engine.session" trace spans — is
// emitted on the draining thread; see docs/OBSERVABILITY.md.

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "obs/http_server.h"
#include "obs/metrics_registry.h"
#include "stream/clusterer_factory.h"
#include "stream/stream_clusterer.h"
#include "stream/stream_source.h"

namespace disc {

struct EngineOptions {
  // Concurrent lanes of the shared pool, like DiscConfig::num_threads:
  // 1 = no pool (everything runs on the calling thread), 0 = one lane per
  // hardware thread. Lane count never affects any session's output.
  std::uint32_t num_threads = 0;

  // Directory Checkpoint() writes to and Open() reads from. Empty disables
  // checkpointing (Checkpoint() then fails with a Status).
  std::string spill_dir;

  // Optional telemetry sink, borrowed (must outlive the engine). Gains
  // engine_* counters plus engine_session_<name>_* metrics per session.
  obs::MetricsRegistry* metrics = nullptr;
};

struct SessionOptions {
  // MakeClusterer key ("DISC", "DBSTREAM", ...). Only "DISC" sessions are
  // checkpointable; any method can be hosted.
  std::string method = "DISC";

  // Dims, window geometry (window_size/stride, both required), thresholds,
  // and baseline options. The engine owns execution: spec.disc.num_threads
  // is forced to 1 and the shared pool is injected per-slide instead.
  ClustererSpec spec;
};

class DiscEngine : public obs::EngineStatusProvider {
 public:
  explicit DiscEngine(const EngineOptions& options);
  ~DiscEngine() override;  // Stops the telemetry server if serving.

  DiscEngine(const DiscEngine&) = delete;
  DiscEngine& operator=(const DiscEngine&) = delete;

  // Admits a new session. Fails (without side effects) when the name is
  // empty, not Prometheus-compatible ([a-zA-Z_][a-zA-Z0-9_]*), or taken;
  // when the window geometry is degenerate (stride < 1 or window_size <
  // stride); or when MakeClusterer rejects the method/spec — the returned
  // Status carries the factory's (or Validate()'s) message.
  Status CreateSession(const std::string& name, const SessionOptions& options)
      EXCLUDES(mutex_);

  // Queues one slide for the named session. `points` must hold exactly
  // stride points (the count-based window model); ids are the caller's and
  // must be fresh, as with any StreamClusterer. The slide runs at the next
  // Drain().
  Status FeedSlide(const std::string& name, const std::vector<Point>& points)
      EXCLUDES(mutex_);

  // FeedSlide with bounded admission for remote feeders (the ingest
  // plane): the queue-depth check and the admission happen atomically
  // under the engine mutex, so concurrent feeders can never overshoot the
  // bound between a Pending check and a feed. When the session already
  // holds `max_pending_slides` queued slides the call fails, sets *busy
  // to true (when non-null), and admits nothing — the caller owes the
  // producer an explicit BUSY so no slide is ever silently dropped.
  // Validation failures (unknown session, wrong point count, wrong dims)
  // fail with *busy left false.
  Status FeedSlideBounded(const std::string& name,
                          const std::vector<Point>& points,
                          std::size_t max_pending_slides, bool* busy = nullptr)
      EXCLUDES(mutex_);

  // Runs every queued slide of every session to completion and returns the
  // number of slides executed. Scheduling is round-robin over the sessions
  // with work: each round picks the ready set, runs one slide per session
  // across the pool's lanes (or hands the whole pool to a lone session),
  // then folds telemetry before the next round.
  //
  // A slide that throws — a genuine bug or an injected fault
  // (common/failpoint.h) — never takes the engine down: the failure is
  // logged ("engine.slide_failed"), the session sits out the rest of this
  // drain with its queued slides intact, and the next Drain retries. The
  // executed count covers only slides that completed.
  std::size_t Drain() EXCLUDES(mutex_);

  // Removes the session and its queued slides. Fails when unknown.
  Status CloseSession(const std::string& name) EXCLUDES(mutex_);

  // Drains, then persists every session to spill_dir (one binary file per
  // session plus a manifest). Fails when spill_dir is unset, a session's
  // method is not checkpointable (the message names the offender), or on
  // the first I/O error. The new generation is staged as .tmp files and
  // renamed into place only after every write succeeds, manifest last: a
  // crash (or failure return) at any point leaves the previous manifest
  // live, with each session file it references a complete spill of its old
  // or new generation — Open() always recovers every listed session.
  Status Checkpoint() EXCLUDES(mutex_);

  // Restores an engine (and every session of the manifest) from
  // options.spill_dir. Returns null with the reason in *error when the
  // directory holds no manifest or any session fails to load. Sessions
  // resume with their window contents, labels, and slide numbering intact.
  static std::unique_ptr<DiscEngine> Open(const EngineOptions& options,
                                          Status* error = nullptr);

  // Session names in creation (manifest) order.
  std::vector<std::string> SessionNames() const EXCLUDES(mutex_);

  // The named session's clusterer, or null when unknown. Snapshot() and
  // checkpointing through this pointer are fine; do not Update() through
  // it — feed the engine instead.
  StreamClusterer* Clusterer(const std::string& name) EXCLUDES(mutex_);

  // Stores the named session's current labeling into *out. Unlike going
  // through Clusterer()->Snapshot(), the read holds the engine mutex, so
  // a remote caller's query serializes against an in-flight Drain instead
  // of racing it — the ingest plane's QuerySnapshot entry point.
  Status QuerySnapshot(const std::string& name, ClusteringSnapshot* out) const
      EXCLUDES(mutex_);

  // Queued-but-not-yet-run slides of the named session (0 when unknown).
  std::size_t PendingSlides(const std::string& name) const EXCLUDES(mutex_);

  // Slides the named session has executed since creation — checkpointed
  // and restored, so numbering continues across recovery.
  std::size_t SlidesRun(const std::string& name) const EXCLUDES(mutex_);

  std::size_t session_count() const EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
  }
  const EngineOptions& options() const { return options_; }

  // Live status of every session in creation order — what /sessions serves
  // (obs::EngineStatusProvider). Safe from any thread; waits for an
  // in-flight Drain round.
  std::vector<obs::SessionStatusRow> SessionStatus() const override
      EXCLUDES(mutex_);

  // Starts the embedded telemetry HTTP server (obs/http_server.h) bound to
  // 127.0.0.1:<port> with this engine's registry, status, and the active
  // trace recorder attached. port 0 binds an ephemeral port; the bound port
  // is stored into *bound_port when non-null. Fails when already serving or
  // when the bind fails. docs/API.md §Telemetry.
  Status ServeTelemetry(std::uint16_t port,
                        std::uint16_t* bound_port = nullptr) EXCLUDES(mutex_);

  // Stops and discards the telemetry server. Idempotent; also run by the
  // destructor. Never called under mutex_: server workers may be blocked in
  // SessionStatus() waiting for it.
  void StopTelemetry() EXCLUDES(mutex_);

  // The serving port, or 0 when no telemetry server is running.
  std::uint16_t TelemetryPort() const EXCLUDES(mutex_);

 private:
  // Feeds a session's queued strides to its pipeline: FeedSlide pushes
  // here, the pipeline's window pulls via Next() during a drained slide.
  class QueueSource : public StreamSource {
   public:
    LabeledPoint Next() override;
    void Push(const Point& p) { queue_.push_back(p); }
    std::size_t size() const { return queue_.size(); }

   private:
    std::deque<Point> queue_;
  };

  struct Session {
    std::string name;
    std::uint64_t id = 0;  // Creation order; the trace-span session arg.
    SessionOptions options;
    QueueSource source;
    std::unique_ptr<StreamClusterer> clusterer;
    std::unique_ptr<StreamingPipeline> pipeline;
    std::size_t pending_slides = 0;
    // Scratch of the current Drain round, written only by the lane running
    // this session, folded into metrics by the scheduler thread after the
    // round's barrier.
    SlideReport last_report;
    bool ran_this_round = false;
    // Set (by the lane that hit the fault) when this session's slide threw
    // during the current Drain: the session sits out the rest of the drain
    // — its queued slides stay pending, nothing is silently dropped — and
    // retries at the next Drain call. Cleared when a drain begins.
    bool faulted_this_drain = false;
  };

  Session* Find(const std::string& name) REQUIRES(mutex_);
  const Session* Find(const std::string& name) const REQUIRES(mutex_);

  // Shared body of FeedSlide / FeedSlideBounded: validates, then admits.
  // `max_pending_slides` of 0 means unbounded (the in-process path).
  Status FeedSlideLocked(const std::string& name,
                         const std::vector<Point>& points,
                         std::size_t max_pending_slides, bool* busy)
      REQUIRES(mutex_);

  // Builds the session object (no validation; CreateSession and Open have
  // already vetted the options and built the clusterer). The seed window
  // and slide counter carry restored state when resuming.
  void Admit(const std::string& name, SessionOptions options,
             std::unique_ptr<StreamClusterer> clusterer,
             std::vector<Point> seed_window, std::size_t slides_already_run)
      REQUIRES(mutex_);

  // Drain's body; split out so Checkpoint can drain inside its own
  // critical section (the mutex is not recursive).
  std::size_t DrainLocked() REQUIRES(mutex_);

  // Runs exactly one queued slide of `session` on the calling thread (a
  // pool lane during concurrent rounds, the scheduler thread when the
  // session has the pool to itself). Emits the "engine.session" span.
  void ExecuteSessionSlide(Session* session);

  void FoldSessionMetrics(Session* session);

  // Quarantines `session` for the rest of the current drain after its slide
  // threw, logging the fault. Runs on whichever lane hit the exception;
  // touches only the session's own scratch (same discipline as
  // ExecuteSessionSlide), never the table.
  void MarkSlideFault(Session* session, const char* what);

  // Refreshes the per-session backlog gauges (`..._queue_depth`,
  // `..._watermark_lag_slides`, `..._last_slide_ms`) after any queue or
  // progress change. Runs on the scheduler thread under the lock, like
  // FoldSessionMetrics, so gauge writes keep the single-writer discipline.
  void UpdateBacklogGauges() REQUIRES(mutex_);

  Status SaveSession(const Session& session, std::ostream& out) const;

  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // Null when num_threads resolves to 1.

  // Guards the scheduler state below. Held across a whole Drain round,
  // including the ParallelFor barrier: lanes receive raw Session pointers
  // collected under the lock and never touch the table itself.
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Session>> sessions_
      GUARDED_BY(mutex_);  // Creation order.
  std::uint64_t next_session_id_ GUARDED_BY(mutex_) = 0;
  // Round-robin start of the next ready set.
  std::size_t rr_cursor_ GUARDED_BY(mutex_) = 0;
  // The embedded telemetry server, when serving. The pointer is guarded;
  // StopTelemetry moves it out under the lock and destroys it unlocked so
  // joining its workers (which may be blocked in SessionStatus) cannot
  // deadlock against mutex_.
  std::unique_ptr<obs::HttpServer> http_ GUARDED_BY(mutex_);
};

}  // namespace disc

#endif  // DISC_ENGINE_DISC_ENGINE_H_
