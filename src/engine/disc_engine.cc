#include "engine/disc_engine.h"

#include <cassert>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/point.h"
#include "core/disc.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace disc {

namespace {

// Spill-file framing. Same-machine byte order, like Disc's own checkpoint.
constexpr std::uint32_t kSessionMagic = 0x444E4753;  // "SGND" little-endian.

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<std::uint64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  std::uint64_t size = 0;
  if (!ReadPod(in, &size) || size > (1u << 20)) return false;
  s->resize(size);
  in.read(s->data(), static_cast<std::streamsize>(size));
  return static_cast<bool>(in);
}

// Prometheus-compatible metric-name fragment — also keeps the session's
// spill file name shell-safe.
bool ValidSessionName(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

std::size_t ResolveLanes(std::uint32_t num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/engine.manifest";
}

std::string SessionPath(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".session";
}

constexpr char kManifestHeader[] = "DISCENGINE 1";

// Installs a borrowed pool on a Disc for one slide; the destructor releases
// it even when the slide throws, so the shared pool never stays attached to
// a session across rounds.
class ScopedExecutionPool {
 public:
  ScopedExecutionPool(Disc* disc, ThreadPool* pool) : disc_(disc) {
    if (disc_ != nullptr) disc_->SetExecutionPool(pool);
  }
  ~ScopedExecutionPool() {
    if (disc_ != nullptr) disc_->ReleaseExecutionPool();
  }
  ScopedExecutionPool(const ScopedExecutionPool&) = delete;
  ScopedExecutionPool& operator=(const ScopedExecutionPool&) = delete;

 private:
  Disc* disc_;
};

}  // namespace

LabeledPoint DiscEngine::QueueSource::Next() {
  assert(!queue_.empty() && "engine slide scheduled without queued points");
  LabeledPoint lp;
  lp.point = queue_.front();
  queue_.pop_front();
  return lp;
}

DiscEngine::DiscEngine(const EngineOptions& options) : options_(options) {
  const std::size_t lanes = ResolveLanes(options_.num_threads);
  if (lanes > 1) pool_ = std::make_unique<ThreadPool>(lanes - 1);
}

DiscEngine::~DiscEngine() { StopTelemetry(); }

DiscEngine::Session* DiscEngine::Find(const std::string& name) {
  for (const auto& session : sessions_) {
    if (session->name == name) return session.get();
  }
  return nullptr;
}

const DiscEngine::Session* DiscEngine::Find(const std::string& name) const {
  for (const auto& session : sessions_) {
    if (session->name == name) return session.get();
  }
  return nullptr;
}

Status DiscEngine::CreateSession(const std::string& name,
                                 const SessionOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ValidSessionName(name)) {
    return Status::Error("invalid session name \"" + name +
                         "\"; names must match [a-zA-Z_][a-zA-Z0-9_]*");
  }
  if (Find(name) != nullptr) {
    return Status::Error("session \"" + name + "\" already exists");
  }
  const ClustererSpec& spec = options.spec;
  if (spec.stride < 1 || spec.window_size < spec.stride) {
    std::ostringstream os;
    os << "session \"" << name << "\": window geometry needs 1 <= stride <= "
       << "window_size, got window_size=" << spec.window_size
       << " stride=" << spec.stride;
    return Status::Error(os.str());
  }
  // The engine owns execution: sessions never spin up an internal pool
  // (they run single-lane on their scheduled lane, or borrow the shared
  // pool when alone) — results are identical either way.
  SessionOptions adopted = options;
  adopted.spec.disc.num_threads = 1;
  Status error;
  std::unique_ptr<StreamClusterer> clusterer =
      MakeClusterer(adopted.method, adopted.spec, &error);
  if (clusterer == nullptr) {
    DISC_LOG(kWarn, "engine.create_session_rejected")
        .Str("session", name)
        .Str("error", error.message());
    return Status::Error("session \"" + name + "\": " + error.message());
  }
  Admit(name, std::move(adopted), std::move(clusterer), {}, 0);
  DISC_LOG(kInfo, "engine.session_created")
      .Str("session", name)
      .Str("method", options.method)
      .Num("window_size", options.spec.window_size)
      .Num("stride", options.spec.stride);
  return Status::Ok();
}

void DiscEngine::Admit(const std::string& name, SessionOptions options,
                       std::unique_ptr<StreamClusterer> clusterer,
                       std::vector<Point> seed_window,
                       std::size_t slides_already_run) {
  auto session = std::make_unique<Session>();
  session->name = name;
  session->id = next_session_id_++;
  session->options = std::move(options);
  session->clusterer = std::move(clusterer);
  const ClustererSpec& spec = session->options.spec;
  // Session is heap-allocated, so the pipeline's borrowed source/clusterer
  // pointers stay valid for the session's lifetime.
  if (seed_window.empty() && slides_already_run == 0) {
    session->pipeline = std::make_unique<StreamingPipeline>(
        &session->source, session->clusterer.get(), spec.window_size,
        spec.stride);
  } else {
    session->pipeline = std::make_unique<StreamingPipeline>(
        &session->source, session->clusterer.get(), spec.window_size,
        spec.stride, std::move(seed_window), slides_already_run);
  }
  sessions_.push_back(std::move(session));
  if (options_.metrics != nullptr) {
    options_.metrics->gauge("engine_sessions",
                            "Sessions currently admitted to the engine.")
        .Set(static_cast<double>(sessions_.size()));
  }
  UpdateBacklogGauges();
}

Status DiscEngine::FeedSlide(const std::string& name,
                             const std::vector<Point>& points) {
  DISC_FAILPOINT_STATUS("engine.feed.pre");
  std::lock_guard<std::mutex> lock(mutex_);
  return FeedSlideLocked(name, points, /*max_pending_slides=*/0,
                         /*busy=*/nullptr);
}

Status DiscEngine::FeedSlideBounded(const std::string& name,
                                    const std::vector<Point>& points,
                                    std::size_t max_pending_slides,
                                    bool* busy) {
  if (busy != nullptr) *busy = false;
  DISC_FAILPOINT_STATUS("engine.feed.pre");
  std::lock_guard<std::mutex> lock(mutex_);
  return FeedSlideLocked(name, points, max_pending_slides, busy);
}

Status DiscEngine::FeedSlideLocked(const std::string& name,
                                   const std::vector<Point>& points,
                                   std::size_t max_pending_slides,
                                   bool* busy) {
  Session* session = Find(name);
  if (session == nullptr) {
    return Status::Error("no session named \"" + name + "\"");
  }
  const std::size_t stride = session->options.spec.stride;
  if (points.size() != stride) {
    std::ostringstream os;
    os << "session \"" << name << "\": a slide is exactly stride=" << stride
       << " points, got " << points.size();
    return Status::Error(os.str());
  }
  const std::uint32_t dims = session->options.spec.dims;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].dims != dims) {
      std::ostringstream os;
      os << "session \"" << name << "\": point " << i << " (id "
         << points[i].id << ") has dims=" << points[i].dims
         << ", session expects dims=" << dims;
      // Rate-limited: a misbehaving feeder retrying every slide must not
      // flood the sink.
      DISC_LOG(kWarn, "engine.slide_rejected")
          .Str("session", name)
          .Str("error", os.str());
      return Status::Error(os.str());
    }
  }
  // Admission bound last: a slide that fails validation is *rejected*, not
  // BUSY — only a full queue earns the retryable backpressure signal.
  if (max_pending_slides > 0 && session->pending_slides >= max_pending_slides) {
    if (busy != nullptr) *busy = true;
    std::ostringstream os;
    os << "session \"" << name << "\": admission queue full ("
       << session->pending_slides << " slides pending, bound "
       << max_pending_slides << "); retry after a drain";
    return Status::Error(os.str());
  }
  for (const Point& p : points) session->source.Push(p);
  ++session->pending_slides;
  UpdateBacklogGauges();
  return Status::Ok();
}

Status DiscEngine::QuerySnapshot(const std::string& name,
                                 ClusteringSnapshot* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Session* session = Find(name);
  if (session == nullptr) {
    return Status::Error("no session named \"" + name + "\"");
  }
  *out = session->clusterer->Snapshot();
  return Status::Ok();
}

Status DiscEngine::CloseSession(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i]->name != name) continue;
    sessions_.erase(sessions_.begin() +
                    static_cast<std::ptrdiff_t>(i));
    if (options_.metrics != nullptr) {
      options_.metrics->gauge("engine_sessions")
          .Set(static_cast<double>(sessions_.size()));
    }
    UpdateBacklogGauges();
    return Status::Ok();
  }
  return Status::Error("no session named \"" + name + "\"");
}

void DiscEngine::ExecuteSessionSlide(Session* session) {
  obs::TraceSpan span("engine.session");
  span.AddArg("session", session->id);
  span.AddArg("slide", session->pipeline->slides_run());
  // Fires before any queue consumption: an injected throw here leaves the
  // pipeline untouched and the slide pending, so the retry at the next
  // Drain replays it exactly.
  DISC_FAILPOINT("engine.session.slide");
  session->pipeline->Run(1, [session](const SlideReport& report) {
    session->last_report = report;
    return true;
  });
  --session->pending_slides;
  session->ran_this_round = true;
}

void DiscEngine::FoldSessionMetrics(Session* session) {
  if (options_.metrics == nullptr) return;
  obs::MetricsRegistry& reg = *options_.metrics;
  const SlideReport& r = session->last_report;
  const std::string prefix = "engine_session_" + session->name + "_";
  reg.counter(prefix + "slides_total").Add(1);
  reg.counter(prefix + "points_entered_total").Add(r.entered);
  reg.counter(prefix + "points_exited_total").Add(r.exited);
  reg.counter(prefix + "points_relabeled_total").Add(r.relabeled);
  reg.gauge(prefix + "window_size").Set(static_cast<double>(r.window_size));
  reg.histogram(prefix + "update_ms").Observe(r.update_ms);
}

void DiscEngine::UpdateBacklogGauges() {
  if (options_.metrics == nullptr) return;
  obs::MetricsRegistry& reg = *options_.metrics;
  // Watermark: the furthest slide index any session would reach if every
  // queued slide ran now. A session's lag is its distance behind that —
  // a stalled session (no feed, or feeds but never drained) shows a
  // growing lag while the healthy ones stay at 0.
  std::size_t watermark = 0;
  for (const auto& s : sessions_) {
    const std::size_t frontier = s->pipeline->slides_run() + s->pending_slides;
    if (frontier > watermark) watermark = frontier;
  }
  for (const auto& s : sessions_) {
    const std::string prefix = "engine_session_" + s->name + "_";
    reg.gauge(prefix + "queue_depth",
              "Slides fed to this session but not yet drained.")
        .Set(static_cast<double>(s->pending_slides));
    reg.gauge(prefix + "watermark_lag_slides",
              "Slides this session is behind the engine watermark (the "
              "furthest frontier over all sessions).")
        .Set(static_cast<double>(watermark - s->pipeline->slides_run()));
    reg.gauge(prefix + "last_slide_ms",
              "Update latency of this session's most recent slide.")
        .Set(s->last_report.update_ms);
  }
}

std::size_t DiscEngine::Drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  return DrainLocked();
}

void DiscEngine::MarkSlideFault(Session* session, const char* what) {
  session->faulted_this_drain = true;
  DISC_LOG(kError, "engine.slide_failed")
      .Str("session", session->name)
      .Str("error", what);
}

std::size_t DiscEngine::DrainLocked() {
  obs::TraceSpan span("engine.drain");
  std::size_t executed = 0;
  for (const auto& s : sessions_) s->faulted_this_drain = false;
  while (!sessions_.empty()) {
    // Ready set of this round, in round-robin order so no session starves
    // the slot assignment when there are more ready sessions than lanes.
    // A session whose slide already faulted this drain sits out: retrying
    // inside the same drain would spin on a deterministic failure.
    const std::size_t n = sessions_.size();
    std::vector<Session*> ready;
    for (std::size_t k = 0; k < n; ++k) {
      Session* s = sessions_[(rr_cursor_ + k) % n].get();
      if (s->pending_slides > 0 && !s->faulted_this_drain) ready.push_back(s);
    }
    if (ready.empty()) break;
    rr_cursor_ = (rr_cursor_ + 1) % n;

    bool dispatch_fault = false;
    if (ready.size() == 1) {
      // A lone runnable session borrows every lane of the shared pool for
      // its internal fan-out; output is identical either way (core/disc.h).
      Session* s = ready.front();
      try {
        DISC_FAILPOINT("engine.drain.borrow");
        Disc* exact = s->clusterer->name() == "DISC"
                          ? static_cast<Disc*>(s->clusterer.get())
                          : nullptr;
        ScopedExecutionPool borrow(exact, pool_.get());
        ExecuteSessionSlide(s);
      } catch (const std::exception& e) {
        // The slide threw (bug or injected fault): quarantine the session
        // for this drain, keep its queue intact, keep the engine alive.
        MarkSlideFault(s, e.what());
      }
    } else {
      // One slide per ready session, one session per pool lane. Each
      // session updates single-lane internally (its config carries
      // num_threads=1 and no external pool is installed), so lanes never
      // share any clusterer state; the lambda writes only to its own
      // session. chunk=1: slides are coarse, uneven tasks.
      try {
        ParallelFor(
            pool_.get(), ready.size(),
            [&ready, this](std::size_t, std::size_t i) {
              try {
                ExecuteSessionSlide(ready[i]);
              } catch (const std::exception& e) {
                MarkSlideFault(ready[i], e.what());
              }
            },
            1);
      } catch (const std::exception& e) {
        // The dispatch machinery itself threw (session bodies are contained
        // above). Slides that never started are still pending; finish the
        // round's bookkeeping, then stop — the next Drain retries.
        DISC_LOG(kError, "engine.drain_failed").Str("error", e.what());
        dispatch_fault = true;
      }
    }

    // Fold telemetry on the scheduler thread (the registry is not
    // thread-safe), in creation order so exports never depend on the
    // round-robin phase or lane scheduling.
    for (const auto& up : sessions_) {
      if (!up->ran_this_round) continue;
      up->ran_this_round = false;
      FoldSessionMetrics(up.get());
      ++executed;
    }
    // Refresh backlog gauges per round, not just at the end: a live scrape
    // mid-drain sees queue depths shrink round by round.
    UpdateBacklogGauges();
    if (dispatch_fault) break;
  }
  std::size_t faulted = 0;
  for (const auto& s : sessions_) {
    if (s->faulted_this_drain) ++faulted;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("engine_drains_total").Add(1);
    options_.metrics->counter("engine_slides_total").Add(executed);
    if (faulted > 0) {
      options_.metrics
          ->counter("engine_slide_faults_total",
                    "Sessions quarantined by a throwing slide, summed over "
                    "drains.")
          .Add(faulted);
    }
  }
  span.AddArg("slides", executed);
  return executed;
}

Status DiscEngine::SaveSession(const Session& session,
                               std::ostream& out) const {
  WritePod(out, kSessionMagic);
  WriteString(out, session.name);
  WriteString(out, session.options.method);
  const ClustererSpec& spec = session.options.spec;
  WritePod(out, spec.dims);
  WritePod(out, static_cast<std::uint64_t>(spec.window_size));
  WritePod(out, static_cast<std::uint64_t>(spec.stride));
  WritePod(out, static_cast<std::uint64_t>(session.pipeline->slides_run()));
  const DiscConfig& c = spec.disc;
  WritePod(out, c.eps);
  WritePod(out, c.tau);
  WritePod(out, static_cast<std::uint8_t>(c.use_msbfs));
  WritePod(out, static_cast<std::uint8_t>(c.use_epoch_probing));
  WritePod(out, static_cast<std::uint8_t>(c.use_border_witness));
  WritePod(out, static_cast<std::int32_t>(c.rtree_max_entries));
  WritePod(out, static_cast<std::uint8_t>(c.rtree_split_policy));
  WritePod(out, static_cast<std::uint8_t>(c.parallel_cluster));
  WritePod(out, c.parallel_cluster_min_batch);
  if (!out) {
    return Status::Error("session \"" + session.name +
                         "\": write failed on the spill header");
  }
  return static_cast<const Disc*>(session.clusterer.get())
      ->SaveCheckpoint(out);
}

Status DiscEngine::Checkpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.spill_dir.empty()) {
    return Status::Error(
        "checkpointing disabled: EngineOptions::spill_dir is unset");
  }
  // All-or-nothing: refuse before writing any bytes when a session cannot
  // be persisted, so a partial generation never shadows the previous one.
  for (const auto& session : sessions_) {
    if (session->clusterer->name() != "DISC") {
      return Status::Error("session \"" + session->name + "\" uses method " +
                           session->clusterer->name() +
                           ", which has no checkpoint support; only DISC "
                           "sessions are checkpointable");
    }
  }
  // No queued slide may be lost to the checkpoint boundary. The drain runs
  // inside this critical section (the mutex is not recursive, hence the
  // DrainLocked split).
  DrainLocked();
  // A faulted slide leaves its session with queued work the drain could not
  // run; persisting now would spill a state that silently forgets those
  // slides, so refuse and let the caller retry after the next clean drain.
  for (const auto& session : sessions_) {
    if (session->pending_slides > 0) {
      std::ostringstream os;
      os << "session \"" << session->name << "\" still has "
         << session->pending_slides
         << " queued slide(s) after the pre-checkpoint drain (slide "
            "fault?); checkpoint refused";
      DISC_LOG(kError, "engine.checkpoint_failed")
          .Str("session", session->name)
          .Str("error", os.str());
      return Status::Error(os.str());
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(options_.spill_dir, ec);
  if (ec) {
    return Status::Error("cannot create spill directory " +
                         options_.spill_dir + ": " + ec.message());
  }
  // Stage the whole generation as .tmp files first: the live .session files
  // the current manifest points at stay untouched until every write has
  // succeeded, so a crash (or failure return) anywhere below leaves the
  // previous checkpoint generation fully recoverable.
  for (const auto& session : sessions_) {
    const std::string tmp =
        SessionPath(options_.spill_dir, session->name) + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      DISC_LOG(kError, "engine.checkpoint_failed").Str("path", tmp);
      return Status::Error("cannot open " + tmp + " for writing");
    }
    if (Status saved = SaveSession(*session, out); !saved.ok()) {
      DISC_LOG(kError, "engine.checkpoint_failed")
          .Str("session", session->name)
          .Str("error", saved.message());
      return saved;
    }
    out.flush();
    if (!out) {
      DISC_LOG(kError, "engine.checkpoint_failed").Str("path", tmp);
      return Status::Error("write failed on " + tmp);
    }
  }
  // Every .tmp is staged and fsync-equivalent-flushed; a fault here (the
  // classic crash window) must leave the previous generation live.
  DISC_FAILPOINT_STATUS("checkpoint.write.pre_rename");
  for (const auto& session : sessions_) {
    const std::string path = SessionPath(options_.spill_dir, session->name);
    std::filesystem::rename(path + ".tmp", path, ec);
    if (ec) {
      return Status::Error("cannot publish " + path + ": " + ec.message());
    }
  }
  // Manifest last, via rename: after the session renames every .session
  // file on disk is a complete spill of the old or the new generation, so a
  // crash before this point still leaves the old manifest recoverable.
  const std::string manifest = ManifestPath(options_.spill_dir);
  const std::string tmp = manifest + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::Error("cannot open " + tmp + " for writing");
    out << kManifestHeader << "\n" << sessions_.size() << "\n";
    // A fired short-write truncates the manifest after the header/count:
    // the torn .tmp never gets renamed, so the published manifest always
    // lists every session it names.
    DISC_FAILPOINT_STREAM("engine.checkpoint.manifest", out);
    for (const auto& session : sessions_) out << session->name << "\n";
    out.flush();
    if (!out) return Status::Error("write failed on " + tmp);
  }
  std::filesystem::rename(tmp, manifest, ec);
  if (ec) {
    return Status::Error("cannot publish " + manifest + ": " + ec.message());
  }
  return Status::Ok();
}

std::unique_ptr<DiscEngine> DiscEngine::Open(const EngineOptions& options,
                                             Status* error) {
  if (error != nullptr) *error = Status::Ok();
  const auto fail = [error](const std::string& message) {
    // Every recovery failure funnels through here — one logging choke
    // point for the whole Open path.
    DISC_LOG(kError, "engine.open_failed").Str("error", message);
    if (error != nullptr) *error = Status::Error(message);
    return std::unique_ptr<DiscEngine>();
  };
  if (options.spill_dir.empty()) {
    return fail("EngineOptions::spill_dir is unset");
  }
  if (failpoint::Armed()) {
    // Function form of DISC_FAILPOINT_STATUS: recovery failures must flow
    // through fail() so they hit the same logging choke point.
    Status injected = failpoint::HitStatus("engine.open.pre");
    if (!injected.ok()) return fail(injected.message());
  }
  std::ifstream manifest(ManifestPath(options.spill_dir));
  if (!manifest) {
    return fail("no engine manifest in " + options.spill_dir);
  }
  std::string header;
  std::getline(manifest, header);
  if (header != kManifestHeader) {
    return fail("bad manifest header \"" + header + "\"");
  }
  std::size_t count = 0;
  manifest >> count;
  manifest.ignore(1, '\n');
  std::vector<std::string> names;
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    if (!std::getline(manifest, name) || !ValidSessionName(name)) {
      return fail("corrupt manifest: bad session name at entry " +
                  std::to_string(i));
    }
    names.push_back(std::move(name));
  }

  auto engine = std::unique_ptr<DiscEngine>(new DiscEngine(options));
  // The engine is not yet published, but Admit requires the lock it is
  // annotated with; taking it here keeps the discipline uniform.
  std::lock_guard<std::mutex> admit_lock(engine->mutex_);
  for (const std::string& name : names) {
    const std::string path = SessionPath(options.spill_dir, name);
    std::ifstream in(path, std::ios::binary);
    if (!in) return fail("cannot open " + path);
    std::uint32_t magic = 0;
    std::string stored_name, method;
    if (!ReadPod(in, &magic) || magic != kSessionMagic ||
        !ReadString(in, &stored_name) || stored_name != name ||
        !ReadString(in, &method)) {
      return fail("corrupt session header in " + path);
    }
    SessionOptions so;
    so.method = method;
    ClustererSpec& spec = so.spec;
    std::uint64_t window_size = 0, stride = 0, slides_run = 0;
    std::uint8_t use_msbfs = 0, use_epoch = 0, use_witness = 0;
    std::uint8_t split_policy = 0, parallel_cluster = 0;
    std::int32_t max_entries = 0;
    if (!ReadPod(in, &spec.dims) || !ReadPod(in, &window_size) ||
        !ReadPod(in, &stride) || !ReadPod(in, &slides_run) ||
        !ReadPod(in, &spec.disc.eps) || !ReadPod(in, &spec.disc.tau) ||
        !ReadPod(in, &use_msbfs) || !ReadPod(in, &use_epoch) ||
        !ReadPod(in, &use_witness) || !ReadPod(in, &max_entries) ||
        !ReadPod(in, &split_policy) || !ReadPod(in, &parallel_cluster) ||
        !ReadPod(in, &spec.disc.parallel_cluster_min_batch)) {
      return fail("corrupt session header in " + path);
    }
    spec.window_size = window_size;
    spec.stride = stride;
    // Same geometry gate as CreateSession: a hand-edited or corrupt spill
    // must not build a degenerate pipeline.
    if (spec.stride < 1 || spec.window_size < spec.stride) {
      return fail("corrupt session header in " + path +
                  ": window geometry needs 1 <= stride <= window_size, got "
                  "window_size=" +
                  std::to_string(spec.window_size) +
                  " stride=" + std::to_string(spec.stride));
    }
    // MakeClusterer validates the DiscConfig but not the index geometry; a
    // bit-flipped dims or split-policy byte must fail here, not deep inside
    // the R-tree (or as an out-of-range enum cast).
    if (spec.dims < 1 || spec.dims > kMaxDims) {
      return fail("corrupt session header in " + path +
                  ": dims=" + std::to_string(spec.dims) + " outside [1, " +
                  std::to_string(kMaxDims) + "]");
    }
    if (split_policy > static_cast<std::uint8_t>(SplitPolicy::kRStar)) {
      return fail("corrupt session header in " + path +
                  ": unknown rtree split policy byte " +
                  std::to_string(split_policy));
    }
    spec.disc.use_msbfs = use_msbfs != 0;
    spec.disc.use_epoch_probing = use_epoch != 0;
    spec.disc.use_border_witness = use_witness != 0;
    spec.disc.rtree_max_entries = max_entries;
    spec.disc.rtree_split_policy = static_cast<SplitPolicy>(split_policy);
    spec.disc.parallel_cluster = parallel_cluster != 0;
    spec.disc.num_threads = 1;

    Status make_error;
    std::unique_ptr<StreamClusterer> clusterer =
        MakeClusterer(so.method, spec, &make_error);
    if (clusterer == nullptr) {
      return fail("session \"" + name + "\": " + make_error.message());
    }
    if (clusterer->name() != "DISC") {
      return fail("session \"" + name + "\" was spilled with method " +
                  method + ", which has no checkpoint support");
    }
    Disc* exact = static_cast<Disc*>(clusterer.get());
    if (Status loaded = exact->LoadCheckpoint(in); !loaded.ok()) {
      return fail("session \"" + name + "\": " + loaded.message());
    }
    // The checkpoint's point count and the header's geometry are stored
    // independently, so a corrupt header can claim a window smaller than
    // the restored contents; that must fail here, not as the window
    // seeding assert.
    std::vector<Point> restored = exact->WindowContents();
    if (restored.size() > spec.window_size) {
      return fail("session \"" + name + "\": checkpoint holds " +
                  std::to_string(restored.size()) +
                  " window points but the header claims window_size=" +
                  std::to_string(spec.window_size));
    }
    engine->Admit(name, std::move(so), std::move(clusterer),
                  std::move(restored), slides_run);
  }
  return engine;
}

std::vector<std::string> DiscEngine::SessionNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& session : sessions_) names.push_back(session->name);
  return names;
}

StreamClusterer* DiscEngine::Clusterer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Session* session = Find(name);
  return session == nullptr ? nullptr : session->clusterer.get();
}

std::size_t DiscEngine::PendingSlides(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Session* session = Find(name);
  return session == nullptr ? 0 : session->pending_slides;
}

std::size_t DiscEngine::SlidesRun(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Session* session = Find(name);
  return session == nullptr ? 0 : session->pipeline->slides_run();
}

std::vector<obs::SessionStatusRow> DiscEngine::SessionStatus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t watermark = 0;
  for (const auto& s : sessions_) {
    const std::size_t frontier = s->pipeline->slides_run() + s->pending_slides;
    if (frontier > watermark) watermark = frontier;
  }
  std::vector<obs::SessionStatusRow> rows;
  rows.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    obs::SessionStatusRow row;
    row.name = s->name;
    row.id = s->id;
    row.method = s->options.method;
    row.window_size = s->last_report.window_size;
    row.slides_run = s->pipeline->slides_run();
    row.queue_depth = s->pending_slides;
    row.watermark_lag_slides = watermark - s->pipeline->slides_run();
    row.last_slide_ms = s->last_report.update_ms;
    rows.push_back(std::move(row));
  }
  return rows;
}

Status DiscEngine::ServeTelemetry(std::uint16_t port,
                                  std::uint16_t* bound_port) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (http_ != nullptr) {
      return Status::Error("telemetry already serving on port " +
                           std::to_string(http_->port()));
    }
  }
  obs::HttpServerOptions server_options;
  server_options.port = port;
  server_options.metrics = options_.metrics;
  server_options.engine = this;
  server_options.tracer = obs::TraceRecorder::active();
  auto server = std::make_unique<obs::HttpServer>(server_options);
  // Start outside the engine lock: the spawned workers take mutex_ through
  // SessionStatus and must never find it held by their own birth.
  if (Status started = server->Start(); !started.ok()) {
    DISC_LOG(kError, "engine.telemetry_start_failed")
        .Str("error", started.message());
    return started;
  }
  if (bound_port != nullptr) *bound_port = server->port();
  std::unique_ptr<obs::HttpServer> displaced;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (http_ == nullptr) {
      http_ = std::move(server);
    } else {
      displaced = std::move(server);  // Lost a race with another caller.
    }
  }
  if (displaced != nullptr) {
    displaced->Stop();
    return Status::Error("telemetry already serving");
  }
  return Status::Ok();
}

void DiscEngine::StopTelemetry() {
  std::unique_ptr<obs::HttpServer> server;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    server = std::move(http_);
  }
  // Destroyed (and therefore joined) without the lock; workers blocked in
  // SessionStatus can finish.
  server.reset();
}

std::uint16_t DiscEngine::TelemetryPort() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return http_ == nullptr ? 0 : http_->port();
}

}  // namespace disc
