#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "common/thread_annotations.h"

namespace disc {
namespace obs {

namespace {

// Same shortest-stable formatting discipline as the metrics registry:
// %.9g is far beyond timer resolution and yields identical bytes for
// identical values.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SiteState {
  double tokens = 0.0;
  double last_refill_s = 0.0;
  bool started = false;
  std::uint64_t suppressed = 0;
};

// Global logger state. The level gate is a relaxed atomic so disabled
// sites never touch a lock; everything else is cold enough to serialize.
std::atomic<std::uint8_t> g_min_level{
    static_cast<std::uint8_t>(LogLevel::kInfo)};
std::atomic<bool> g_timestamps{true};

std::mutex g_sites_mutex;
std::map<std::string, SiteState> g_sites GUARDED_BY(g_sites_mutex);
double g_rate_per_second GUARDED_BY(g_sites_mutex) = 5.0;
double g_rate_burst GUARDED_BY(g_sites_mutex) = 10.0;
double (*g_clock)() GUARDED_BY(g_sites_mutex) = &SteadyNowSeconds;

std::mutex g_sink_mutex;
LogSink* g_sink GUARDED_BY(g_sink_mutex) = nullptr;

class StderrSink : public LogSink {
 public:
  void Write(const LogRecord& record) override {
    std::fprintf(stderr, "%s\n", record.json.c_str());
  }
};

StderrSink g_default_sink;

// Token-bucket admission for one site. Returns false when the record must
// be dropped; on admission, *suppressed receives the number of records
// dropped at this site since the last admitted one.
bool AdmitSite(const std::string& site, double now_s,
               std::uint64_t* suppressed) {
  std::lock_guard<std::mutex> lock(g_sites_mutex);
  if (g_rate_per_second <= 0.0) {
    *suppressed = 0;
    return true;
  }
  SiteState& state = g_sites[site];
  if (!state.started) {
    state.started = true;
    state.tokens = g_rate_burst;
    state.last_refill_s = now_s;
  }
  const double elapsed = now_s - state.last_refill_s;
  if (elapsed > 0.0) {
    state.tokens += elapsed * g_rate_per_second;
    if (state.tokens > g_rate_burst) state.tokens = g_rate_burst;
    state.last_refill_s = now_s;
  }
  if (state.tokens < 1.0) {
    ++state.suppressed;
    return false;
  }
  state.tokens -= 1.0;
  *suppressed = state.suppressed;
  state.suppressed = 0;
  return true;
}

double ClockNowSeconds() {
  std::lock_guard<std::mutex> lock(g_sites_mutex);
  return g_clock();
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

LogSink* SetLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  LogSink* previous = g_sink;
  g_sink = sink;
  return previous;
}

void SetLogLevel(LogLevel min_level) {
  g_min_level.store(static_cast<std::uint8_t>(min_level),
                    std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogTimestamps(bool enabled) {
  g_timestamps.store(enabled, std::memory_order_relaxed);
}

void SetLogRateLimit(double per_second, double burst) {
  std::lock_guard<std::mutex> lock(g_sites_mutex);
  g_rate_per_second = per_second;
  g_rate_burst = burst;
  g_sites.clear();
}

void SetLogClockForTest(double (*now_seconds)()) {
  std::lock_guard<std::mutex> lock(g_sites_mutex);
  g_clock = now_seconds == nullptr ? &SteadyNowSeconds : now_seconds;
  g_sites.clear();
}

LogEvent::LogEvent(LogLevel level, const char* event, const char* file,
                   int line) {
  if (static_cast<std::uint8_t>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;  // Disabled site: one atomic load, no rendering.
  }
  record_.level = level;
  record_.event = event;
  record_.site = Basename(file);
  record_.site += ':';
  record_.site += std::to_string(line);
  const double now_s = ClockNowSeconds();
  if (!AdmitSite(record_.site, now_s, &record_.suppressed)) return;
  record_.ts_us = static_cast<std::int64_t>(now_s * 1e6);
  emit_ = true;
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  if (emit_) record_.fields.push_back({std::string(key), JsonQuote(value)});
  return *this;
}

LogEvent& LogEvent::Num(std::string_view key, double value) {
  if (emit_) record_.fields.push_back({std::string(key), FormatDouble(value)});
  return *this;
}

LogEvent& LogEvent::NumUnsigned(std::string_view key, std::uint64_t value) {
  if (emit_) {
    record_.fields.push_back({std::string(key), std::to_string(value)});
  }
  return *this;
}

LogEvent& LogEvent::NumSigned(std::string_view key, std::int64_t value) {
  if (emit_) {
    record_.fields.push_back({std::string(key), std::to_string(value)});
  }
  return *this;
}

LogEvent::~LogEvent() {
  if (!emit_) return;
  // Fixed key order: ts_us, level, event, site, [suppressed], fields in
  // call order. The order is part of the format contract (tests diff it).
  std::string& json = record_.json;
  json.push_back('{');
  if (g_timestamps.load(std::memory_order_relaxed)) {
    json += "\"ts_us\":";
    json += std::to_string(record_.ts_us);
    json.push_back(',');
  }
  json += "\"level\":";
  json += JsonQuote(LogLevelName(record_.level));
  json += ",\"event\":";
  json += JsonQuote(record_.event);
  json += ",\"site\":";
  json += JsonQuote(record_.site);
  if (record_.suppressed > 0) {
    json += ",\"suppressed\":";
    json += std::to_string(record_.suppressed);
  }
  for (const LogField& field : record_.fields) {
    json.push_back(',');
    json += JsonQuote(field.key);
    json.push_back(':');
    json += field.value;
  }
  json.push_back('}');
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  (g_sink == nullptr ? static_cast<LogSink*>(&g_default_sink) : g_sink)
      ->Write(record_);
}

}  // namespace obs
}  // namespace disc
