#ifndef DISC_OBS_LOG_H_
#define DISC_OBS_LOG_H_

// Leveled structured logging (docs/OBSERVABILITY.md §Structured logging).
//
// Every record is one JSON line with a fixed key order — ts_us, level,
// event, site, [suppressed], then the call-site fields in call order — so
// identical workloads produce diffable streams (and byte-identical ones
// once timestamps are disabled via SetLogTimestamps(false)).
//
//   DISC_LOG(kWarn, "engine.feed_rejected")
//       .Str("session", name)
//       .Num("got", points.size());
//
// emits (default sink: one line on stderr):
//
//   {"ts_us":181422,"level":"warn","event":"engine.feed_rejected",
//    "site":"disc_engine.cc:195","session":"city","got":7}
//
// Each DISC_LOG statement is a *site*, keyed by file:line. Sites are
// token-bucket rate limited (SetLogRateLimit; default 10-record burst,
// 5 records/s refill) so a failure loop cannot flood an operator: the
// first record after a suppression window carries a "suppressed" count of
// the records the bucket dropped at that site.
//
// The sink is pluggable (SetLogSink) so tests capture structured records
// instead of scraping stderr, and servers can forward records elsewhere.
// Sinks receive fully-rendered records; the default sink writes
// `record.json + '\n'` to stderr under an internal mutex.
//
// Cost model: a disabled site (below SetLogLevel, default kInfo) is one
// relaxed atomic load and a branch — fields are never rendered. An
// enabled site takes a global site-table lock for the token-bucket check
// plus one lock around the sink write.

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace disc {
namespace obs {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

// Lower-case level name ("debug", "info", "warn", "error").
const char* LogLevelName(LogLevel level);

// One rendered field: `value` is the exact JSON token emitted (already
// quoted/escaped for strings, plain for numbers).
struct LogField {
  std::string key;
  std::string value;
};

// One structured record handed to the sink. `json` is the full serialized
// line (no trailing newline); the split-out members let tests and
// forwarding sinks avoid re-parsing it.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string event;
  std::string site;  // "file.cc:123", basename only.
  std::int64_t ts_us = 0;
  std::uint64_t suppressed = 0;  // Records dropped at this site before this one.
  std::vector<LogField> fields;
  std::string json;
};

class LogSink {
 public:
  virtual ~LogSink() = default;
  // May be called from any thread; calls are serialized by the logger.
  virtual void Write(const LogRecord& record) = 0;
};

// Installs a sink, returning the previous one (nullptr = the default
// stderr sink was active). Passing nullptr restores the default sink.
// Not safe to race with concurrent logging; install before the workload.
LogSink* SetLogSink(LogSink* sink);

// Minimum emitted level (default kInfo). Thread-safe (relaxed atomic).
void SetLogLevel(LogLevel min_level);
LogLevel GetLogLevel();

// Include "ts_us" in records (default true). Disable for byte-identical
// streams in tests and golden files.
void SetLogTimestamps(bool enabled);

// Per-site token bucket: every site may burst `burst` records, refilled at
// `per_second`. `per_second <= 0` disables rate limiting entirely.
// Defaults: burst 10, 5/s.
void SetLogRateLimit(double per_second, double burst);

// Test hook: replaces the rate limiter's clock (seconds, monotone).
// nullptr restores the steady_clock default. Also resets all site buckets.
void SetLogClockForTest(double (*now_seconds)());

// Builder for one record. Construct via DISC_LOG; destruction emits.
class LogEvent {
 public:
  LogEvent(LogLevel level, const char* event, const char* file, int line);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  // Appends a string field (JSON-escaped).
  LogEvent& Str(std::string_view key, std::string_view value);
  // Appends numeric fields (rendered with the registry's %.9g discipline
  // for doubles, exactly for integers of any width).
  LogEvent& Num(std::string_view key, double value);
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  LogEvent& Num(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return NumSigned(key, static_cast<std::int64_t>(value));
    } else {
      return NumUnsigned(key, static_cast<std::uint64_t>(value));
    }
  }

  // DISC_LOG loop plumbing.
  bool armed() const { return !done_; }
  void disarm() { done_ = true; }

 private:
  LogEvent& NumSigned(std::string_view key, std::int64_t value);
  LogEvent& NumUnsigned(std::string_view key, std::uint64_t value);

  LogRecord record_;
  bool emit_ = false;  // False: below level or rate-limited; fields no-op.
  bool done_ = false;
};

}  // namespace obs
}  // namespace disc

// Usage: DISC_LOG(kWarn, "engine.feed_rejected").Str("k", v).Num("n", 3);
// The for-scaffold makes the builder a full statement the field calls
// chain onto; it runs exactly once and optimizes to a straight-line call.
#define DISC_LOG(severity, event_name)                                 \
  for (::disc::obs::LogEvent disc_log_event_(                          \
           ::disc::obs::LogLevel::severity, (event_name), __FILE__,    \
           __LINE__);                                                  \
       disc_log_event_.armed(); disc_log_event_.disarm())              \
  disc_log_event_

#endif  // DISC_OBS_LOG_H_
