#ifndef DISC_OBS_SINKS_H_
#define DISC_OBS_SINKS_H_

// Export sinks for the observability layer (docs/OBSERVABILITY.md):
//
//  * WriteSlideJsonl   — one self-contained JSON object per slide, for
//                        offline analysis and run-to-run diffing.
//  * MetricsObserver   — StreamingPipeline::Observer adapter that folds
//                        every SlideReport into a MetricsRegistry (and
//                        optionally the JSONL stream), so pipelines gain
//                        full telemetry with one extra line of wiring.
//
// The registry itself exports via MetricsRegistry::WritePrometheus /
// WriteJson; trace files via TraceRecorder::WriteChromeJson.
//
// This header depends on core/ and stream/ types by value only (plain
// structs); the obs library links against neither.

#include <iosfwd>

#include "core/metrics.h"
#include "core/pipeline.h"
#include "obs/metrics_registry.h"

namespace disc {
namespace obs {

// Writes one JSON object (one line, fixed key order) describing a completed
// slide. `disc_metrics` adds DISC's drill-down counters when non-null.
// `include_timings=false` drops every wall-clock field (and threads_used),
// leaving only workload-deterministic content: the resulting byte stream is
// identical for any thread count and across runs — the determinism guard
// obs_test enforces.
void WriteSlideJsonl(std::ostream& os, const SlideReport& report,
                     const DiscMetrics* disc_metrics = nullptr,
                     bool include_timings = true);

// Folds SlideReports into a MetricsRegistry:
//
//   counters   disc_slides_total, disc_points_{entered,exited,relabeled}_
//              total, disc_probe_* (from SlideReport::probes), and — when
//              Options::disc_metrics is set — disc_{ex,neo}_cores_total,
//              disc_{ex,neo}_groups_total, disc_msbfs_expansions_total,
//              disc_{collect,cluster}_searches_total,
//              disc_survivor_reconciliations_total.
//   gauges     disc_window_size, disc_threads_used.
//   histograms disc_update_ms plus disc_{collect,ex_phase,neo_phase,
//              recheck}_ms (slide-latency distributions, p50/p95/p99).
//
// Point Options::disc_metrics at Disc::last_metrics() (the reference is
// stable for the clusterer's lifetime) to get the drill-down counters;
// leave it null for baselines. Options::jsonl additionally streams each
// report through WriteSlideJsonl.
class MetricsObserver {
 public:
  struct Options {
    const DiscMetrics* disc_metrics = nullptr;
    std::ostream* jsonl = nullptr;
    bool jsonl_timings = true;
  };

  explicit MetricsObserver(MetricsRegistry* registry);  // Default options.
  MetricsObserver(MetricsRegistry* registry, const Options& options);

  // Observer signature; returns true (never stops the pipeline).
  bool operator()(const SlideReport& report);

  // Wraps `this` for StreamingPipeline::Run; the observer must outlive the
  // returned function.
  StreamingPipeline::Observer AsObserver();

 private:
  MetricsRegistry* registry_;
  Options options_;
};

}  // namespace obs
}  // namespace disc

#endif  // DISC_OBS_SINKS_H_
