#ifndef DISC_OBS_METRICS_REGISTRY_H_
#define DISC_OBS_METRICS_REGISTRY_H_

// Named-metric registry: counters, gauges, and log-bucketed latency
// histograms with p50/p95/p99 readout, aggregating per-slide measurements
// across a run (docs/OBSERVABILITY.md). Exports are deterministic: metrics
// are stored and serialized in name order, and counter values depend only
// on the workload (never on thread count or scheduling), so two identical
// runs produce byte-identical counter exports.
//
// Concurrency: every metric's fields are relaxed atomics, so exports (and
// the live /metrics scrape path, obs/http_server.h) may run concurrently
// with updates without data races. Writes keep the single-writer
// discipline — each metric is mutated from one observing thread at a time
// (the pipeline observer, the engine's scheduler thread) — which is what
// keeps counter exports workload-deterministic; readers are unrestricted.
// A scrape concurrent with a write sees a torn-but-valid snapshot (e.g. a
// histogram count updated before its sum); quiesce the workload when
// byte-exact reads matter.

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace disc {
namespace obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-value-wins instantaneous measurement.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-bucketed histogram for latency-like positive samples. Bucket bounds
// grow geometrically by 10^(1/kBucketsPerDecade) (≈ +12.2% per bucket), so
// a quantile readout is exact up to one bucket's relative width — across
// the full 1e-6..1e9 range with a few KB of fixed storage and no
// per-sample allocation.
class Histogram {
 public:
  static constexpr int kBucketsPerDecade = 20;
  static constexpr int kDecades = 15;       // Covers [kMinValue, 1e9).
  static constexpr double kMinValue = 1e-6;
  // Bucket 0 is the underflow bucket (samples <= kMinValue, including
  // zero/negative); the last bucket is the overflow bucket.
  static constexpr int kNumBuckets = kBucketsPerDecade * kDecades + 2;

  // Upper bound of one quantile-readout bucket relative to its lower bound;
  // Quantile() overestimates the exact sample quantile by at most this
  // factor. Exposed so tests can oracle-check without duplicating the
  // constant.
  static double GrowthFactor();

  // Single-writer: call from one observing thread at a time. Readers may
  // run concurrently.
  void Observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const {
    return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  }
  double max() const {
    return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  }

  // Upper bound of the bucket holding the q-quantile sample (q in [0, 1]),
  // i.e. the smallest bucket bound b with #(samples <= b) >= ceil(q *
  // count). Returns 0 for an empty histogram. For an underflow-bucket hit
  // the bound is kMinValue; for overflow it is max().
  double Quantile(double q) const;

  std::uint64_t bucket_count(int index) const {
    return buckets_[static_cast<std::size_t>(index)].load(
        std::memory_order_relaxed);
  }
  static double BucketUpperBound(int index);

 private:
  static int BucketIndex(double value);

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Owns metrics by name. Lookups create on first use and return stable
// references (std::map nodes never move). Registration, export, and Reset
// are serialized by an internal mutex, so sessions sharing one registry
// (e.g. through DiscEngine) may register metrics while another thread
// exports; the metric objects themselves are atomic, so the live HTTP
// scrape path may read them while the workload writes.
class MetricsRegistry {
 public:
  // Prometheus metric-name discipline, also applied to label names:
  // [a-zA-Z_][a-zA-Z0-9_]*. ValidateName returns a descriptive error for
  // anything else; SanitizeName maps an arbitrary string onto the valid
  // alphabet (invalid characters become '_', a leading digit gains a '_'
  // prefix, an empty name becomes "_").
  static Status ValidateName(std::string_view name);
  static std::string SanitizeName(std::string_view name);

  // Lookup-or-create. An invalid name is sanitized at registration (the
  // metric is created under SanitizeName(name)) and the rejection is
  // logged once per call site with ValidateName's message — invalid names
  // never reach an exposition.
  //
  // The two-argument forms attach a `# HELP` docstring on first
  // registration (later calls may omit it; a non-empty help never loses to
  // an empty one).
  Counter& counter(std::string_view name) EXCLUDES(mutex_);
  Counter& counter(std::string_view name, std::string_view help)
      EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name, std::string_view help) EXCLUDES(mutex_);
  Histogram& histogram(std::string_view name) EXCLUDES(mutex_);
  Histogram& histogram(std::string_view name, std::string_view help)
      EXCLUDES(mutex_);

  std::size_t size() const EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Prometheus text exposition: every family gets a `# HELP` line (the
  // registered docstring, or "(no help registered)") followed by `# TYPE`
  // — counters as counters, gauges as gauges, histograms as summaries with
  // quantile="0.5/0.95/0.99" samples plus _sum/_count/_min/_max. Names are
  // valid by construction (see SanitizeName). `include_histograms=false`
  // restricts the dump to counters and gauges — the run-invariant subset,
  // for byte-level diffing.
  void WritePrometheus(std::ostream& os, bool include_histograms = true) const
      EXCLUDES(mutex_);

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}},
  // name-sorted, histograms summarized as count/sum/min/max/p50/p95/p99.
  void WriteJson(std::ostream& os) const EXCLUDES(mutex_);

  void Reset() EXCLUDES(mutex_);

 private:
  void SetHelp(std::string_view name, std::string_view help) REQUIRES(mutex_);

  // Serializes map mutation (registration, Reset) against exports. The
  // metric objects the maps own are deliberately NOT guarded: references
  // are stable across rebalancing and every field is atomic.
  mutable std::mutex mutex_;
  // std::less<> enables string_view lookups without a temporary string.
  std::map<std::string, Counter, std::less<>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, Gauge, std::less<>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, Histogram, std::less<>> histograms_
      GUARDED_BY(mutex_);
  std::map<std::string, std::string, std::less<>> helps_ GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace disc

#endif  // DISC_OBS_METRICS_REGISTRY_H_
