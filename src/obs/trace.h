#ifndef DISC_OBS_TRACE_H_
#define DISC_OBS_TRACE_H_

// RAII trace spans emitting the Chrome trace-event JSON format, openable in
// chrome://tracing or https://ui.perfetto.dev (docs/OBSERVABILITY.md).
//
// Usage: construct a TraceRecorder, Install() it, run the workload, then
// WriteChromeJson(). Instrumented code creates scoped spans:
//
//   {
//     obs::TraceSpan span("disc.collect");
//     ... work ...
//     span.AddArg("probes", n);   // annotations ride on the span's E event
//   }
//
// Cost model:
//  * No recorder installed (the default): a span is one relaxed atomic load
//    and a branch — no allocation, no lock, no clock read.
//  * DISC_TRACING_ENABLED=0 (CMake -DDISC_TRACING=OFF): TraceSpan is an
//    empty type with inline no-op members; the optimizer deletes every span
//    from the instruction stream.
//  * Recorder installed: two buffered event appends per captured span.
//
// Determinism: trace thread-ids are stable lane numbers (0 = the external
// thread, lane+1 for ThreadPool workers), not OS tids, and events are
// serialized sorted by (tid, ts, capture order), so traces from identical
// runs diff cleanly. With Options::logical_time the timestamps themselves
// become reproducible counter values (used by tests and golden traces).

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "common/thread_annotations.h"

#ifndef DISC_TRACING_ENABLED
#define DISC_TRACING_ENABLED 1
#endif

namespace disc {
namespace obs {

// Verbosity of a span. kPhase spans mark algorithm phases and thread-pool
// batches (a handful per slide); kDetail spans mark individual index probes
// and reachability closures (possibly thousands per slide). A recorder
// captures a span only when its level is at or below the recorder's.
enum class TraceLevel : std::uint8_t { kPhase = 0, kDetail = 1 };

// One key/value annotation attached to a span. Keys must be string literals
// (or otherwise outlive the recorder): the recorder stores the pointer.
struct TraceArg {
  const char* key = nullptr;
  std::uint64_t value = 0;
};

// One buffered begin/end event. `name` must outlive the recorder (string
// literal in practice).
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t ts_us = 0;
  std::uint32_t tid = 0;
  char phase = 'B';  // 'B' or 'E'.
  std::uint8_t num_args = 0;
  std::array<TraceArg, 4> args{};
};

// Stable trace thread-id of the calling thread. Defaults to 0 (the
// main/external thread); ThreadPool workers carry lane+1, assigned once at
// spawn, so per-lane activity in a trace is attributable independent of OS
// thread ids (and stable across runs).
std::uint32_t ThreadTraceTid();
void SetThreadTraceTid(std::uint32_t tid);

// One finished span reconstructed from its B/E pair: what the live
// /tracez endpoint serves (obs/http_server.h). Args are the E event's.
struct CompletedSpan {
  const char* name = nullptr;
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;
  std::uint8_t num_args = 0;
  std::array<TraceArg, 4> args{};
};

// Collects events from every thread into one buffer and serializes them as
// Chrome trace-event JSON. At most one recorder is installed process-wide
// at a time; spans created while none is installed are no-ops.
class TraceRecorder {
 public:
  struct Options {
    TraceLevel level = TraceLevel::kPhase;
    // Timestamps from a global logical counter (one tick per clock read)
    // instead of the wall clock: the emitted bytes of a deterministic
    // single-threaded workload become identical across runs. Durations stop
    // meaning time; nesting and ordering are preserved.
    bool logical_time = false;
    // Ring of the last N completed kPhase spans, kept alongside the event
    // buffer and served by /tracez. 0 disables the tail.
    std::size_t tail_capacity = 256;
  };

  TraceRecorder();  // Default options.
  explicit TraceRecorder(const Options& options);
  ~TraceRecorder();  // Uninstalls itself if still installed.

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Makes this recorder the process-wide span sink / removes it. Install
  // while another recorder is installed replaces it (the replaced recorder
  // keeps its buffer). Not safe to call concurrently with span creation on
  // other threads; install before the workload starts.
  void Install();
  void Uninstall();

  // The currently installed recorder, or nullptr. Lock-free.
  static TraceRecorder* active() {
    return active_recorder_.load(std::memory_order_acquire);
  }

  TraceLevel level() const { return options_.level; }

  // Current timestamp in microseconds since construction (or the next
  // logical tick). Used by TraceSpan.
  std::int64_t Now();

  // Appends one event to the buffer (thread-safe).
  void Append(const TraceEvent& event) EXCLUDES(mutex_);

  // Appends a span's closing event and — for kPhase spans — records the
  // completed span in the tail ring. Called by ~TraceSpan.
  void AppendComplete(const TraceEvent& begin, const TraceEvent& end,
                      TraceLevel level) EXCLUDES(mutex_);

  // The tail ring's contents, oldest completion first (at most
  // Options::tail_capacity spans). Thread-safe; callable mid-run.
  std::vector<CompletedSpan> TailSnapshot() EXCLUDES(mutex_);

  std::size_t event_count() EXCLUDES(mutex_);
  void Clear() EXCLUDES(mutex_);

  // Serializes the buffer: a {"traceEvents":[...]} object, one event per
  // line, thread-name metadata first, span events sorted by (tid, ts,
  // capture order). Does not clear the buffer.
  void WriteChromeJson(std::ostream& os) EXCLUDES(mutex_);

 private:
  static std::atomic<TraceRecorder*> active_recorder_;

  Options options_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::int64_t> logical_clock_{0};

  std::mutex mutex_;
  std::vector<TraceEvent> events_ GUARDED_BY(mutex_);
  // Fixed-capacity ring of completed kPhase spans; tail_next_ is the slot
  // the next completion overwrites, tail_count_ the filled prefix size.
  std::vector<CompletedSpan> tail_ GUARDED_BY(mutex_);
  std::size_t tail_next_ GUARDED_BY(mutex_) = 0;
  std::size_t tail_count_ GUARDED_BY(mutex_) = 0;
};

#if DISC_TRACING_ENABLED

// Scoped span: records a 'B' event at construction and an 'E' event (with
// any AddArg annotations) at destruction — when a recorder is installed and
// accepts the span's level; otherwise every member is a no-op and nothing
// is allocated.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, TraceLevel level = TraceLevel::kPhase)
      : rec_(TraceRecorder::active()), level_(level) {
    if (rec_ == nullptr) return;
    if (level > rec_->level()) {
      rec_ = nullptr;
      return;
    }
    begin_.name = name;
    begin_.tid = ThreadTraceTid();
    begin_.phase = 'B';
    begin_.ts_us = rec_->Now();
    rec_->Append(begin_);
  }

  ~TraceSpan() {
    if (rec_ == nullptr) return;
    TraceEvent end = begin_;
    end.phase = 'E';
    end.ts_us = rec_->Now();
    end.num_args = num_args_;
    end.args = args_;
    rec_->AppendComplete(begin_, end, level_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches a key/value annotation to the span's closing event (silently
  // dropped beyond 4 args or when the span is inactive).
  void AddArg(const char* key, std::uint64_t value) {
    if (rec_ == nullptr || num_args_ >= args_.size()) return;
    args_[num_args_] = TraceArg{key, value};
    ++num_args_;
  }

  bool active() const { return rec_ != nullptr; }

 private:
  TraceRecorder* rec_;
  TraceLevel level_;
  TraceEvent begin_{};
  std::uint8_t num_args_ = 0;
  std::array<TraceArg, 4> args_{};
};

#else  // !DISC_TRACING_ENABLED

// Tracing compiled out: an empty type whose members inline to nothing.
class TraceSpan {
 public:
  explicit TraceSpan(const char*, TraceLevel = TraceLevel::kPhase) {}
  void AddArg(const char*, std::uint64_t) {}
  bool active() const { return false; }
};

#endif  // DISC_TRACING_ENABLED

}  // namespace obs
}  // namespace disc

#endif  // DISC_OBS_TRACE_H_
