#ifndef DISC_OBS_HTTP_SERVER_H_
#define DISC_OBS_HTTP_SERVER_H_

// Embedded telemetry HTTP server (docs/OBSERVABILITY.md §Live telemetry).
//
// A dependency-free POSIX-socket HTTP/1.1 server — one accept thread plus
// a small fixed worker pool over a bounded connection queue — that makes a
// running engine observable while it streams:
//
//   GET /metrics       Prometheus text exposition of the bound registry
//   GET /metrics.json  the same registry as one JSON object
//   GET /healthz       liveness + per-component readiness (JSON; HTTP 503
//                      when a bound component is not ready)
//   GET /sessions      one JSON row per engine session: window, slides,
//                      queue depth, watermark lag, last-slide latency
//   GET /tracez        the trace recorder's ring of recently completed
//                      phase spans (JSON)
//
// Every response is deterministic given the observed state: bodies are
// built from name-ordered registry maps and creation-ordered session rows,
// so concurrent scrapes of a quiesced process are byte-identical and
// nothing hash-ordered ever reaches the wire (enforced by disc_lint's
// unordered-iteration rule over the emit sites).
//
// Cost model: a scrape serializes the registry under its registration
// mutex (microseconds at typical metric counts) and never blocks metric
// writers, which go through relaxed atomics; /sessions takes the engine
// mutex and therefore waits for an in-flight Drain round. The server
// itself touches no engine or registry state between requests.
//
// Lifecycle: Start() binds (port 0 = ephemeral, see port()), Stop() shuts
// the listener, drains queued connections, and joins every thread; the
// destructor calls Stop(). Intended for loopback telemetry, not for
// serving untrusted networks: requests are size-capped, parsed
// minimally, and always answered with `Connection: close`.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace disc {
namespace obs {

// One engine session's live status, as served by /sessions. Rows come back
// in session-creation order (deterministic).
struct SessionStatusRow {
  std::string name;
  std::uint64_t id = 0;
  std::string method;
  std::size_t window_size = 0;      // Points currently in the window.
  std::size_t slides_run = 0;       // Slides executed since creation.
  std::size_t queue_depth = 0;      // Slides fed but not yet drained.
  std::size_t watermark_lag_slides = 0;  // Engine watermark - slides_run.
  double last_slide_ms = 0.0;       // Update latency of the last slide.
};

// What the server pulls session rows and readiness from. DiscEngine
// implements this; any host with named streams can.
class EngineStatusProvider {
 public:
  virtual ~EngineStatusProvider() = default;
  // Snapshot of every session, creation order. Must be safe to call from
  // server worker threads.
  virtual std::vector<SessionStatusRow> SessionStatus() const = 0;
};

// Response under construction. `Write` appends to the body — it is a
// disc_lint emit sink: never feed it from a hash-ordered loop.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  void Write(std::string_view chunk) { body.append(chunk); }
};

struct HttpServerOptions {
  // 0 binds an ephemeral port (read it back via port()) — what tests and
  // `--serve 0` use.
  std::uint16_t port = 0;
  std::string bind_address = "127.0.0.1";
  // Workers handling parsed requests; the accept thread never parses.
  std::size_t worker_threads = 2;
  // Accepted-but-unhandled connections beyond this are answered 503
  // immediately (bounded backlog instead of unbounded queueing).
  std::size_t max_queued_connections = 16;
  // Requests whose head exceeds this are answered 431 and closed.
  std::size_t max_request_bytes = 4096;

  // Bindings, all borrowed and optional (must outlive the server).
  // Unbound routes answer 503 with a JSON error body.
  MetricsRegistry* metrics = nullptr;
  const EngineStatusProvider* engine = nullptr;
  TraceRecorder* tracer = nullptr;

  // Optional extra readiness probe for a co-hosted ingest listener
  // (net/ingest_server.h). When set, /healthz gains an "ingest" component
  // that must report true for overall readiness — a daemon whose ingest
  // plane died flips to 503 even while the telemetry plane still answers.
  // Called from server worker threads; must be thread-safe.
  std::function<bool()> ingest_ready;
};

class HttpServer {
 public:
  explicit HttpServer(const HttpServerOptions& options);
  ~HttpServer();  // Stops if running.

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and spawns the accept + worker threads. Fails with a
  // descriptive Status (address in use, bad bind address, ...) without
  // leaking any fd or thread.
  Status Start();

  // Graceful shutdown: stops accepting, answers nothing further, joins
  // every thread, closes queued connections. Idempotent.
  void Stop();

  bool running() const;

  // The bound port (the ephemeral one when options.port == 0); 0 when not
  // running.
  std::uint16_t port() const;

  // Routes `target` (path only, no host) exactly as a socket request
  // would, minus the socket. What tests and the in-process scrape path
  // use; handlers are pure functions of the bound components' state.
  HttpResponse Handle(std::string_view target) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Minimal blocking HTTP/1.1 GET against 127.0.0.1:<port>, for tests,
// benches, and tools — not a general client. Returns the body and stores
// the status code (0 on transport failure, with the error message as the
// returned body).
std::string HttpGet(std::uint16_t port, const std::string& target,
                    int* status_code);

}  // namespace obs
}  // namespace disc

#endif  // DISC_OBS_HTTP_SERVER_H_
