#include "obs/trace.h"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <set>

namespace disc {
namespace obs {

namespace {

thread_local std::uint32_t t_trace_tid = 0;

// Minimal JSON string escaping. Span names are project-controlled string
// literals, but the writer stays robust anyway so a stray quote cannot
// produce an unloadable trace.
void WriteJsonString(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void WriteEvent(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":";
  WriteJsonString(os, e.name);
  os << ",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid
     << ",\"ts\":" << e.ts_us;
  if (e.num_args > 0) {
    os << ",\"args\":{";
    for (std::uint8_t i = 0; i < e.num_args; ++i) {
      if (i > 0) os << ',';
      WriteJsonString(os, e.args[i].key);
      os << ':' << e.args[i].value;
    }
    os << '}';
  }
  os << '}';
}

}  // namespace

std::uint32_t ThreadTraceTid() { return t_trace_tid; }

void SetThreadTraceTid(std::uint32_t tid) { t_trace_tid = tid; }

std::atomic<TraceRecorder*> TraceRecorder::active_recorder_{nullptr};

TraceRecorder::TraceRecorder() : TraceRecorder(Options{}) {}

TraceRecorder::TraceRecorder(const Options& options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() {
  if (active() == this) Uninstall();
}

void TraceRecorder::Install() {
  active_recorder_.store(this, std::memory_order_release);
}

void TraceRecorder::Uninstall() {
  active_recorder_.store(nullptr, std::memory_order_release);
}

std::int64_t TraceRecorder::Now() {
  if (options_.logical_time) {
    return logical_clock_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::Append(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::size_t TraceRecorder::event_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void TraceRecorder::WriteChromeJson(std::ostream& os) {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  // Deterministic serialization order: by (tid, ts, capture order). Per
  // thread, capture order already has non-decreasing timestamps, so the
  // stable sort only interleaves threads — B/E nesting within a tid is
  // preserved.
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (events[a].tid != events[b].tid) {
                       return events[a].tid < events[b].tid;
                     }
                     return events[a].ts_us < events[b].ts_us;
                   });

  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);

  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Thread-name metadata first: tid 0 is the external thread driving
  // Update, tid N>0 is thread-pool lane N-1.
  for (std::uint32_t tid : tids) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"";
    if (tid == 0) {
      os << "main";
    } else {
      os << "lane-" << (tid - 1);
    }
    os << "\"}}";
  }
  for (std::size_t idx : order) {
    if (!first) os << ",\n";
    first = false;
    WriteEvent(os, events[idx]);
  }
  os << "\n]}\n";
}

}  // namespace obs
}  // namespace disc
