#include "obs/trace.h"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <set>

namespace disc {
namespace obs {

namespace {

thread_local std::uint32_t t_trace_tid = 0;

// Minimal JSON string escaping. Span names are project-controlled string
// literals, but the writer stays robust anyway so a stray quote cannot
// produce an unloadable trace.
void WriteJsonString(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void WriteEvent(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":";
  WriteJsonString(os, e.name);
  os << ",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid
     << ",\"ts\":" << e.ts_us;
  if (e.num_args > 0) {
    os << ",\"args\":{";
    for (std::uint8_t i = 0; i < e.num_args; ++i) {
      if (i > 0) os << ',';
      WriteJsonString(os, e.args[i].key);
      os << ':' << e.args[i].value;
    }
    os << '}';
  }
  os << '}';
}

}  // namespace

std::uint32_t ThreadTraceTid() { return t_trace_tid; }

void SetThreadTraceTid(std::uint32_t tid) { t_trace_tid = tid; }

std::atomic<TraceRecorder*> TraceRecorder::active_recorder_{nullptr};

TraceRecorder::TraceRecorder() : TraceRecorder(Options{}) {}

TraceRecorder::TraceRecorder(const Options& options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() {
  if (active() == this) Uninstall();
}

void TraceRecorder::Install() {
  active_recorder_.store(this, std::memory_order_release);
}

void TraceRecorder::Uninstall() {
  active_recorder_.store(nullptr, std::memory_order_release);
}

std::int64_t TraceRecorder::Now() {
  if (options_.logical_time) {
    return logical_clock_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::Append(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

void TraceRecorder::AppendComplete(const TraceEvent& begin,
                                   const TraceEvent& end, TraceLevel level) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(end);
  if (level != TraceLevel::kPhase || options_.tail_capacity == 0) return;
  if (tail_.empty()) tail_.resize(options_.tail_capacity);
  CompletedSpan& slot = tail_[tail_next_];
  slot.name = end.name;
  slot.start_us = begin.ts_us;
  slot.dur_us = end.ts_us - begin.ts_us;
  slot.tid = end.tid;
  slot.num_args = end.num_args;
  slot.args = end.args;
  tail_next_ = (tail_next_ + 1) % tail_.size();
  if (tail_count_ < tail_.size()) ++tail_count_;
}

std::vector<CompletedSpan> TraceRecorder::TailSnapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CompletedSpan> out;
  out.reserve(tail_count_);
  // Oldest first: the ring's next overwrite slot is the oldest entry once
  // the ring has wrapped.
  const std::size_t start =
      tail_count_ < tail_.size() ? 0 : tail_next_;
  for (std::size_t k = 0; k < tail_count_; ++k) {
    out.push_back(tail_[(start + k) % tail_.size()]);
  }
  return out;
}

std::size_t TraceRecorder::event_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  tail_count_ = 0;
  tail_next_ = 0;
}

void TraceRecorder::WriteChromeJson(std::ostream& os) {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  // Deterministic serialization order: by (tid, ts, capture order). Per
  // thread, capture order already has non-decreasing timestamps, so the
  // stable sort only interleaves threads — B/E nesting within a tid is
  // preserved.
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (events[a].tid != events[b].tid) {
                       return events[a].tid < events[b].tid;
                     }
                     return events[a].ts_us < events[b].ts_us;
                   });

  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);

  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Thread-name metadata first: tid 0 is the external thread driving
  // Update, tid N>0 is thread-pool lane N-1.
  for (std::uint32_t tid : tids) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"";
    if (tid == 0) {
      os << "main";
    } else {
      os << "lane-" << (tid - 1);
    }
    os << "\"}}";
  }
  for (std::size_t idx : order) {
    if (!first) os << ",\n";
    first = false;
    WriteEvent(os, events[idx]);
  }
  os << "\n]}\n";
}

}  // namespace obs
}  // namespace disc
