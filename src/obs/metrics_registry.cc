#include "obs/metrics_registry.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/log.h"

namespace disc {
namespace obs {

namespace {

// Shortest-exact double formatting via %.17g would leak noise digits into
// exports; %.9g keeps nine significant digits, far beyond timer resolution,
// and yields identical bytes for identical values.
void WriteDouble(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

bool ValidNameChar(char c, bool first) {
  const bool alpha =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  return alpha || (!first && c >= '0' && c <= '9');
}

// Prometheus HELP docstrings escape backslash and newline.
void WriteHelpText(std::ostream& os, const std::string& help) {
  for (const char c : help) {
    if (c == '\\') {
      os << "\\\\";
    } else if (c == '\n') {
      os << "\\n";
    } else {
      os << c;
    }
  }
}

constexpr char kNoHelp[] = "(no help registered)";

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

double Histogram::GrowthFactor() {
  return std::pow(10.0, 1.0 / kBucketsPerDecade);
}

int Histogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // Underflow; catches NaN too.
  const int i =
      1 + static_cast<int>(std::floor(std::log10(value / kMinValue) *
                                      kBucketsPerDecade));
  return i >= kNumBuckets ? kNumBuckets - 1 : i;
}

double Histogram::BucketUpperBound(int index) {
  if (index <= 0) return kMinValue;
  return kMinValue *
         std::pow(10.0, static_cast<double>(index) / kBucketsPerDecade);
}

void Histogram::Observe(double value) {
  // Single-writer discipline: plain load-modify-store on relaxed atomics.
  // Concurrent readers see each field torn at most one sample behind.
  buckets_[static_cast<std::size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    if (value < min_.load(std::memory_order_relaxed)) {
      min_.store(value, std::memory_order_relaxed);
    }
    if (value > max_.load(std::memory_order_relaxed)) {
      max_.store(value, std::memory_order_relaxed);
    }
  }
  sum_.store(sum_.load(std::memory_order_relaxed) + value,
             std::memory_order_relaxed);
  count_.store(n + 1, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += bucket_count(i);
    if (cumulative >= rank) {
      if (i == kNumBuckets - 1) return max();  // Overflow bucket.
      return BucketUpperBound(i);
    }
  }
  return max();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Status MetricsRegistry::ValidateName(std::string_view name) {
  if (name.empty()) {
    return Status::Error("metric name is empty; names must match "
                         "[a-zA-Z_][a-zA-Z0-9_]*");
  }
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (!ValidNameChar(name[i], i == 0)) {
      return Status::Error("metric name \"" + std::string(name) +
                           "\" has invalid character '" +
                           std::string(1, name[i]) + "' at position " +
                           std::to_string(i) +
                           "; names must match [a-zA-Z_][a-zA-Z0-9_]*");
    }
  }
  return Status::Ok();
}

std::string MetricsRegistry::SanitizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty()) return "_";
  if (name[0] >= '0' && name[0] <= '9') out.push_back('_');
  for (std::size_t i = 0; i < name.size(); ++i) {
    out.push_back(ValidNameChar(name[i], out.empty()) ? name[i] : '_');
  }
  return out;
}

namespace {

// Shared lookup-or-create over one of the registry's maps. Invalid names
// are sanitized here — at registration, the single choke point — so no
// exposition ever carries a name Prometheus would reject.
template <typename Map>
auto& LookupMetric(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    std::string key(name);
    if (Status valid = MetricsRegistry::ValidateName(name); !valid.ok()) {
      key = MetricsRegistry::SanitizeName(name);
      DISC_LOG(kWarn, "metrics.name_sanitized")
          .Str("registered_as", key)
          .Str("error", valid.message());
      it = map.find(key);
      if (it != map.end()) return it->second;
    }
    // try_emplace: atomic-field metrics are neither movable nor copyable,
    // so the mapped value must be default-constructed in place.
    it = map.try_emplace(std::move(key)).first;
  }
  return it->second;
}

}  // namespace

void MetricsRegistry::SetHelp(std::string_view name, std::string_view help) {
  if (help.empty()) return;
  std::string key(name);
  if (!ValidateName(name).ok()) key = SanitizeName(name);
  std::string& slot = helps_[key];
  if (slot.empty()) slot = help;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return LookupMetric(counters_, name);
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  SetHelp(name, help);
  return LookupMetric(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return LookupMetric(gauges_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  SetHelp(name, help);
  return LookupMetric(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return LookupMetric(histograms_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  SetHelp(name, help);
  return LookupMetric(histograms_, name);
}

void MetricsRegistry::WritePrometheus(std::ostream& os,
                                      bool include_histograms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto help_for = [this](const std::string& name) -> const std::string& {
    static const std::string fallback(kNoHelp);
    auto it = helps_.find(name);
    return it == helps_.end() ? fallback : it->second;
  };
  for (const auto& [name, c] : counters_) {
    os << "# HELP " << name << ' ';
    WriteHelpText(os, help_for(name));
    os << '\n';
    os << "# TYPE " << name << " counter\n" << name << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << "# HELP " << name << ' ';
    WriteHelpText(os, help_for(name));
    os << '\n';
    os << "# TYPE " << name << " gauge\n" << name << ' ';
    WriteDouble(os, g.value());
    os << '\n';
  }
  if (!include_histograms) return;
  for (const auto& [name, h] : histograms_) {
    os << "# HELP " << name << ' ';
    WriteHelpText(os, help_for(name));
    os << '\n';
    os << "# TYPE " << name << " summary\n";
    for (const double q : {0.5, 0.95, 0.99}) {
      os << name << "{quantile=\"" << (q == 0.5 ? "0.5" : q == 0.95 ? "0.95"
                                                                    : "0.99")
         << "\"} ";
      WriteDouble(os, h.Quantile(q));
      os << '\n';
    }
    os << name << "_sum ";
    WriteDouble(os, h.sum());
    os << '\n' << name << "_count " << h.count() << '\n';
    os << name << "_min ";
    WriteDouble(os, h.min());
    os << '\n' << name << "_max ";
    WriteDouble(os, h.max());
    os << '\n';
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":";
    WriteDouble(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":{\"count\":" << h.count() << ",\"sum\":";
    WriteDouble(os, h.sum());
    os << ",\"min\":";
    WriteDouble(os, h.min());
    os << ",\"max\":";
    WriteDouble(os, h.max());
    os << ",\"p50\":";
    WriteDouble(os, h.Quantile(0.5));
    os << ",\"p95\":";
    WriteDouble(os, h.Quantile(0.95));
    os << ",\"p99\":";
    WriteDouble(os, h.Quantile(0.99));
    os << '}';
  }
  os << "}}\n";
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  helps_.clear();
}

}  // namespace obs
}  // namespace disc
