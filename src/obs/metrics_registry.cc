#include "obs/metrics_registry.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace disc {
namespace obs {

namespace {

// Shortest-exact double formatting via %.17g would leak noise digits into
// exports; %.9g keeps nine significant digits, far beyond timer resolution,
// and yields identical bytes for identical values.
void WriteDouble(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

double Histogram::GrowthFactor() {
  return std::pow(10.0, 1.0 / kBucketsPerDecade);
}

int Histogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // Underflow; catches NaN too.
  const int i =
      1 + static_cast<int>(std::floor(std::log10(value / kMinValue) *
                                      kBucketsPerDecade));
  return i >= kNumBuckets ? kNumBuckets - 1 : i;
}

double Histogram::BucketUpperBound(int index) {
  if (index <= 0) return kMinValue;
  return kMinValue *
         std::pow(10.0, static_cast<double>(index) / kBucketsPerDecade);
}

void Histogram::Observe(double value) {
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      if (i == kNumBuckets - 1) return max_;  // Overflow bucket.
      return BucketUpperBound(i);
    }
  }
  return max_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

void MetricsRegistry::WritePrometheus(std::ostream& os,
                                      bool include_histograms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) {
    os << "# TYPE " << name << " counter\n" << name << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << "# TYPE " << name << " gauge\n" << name << ' ';
    WriteDouble(os, g.value());
    os << '\n';
  }
  if (!include_histograms) return;
  for (const auto& [name, h] : histograms_) {
    os << "# TYPE " << name << " summary\n";
    for (const double q : {0.5, 0.95, 0.99}) {
      os << name << "{quantile=\"" << (q == 0.5 ? "0.5" : q == 0.95 ? "0.95"
                                                                    : "0.99")
         << "\"} ";
      WriteDouble(os, h.Quantile(q));
      os << '\n';
    }
    os << name << "_sum ";
    WriteDouble(os, h.sum());
    os << '\n' << name << "_count " << h.count() << '\n';
    os << name << "_min ";
    WriteDouble(os, h.min());
    os << '\n' << name << "_max ";
    WriteDouble(os, h.max());
    os << '\n';
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":";
    WriteDouble(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":{\"count\":" << h.count() << ",\"sum\":";
    WriteDouble(os, h.sum());
    os << ",\"min\":";
    WriteDouble(os, h.min());
    os << ",\"max\":";
    WriteDouble(os, h.max());
    os << ",\"p50\":";
    WriteDouble(os, h.Quantile(0.5));
    os << ",\"p95\":";
    WriteDouble(os, h.Quantile(0.95));
    os << ",\"p99\":";
    WriteDouble(os, h.Quantile(0.99));
    os << '}';
  }
  os << "}}\n";
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace obs
}  // namespace disc
