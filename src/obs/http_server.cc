#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "common/socket_util.h"
#include "obs/log.h"

namespace disc {
namespace obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string FormatMillis(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += ReasonPhrase(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

void SendAll(int fd, const std::string& bytes) {
  // Peer going away mid-send leaves nothing useful to do; SendAllBytes
  // already stops on the first failed send.
  [[maybe_unused]] const bool sent =
      SendAllBytes(fd, bytes.data(), bytes.size());
}

HttpResponse JsonError(int status, std::string_view message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.Write("{\"error\":\"");
  response.Write(JsonEscape(message));
  response.Write("\"}\n");
  return response;
}

}  // namespace

// ---------------------------------------------------------------------------
// Impl
// ---------------------------------------------------------------------------

// The listener/self-pipe/bounded-worker plumbing lives in
// common/socket_util.h (shared with the ingest plane); what remains here
// is purely the HTTP protocol: head parsing, routing, serialization.
struct HttpServer::Impl {
  explicit Impl(const HttpServerOptions& opts) : options(opts) {}

  HttpServerOptions options;
  std::unique_ptr<SocketServer> server;

  void HandleConnection(int fd) const;
  HttpResponse Route(std::string_view target) const;
};

void HttpServer::Impl::HandleConnection(int fd) const {
  std::string head;
  head.reserve(512);
  char buf[1024];
  bool oversized = false;
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > options.max_request_bytes) {
      oversized = true;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      // Timeout, reset, or a client that never finished the head: no
      // response owed unless we already know the head is hopeless.
      if (head.empty()) return;
      break;
    }
    head.append(buf, static_cast<std::size_t>(n));
  }
  if (oversized) {
    DISC_LOG(kWarn, "telemetry.http_request_oversized")
        .Num("bytes", head.size())
        .Num("limit", options.max_request_bytes);
    SendAll(fd, SerializeResponse(JsonError(431, "request head too large")));
    return;
  }
  // Request line: METHOD SP TARGET SP HTTP/x.y CRLF
  const std::size_t line_end = head.find("\r\n");
  const std::string line =
      head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0 || sp2 == sp1 + 1) {
    DISC_LOG(kWarn, "telemetry.http_malformed_request")
        .Str("line", line.substr(0, 128));
    SendAll(fd, SerializeResponse(JsonError(400, "malformed request line")));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    SendAll(fd, SerializeResponse(
                    JsonError(405, "only GET is supported")));
    return;
  }
  const std::string payload = SerializeResponse(Route(target));
  if (failpoint::Armed()) {
    // Fault surface for "the kernel took some of our bytes, then the peer
    // vanished": send a torn prefix and abandon the connection. The
    // response object itself was fully built from a consistent registry
    // snapshot, so the *next* scrape must still be byte-clean.
    const std::size_t budget =
        failpoint::HitSendBudget("http.response.send", payload.size());
    if (budget < payload.size()) {
      SendAll(fd, payload.substr(0, budget));
      DISC_LOG(kWarn, "telemetry.http_send_truncated")
          .Num("sent", budget)
          .Num("size", payload.size());
      return;
    }
  }
  SendAll(fd, payload);
}

HttpResponse HttpServer::Impl::Route(std::string_view target) const {
  const std::size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);

  if (target == "/metrics") {
    if (options.metrics == nullptr) {
      return JsonError(503, "no metrics registry bound");
    }
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    std::ostringstream os;
    options.metrics->WritePrometheus(os);
    response.Write(os.str());
    return response;
  }

  if (target == "/metrics.json") {
    if (options.metrics == nullptr) {
      return JsonError(503, "no metrics registry bound");
    }
    HttpResponse response;
    response.content_type = "application/json";
    std::ostringstream os;
    options.metrics->WriteJson(os);
    response.Write(os.str());
    return response;
  }

  if (target == "/healthz") {
    // Per-component readiness. The process is live by construction (it is
    // answering); readiness additionally requires a bound registry, a
    // healthy co-hosted ingest listener when one is bound, and — when an
    // engine is bound — at least one admitted session, so closing the
    // last session flips /healthz to 503.
    std::vector<SessionStatusRow> session_rows;
    if (options.engine != nullptr) {
      session_rows = options.engine->SessionStatus();
    }
    const bool engine_ready = options.engine == nullptr || !session_rows.empty();
    const bool ingest_ready = !options.ingest_ready || options.ingest_ready();
    const bool ready = options.metrics != nullptr && engine_ready &&
                       ingest_ready;
    HttpResponse response;
    response.status = ready ? 200 : 503;
    response.content_type = "application/json";
    response.Write("{\"live\":true,\"ready\":");
    response.Write(ready ? "true" : "false");
    response.Write(",\"components\":{\"engine\":\"");
    response.Write(options.engine == nullptr ? "unbound"
                   : session_rows.empty()            ? "no_sessions"
                                             : "ok");
    response.Write("\",\"ingest\":\"");
    response.Write(!options.ingest_ready ? "unbound"
                   : ingest_ready        ? "ok"
                                         : "not_listening");
    response.Write("\",\"metrics\":\"");
    response.Write(options.metrics == nullptr ? "unbound" : "ok");
    response.Write("\",\"tracer\":\"");
    response.Write(options.tracer == nullptr ? "unbound" : "ok");
    response.Write("\"}}\n");
    return response;
  }

  if (target == "/sessions") {
    HttpResponse response;
    response.content_type = "application/json";
    response.Write("{\"sessions\":[");
    if (options.engine != nullptr) {
      const std::vector<SessionStatusRow> session_rows =
          options.engine->SessionStatus();
      // Creation order straight from the provider — deterministic, and a
      // vector walk, so hash order cannot leak into the wire format.
      bool first = true;
      for (const SessionStatusRow& row : session_rows) {
        if (!first) response.Write(",");
        first = false;
        response.Write("{\"name\":\"");
        response.Write(JsonEscape(row.name));
        response.Write("\",\"id\":");
        response.Write(std::to_string(row.id));
        response.Write(",\"method\":\"");
        response.Write(JsonEscape(row.method));
        response.Write("\",\"window_size\":");
        response.Write(std::to_string(row.window_size));
        response.Write(",\"slides_run\":");
        response.Write(std::to_string(row.slides_run));
        response.Write(",\"queue_depth\":");
        response.Write(std::to_string(row.queue_depth));
        response.Write(",\"watermark_lag_slides\":");
        response.Write(std::to_string(row.watermark_lag_slides));
        response.Write(",\"last_slide_ms\":");
        response.Write(FormatMillis(row.last_slide_ms));
        response.Write("}");
      }
    }
    response.Write("]}\n");
    return response;
  }

  if (target == "/tracez") {
    HttpResponse response;
    response.content_type = "application/json";
    response.Write("{\"spans\":[");
    if (options.tracer != nullptr) {
      const std::vector<CompletedSpan> spans = options.tracer->TailSnapshot();
      bool first = true;
      for (const CompletedSpan& span : spans) {
        if (!first) response.Write(",");
        first = false;
        response.Write("{\"name\":\"");
        response.Write(JsonEscape(span.name == nullptr ? "" : span.name));
        response.Write("\",\"tid\":");
        response.Write(std::to_string(span.tid));
        response.Write(",\"start_us\":");
        response.Write(std::to_string(span.start_us));
        response.Write(",\"dur_us\":");
        response.Write(std::to_string(span.dur_us));
        if (span.num_args > 0) {
          response.Write(",\"args\":{");
          for (std::uint8_t i = 0; i < span.num_args; ++i) {
            if (i > 0) response.Write(",");
            response.Write("\"");
            response.Write(JsonEscape(span.args[i].key));
            response.Write("\":");
            response.Write(std::to_string(span.args[i].value));
          }
          response.Write("}");
        }
        response.Write("}");
      }
    }
    response.Write("]}\n");
    return response;
  }

  return JsonError(404, "unknown route; try /metrics, /metrics.json, "
                        "/healthz, /sessions, /tracez");
}

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

HttpServer::HttpServer(const HttpServerOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  Impl& impl = *impl_;
  if (impl.server != nullptr && impl.server->running()) {
    return Status::Error("telemetry server already running on port " +
                         std::to_string(impl.server->port()));
  }
  SocketServerOptions server_options;
  server_options.name = "telemetry";
  server_options.bind_address = impl.options.bind_address;
  server_options.port = impl.options.port;
  server_options.worker_threads = impl.options.worker_threads;
  server_options.max_queued_connections = impl.options.max_queued_connections;
  server_options.accept_failpoint = "http.accept.conn";
  server_options.handler = [this](int fd) {
    DISC_FAILPOINT("http.worker.handle");
    impl_->HandleConnection(fd);
  };
  server_options.on_overload = [](int fd) {
    SendAll(fd,
            SerializeResponse(JsonError(503, "telemetry server overloaded")));
  };
  auto server = std::make_unique<SocketServer>(std::move(server_options));
  if (Status started = server->Start(); !started.ok()) return started;
  impl.server = std::move(server);
  return Status::Ok();
}

void HttpServer::Stop() {
  if (impl_->server != nullptr) impl_->server->Stop();
}

bool HttpServer::running() const {
  return impl_->server != nullptr && impl_->server->running();
}

std::uint16_t HttpServer::port() const {
  return impl_->server == nullptr ? 0 : impl_->server->port();
}

HttpResponse HttpServer::Handle(std::string_view target) const {
  return impl_->Route(target);
}

// ---------------------------------------------------------------------------
// HttpGet
// ---------------------------------------------------------------------------

std::string HttpGet(std::uint16_t port, const std::string& target,
                    int* status_code) {
  if (status_code != nullptr) *status_code = 0;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::string("socket(): ") + std::strerror(errno);
  SetIoTimeouts(fd, 10);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return "connect(): " + error;
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  SendAll(fd, request);
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return "malformed response: " + raw;
  if (status_code != nullptr && raw.size() > 12 &&
      raw.compare(0, 9, "HTTP/1.1 ") == 0) {
    *status_code = std::atoi(raw.c_str() + 9);
  }
  return raw.substr(head_end + 4);
}

}  // namespace obs
}  // namespace disc
