#include "obs/sinks.h"

#include <cstdio>
#include <ostream>

namespace disc {
namespace obs {

namespace {

void WriteMs(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  os << buf;
}

}  // namespace

void WriteSlideJsonl(std::ostream& os, const SlideReport& report,
                     const DiscMetrics* disc_metrics, bool include_timings) {
  os << "{\"slide\":" << report.slide_index
     << ",\"window\":" << report.window_size
     << ",\"entered\":" << report.entered << ",\"exited\":" << report.exited
     << ",\"relabeled\":" << report.relabeled << ",\"counters\":{"
     << "\"range_searches\":" << report.probes.range_searches
     << ",\"nodes_visited\":" << report.probes.nodes_visited
     << ",\"entries_checked\":" << report.probes.entries_checked
     << ",\"leaf_entries_tested\":" << report.probes.leaf_entries_tested
     << ",\"epoch_pruned\":" << report.probes.epoch_pruned << '}';
  if (disc_metrics != nullptr) {
    const DiscMetrics& m = *disc_metrics;
    os << ",\"disc\":{\"ex_cores\":" << m.num_ex_cores
       << ",\"neo_cores\":" << m.num_neo_cores
       << ",\"ex_groups\":" << m.num_ex_groups
       << ",\"neo_groups\":" << m.num_neo_groups
       << ",\"msbfs_expansions\":" << m.msbfs_expansions
       << ",\"collect_searches\":" << m.collect_searches
       << ",\"cluster_searches\":" << m.cluster_searches
       << ",\"survivor_reconciliations\":" << m.survivor_reconciliations
       << '}';
  }
  if (include_timings) {
    os << ",\"timings_ms\":{\"update\":";
    WriteMs(os, report.update_ms);
    os << ",\"collect\":";
    WriteMs(os, report.phases.collect_ms);
    os << ",\"ex_phase\":";
    WriteMs(os, report.phases.ex_phase_ms);
    os << ",\"neo_phase\":";
    WriteMs(os, report.phases.neo_phase_ms);
    os << ",\"recheck\":";
    WriteMs(os, report.phases.recheck_ms);
    os << ",\"collect_parallel\":";
    WriteMs(os, report.phases.collect_parallel_ms);
    os << ",\"threads\":" << report.phases.threads_used << '}';
  }
  os << "}\n";
}

MetricsObserver::MetricsObserver(MetricsRegistry* registry)
    : MetricsObserver(registry, Options{}) {}

MetricsObserver::MetricsObserver(MetricsRegistry* registry,
                                 const Options& options)
    : registry_(registry), options_(options) {}

bool MetricsObserver::operator()(const SlideReport& report) {
  MetricsRegistry& reg = *registry_;
  reg.counter("disc_slides_total").Add();
  reg.counter("disc_points_entered_total").Add(report.entered);
  reg.counter("disc_points_exited_total").Add(report.exited);
  reg.counter("disc_points_relabeled_total").Add(report.relabeled);
  reg.counter("disc_probe_range_searches_total")
      .Add(report.probes.range_searches);
  reg.counter("disc_probe_nodes_visited_total")
      .Add(report.probes.nodes_visited);
  reg.counter("disc_probe_entries_checked_total")
      .Add(report.probes.entries_checked);
  reg.counter("disc_probe_leaf_entries_tested_total")
      .Add(report.probes.leaf_entries_tested);
  reg.counter("disc_probe_epoch_pruned_total").Add(report.probes.epoch_pruned);
  reg.gauge("disc_window_size").Set(static_cast<double>(report.window_size));
  reg.gauge("disc_threads_used")
      .Set(static_cast<double>(report.phases.threads_used));
  reg.histogram("disc_update_ms").Observe(report.update_ms);
  reg.histogram("disc_collect_ms").Observe(report.phases.collect_ms);
  reg.histogram("disc_ex_phase_ms").Observe(report.phases.ex_phase_ms);
  reg.histogram("disc_neo_phase_ms").Observe(report.phases.neo_phase_ms);
  reg.histogram("disc_recheck_ms").Observe(report.phases.recheck_ms);
  if (options_.disc_metrics != nullptr) {
    const DiscMetrics& m = *options_.disc_metrics;
    reg.counter("disc_ex_cores_total").Add(m.num_ex_cores);
    reg.counter("disc_neo_cores_total").Add(m.num_neo_cores);
    reg.counter("disc_ex_groups_total").Add(m.num_ex_groups);
    reg.counter("disc_neo_groups_total").Add(m.num_neo_groups);
    reg.counter("disc_msbfs_expansions_total").Add(m.msbfs_expansions);
    reg.counter("disc_collect_searches_total").Add(m.collect_searches);
    reg.counter("disc_cluster_searches_total").Add(m.cluster_searches);
    reg.counter("disc_survivor_reconciliations_total")
        .Add(m.survivor_reconciliations);
  }
  if (options_.jsonl != nullptr) {
    WriteSlideJsonl(*options_.jsonl, report, options_.disc_metrics,
                    options_.jsonl_timings);
  }
  return true;
}

StreamingPipeline::Observer MetricsObserver::AsObserver() {
  return [this](const SlideReport& report) { return (*this)(report); };
}

}  // namespace obs
}  // namespace disc
