#include "eval/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace disc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::ToText() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(width[c], '-') + "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) os << ",";
    os << header_[c];
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace disc
