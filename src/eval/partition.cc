#include "eval/partition.h"

#include <algorithm>

namespace disc {

Labeling ToLabeling(const ClusteringSnapshot& snap) {
  Labeling l;
  l.cid.reserve(snap.size());
  l.category.reserve(snap.size());
  for (std::size_t i = 0; i < snap.size(); ++i) {
    l.cid[snap.ids[i]] = snap.cids[i];
    l.category[snap.ids[i]] = snap.categories[i];
  }
  return l;
}

void Canonicalize(const ClusteringSnapshot& snap, std::vector<PointId>* ids,
                  std::vector<ClusterId>* cids) {
  std::vector<std::size_t> order(snap.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return snap.ids[a] < snap.ids[b];
  });
  std::unordered_map<ClusterId, ClusterId> rename;
  ids->clear();
  cids->clear();
  ids->reserve(order.size());
  cids->reserve(order.size());
  for (std::size_t i : order) {
    ids->push_back(snap.ids[i]);
    const ClusterId c = snap.cids[i];
    if (c == kNoiseCluster) {
      cids->push_back(kNoiseCluster);
      continue;
    }
    auto [it, inserted] =
        rename.emplace(c, static_cast<ClusterId>(rename.size()));
    cids->push_back(it->second);
  }
}

std::vector<ClusterId> LabelsFor(const ClusteringSnapshot& snap,
                                 const std::vector<PointId>& ids) {
  std::unordered_map<PointId, ClusterId> map;
  map.reserve(snap.size());
  for (std::size_t i = 0; i < snap.size(); ++i) map[snap.ids[i]] = snap.cids[i];
  std::vector<ClusterId> out;
  out.reserve(ids.size());
  for (PointId id : ids) {
    auto it = map.find(id);
    out.push_back(it == map.end() ? kNoiseCluster : it->second);
  }
  return out;
}

}  // namespace disc
