#ifndef DISC_EVAL_ARI_H_
#define DISC_EVAL_ARI_H_

#include <vector>

#include "stream/stream_clusterer.h"

namespace disc {

// Adjusted Rand Index of two labelings of the same points (Hubert & Arabie
// 1985), the quality metric of the paper's Figs. 9 and 10. Values range from
// about -1 to 1; 1 means identical partitions. Noise (kNoiseCluster) is
// treated as one ordinary cluster. Returns 1.0 when both labelings are
// trivially equal (e.g., empty input or both single-cluster).
double AdjustedRandIndex(const std::vector<ClusterId>& a,
                         const std::vector<ClusterId>& b);

}  // namespace disc

#endif  // DISC_EVAL_ARI_H_
