#include "eval/equivalence.h"

#include <sstream>
#include <unordered_map>

#include "eval/partition.h"
#include "index/grid_index.h"

namespace disc {

namespace {

EquivalenceResult Fail(const std::string& message) {
  return EquivalenceResult{false, message};
}

std::string IdStr(PointId id) {
  std::ostringstream os;
  os << "point " << id;
  return os.str();
}

}  // namespace

EquivalenceResult CheckSameClustering(const ClusteringSnapshot& a,
                                      const ClusteringSnapshot& b,
                                      const std::vector<Point>& points,
                                      double eps) {
  if (a.size() != b.size()) {
    return Fail("snapshots differ in size: " + std::to_string(a.size()) +
                " vs " + std::to_string(b.size()));
  }
  const Labeling la = ToLabeling(a);
  const Labeling lb = ToLabeling(b);

  // 1. Same ids, same categories.
  for (const auto& [id, cat] : la.category) {
    auto it = lb.category.find(id);
    if (it == lb.category.end()) {
      return Fail(IdStr(id) + " missing from second snapshot");
    }
    if (it->second != cat) {
      return Fail(IdStr(id) + " category differs: " +
                  std::to_string(static_cast<int>(cat)) + " vs " +
                  std::to_string(static_cast<int>(it->second)));
    }
  }

  // 2. Core partition must be bijective between the two labelings.
  std::unordered_map<ClusterId, ClusterId> a_to_b;
  std::unordered_map<ClusterId, ClusterId> b_to_a;
  for (const auto& [id, cat] : la.category) {
    if (cat != Category::kCore) continue;
    const ClusterId ca = la.cid.at(id);
    const ClusterId cb = lb.cid.at(id);
    if (ca == kNoiseCluster || cb == kNoiseCluster) {
      return Fail(IdStr(id) + " is a core without a cluster id");
    }
    auto [ita, ins_a] = a_to_b.emplace(ca, cb);
    if (!ins_a && ita->second != cb) {
      return Fail(IdStr(id) + " breaks core-partition mapping (A side)");
    }
    auto [itb, ins_b] = b_to_a.emplace(cb, ca);
    if (!ins_b && itb->second != ca) {
      return Fail(IdStr(id) + " breaks core-partition mapping (B side)");
    }
  }

  // 3. Border labels must be justified by an adjacent core in each snapshot.
  std::unordered_map<PointId, const Point*> coords;
  coords.reserve(points.size());
  for (const Point& p : points) coords[p.id] = &p;
  const std::uint32_t dims = points.empty() ? 2 : points[0].dims;
  GridIndex cores_index(dims, eps);
  for (const Point& p : points) {
    auto it = la.category.find(p.id);
    if (it != la.category.end() && it->second == Category::kCore) {
      cores_index.Insert(p);
    }
  }
  for (const auto& [id, cat] : la.category) {
    if (cat != Category::kBorder) continue;
    auto cit = coords.find(id);
    if (cit == coords.end()) {
      return Fail(IdStr(id) + " not present in the window point list");
    }
    const Point& p = *cit->second;
    const ClusterId ca = la.cid.at(id);
    const ClusterId cb = lb.cid.at(id);
    if (ca == kNoiseCluster || cb == kNoiseCluster) {
      return Fail(IdStr(id) + " is a border without a cluster id");
    }
    bool justified_a = false;
    bool justified_b = false;
    cores_index.RangeSearch(p, eps, [&](PointId qid, const Point&) {
      if (qid == id) return;
      if (la.cid.at(qid) == ca) justified_a = true;
      if (lb.cid.at(qid) == cb) justified_b = true;
    });
    if (!justified_a) {
      return Fail(IdStr(id) + " border label unjustified in first snapshot");
    }
    if (!justified_b) {
      return Fail(IdStr(id) + " border label unjustified in second snapshot");
    }
  }
  return EquivalenceResult{};
}

}  // namespace disc
