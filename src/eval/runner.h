#ifndef DISC_EVAL_RUNNER_H_
#define DISC_EVAL_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stream/stream_clusterer.h"
#include "stream/stream_source.h"

namespace disc {

// A pre-generated stream prefix, so every method measured in a figure is
// driven by the identical point sequence.
struct StreamData {
  std::vector<LabeledPoint> points;
  std::size_t window = 0;
  std::size_t stride = 0;

  std::size_t num_slides() const { return points.size() / stride; }
  // Slides needed before the window is full.
  std::size_t fill_slides() const { return (window + stride - 1) / stride; }
};

// Pulls window-fill + (warmup + measured) strides from the source.
StreamData MakeStreamData(StreamSource& source, std::size_t window,
                          std::size_t stride, int warmup_slides,
                          int measured_slides);

// Measurement knobs for RunMethod.
struct MeasureOptions {
  // Extra settle slides after the window fills and before timing starts.
  int warmup_slides = 1;
  // Per-update range-search counter (e.g., [&] { return m.last_metrics()
  // .range_searches; }); leave empty when the method has none.
  std::function<std::uint64_t()> searches_probe;
  // Average ARI of the method's snapshots against the generator's true
  // labels over the measured slides.
  bool ari_vs_truth = false;
  // Reference snapshots (one per measured slide, e.g., from DbscanReference)
  // to ARI against — the paper's Fig. 10 protocol.
  const std::vector<ClusteringSnapshot>* reference_snapshots = nullptr;
};

// Aggregated per-method measurements over the measured slides.
struct MethodStats {
  std::string name;
  std::size_t measured_slides = 0;
  double avg_update_ms = 0.0;       // Mean elapsed time per slide.
  double per_point_latency_us = 0.0;  // avg_update_ms / stride, in usec.
  double avg_range_searches = 0.0;
  double avg_ari_truth = 0.0;
  double avg_ari_reference = 0.0;
  // Companion quality metrics (eval/quality.h), averaged over the measured
  // slides against the same labels as the corresponding ARI.
  double avg_purity_truth = 0.0;
  double avg_nmi_truth = 0.0;
  double avg_purity_reference = 0.0;
  double avg_nmi_reference = 0.0;
};

// Replays `data` through `method`: fill + warmup slides untimed, remaining
// slides timed. Snapshot extraction is excluded from the timings.
MethodStats RunMethod(const StreamData& data, StreamClusterer* method,
                      const MeasureOptions& options);

// Fresh-DBSCAN snapshots for each measured slide of `data` (used as the ARI
// reference for datasets without ground truth, per the paper's Sec. VI-E).
std::vector<ClusteringSnapshot> DbscanReference(const StreamData& data,
                                                double eps, std::uint32_t tau,
                                                int warmup_slides);

}  // namespace disc

#endif  // DISC_EVAL_RUNNER_H_
