#ifndef DISC_EVAL_EQUIVALENCE_H_
#define DISC_EVAL_EQUIVALENCE_H_

#include <string>
#include <vector>

#include "common/point.h"
#include "stream/stream_clusterer.h"

namespace disc {

// Result of an exactness comparison. `ok` is true when the two snapshots
// describe the same DBSCAN clustering; otherwise `error` names the first
// discrepancy found.
struct EquivalenceResult {
  bool ok = true;
  std::string error;
};

// Verifies that two snapshots over the same window are the *same* DBSCAN
// clustering in the sense of the paper's exactness claim:
//  1. identical point sets and identical {core, border, noise} categories;
//  2. identical partitions of the core points into clusters;
//  3. every border point is labeled with the cluster of one of its
//     eps-adjacent cores in *both* snapshots (DBSCAN leaves the choice among
//     adjacent clusters to visit order, so differing border cids are legal
//     as long as each is justified by an adjacent core).
// `points` must contain the window contents (used for the adjacency checks).
EquivalenceResult CheckSameClustering(const ClusteringSnapshot& a,
                                      const ClusteringSnapshot& b,
                                      const std::vector<Point>& points,
                                      double eps);

}  // namespace disc

#endif  // DISC_EVAL_EQUIVALENCE_H_
