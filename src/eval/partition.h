#ifndef DISC_EVAL_PARTITION_H_
#define DISC_EVAL_PARTITION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/stream_clusterer.h"

namespace disc {

// A labeling keyed by point id, convenient for comparing snapshots whose
// iteration orders differ.
struct Labeling {
  std::unordered_map<PointId, ClusterId> cid;
  std::unordered_map<PointId, Category> category;
};

// Converts a snapshot into a Labeling.
Labeling ToLabeling(const ClusteringSnapshot& snap);

// Renumbers cluster ids to 0..k-1 in order of first appearance when ids are
// sorted by point id, so equal partitions produce equal vectors. Noise stays
// kNoiseCluster. Returns (sorted ids, canonical cids).
void Canonicalize(const ClusteringSnapshot& snap, std::vector<PointId>* ids,
                  std::vector<ClusterId>* cids);

// Extracts the cluster labels of `snap` ordered by the given point ids.
// Points missing from the snapshot get kNoiseCluster.
std::vector<ClusterId> LabelsFor(const ClusteringSnapshot& snap,
                                 const std::vector<PointId>& ids);

}  // namespace disc

#endif  // DISC_EVAL_PARTITION_H_
