#include "eval/ari.h"

#include <cassert>
#include <unordered_map>

namespace disc {

namespace {

double Choose2(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

double AdjustedRandIndex(const std::vector<ClusterId>& a,
                         const std::vector<ClusterId>& b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  if (n == 0) return 1.0;

  // Contingency table via a hash over (label_a, label_b).
  std::unordered_map<ClusterId, std::unordered_map<ClusterId, std::int64_t>>
      table;
  std::unordered_map<ClusterId, std::int64_t> row_sum;
  std::unordered_map<ClusterId, std::int64_t> col_sum;
  for (std::size_t i = 0; i < n; ++i) {
    ++table[a[i]][b[i]];
    ++row_sum[a[i]];
    ++col_sum[b[i]];
  }

  double sum_ij = 0.0;
  for (const auto& [ra, row] : table) {
    for (const auto& [cb, count] : row) {
      sum_ij += Choose2(static_cast<double>(count));
    }
  }
  double sum_a = 0.0;
  for (const auto& [ra, count] : row_sum) {
    sum_a += Choose2(static_cast<double>(count));
  }
  double sum_b = 0.0;
  for (const auto& [cb, count] : col_sum) {
    sum_b += Choose2(static_cast<double>(count));
  }

  const double total = Choose2(static_cast<double>(n));
  const double expected = sum_a * sum_b / total;
  const double max_index = (sum_a + sum_b) / 2.0;
  if (max_index == expected) return 1.0;  // Both partitions trivial.
  return (sum_ij - expected) / (max_index - expected);
}

}  // namespace disc
