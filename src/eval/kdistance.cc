#include "eval/kdistance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "index/rtree.h"

namespace disc {

std::vector<double> KDistanceGraph(const std::vector<Point>& points,
                                   std::uint32_t k, std::size_t sample,
                                   std::uint64_t seed) {
  std::vector<double> graph;
  if (points.empty() || k == 0) return graph;
  const std::uint32_t dims = points[0].dims;
  RTree tree(dims);
  tree.BulkLoad(points);

  // Choose the evaluation subset.
  std::vector<std::size_t> chosen;
  if (sample == 0 || sample >= points.size()) {
    chosen.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) chosen[i] = i;
  } else {
    Rng rng(seed);
    chosen.reserve(sample);
    for (std::size_t i = 0; i < sample; ++i) {
      chosen.push_back(static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(points.size()) - 1)));
    }
  }

  graph.reserve(chosen.size());
  for (std::size_t idx : chosen) {
    // k+1 because the query point itself is returned at distance 0.
    const std::vector<RTree::Neighbor> nn =
        tree.NearestNeighbors(points[idx], k + 1);
    if (nn.size() == k + 1) {
      graph.push_back(nn.back().distance);
    } else if (!nn.empty()) {
      graph.push_back(nn.back().distance);  // Fewer than k other points.
    }
  }
  std::sort(graph.begin(), graph.end());
  return graph;
}

std::size_t KneeIndex(const std::vector<double>& curve) {
  if (curve.size() < 3) return 0;
  const double x0 = 0.0;
  const double y0 = curve.front();
  const double x1 = static_cast<double>(curve.size() - 1);
  const double y1 = curve.back();
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  const double norm = std::sqrt(dx * dx + dy * dy);
  if (norm == 0.0) return curve.size() / 2;
  std::size_t best = 0;
  double best_dist = -1.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    // Perpendicular distance from (i, curve[i]) to the chord.
    const double d =
        std::abs(dy * (static_cast<double>(i) - x0) - dx * (curve[i] - y0)) /
        norm;
    if (d > best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

ParameterSuggestion SuggestParameters(const std::vector<Point>& points,
                                      std::uint32_t k, std::size_t sample) {
  ParameterSuggestion suggestion;
  suggestion.tau = k + 1;
  const std::vector<double> graph = KDistanceGraph(points, k, sample);
  if (graph.empty()) return suggestion;
  suggestion.eps = graph[KneeIndex(graph)];
  return suggestion;
}

}  // namespace disc
