#ifndef DISC_EVAL_QUALITY_H_
#define DISC_EVAL_QUALITY_H_

#include <vector>

#include "stream/stream_clusterer.h"

namespace disc {

// Clustering-quality metrics beyond ARI, as used across the stream-clustering
// comparison literature (e.g., Carnein et al., ref. [38] of the paper). All
// take two labelings of the same points, aligned by index: `predicted` vs
// `truth`. Noise (kNoiseCluster) is treated as one ordinary label, matching
// eval/ari.h.

// Fraction of points whose predicted cluster's majority-truth label matches
// their own truth label. In [0, 1]; 1 iff every predicted cluster is pure.
double Purity(const std::vector<ClusterId>& predicted,
              const std::vector<ClusterId>& truth);

// Normalized mutual information: I(P;T) / sqrt(H(P) * H(T)). In [0, 1];
// 1 for identical partitions; defined as 1 when both are single-cluster and
// 0 when exactly one is trivial.
double NormalizedMutualInformation(const std::vector<ClusterId>& predicted,
                                   const std::vector<ClusterId>& truth);

// Precision/recall/F1 over point pairs: a pair is positive when both points
// share a cluster. The classic pair-counting view of clustering accuracy.
struct PairCounts {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
PairCounts PairwiseF1(const std::vector<ClusterId>& predicted,
                      const std::vector<ClusterId>& truth);

}  // namespace disc

#endif  // DISC_EVAL_QUALITY_H_
