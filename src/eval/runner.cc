#include "eval/runner.h"

#include <cassert>

#include "baselines/dbscan.h"
#include "common/timer.h"
#include "eval/ari.h"
#include "eval/quality.h"
#include "eval/partition.h"
#include "stream/sliding_window.h"

namespace disc {

StreamData MakeStreamData(StreamSource& source, std::size_t window,
                          std::size_t stride, int warmup_slides,
                          int measured_slides) {
  StreamData data;
  data.window = window;
  data.stride = stride;
  const std::size_t fill = (window + stride - 1) / stride;
  const std::size_t total =
      (fill + static_cast<std::size_t>(warmup_slides) +
       static_cast<std::size_t>(measured_slides)) *
      stride;
  data.points = source.NextBatch(total);
  return data;
}

namespace {

// Ids of the points in the window right after slide `s` (0-based).
std::vector<Point> StrideSlice(const StreamData& data, std::size_t slide) {
  std::vector<Point> out;
  out.reserve(data.stride);
  for (std::size_t i = slide * data.stride; i < (slide + 1) * data.stride;
       ++i) {
    out.push_back(data.points[i].point);
  }
  return out;
}

}  // namespace

MethodStats RunMethod(const StreamData& data, StreamClusterer* method,
                      const MeasureOptions& options) {
  MethodStats stats;
  stats.name = method->name();
  CountBasedWindow window(data.window, data.stride);
  const std::size_t total_slides = data.num_slides();
  const std::size_t timed_from =
      data.fill_slides() + static_cast<std::size_t>(options.warmup_slides);
  assert(timed_from < total_slides);

  double total_ms = 0.0;
  double total_searches = 0.0;
  double total_ari_truth = 0.0;
  double total_ari_ref = 0.0;
  double total_purity_truth = 0.0;
  double total_nmi_truth = 0.0;
  double total_purity_ref = 0.0;
  double total_nmi_ref = 0.0;
  std::size_t measured = 0;

  for (std::size_t s = 0; s < total_slides; ++s) {
    WindowDelta delta = window.Advance(StrideSlice(data, s));
    const bool timed = s >= timed_from;
    Timer timer;
    method->Update(delta.incoming, delta.outgoing);
    const double ms = timer.ElapsedMillis();
    if (!timed) continue;
    total_ms += ms;
    if (options.searches_probe) {
      total_searches += static_cast<double>(options.searches_probe());
    }
    if (options.ari_vs_truth || options.reference_snapshots != nullptr) {
      const ClusteringSnapshot snap = method->Snapshot();
      std::vector<PointId> ids;
      ids.reserve(window.contents().size());
      for (const Point& p : window.contents()) ids.push_back(p.id);
      const std::vector<ClusterId> labels = LabelsFor(snap, ids);
      if (options.ari_vs_truth) {
        std::vector<ClusterId> truth;
        truth.reserve(ids.size());
        const std::size_t base = (s + 1) * data.stride - window.contents().size();
        for (std::size_t i = 0; i < ids.size(); ++i) {
          truth.push_back(data.points[base + i].true_label);
        }
        total_ari_truth += AdjustedRandIndex(labels, truth);
        total_purity_truth += Purity(labels, truth);
        total_nmi_truth += NormalizedMutualInformation(labels, truth);
      }
      if (options.reference_snapshots != nullptr) {
        const std::size_t ref_idx = measured;
        assert(ref_idx < options.reference_snapshots->size());
        const std::vector<ClusterId> ref_labels =
            LabelsFor((*options.reference_snapshots)[ref_idx], ids);
        total_ari_ref += AdjustedRandIndex(labels, ref_labels);
        total_purity_ref += Purity(labels, ref_labels);
        total_nmi_ref += NormalizedMutualInformation(labels, ref_labels);
      }
    }
    ++measured;
  }

  stats.measured_slides = measured;
  if (measured > 0) {
    stats.avg_update_ms = total_ms / static_cast<double>(measured);
    stats.per_point_latency_us =
        stats.avg_update_ms * 1000.0 / static_cast<double>(data.stride);
    stats.avg_range_searches = total_searches / static_cast<double>(measured);
    stats.avg_ari_truth = total_ari_truth / static_cast<double>(measured);
    stats.avg_ari_reference = total_ari_ref / static_cast<double>(measured);
    stats.avg_purity_truth = total_purity_truth / static_cast<double>(measured);
    stats.avg_nmi_truth = total_nmi_truth / static_cast<double>(measured);
    stats.avg_purity_reference =
        total_purity_ref / static_cast<double>(measured);
    stats.avg_nmi_reference = total_nmi_ref / static_cast<double>(measured);
  }
  return stats;
}

std::vector<ClusteringSnapshot> DbscanReference(const StreamData& data,
                                                double eps, std::uint32_t tau,
                                                int warmup_slides) {
  std::vector<ClusteringSnapshot> refs;
  CountBasedWindow window(data.window, data.stride);
  const std::size_t total_slides = data.num_slides();
  const std::size_t timed_from =
      data.fill_slides() + static_cast<std::size_t>(warmup_slides);
  for (std::size_t s = 0; s < total_slides; ++s) {
    window.Advance(StrideSlice(data, s));
    if (s < timed_from) continue;
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    refs.push_back(RunDbscan(contents, eps, tau).snapshot);
  }
  return refs;
}

}  // namespace disc
