#ifndef DISC_EVAL_KDISTANCE_H_
#define DISC_EVAL_KDISTANCE_H_

#include <cstdint>
#include <vector>

#include "common/point.h"

namespace disc {

// K-distance graph utilities — the eps-selection method the paper uses for
// GeoLife/COVID/IRIS ("we adopted the parameter settings used by the
// previous work based on a K-distance graph [13], [19]").

// Distance from each (sampled) point to its k-th nearest *other* point,
// sorted ascending. `sample` caps how many points are evaluated (0 = all);
// sampling keeps the tool usable on large windows.
std::vector<double> KDistanceGraph(const std::vector<Point>& points,
                                   std::uint32_t k, std::size_t sample = 0,
                                   std::uint64_t seed = 1);

// Index of the "knee" of an ascending curve: the point with maximum distance
// below the chord from first to last value. Returns 0 for curves shorter
// than 3 points.
std::size_t KneeIndex(const std::vector<double>& curve);

// Suggested DBSCAN/DISC parameters for a dataset: eps at the knee of the
// k-distance graph, and the matching density threshold tau = k + 1 (this
// library counts the point itself in its neighborhood).
struct ParameterSuggestion {
  double eps = 0.0;
  std::uint32_t tau = 0;
};
ParameterSuggestion SuggestParameters(const std::vector<Point>& points,
                                      std::uint32_t k,
                                      std::size_t sample = 2000);

}  // namespace disc

#endif  // DISC_EVAL_KDISTANCE_H_
