#ifndef DISC_EVAL_TABLE_H_
#define DISC_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace disc {

// Minimal aligned-text table used by the benchmark binaries to print the
// rows/series of each paper figure, plus a CSV dump for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience for mixed numeric rows.
  static std::string Num(double v, int precision = 3);

  // Aligned, human-readable rendering.
  std::string ToText() const;

  // Comma-separated rendering (header + rows).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace disc

#endif  // DISC_EVAL_TABLE_H_
