#include "eval/quality.h"

#include <cassert>
#include <cmath>
#include <unordered_map>

namespace disc {

namespace {

using Contingency =
    std::unordered_map<ClusterId, std::unordered_map<ClusterId, double>>;

Contingency BuildContingency(const std::vector<ClusterId>& a,
                             const std::vector<ClusterId>& b,
                             std::unordered_map<ClusterId, double>* row_sums,
                             std::unordered_map<ClusterId, double>* col_sums) {
  Contingency table;
  for (std::size_t i = 0; i < a.size(); ++i) {
    table[a[i]][b[i]] += 1.0;
    (*row_sums)[a[i]] += 1.0;
    (*col_sums)[b[i]] += 1.0;
  }
  return table;
}

double Choose2(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

double Purity(const std::vector<ClusterId>& predicted,
              const std::vector<ClusterId>& truth) {
  assert(predicted.size() == truth.size());
  if (predicted.empty()) return 1.0;
  std::unordered_map<ClusterId, double> rows, cols;
  const Contingency table = BuildContingency(predicted, truth, &rows, &cols);
  double majority_total = 0.0;
  for (const auto& [cluster, row] : table) {
    double majority = 0.0;
    for (const auto& [label, count] : row) {
      if (count > majority) majority = count;
    }
    majority_total += majority;
  }
  return majority_total / static_cast<double>(predicted.size());
}

double NormalizedMutualInformation(const std::vector<ClusterId>& predicted,
                                   const std::vector<ClusterId>& truth) {
  assert(predicted.size() == truth.size());
  const double n = static_cast<double>(predicted.size());
  if (predicted.empty()) return 1.0;
  std::unordered_map<ClusterId, double> rows, cols;
  const Contingency table = BuildContingency(predicted, truth, &rows, &cols);

  double h_p = 0.0, h_t = 0.0, mi = 0.0;
  for (const auto& [cluster, count] : rows) {
    const double p = count / n;
    h_p -= p * std::log(p);
  }
  for (const auto& [label, count] : cols) {
    const double p = count / n;
    h_t -= p * std::log(p);
  }
  for (const auto& [cluster, row] : table) {
    for (const auto& [label, count] : row) {
      const double p_joint = count / n;
      const double p_row = rows.at(cluster) / n;
      const double p_col = cols.at(label) / n;
      mi += p_joint * std::log(p_joint / (p_row * p_col));
    }
  }
  if (h_p == 0.0 && h_t == 0.0) return 1.0;  // Both trivial partitions.
  if (h_p == 0.0 || h_t == 0.0) return 0.0;  // Exactly one trivial.
  return mi / std::sqrt(h_p * h_t);
}

PairCounts PairwiseF1(const std::vector<ClusterId>& predicted,
                      const std::vector<ClusterId>& truth) {
  assert(predicted.size() == truth.size());
  PairCounts out;
  std::unordered_map<ClusterId, double> rows, cols;
  const Contingency table = BuildContingency(predicted, truth, &rows, &cols);

  double both = 0.0;  // Pairs clustered together in both labelings.
  for (const auto& [cluster, row] : table) {
    for (const auto& [label, count] : row) both += Choose2(count);
  }
  double in_predicted = 0.0, in_truth = 0.0;
  for (const auto& [cluster, count] : rows) in_predicted += Choose2(count);
  for (const auto& [label, count] : cols) in_truth += Choose2(count);

  out.precision = in_predicted > 0.0 ? both / in_predicted : 1.0;
  out.recall = in_truth > 0.0 ? both / in_truth : 1.0;
  out.f1 = (out.precision + out.recall) > 0.0
               ? 2.0 * out.precision * out.recall /
                     (out.precision + out.recall)
               : 0.0;
  return out;
}

}  // namespace disc
