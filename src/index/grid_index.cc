#include "index/grid_index.h"

#include <cassert>
#include <cmath>

namespace disc {

GridIndex::GridIndex(std::uint32_t dims, double cell_side)
    : dims_(dims), cell_side_(cell_side) {
  assert(dims >= 1 && dims <= static_cast<std::uint32_t>(kMaxDims));
  assert(cell_side > 0.0);
}

CellCoord GridIndex::CellOf(const Point& p) const {
  CellCoord cc;
  cc.dims = dims_;
  for (std::uint32_t i = 0; i < dims_; ++i) {
    cc.c[i] = static_cast<std::int64_t>(std::floor(p.x[i] / cell_side_));
  }
  return cc;
}

void GridIndex::Insert(const Point& p) {
  assert(p.dims == dims_);
  cells_[CellOf(p)].push_back(p);
  ++size_;
}

bool GridIndex::Delete(const Point& p) {
  auto it = cells_.find(CellOf(p));
  if (it == cells_.end()) return false;
  std::vector<Point>& pts = it->second;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].id == p.id) {
      pts[i] = pts.back();
      pts.pop_back();
      if (pts.empty()) cells_.erase(it);
      --size_;
      return true;
    }
  }
  return false;
}

void GridIndex::RangeSearch(const Point& center, double eps,
                            const Visitor& visit) const {
  const double eps2 = eps * eps;
  const auto radius =
      static_cast<std::int64_t>(std::ceil(eps / cell_side_));
  ForEachNeighborCell(
      CellOf(center), radius,
      [&](const CellCoord&, const std::vector<Point>& pts) {
        for (const Point& p : pts) {
          if (SquaredDistance(p, center) <= eps2) visit(p.id, p);
        }
      });
}

std::size_t GridIndex::RangeCount(const Point& center, double eps) const {
  std::size_t n = 0;
  RangeSearch(center, eps, [&](PointId, const Point&) { ++n; });
  return n;
}

void GridIndex::ForEachNeighborCell(const CellCoord& cell, std::int64_t radius,
                                    const CellVisitor& visit) const {
  // Iterate the (2*radius+1)^dims neighborhood with an odometer.
  std::array<std::int64_t, kMaxDims> offset{};
  for (std::uint32_t i = 0; i < dims_; ++i) offset[i] = -radius;
  while (true) {
    CellCoord cc;
    cc.dims = dims_;
    for (std::uint32_t i = 0; i < dims_; ++i) cc.c[i] = cell.c[i] + offset[i];
    auto it = cells_.find(cc);
    if (it != cells_.end()) visit(cc, it->second);
    // Advance odometer.
    std::uint32_t d = 0;
    while (d < dims_) {
      if (++offset[d] <= radius) break;
      offset[d] = -radius;
      ++d;
    }
    if (d == dims_) break;
  }
}

void GridIndex::ForEachCell(const CellVisitor& visit) const {
  for (const auto& [coord, pts] : cells_) visit(coord, pts);
}

const std::vector<Point>* GridIndex::CellContents(const CellCoord& cell) const {
  auto it = cells_.find(cell);
  return it == cells_.end() ? nullptr : &it->second;
}

}  // namespace disc
