#ifndef DISC_INDEX_RTREE_H_
#define DISC_INDEX_RTREE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/point.h"
#include "common/thread_annotations.h"

namespace disc {

// Axis-aligned bounding box over the first `dims` coordinates (the
// dimensionality is carried by the owning RTree).
struct Rect {
  std::array<double, kMaxDims> lo{};
  std::array<double, kMaxDims> hi{};
};

// Statistics about index probes, used to reproduce the paper's range-search
// counts (Fig. 7) and to quantify the benefit of epoch-based probing: the
// drill-down counters explain the Fig. 8 ablation from counts instead of
// wall-clock (leaf entries actually distance-tested, and entries whose
// subtree an epoch check pruned away).
struct RTreeStats {
  std::uint64_t range_searches = 0;
  std::uint64_t nodes_visited = 0;
  std::uint64_t entries_checked = 0;
  // Leaf entries whose point was distance-tested against the query.
  std::uint64_t leaf_entries_tested = 0;
  // Entries (leaf points or whole subtrees) skipped because their epoch was
  // already at the current tick — Algorithm 4's pruning, the quantity the
  // use_epoch_probing toggle trades probes for.
  std::uint64_t epoch_pruned = 0;

  void Reset() { *this = RTreeStats{}; }

  // Folds another accumulator in — used to merge per-thread counters from
  // concurrent read-only searches back into the tree's shared statistics.
  void MergeFrom(const RTreeStats& other) {
    range_searches += other.range_searches;
    nodes_visited += other.nodes_visited;
    entries_checked += other.entries_checked;
    leaf_entries_tested += other.leaf_entries_tested;
    epoch_pruned += other.epoch_pruned;
  }
};

// Node-splitting heuristic used on overflow.
enum class SplitPolicy {
  kQuadratic,  // Guttman '84: seeds with maximal dead area (default).
  kRStar,      // Beckmann et al. '90: min-margin axis, min-overlap split.
};

// In-memory R-tree over points with configurable node splitting, deletion
// with subtree re-insertion, epsilon-range search, k-nearest-neighbor
// search, STR bulk loading, and the paper's epoch-based probing
// (Algorithm 4): every entry carries an epoch; a search running under tick T
// skips entries whose epoch >= T, and on backtracking each internal entry's
// epoch is restored to the minimum of its child entries' epochs.
//
// The tree is not thread-safe. Ids must be unique among indexed points.
class RTree {
 public:
  // Callback for range searches. Receives the id and coordinates of each
  // point within the query ball.
  using Visitor = std::function<void(PointId, const Point&)>;

  // Callback for epoch-probed searches. Returns true if the visited leaf
  // entry should be marked with the current tick (i.e., excluded from all
  // later searches under the same tick).
  using MarkingVisitor = std::function<bool(PointId, const Point&)>;

  explicit RTree(std::uint32_t dims, int max_entries = 16,
                 SplitPolicy split_policy = SplitPolicy::kQuadratic);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // Inserts p. Behaviour is undefined if a point with the same id is already
  // present (the tree does not deduplicate ids).
  void Insert(const Point& p) EXCLUDES(probe_region_);

  // Builds the tree from `points` using Sort-Tile-Recursive packing — much
  // faster and better-packed than repeated Insert for a static load. The
  // tree must be empty. Subsequent Insert/Delete calls work normally.
  void BulkLoad(std::vector<Point> points) EXCLUDES(probe_region_);

  // Removes the point with p's id located at p's coordinates. Returns false
  // if no such point exists.
  bool Delete(const Point& p) EXCLUDES(probe_region_);

  // Removes every point. Tick counter and statistics are preserved.
  void Clear() EXCLUDES(probe_region_);

  // Visits every indexed point within Euclidean distance eps of center.
  void RangeSearch(const Point& center, double eps, const Visitor& visit) const;

  // Re-entrant variant for concurrent readers: probe counters accumulate
  // into *stats instead of the tree's shared counters. As long as the tree
  // is not mutated (and no epoch-probed search runs — it writes entry
  // epochs), any number of threads may call this at once, each with its own
  // accumulator; merge the accumulators into stats() afterwards if the
  // global counts should reflect the probes. This is the *tick-free probe
  // mode* the parallel CLUSTER stage relies on; hold a ConcurrentProbeScope
  // around the fan-out to have the contract machine-checked.
  void RangeSearch(const Point& center, double eps, const Visitor& visit,
                   RTreeStats* stats) const;

  // RAII marker of a tick-free concurrent probe region (the parallel
  // COLLECT/CLUSTER fan-outs). While at least one scope is alive, any number
  // of threads may run the stats-accumulating RangeSearch overload; every
  // mutating or epoch-marking call (Insert, Delete, BulkLoad, Clear,
  // EpochRangeSearch, NewTick) asserts in debug builds. The counter is
  // purely a contract check — it adds no synchronization of its own. To
  // Clang's thread-safety analysis the scope reads as a shared hold of the
  // tree's probe_region_ capability, so mutators (EXCLUDES(probe_region_))
  // are rejected at compile time when a scope is provably alive.
  class SCOPED_CAPABILITY ConcurrentProbeScope {
   public:
    explicit ConcurrentProbeScope(const RTree& tree)
        ACQUIRE_SHARED(tree.probe_region_)
        : tree_(tree) {
      tree_.probe_scopes_.fetch_add(1, std::memory_order_relaxed);
    }
    ~ConcurrentProbeScope() RELEASE() {
      tree_.probe_scopes_.fetch_sub(1, std::memory_order_relaxed);
    }
    ConcurrentProbeScope(const ConcurrentProbeScope&) = delete;
    ConcurrentProbeScope& operator=(const ConcurrentProbeScope&) = delete;

   private:
    const RTree& tree_;
  };

  // A point together with its distance to a query center.
  struct Neighbor {
    PointId id = 0;
    double distance = 0.0;
  };

  // Returns the k nearest indexed points to `center` (fewer when the tree
  // holds fewer than k), ordered by ascending distance. A point with
  // center's id is not excluded — callers filter if needed. Best-first
  // branch-and-bound traversal.
  std::vector<Neighbor> NearestNeighbors(const Point& center,
                                         std::size_t k) const;

  // Epoch-probed variant: skips any entry whose epoch >= tick, marks visited
  // leaf entries when the visitor returns true, and propagates minimum epochs
  // to internal entries on backtracking. Ticks must come from NewTick().
  void EpochRangeSearch(const Point& center, double eps, std::uint64_t tick,
                        const MarkingVisitor& visit) EXCLUDES(probe_region_);

  // Returns a fresh tick, strictly larger than all previously issued ticks
  // and than the epoch of every entry currently in the tree.
  std::uint64_t NewTick() EXCLUDES(probe_region_) {
    AssertNoConcurrentProbes();
    return ++tick_counter_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint32_t dims() const { return dims_; }

  RTreeStats& stats() const { return stats_; }

  // Validates structural invariants (entry counts, MBR containment, uniform
  // leaf depth, epoch consistency, size bookkeeping). Test-only; O(n).
  bool CheckInvariants() const;

  // Appends every indexed point to *out (arbitrary order). Test-only; O(n).
  void CollectAll(std::vector<Point>* out) const;

 private:
  struct Node;
  struct Entry;

  // Debug check that no ConcurrentProbeScope is alive: mutators and
  // epoch-marking searches must never overlap a tick-free probe region.
  void AssertNoConcurrentProbes() const {
    assert(probe_scopes_.load(std::memory_order_relaxed) == 0 &&
           "RTree mutated inside a concurrent probe region");
  }

  // Orders [lo, hi) of `points` into Sort-Tile-Recursive layout.
  void StrOrder(std::vector<Point>* points, std::size_t lo, std::size_t hi,
                std::uint32_t dim);
  // Returns a new sibling if `node` was split, nullptr otherwise.
  Node* InsertRecurse(Node* node, const Point& p);
  Node* SplitNode(Node* node);
  Node* SplitNodeQuadratic(Node* node);
  Node* SplitNodeRStar(Node* node);
  void GrowRoot(Node* sibling);

  bool DeleteRecurse(Node* node, const Point& p, std::vector<Point>* orphans);

  void RangeRecurse(const Node* node, const Point& center, double eps2,
                    const Visitor& visit, RTreeStats* stats) const;
  void EpochRecurse(Node* node, const Point& center, double eps2,
                    std::uint64_t tick, const MarkingVisitor& visit);

  void FreeSubtree(Node* node);
  bool CheckRecurse(const Node* node, int depth, int leaf_depth,
                    std::size_t* count) const;
  void CollectRecurse(const Node* node, std::vector<Point>* out) const;

  std::uint32_t dims_;
  int max_entries_;
  int min_entries_;
  SplitPolicy split_policy_;
  Node* root_;
  std::size_t size_ = 0;
  std::uint64_t tick_counter_ = 0;
  mutable RTreeStats stats_;
  // Live ConcurrentProbeScope count; see AssertNoConcurrentProbes. The
  // runtime (assert-based) twin of the probe_region_ capability below.
  mutable std::atomic<int> probe_scopes_{0};
  // Zero-size capability tag for -Wthread-safety: ConcurrentProbeScope
  // acquires it shared, mutators exclude it. Carries no state — the
  // runtime check lives in probe_scopes_.
  struct CAPABILITY("probe region") ProbeRegionTag {};
  ProbeRegionTag probe_region_;
};

}  // namespace disc

#endif  // DISC_INDEX_RTREE_H_
