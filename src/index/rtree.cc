#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/trace.h"

namespace disc {

namespace {

constexpr std::uint64_t kNeverVisited = 0;

}  // namespace

// A node entry either references a child node (internal) or an indexed point
// (leaf). `epoch` implements Algorithm 4: for a leaf entry it is the tick of
// the last marking search that visited the point; for an internal entry it is
// the minimum epoch over the child node's entries.
struct RTree::Entry {
  Rect rect;
  Node* child = nullptr;
  PointId id = 0;
  std::uint64_t epoch = kNeverVisited;
};

struct RTree::Node {
  bool leaf = true;
  std::vector<Entry> entries;
};

namespace {

Rect PointRect(const Point& p) {
  Rect r;
  r.lo = p.x;
  r.hi = p.x;
  return r;
}

Point EntryPoint(const Rect& rect, PointId id, std::uint32_t dims) {
  Point p;
  p.id = id;
  p.dims = dims;
  p.x = rect.lo;
  return p;
}

double RectArea(const Rect& r, std::uint32_t dims) {
  double area = 1.0;
  for (std::uint32_t i = 0; i < dims; ++i) area *= r.hi[i] - r.lo[i];
  return area;
}

Rect RectUnion(const Rect& a, const Rect& b, std::uint32_t dims) {
  Rect r;
  for (std::uint32_t i = 0; i < dims; ++i) {
    r.lo[i] = std::min(a.lo[i], b.lo[i]);
    r.hi[i] = std::max(a.hi[i], b.hi[i]);
  }
  return r;
}

double Enlargement(const Rect& r, const Rect& add, std::uint32_t dims) {
  return RectArea(RectUnion(r, add, dims), dims) - RectArea(r, dims);
}

bool RectContains(const Rect& outer, const Rect& inner, std::uint32_t dims) {
  for (std::uint32_t i = 0; i < dims; ++i) {
    if (inner.lo[i] < outer.lo[i] || inner.hi[i] > outer.hi[i]) return false;
  }
  return true;
}

// Squared distance from `center` to the nearest boundary of `rect`; zero when
// the center lies inside. A rect intersects the eps-ball iff this <= eps^2.
double MinSquaredDistance(const Rect& rect, const Point& center) {
  double sum = 0.0;
  for (std::uint32_t i = 0; i < center.dims; ++i) {
    double d = 0.0;
    if (center.x[i] < rect.lo[i]) {
      d = rect.lo[i] - center.x[i];
    } else if (center.x[i] > rect.hi[i]) {
      d = center.x[i] - rect.hi[i];
    }
    sum += d * d;
  }
  return sum;
}

double SquaredDistanceToEntryPoint(const Rect& rect, const Point& center) {
  double sum = 0.0;
  for (std::uint32_t i = 0; i < center.dims; ++i) {
    const double d = rect.lo[i] - center.x[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

RTree::RTree(std::uint32_t dims, int max_entries, SplitPolicy split_policy)
    : dims_(dims),
      max_entries_(max_entries),
      min_entries_(std::max(2, max_entries / 4)),
      split_policy_(split_policy),
      root_(new Node{}) {
  assert(dims >= 1 && dims <= static_cast<std::uint32_t>(kMaxDims));
  assert(max_entries >= 4);
}

RTree::~RTree() { FreeSubtree(root_); }

void RTree::Clear() {
  AssertNoConcurrentProbes();
  FreeSubtree(root_);
  root_ = new Node{};
  size_ = 0;
}

void RTree::FreeSubtree(Node* node) {
  if (!node->leaf) {
    for (Entry& e : node->entries) FreeSubtree(e.child);
  }
  delete node;
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

RTree::Node* RTree::InsertRecurse(Node* node, const Point& p) {
  if (node->leaf) {
    Entry e;
    e.rect = PointRect(p);
    e.id = p.id;
    node->entries.push_back(e);
  } else {
    // Choose the subtree needing the least area enlargement (ties broken by
    // smaller area).
    std::size_t best = 0;
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    const Rect prect = PointRect(p);
    for (std::size_t i = 0; i < node->entries.size(); ++i) {
      const double enlarge = Enlargement(node->entries[i].rect, prect, dims_);
      const double area = RectArea(node->entries[i].rect, dims_);
      if (enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best = i;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
    Entry& chosen = node->entries[best];
    Node* sibling = InsertRecurse(chosen.child, p);
    // Refresh rect and epoch of the chosen entry.
    chosen.rect = chosen.child->entries[0].rect;
    chosen.epoch = chosen.child->entries[0].epoch;
    for (std::size_t i = 1; i < chosen.child->entries.size(); ++i) {
      chosen.rect = RectUnion(chosen.rect, chosen.child->entries[i].rect, dims_);
      chosen.epoch = std::min(chosen.epoch, chosen.child->entries[i].epoch);
    }
    if (sibling != nullptr) {
      Entry se;
      se.child = sibling;
      se.rect = sibling->entries[0].rect;
      se.epoch = sibling->entries[0].epoch;
      for (std::size_t i = 1; i < sibling->entries.size(); ++i) {
        se.rect = RectUnion(se.rect, sibling->entries[i].rect, dims_);
        se.epoch = std::min(se.epoch, sibling->entries[i].epoch);
      }
      node->entries.push_back(se);
    }
  }
  if (node->entries.size() > static_cast<std::size_t>(max_entries_)) {
    return SplitNode(node);
  }
  return nullptr;
}

RTree::Node* RTree::SplitNode(Node* node) {
  return split_policy_ == SplitPolicy::kRStar ? SplitNodeRStar(node)
                                              : SplitNodeQuadratic(node);
}

// R*-tree split (Beckmann et al.): choose the axis whose sorted distributions
// have minimum total margin, then the distribution with minimum overlap
// (ties: minimum combined area).
RTree::Node* RTree::SplitNodeRStar(Node* node) {
  std::vector<Entry> all;
  all.swap(node->entries);
  const std::size_t n = all.size();
  const std::size_t min_k = static_cast<std::size_t>(min_entries_);

  auto margin = [this](const Rect& r) {
    double m = 0.0;
    for (std::uint32_t d = 0; d < dims_; ++d) m += r.hi[d] - r.lo[d];
    return m;
  };
  auto overlap = [this](const Rect& a, const Rect& b) {
    double v = 1.0;
    for (std::uint32_t d = 0; d < dims_; ++d) {
      const double lo = std::max(a.lo[d], b.lo[d]);
      const double hi = std::min(a.hi[d], b.hi[d]);
      if (hi <= lo) return 0.0;
      v *= hi - lo;
    }
    return v;
  };
  auto cover = [this](const std::vector<Entry>& es, std::size_t lo,
                      std::size_t hi) {
    Rect r = es[lo].rect;
    for (std::size_t i = lo + 1; i < hi; ++i) {
      r = RectUnion(r, es[i].rect, dims_);
    }
    return r;
  };

  // Pick the split axis: minimum sum of margins over all distributions.
  std::uint32_t best_axis = 0;
  double best_axis_margin = std::numeric_limits<double>::infinity();
  for (std::uint32_t axis = 0; axis < dims_; ++axis) {
    std::sort(all.begin(), all.end(), [axis](const Entry& a, const Entry& b) {
      return a.rect.lo[axis] < b.rect.lo[axis] ||
             (a.rect.lo[axis] == b.rect.lo[axis] &&
              a.rect.hi[axis] < b.rect.hi[axis]);
    });
    double axis_margin = 0.0;
    for (std::size_t k = min_k; k + min_k <= n; ++k) {
      axis_margin += margin(cover(all, 0, k)) + margin(cover(all, k, n));
    }
    if (axis_margin < best_axis_margin) {
      best_axis_margin = axis_margin;
      best_axis = axis;
    }
  }
  std::sort(all.begin(), all.end(),
            [best_axis](const Entry& a, const Entry& b) {
              return a.rect.lo[best_axis] < b.rect.lo[best_axis] ||
                     (a.rect.lo[best_axis] == b.rect.lo[best_axis] &&
                      a.rect.hi[best_axis] < b.rect.hi[best_axis]);
            });

  // Pick the distribution: minimum overlap, ties by minimum total area.
  std::size_t best_k = min_k;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (std::size_t k = min_k; k + min_k <= n; ++k) {
    const Rect left = cover(all, 0, k);
    const Rect right = cover(all, k, n);
    const double ov = overlap(left, right);
    const double area = RectArea(left, dims_) + RectArea(right, dims_);
    if (ov < best_overlap || (ov == best_overlap && area < best_area)) {
      best_overlap = ov;
      best_area = area;
      best_k = k;
    }
  }

  Node* sibling = new Node{};
  sibling->leaf = node->leaf;
  node->entries.assign(all.begin(),
                       all.begin() + static_cast<std::ptrdiff_t>(best_k));
  sibling->entries.assign(all.begin() + static_cast<std::ptrdiff_t>(best_k),
                          all.end());
  return sibling;
}

// Quadratic split (Guttman): pick the pair of entries wasting the most area
// as seeds, then assign remaining entries by maximal preference difference.
RTree::Node* RTree::SplitNodeQuadratic(Node* node) {
  std::vector<Entry> all;
  all.swap(node->entries);

  std::size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      const double waste = RectArea(RectUnion(all[i].rect, all[j].rect, dims_),
                                    dims_) -
                           RectArea(all[i].rect, dims_) -
                           RectArea(all[j].rect, dims_);
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Node* sibling = new Node{};
  sibling->leaf = node->leaf;

  Rect rect_a = all[seed_a].rect;
  Rect rect_b = all[seed_b].rect;
  node->entries.push_back(all[seed_a]);
  sibling->entries.push_back(all[seed_b]);

  std::vector<bool> assigned(all.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  std::size_t remaining = all.size() - 2;

  while (remaining > 0) {
    // If one group must take all remaining entries to reach min_entries_,
    // assign them wholesale.
    if (node->entries.size() + remaining ==
        static_cast<std::size_t>(min_entries_)) {
      for (std::size_t i = 0; i < all.size(); ++i) {
        if (!assigned[i]) {
          node->entries.push_back(all[i]);
          rect_a = RectUnion(rect_a, all[i].rect, dims_);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    if (sibling->entries.size() + remaining ==
        static_cast<std::size_t>(min_entries_)) {
      for (std::size_t i = 0; i < all.size(); ++i) {
        if (!assigned[i]) {
          sibling->entries.push_back(all[i]);
          rect_b = RectUnion(rect_b, all[i].rect, dims_);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }

    // PickNext: entry with maximal |enlargement(A) - enlargement(B)|.
    std::size_t pick = 0;
    double best_diff = -1.0;
    double pick_ea = 0.0, pick_eb = 0.0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (assigned[i]) continue;
      const double ea = Enlargement(rect_a, all[i].rect, dims_);
      const double eb = Enlargement(rect_b, all[i].rect, dims_);
      const double diff = std::abs(ea - eb);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        pick_ea = ea;
        pick_eb = eb;
      }
    }
    assigned[pick] = true;
    --remaining;
    const bool to_a =
        pick_ea < pick_eb ||
        (pick_ea == pick_eb && node->entries.size() <= sibling->entries.size());
    if (to_a) {
      node->entries.push_back(all[pick]);
      rect_a = RectUnion(rect_a, all[pick].rect, dims_);
    } else {
      sibling->entries.push_back(all[pick]);
      rect_b = RectUnion(rect_b, all[pick].rect, dims_);
    }
  }
  return sibling;
}

void RTree::GrowRoot(Node* sibling) {
  Node* new_root = new Node{};
  new_root->leaf = false;
  for (Node* child : {root_, sibling}) {
    Entry e;
    e.child = child;
    e.rect = child->entries[0].rect;
    e.epoch = child->entries[0].epoch;
    for (std::size_t i = 1; i < child->entries.size(); ++i) {
      e.rect = RectUnion(e.rect, child->entries[i].rect, dims_);
      e.epoch = std::min(e.epoch, child->entries[i].epoch);
    }
    new_root->entries.push_back(e);
  }
  root_ = new_root;
}

void RTree::Insert(const Point& p) {
  AssertNoConcurrentProbes();
  assert(p.dims == dims_);
  Node* sibling = InsertRecurse(root_, p);
  if (sibling != nullptr) GrowRoot(sibling);
  ++size_;
}

// ---------------------------------------------------------------------------
// Bulk loading (Sort-Tile-Recursive)
// ---------------------------------------------------------------------------

void RTree::StrOrder(std::vector<Point>* points, std::size_t lo,
                     std::size_t hi, std::uint32_t dim) {
  auto begin = points->begin() + static_cast<std::ptrdiff_t>(lo);
  auto end = points->begin() + static_cast<std::ptrdiff_t>(hi);
  std::sort(begin, end, [dim](const Point& a, const Point& b) {
    return a.x[dim] < b.x[dim];
  });
  if (dim + 1 >= dims_) return;
  const std::size_t n = hi - lo;
  const std::size_t leaves =
      (n + static_cast<std::size_t>(max_entries_) - 1) /
      static_cast<std::size_t>(max_entries_);
  if (leaves <= 1) return;
  const auto slabs = static_cast<std::size_t>(std::ceil(std::pow(
      static_cast<double>(leaves), 1.0 / static_cast<double>(dims_ - dim))));
  const std::size_t slab_size = (n + slabs - 1) / slabs;
  for (std::size_t s = lo; s < hi; s += slab_size) {
    StrOrder(points, s, std::min(hi, s + slab_size), dim + 1);
  }
}

void RTree::BulkLoad(std::vector<Point> points) {
  AssertNoConcurrentProbes();
  assert(size_ == 0 && root_->entries.empty());
  if (points.empty()) return;
  StrOrder(&points, 0, points.size(), 0);

  // Group boundaries that distribute n children over ceil(n/max) nodes
  // evenly, so no node (in particular the last one) underflows.
  const auto group_sizes = [this](std::size_t n) {
    const std::size_t groups =
        (n + static_cast<std::size_t>(max_entries_) - 1) /
        static_cast<std::size_t>(max_entries_);
    std::vector<std::size_t> sizes(groups, n / groups);
    for (std::size_t g = 0; g < n % groups; ++g) ++sizes[g];
    return sizes;
  };

  // Pack leaves from the STR order.
  std::vector<Node*> level;
  std::size_t pos = 0;
  for (std::size_t size : group_sizes(points.size())) {
    Node* leaf = new Node{};
    leaf->leaf = true;
    for (std::size_t j = pos; j < pos + size; ++j) {
      Entry e;
      e.rect = PointRect(points[j]);
      e.id = points[j].id;
      leaf->entries.push_back(e);
    }
    pos += size;
    level.push_back(leaf);
  }

  // Pack upper levels from consecutive children (the STR order keeps
  // neighbors spatially close).
  while (level.size() > 1) {
    std::vector<Node*> parents;
    pos = 0;
    for (std::size_t size : group_sizes(level.size())) {
      Node* parent = new Node{};
      parent->leaf = false;
      for (std::size_t j = pos; j < pos + size; ++j) {
        Node* child = level[j];
        Entry e;
        e.child = child;
        e.rect = child->entries[0].rect;
        for (std::size_t k = 1; k < child->entries.size(); ++k) {
          e.rect = RectUnion(e.rect, child->entries[k].rect, dims_);
        }
        parent->entries.push_back(e);
      }
      pos += size;
      parents.push_back(parent);
    }
    level.swap(parents);
  }
  delete root_;
  root_ = level[0];
  size_ = points.size();
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

bool RTree::DeleteRecurse(Node* node, const Point& p,
                          std::vector<Point>* orphans) {
  if (node->leaf) {
    for (std::size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].id != p.id) continue;
      // Both id and stored coordinates must match.
      bool same = true;
      for (std::uint32_t d = 0; d < dims_; ++d) {
        if (node->entries[i].rect.lo[d] != p.x[d]) {
          same = false;
          break;
        }
      }
      if (!same) continue;
      node->entries[i] = node->entries.back();
      node->entries.pop_back();
      return true;
    }
    return false;
  }
  const Rect prect = PointRect(p);
  for (std::size_t i = 0; i < node->entries.size(); ++i) {
    Entry& e = node->entries[i];
    if (!RectContains(e.rect, prect, dims_)) continue;
    if (!DeleteRecurse(e.child, p, orphans)) continue;
    // Found and removed under this child. Handle underflow: pull every point
    // still in the child subtree into the orphan list and drop the entry.
    if (e.child->entries.size() < static_cast<std::size_t>(min_entries_)) {
      CollectRecurse(e.child, orphans);
      FreeSubtree(e.child);
      node->entries[i] = node->entries.back();
      node->entries.pop_back();
    } else {
      // Tighten the entry's rect and refresh its epoch.
      e.rect = e.child->entries[0].rect;
      e.epoch = e.child->entries[0].epoch;
      for (std::size_t j = 1; j < e.child->entries.size(); ++j) {
        e.rect = RectUnion(e.rect, e.child->entries[j].rect, dims_);
        e.epoch = std::min(e.epoch, e.child->entries[j].epoch);
      }
    }
    return true;
  }
  return false;
}

bool RTree::Delete(const Point& p) {
  AssertNoConcurrentProbes();
  assert(p.dims == dims_);
  std::vector<Point> orphans;
  if (!DeleteRecurse(root_, p, &orphans)) return false;
  --size_;
  // Shrink the root if it lost all but one child.
  while (!root_->leaf && root_->entries.size() == 1) {
    Node* child = root_->entries[0].child;
    delete root_;
    root_ = child;
  }
  if (!root_->leaf && root_->entries.empty()) {
    root_->leaf = true;
  }
  // Re-insert points stranded by condensed nodes. size_ already accounts for
  // them (they were never subtracted), so bypass Insert's counter.
  for (const Point& orphan : orphans) {
    Node* sibling = InsertRecurse(root_, orphan);
    if (sibling != nullptr) GrowRoot(sibling);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

void RTree::RangeRecurse(const Node* node, const Point& center, double eps2,
                         const Visitor& visit, RTreeStats* stats) const {
  ++stats->nodes_visited;
  for (const Entry& e : node->entries) {
    ++stats->entries_checked;
    if (node->leaf) {
      ++stats->leaf_entries_tested;
      if (SquaredDistanceToEntryPoint(e.rect, center) <= eps2) {
        visit(e.id, EntryPoint(e.rect, e.id, dims_));
      }
    } else if (MinSquaredDistance(e.rect, center) <= eps2) {
      RangeRecurse(e.child, center, eps2, visit, stats);
    }
  }
}

void RTree::RangeSearch(const Point& center, double eps,
                        const Visitor& visit) const {
  RangeSearch(center, eps, visit, &stats_);
}

void RTree::RangeSearch(const Point& center, double eps, const Visitor& visit,
                        RTreeStats* stats) const {
  obs::TraceSpan span("rtree.range_search", obs::TraceLevel::kDetail);
  const RTreeStats before = *stats;
  ++stats->range_searches;
  RangeRecurse(root_, center, eps * eps, visit, stats);
  if (span.active()) {
    span.AddArg("nodes", stats->nodes_visited - before.nodes_visited);
    span.AddArg("leaf_tests",
                stats->leaf_entries_tested - before.leaf_entries_tested);
  }
}

std::vector<RTree::Neighbor> RTree::NearestNeighbors(const Point& center,
                                                     std::size_t k) const {
  std::vector<Neighbor> result;
  if (k == 0 || size_ == 0) return result;
  ++stats_.range_searches;

  // Best-first search over index entries ordered by minimum possible
  // distance; max-heap over the current k best candidates for pruning.
  struct QueueItem {
    double min_dist2;
    const Node* node;
  };
  auto queue_cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.min_dist2 > b.min_dist2;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(queue_cmp)>
      frontier(queue_cmp);
  frontier.push({0.0, root_});

  auto result_cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(result_cmp)>
      best(result_cmp);

  while (!frontier.empty()) {
    const QueueItem item = frontier.top();
    frontier.pop();
    if (best.size() == k && item.min_dist2 > best.top().distance) break;
    ++stats_.nodes_visited;
    for (const Entry& e : item.node->entries) {
      ++stats_.entries_checked;
      if (item.node->leaf) {
        ++stats_.leaf_entries_tested;
        const double d2 = SquaredDistanceToEntryPoint(e.rect, center);
        if (best.size() < k) {
          best.push(Neighbor{e.id, d2});
        } else if (d2 < best.top().distance) {
          best.pop();
          best.push(Neighbor{e.id, d2});
        }
      } else {
        const double d2 = MinSquaredDistance(e.rect, center);
        if (best.size() < k || d2 <= best.top().distance) {
          frontier.push({d2, e.child});
        }
      }
    }
  }
  result.resize(best.size());
  for (std::size_t i = result.size(); i-- > 0;) {
    result[i] = best.top();
    result[i].distance = std::sqrt(result[i].distance);
    best.pop();
  }
  return result;
}

void RTree::EpochRecurse(Node* node, const Point& center, double eps2,
                         std::uint64_t tick, const MarkingVisitor& visit) {
  ++stats_.nodes_visited;
  for (Entry& e : node->entries) {
    ++stats_.entries_checked;
    if (e.epoch >= tick) {
      // Algorithm 4's payoff: the entry (a point, or a whole subtree) was
      // already consumed under this tick and is skipped outright.
      ++stats_.epoch_pruned;
      continue;
    }
    if (node->leaf) {
      ++stats_.leaf_entries_tested;
      if (SquaredDistanceToEntryPoint(e.rect, center) <= eps2) {
        if (visit(e.id, EntryPoint(e.rect, e.id, dims_))) {
          e.epoch = tick;
        }
      }
    } else if (MinSquaredDistance(e.rect, center) <= eps2) {
      EpochRecurse(e.child, center, eps2, tick, visit);
      // Backtracking step of Algorithm 4: an internal entry is only prunable
      // once every entry below it has been visited.
      std::uint64_t min_epoch = e.child->entries.empty()
                                    ? tick
                                    : e.child->entries[0].epoch;
      for (std::size_t i = 1; i < e.child->entries.size(); ++i) {
        min_epoch = std::min(min_epoch, e.child->entries[i].epoch);
      }
      e.epoch = min_epoch;
    }
  }
}

void RTree::EpochRangeSearch(const Point& center, double eps,
                             std::uint64_t tick, const MarkingVisitor& visit) {
  AssertNoConcurrentProbes();  // Writes entry epochs: not a tick-free probe.
  obs::TraceSpan span("rtree.epoch_search", obs::TraceLevel::kDetail);
  const RTreeStats before = stats_;
  ++stats_.range_searches;
  EpochRecurse(root_, center, eps * eps, tick, visit);
  if (span.active()) {
    span.AddArg("nodes", stats_.nodes_visited - before.nodes_visited);
    span.AddArg("leaf_tests",
                stats_.leaf_entries_tested - before.leaf_entries_tested);
    span.AddArg("epoch_pruned", stats_.epoch_pruned - before.epoch_pruned);
  }
}

// ---------------------------------------------------------------------------
// Introspection (tests)
// ---------------------------------------------------------------------------

bool RTree::CheckRecurse(const Node* node, int depth, int leaf_depth,
                         std::size_t* count) const {
  if (node->leaf) {
    if (depth != leaf_depth) return false;
    *count += node->entries.size();
    return true;
  }
  if (node->entries.empty()) return false;
  for (const Entry& e : node->entries) {
    if (e.child == nullptr) return false;
    if (e.child->entries.size() < static_cast<std::size_t>(min_entries_) &&
        depth + 1 != leaf_depth) {
      // Underflow is only tolerated at the root, which is not reached here.
      return false;
    }
    // Entry rect must contain all child rects; entry epoch must equal the
    // minimum child epoch or be stale-low (epochs may lag behind, never lead).
    std::uint64_t min_epoch = std::numeric_limits<std::uint64_t>::max();
    for (const Entry& ce : e.child->entries) {
      if (!RectContains(e.rect, ce.rect, dims_)) return false;
      min_epoch = std::min(min_epoch, ce.epoch);
    }
    if (!e.child->entries.empty() && e.epoch > min_epoch) return false;
    if (!CheckRecurse(e.child, depth + 1, leaf_depth, count)) return false;
  }
  return true;
}

bool RTree::CheckInvariants() const {
  int leaf_depth = 0;
  const Node* n = root_;
  while (!n->leaf) {
    if (n->entries.empty()) return false;
    n = n->entries[0].child;
    ++leaf_depth;
  }
  std::size_t count = 0;
  if (!CheckRecurse(root_, 0, leaf_depth, &count)) return false;
  return count == size_;
}

void RTree::CollectRecurse(const Node* node, std::vector<Point>* out) const {
  if (node->leaf) {
    for (const Entry& e : node->entries) {
      out->push_back(EntryPoint(e.rect, e.id, dims_));
    }
  } else {
    for (const Entry& e : node->entries) CollectRecurse(e.child, out);
  }
}

void RTree::CollectAll(std::vector<Point>* out) const {
  CollectRecurse(root_, out);
}

}  // namespace disc
