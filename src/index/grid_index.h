#ifndef DISC_INDEX_GRID_INDEX_H_
#define DISC_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/point.h"

namespace disc {

// Integer coordinates of a grid cell.
struct CellCoord {
  std::array<std::int64_t, kMaxDims> c{};
  std::uint32_t dims = 2;

  bool operator==(const CellCoord& other) const {
    for (std::uint32_t i = 0; i < dims; ++i) {
      if (c[i] != other.c[i]) return false;
    }
    return true;
  }
};

struct CellCoordHash {
  std::size_t operator()(const CellCoord& cc) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint32_t i = 0; i < cc.dims; ++i) {
      h ^= static_cast<std::uint64_t>(cc.c[i]);
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

// Uniform hash grid over points with a fixed cell side length. Substrate for
// the rho-double-approximate DBSCAN baseline (whose cells have side
// eps/sqrt(d)) and a simple alternative neighborhood index for tests.
class GridIndex {
 public:
  using Visitor = std::function<void(PointId, const Point&)>;
  using CellVisitor =
      std::function<void(const CellCoord&, const std::vector<Point>&)>;

  GridIndex(std::uint32_t dims, double cell_side);

  void Insert(const Point& p);
  // Removes the point with p's id from p's cell. Returns false if absent.
  bool Delete(const Point& p);

  CellCoord CellOf(const Point& p) const;

  // Visits every point within Euclidean distance eps of center.
  void RangeSearch(const Point& center, double eps, const Visitor& visit) const;

  // Counts points within Euclidean distance eps of center.
  std::size_t RangeCount(const Point& center, double eps) const;

  // Visits every non-empty cell whose integer coordinates differ from `cell`
  // by at most `radius` in every dimension (including `cell` itself).
  void ForEachNeighborCell(const CellCoord& cell, std::int64_t radius,
                           const CellVisitor& visit) const;

  // Visits every non-empty cell.
  void ForEachCell(const CellVisitor& visit) const;

  const std::vector<Point>* CellContents(const CellCoord& cell) const;

  std::size_t size() const { return size_; }
  double cell_side() const { return cell_side_; }
  std::uint32_t dims() const { return dims_; }
  std::size_t num_cells() const { return cells_.size(); }

 private:
  std::uint32_t dims_;
  double cell_side_;
  std::size_t size_ = 0;
  std::unordered_map<CellCoord, std::vector<Point>, CellCoordHash> cells_;
};

}  // namespace disc

#endif  // DISC_INDEX_GRID_INDEX_H_
