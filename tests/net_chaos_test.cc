// Chaos harness for the ingest plane (ctest -L chaos): arms the net.*
// failpoints (net.accept, net.frame.read, net.frame.write, net.admit)
// under the same pinned seeds as tests/chaos_test.cc and hammers a
// DiscEngine through IngestServer with a reconnecting producer.
//
// The invariant under fire is the wire protocol's no-silent-drop
// contract (docs/API.md §net):
//
//   acked  <=  SlidesRun + PendingSlides  <=  acked + unknown
//
// where `acked` counts slides whose kOk response arrived, and `unknown`
// counts sends where the connection died before a response (the slide
// may or may not have been admitted — the one outcome a crash mid-ack
// permits). A clean rejection (kBusy, or an injected net.admit error)
// admits nothing, so retrying it can never double-feed; an unknown
// outcome is never retried, so nothing is ever duplicated.
//
// Seeds are pinned ({1701, 424242, 777000777}); DISC_CHAOS_SEED=N
// overrides for replaying a single offender.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/disc_engine.h"
#include "gtest/gtest.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "obs/metrics_registry.h"
#include "stream/blobs_generator.h"

namespace disc {
namespace net {
namespace {

using failpoint::FailAction;
using failpoint::FailPlan;
using failpoint::FailRule;
using failpoint::Registry;
using failpoint::ScopedFailPlan;

constexpr std::size_t kWindow = 120;
constexpr std::size_t kStride = 30;

const std::uint64_t kChaosSeeds[] = {1701, 424242, 777000777};

std::vector<std::uint64_t> SeedsUnderTest() {
  if (const char* override_seed = std::getenv("DISC_CHAOS_SEED")) {
    return {std::strtoull(override_seed, nullptr, 10)};
  }
  return {std::begin(kChaosSeeds), std::end(kChaosSeeds)};
}

SessionOptions TestSession() {
  SessionOptions options;
  options.method = "DISC";
  options.spec.dims = 2;
  options.spec.window_size = kWindow;
  options.spec.stride = kStride;
  options.spec.disc.eps = 0.4;
  options.spec.disc.tau = 5;
  return options;
}

std::vector<std::vector<Point>> MakeSlides(std::uint64_t seed,
                                           std::size_t num_slides) {
  BlobsGenerator::Options o;
  o.dims = 2;
  o.num_blobs = 4;
  o.extent = 8.0;
  o.stddev = 0.3;
  o.noise_fraction = 0.1;
  o.drift = 0.05;
  o.seed = seed;
  BlobsGenerator gen(o);
  std::vector<std::vector<Point>> slides(num_slides);
  for (auto& slide : slides) slide = gen.NextPoints(kStride);
  return slides;
}

FailRule Rule(const std::string& site, FailAction action, double probability,
              std::uint64_t skip = 0,
              std::uint64_t max_fires =
                  std::numeric_limits<std::uint64_t>::max()) {
  FailRule rule;
  rule.site = site;
  rule.action = action;
  rule.probability = probability;
  rule.skip = skip;
  rule.max_fires = max_fires;
  return rule;
}

// Reconnect with patience: under an armed net.accept rule a fresh
// connection can be reset before its first byte, so one attempt proves
// nothing.
bool EnsureConnected(IngestClient& client) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (client.connected()) return true;
    if (client.Connect().ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// The main storm: every net.* site armed at once, three pinned seeds, a
// producer that keeps reconnecting. After the plan disarms, the plane
// must still be serving and the slide accounting must balance.
TEST(NetChaosTest, FaultStormNeverLosesOrDuplicatesAdmittedSlides) {
  const std::vector<std::string> names = {"storm_a", "storm_b"};
  constexpr std::size_t kSlideCount = 12;

  for (const std::uint64_t seed : SeedsUnderTest()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    obs::MetricsRegistry metrics;
    EngineOptions engine_options;
    engine_options.num_threads = 2;
    engine_options.metrics = &metrics;
    DiscEngine engine(engine_options);
    // Sessions exist before the storm; creation semantics under faults
    // get their own test below.
    for (const std::string& name : names) {
      ASSERT_TRUE(engine.CreateSession(name, TestSession()).ok());
    }
    IngestServerOptions server_options;
    server_options.engine = &engine;
    server_options.metrics = &metrics;
    server_options.worker_threads = 2;
    server_options.max_pending_slides = 4;
    IngestServer server(server_options);
    ASSERT_TRUE(server.Start().ok());

    std::vector<std::vector<std::vector<Point>>> streams;
    for (std::size_t i = 0; i < names.size(); ++i) {
      streams.push_back(MakeSlides(seed * 2 + i, kSlideCount));
    }

    std::vector<std::size_t> acked(names.size(), 0);
    std::vector<std::size_t> unknown(names.size(), 0);
    {
      FailPlan plan;
      plan.seed = seed;
      plan.rules.push_back(Rule("net.accept", FailAction::kThrow, 0.25));
      plan.rules.push_back(Rule("net.frame.read", FailAction::kThrow, 0.10));
      plan.rules.push_back(Rule("net.frame.write", FailAction::kThrow, 0.10));
      plan.rules.push_back(Rule("net.admit", FailAction::kStatus, 0.15));
      ScopedFailPlan armed(plan);

      IngestClientOptions client_options;
      client_options.port = server.port();
      IngestClient client(client_options);
      for (std::size_t k = 0; k < kSlideCount; ++k) {
        for (std::size_t i = 0; i < names.size(); ++i) {
          bool resolved = false;
          for (int attempt = 0; attempt < 100 && !resolved; ++attempt) {
            ASSERT_TRUE(EnsureConnected(client))
                << names[i] << " slide " << k;
            bool busy = false;
            const Status fed =
                client.FeedSlide(names[i], streams[i][k], &busy);
            if (fed.ok()) {
              ++acked[i];
              resolved = true;
            } else if (busy) {
              // Not admitted; make room and re-send the same slide. The
              // drain itself may die to an injected fault — the loop
              // reconnects.
              static_cast<void>(client.Drain());
            } else if (!client.connected()) {
              // Connection died awaiting the response: admission unknown.
              // Re-sending could double-feed, so the slide is abandoned.
              ++unknown[i];
              resolved = true;
            }
            // else: clean kError with the connection intact (an injected
            // net.admit fault) — nothing admitted, safe to re-send.
          }
          ASSERT_TRUE(resolved) << names[i] << " slide " << k
                                << " never resolved in 100 attempts";
        }
      }
    }  // Disarm; counters below survive.

    // The plane survived the storm.
    EXPECT_TRUE(server.running());

    // No accepted slide lost, no abandoned slide duplicated.
    for (std::size_t i = 0; i < names.size(); ++i) {
      const std::size_t landed =
          engine.SlidesRun(names[i]) + engine.PendingSlides(names[i]);
      EXPECT_GE(landed, acked[i]) << names[i];
      EXPECT_LE(landed, acked[i] + unknown[i]) << names[i];
    }
    engine.Drain();

    // A fresh producer gets clean service immediately after disarm.
    IngestClientOptions probe_options;
    probe_options.port = server.port();
    IngestClient probe(probe_options);
    ASSERT_TRUE(probe.Connect().ok());
    EXPECT_TRUE(probe.Ping().ok());
    for (std::size_t i = 0; i < names.size(); ++i) {
      ClusteringSnapshot snapshot;
      EXPECT_TRUE(probe.QuerySnapshot(names[i], &snapshot).ok());
      if (acked[i] > 0) {
        EXPECT_GT(snapshot.size(), 0u);
      }
    }

    // Every armed site was actually exercised and the storm was real.
    for (const char* site :
         {"net.accept", "net.frame.read", "net.frame.write", "net.admit"}) {
      EXPECT_GT(Registry::Instance().Hits(site), 0u) << site;
    }
    EXPECT_GT(Registry::Instance().TotalFires(), 0u);
    server.Stop();
  }
}

// An injected admission fault must behave exactly like any engine
// rejection: descriptive kError, connection intact, nothing admitted —
// so the producer's retry is safe and nothing is lost or duplicated.
TEST(NetChaosTest, AdmitFaultIsACleanRetryableRejection) {
  DiscEngine engine(EngineOptions{});
  ASSERT_TRUE(engine.CreateSession("admit", TestSession()).ok());
  IngestServerOptions server_options;
  server_options.engine = &engine;
  IngestServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  IngestClientOptions client_options;
  client_options.port = server.port();
  IngestClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  const auto slides = MakeSlides(31, 2);

  FailPlan plan;
  plan.seed = SeedsUnderTest().front();
  plan.rules.push_back(Rule("net.admit", FailAction::kStatus, 1.0,
                            /*skip=*/1, /*max_fires=*/1));
  ScopedFailPlan armed(plan);

  ASSERT_TRUE(client.FeedSlide("admit", slides[0]).ok());  // Hit 1: skipped.
  bool busy = false;
  const Status rejected = client.FeedSlide("admit", slides[1], &busy);
  ASSERT_FALSE(rejected.ok());
  EXPECT_FALSE(busy);
  EXPECT_NE(rejected.message().find("injected fault at net.admit"),
            std::string::npos);
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(engine.PendingSlides("admit"), 1u);  // Slide 2 not admitted.

  ASSERT_TRUE(client.FeedSlide("admit", slides[1]).ok());  // Safe retry.
  std::uint64_t executed = 0;
  ASSERT_TRUE(client.Drain(&executed).ok());
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(engine.SlidesRun("admit"), 2u);  // Once each: no loss, no dup.
  EXPECT_EQ(Registry::Instance().Fires("net.admit"), 1u);
  client.Close();
  server.Stop();
}

// A write fault after admission is the one genuinely ambiguous outcome:
// the slide IS in, but the ack never arrives. The client must report the
// connection lost with "outcome unknown", and the server side must hold
// the admitted slide.
TEST(NetChaosTest, WriteFaultAfterAdmissionIsUnknownNotLost) {
  DiscEngine engine(EngineOptions{});
  ASSERT_TRUE(engine.CreateSession("ambig", TestSession()).ok());
  IngestServerOptions server_options;
  server_options.engine = &engine;
  IngestServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  IngestClientOptions client_options;
  client_options.port = server.port();
  IngestClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Ping().ok());  // Response write #1.
  const auto slides = MakeSlides(77, 1);

  FailPlan plan;
  plan.seed = SeedsUnderTest().front();
  // The ping response predates arming (unarmed sites are never counted),
  // so the first counted write hit is the ack for the slide below.
  plan.rules.push_back(Rule("net.frame.write", FailAction::kThrow, 1.0,
                            /*skip=*/0, /*max_fires=*/1));
  ScopedFailPlan armed(plan);

  bool busy = false;
  const Status fed = client.FeedSlide("ambig", slides[0], &busy);
  ASSERT_FALSE(fed.ok());
  EXPECT_FALSE(busy);
  EXPECT_NE(fed.message().find("outcome unknown"), std::string::npos);
  EXPECT_FALSE(client.connected());

  // The slide was admitted before the ack died: exactly once, not lost.
  EXPECT_EQ(engine.PendingSlides("ambig"), 1u);
  engine.Drain();
  EXPECT_EQ(engine.SlidesRun("ambig"), 1u);
  EXPECT_EQ(Registry::Instance().Fires("net.frame.write"), 1u);

  // The lane survived the throw; a reconnect gets clean service.
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Ping().ok());
  client.Close();
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace disc
