// Parameterized equivalence sweeps for the exact baselines (IncDBSCAN,
// EXTRA-N) mirroring the DISC sweep: after every slide the produced
// clustering must equal fresh DBSCAN's over the window contents.

#include <memory>
#include <string>
#include <vector>

#include "baselines/dbscan.h"
#include "baselines/extra_n.h"
#include "baselines/inc_dbscan.h"
#include "eval/equivalence.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/maze_generator.h"
#include "stream/sliding_window.h"
#include "stream/stream_source.h"

namespace disc {
namespace {

struct SweepCase {
  std::string name;
  int method;  // 0: IncDBSCAN, 1: EXTRA-N.
  int generator;  // 0: blobs, 1: drifting blobs, 2: maze, 3: uniform.
  double eps;
  std::uint32_t tau;
  std::size_t window;
  std::size_t stride;
  std::uint32_t dims;
};

std::unique_ptr<StreamSource> MakeSource(const SweepCase& sc) {
  switch (sc.generator) {
    case 0: {
      BlobsGenerator::Options o;
      o.dims = sc.dims;
      o.num_blobs = 6;
      o.stddev = 0.35;
      o.noise_fraction = 0.15;
      o.seed = 42;
      return std::make_unique<BlobsGenerator>(o);
    }
    case 1: {
      BlobsGenerator::Options o;
      o.dims = sc.dims;
      o.num_blobs = 4;
      o.extent = 8.0;
      o.stddev = 0.3;
      o.noise_fraction = 0.1;
      o.drift = 0.05;
      o.seed = 42;
      return std::make_unique<BlobsGenerator>(o);
    }
    case 2: {
      MazeGenerator::Options o;
      o.num_seeds = 8;
      o.extent = 12.0;
      o.step = 0.08;
      o.jitter = 0.03;
      o.points_per_step = 3;
      o.seed = 42;
      return std::make_unique<MazeGenerator>(o);
    }
    default:
      return std::make_unique<UniformGenerator>(sc.dims, 0.0, 6.0, 42);
  }
}

class ExactBaselineSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ExactBaselineSweepTest, MatchesFreshDbscanAfterEverySlide) {
  const SweepCase& sc = GetParam();
  auto source = MakeSource(sc);

  std::unique_ptr<StreamClusterer> method;
  if (sc.method == 0) {
    DiscConfig config;
    config.eps = sc.eps;
    config.tau = sc.tau;
    method = std::make_unique<IncDbscan>(sc.dims, config);
  } else {
    method = std::make_unique<ExtraN>(sc.dims, sc.eps, sc.tau, sc.window,
                                      sc.stride);
  }

  CountBasedWindow window(sc.window, sc.stride);
  for (int s = 0; s < 10; ++s) {
    WindowDelta delta = window.Advance(source->NextPoints(sc.stride));
    method->Update(delta.incoming, delta.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, sc.eps, sc.tau);
    const EquivalenceResult eq = CheckSameClustering(
        method->Snapshot(), truth.snapshot, contents, sc.eps);
    ASSERT_TRUE(eq.ok) << sc.name << " slide " << s << ": " << eq.error;
  }
}

std::vector<SweepCase> MakeCases() {
  std::vector<SweepCase> cases;
  const char* method_names[] = {"inc", "extran"};
  for (int method = 0; method < 2; ++method) {
    for (int gen = 0; gen <= 3; ++gen) {
      SweepCase sc;
      sc.method = method;
      sc.generator = gen;
      sc.eps = gen == 3 ? 0.45 : 0.4;
      sc.tau = 5;
      sc.window = 480;
      sc.stride = 60;
      sc.dims = 2;
      sc.name = std::string(method_names[method]) + "_gen" +
                std::to_string(gen);
      cases.push_back(sc);
    }
    // Dimension variants.
    for (std::uint32_t dims : {3U, 4U}) {
      SweepCase sc;
      sc.method = method;
      sc.generator = 0;
      sc.eps = 0.8;
      sc.tau = 4;
      sc.window = 400;
      sc.stride = 50;
      sc.dims = dims;
      sc.name = std::string(method_names[method]) + "_dims" +
                std::to_string(dims);
      cases.push_back(sc);
    }
    // Stride variants (divide the window evenly for EXTRA-N).
    for (std::size_t stride : {24UL, 240UL, 480UL}) {
      SweepCase sc;
      sc.method = method;
      sc.generator = 1;
      sc.eps = 0.4;
      sc.tau = 4;
      sc.window = 480;
      sc.stride = stride;
      sc.dims = 2;
      sc.name = std::string(method_names[method]) + "_stride" +
                std::to_string(stride);
      cases.push_back(sc);
    }
    // Density threshold variants.
    for (std::uint32_t tau : {1U, 12U}) {
      SweepCase sc;
      sc.method = method;
      sc.generator = 0;
      sc.eps = 0.35;
      sc.tau = tau;
      sc.window = 400;
      sc.stride = 80;
      sc.dims = 2;
      sc.name = std::string(method_names[method]) + "_tau" +
                std::to_string(tau);
      cases.push_back(sc);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactBaselineSweepTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<SweepCase>& param_info) {
                           return param_info.param.name;
                         });

// EXTRA-N structural details.
TEST(ExtraNTest, ViewCountMatchesWindowStrideRatio) {
  ExtraN extra(2, 0.3, 4, 600, 50);
  EXPECT_EQ(extra.num_views(), 12u);
}

TEST(ExtraNTest, NoRangeSearchesOnPureExpirySlides) {
  ExtraN extra(2, 0.3, 4, 200, 100);
  UniformGenerator gen(2, 0.0, 5.0);
  extra.Update(gen.NextPoints(100), {});
  extra.Update(gen.NextPoints(100), {});
  const std::vector<Point> first_batch = [] {
    UniformGenerator g(2, 0.0, 5.0);
    return g.NextPoints(100);
  }();
  // Expiry-only slide: no insertions, only deletions — zero searches.
  extra.Update({}, first_batch);
  EXPECT_EQ(extra.last_range_searches(), 0u);
}

}  // namespace
}  // namespace disc
