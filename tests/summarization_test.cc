// Deeper behavioural tests for the summarization-based baselines (DBSTREAM,
// EDMStream): decay semantics, micro-cluster management, and the
// quality-degradation property the paper demonstrates in Figs. 9-10.

#include <memory>

#include "baselines/dbscan.h"
#include "baselines/dbstream.h"
#include "baselines/edmstream.h"
#include "eval/ari.h"
#include "eval/partition.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/maze_generator.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

Point P2(PointId id, double x, double y) {
  Point p;
  p.id = id;
  p.dims = 2;
  p.x[0] = x;
  p.x[1] = y;
  return p;
}

TEST(DbStreamTest, CreatesMicroClusterPerDenseRegion) {
  DbStream::Options o;
  o.radius = 0.2;
  DbStream dbs(2, o);
  std::vector<Point> batch;
  PointId id = 0;
  for (int rep = 0; rep < 20; ++rep) {
    batch.push_back(P2(id++, 1.0, 1.0));
    batch.push_back(P2(id++, 5.0, 5.0));
  }
  dbs.Update(batch, {});
  EXPECT_EQ(dbs.num_micro_clusters(), 2u);
}

TEST(DbStreamTest, WeakMicroClustersArePrunedByDecay) {
  DbStream::Options o;
  o.radius = 0.2;
  o.decay_lambda = 0.05;  // Aggressive decay.
  o.w_min = 0.5;
  o.cleanup_every = 50;
  DbStream dbs(2, o);
  // One point far away, then lots of traffic elsewhere.
  dbs.Update({P2(0, 50.0, 50.0)}, {});
  std::vector<Point> busy;
  for (PointId id = 1; id < 400; ++id) busy.push_back(P2(id, 1.0, 1.0));
  dbs.Update(busy, {});
  // The lone far-away micro-cluster has decayed below w_min and was pruned.
  EXPECT_EQ(dbs.num_micro_clusters(), 1u);
}

TEST(DbStreamTest, SharedDensityConnectsOverlappingRegions) {
  DbStream::Options o;
  o.radius = 0.5;
  o.alpha = 0.05;
  DbStream dbs(2, o);
  // Points alternating in the overlap zone of two micro-cluster sites.
  std::vector<Point> batch;
  PointId id = 0;
  for (int rep = 0; rep < 50; ++rep) {
    batch.push_back(P2(id++, 1.0, 1.0));
    batch.push_back(P2(id++, 1.6, 1.0));
    batch.push_back(P2(id++, 1.3, 1.0));  // Falls in both radii.
  }
  dbs.Update(batch, {});
  const ClusteringSnapshot snap = dbs.Snapshot();
  EXPECT_EQ(snap.NumClusters(), 1u);  // Macro-cluster spans both.
}

TEST(DbStreamTest, SnapshotLabelsFarPointsNoise) {
  DbStream::Options o;
  o.radius = 0.3;
  DbStream dbs(2, o);
  std::vector<Point> cluster;
  for (PointId id = 0; id < 30; ++id) cluster.push_back(P2(id, 1.0, 1.0));
  cluster.push_back(P2(100, 9.0, 9.0));
  dbs.Update(cluster, {});
  const Labeling l = ToLabeling(dbs.Snapshot());
  // The lone point sits in its own micro-cluster (not noise), but any point
  // whose id we removed from the window is not labeled at all.
  EXPECT_EQ(l.cid.size(), 31u);
}

TEST(EdmStreamTest, CellsFormPerRegionAndAbsorbNearbyPoints) {
  EdmStream::Options o;
  o.radius = 0.3;
  EdmStream edm(2, o);
  std::vector<Point> batch;
  PointId id = 0;
  for (int rep = 0; rep < 25; ++rep) {
    batch.push_back(P2(id++, 1.0 + 0.01 * rep, 1.0));
    batch.push_back(P2(id++, 6.0, 6.0 - 0.01 * rep));
  }
  edm.Update(batch, {});
  EXPECT_GE(edm.num_cells(), 2u);
  EXPECT_LE(edm.num_cells(), 6u);  // Far fewer cells than points.
  EXPECT_EQ(edm.Snapshot().NumClusters(), 2u);
}

TEST(EdmStreamTest, LowDensityCellsAreOutliers) {
  EdmStream::Options o;
  o.radius = 0.3;
  o.rho_min = 5.0;
  EdmStream edm(2, o);
  std::vector<Point> batch;
  for (PointId id = 0; id < 30; ++id) batch.push_back(P2(id, 1.0, 1.0));
  batch.push_back(P2(100, 9.0, 9.0));  // Lone cell: density 1 < rho_min.
  edm.Update(batch, {});
  const Labeling l = ToLabeling(edm.Snapshot());
  EXPECT_EQ(l.category.at(100), Category::kNoise);
  EXPECT_NE(l.cid.at(0), kNoiseCluster);
}

TEST(EdmStreamTest, DeltaThresholdSeparatesDensityPeaks) {
  // Two equally dense regions 5 apart: a small threshold keeps them apart, a
  // huge one chains them into a single cluster.
  auto run = [](double threshold) {
    EdmStream::Options o;
    o.radius = 0.3;
    o.delta_threshold = threshold;
    o.rho_min = 1.0;
    EdmStream edm(2, o);
    std::vector<Point> batch;
    PointId id = 0;
    for (int rep = 0; rep < 25; ++rep) {
      batch.push_back(P2(id++, 1.0, 1.0));
      batch.push_back(P2(id++, 6.0, 1.0));
    }
    edm.Update(batch, {});
    return edm.Snapshot().NumClusters();
  };
  EXPECT_EQ(run(1.0), 2u);
  EXPECT_EQ(run(100.0), 1u);
}

// The paper's central quality claim (Sec. VI-E): summarization quality
// degrades as the window grows while the stream's cluster structure gets
// finer; DISC-level accuracy is out of reach for DBSTREAM on Maze.
TEST(SummarizationQualityTest, DbstreamAriDegradesWithWindowGrowth) {
  auto measure = [](std::size_t window_size) {
    MazeGenerator::Options mo;
    mo.num_seeds = 40;
    mo.extent = 60.0;
    mo.seed = 31;
    MazeGenerator source(mo);
    DbStream::Options o;
    o.radius = 0.15;
    o.decay_lambda = 4.0 / static_cast<double>(window_size);
    o.alpha = 0.03;
    o.eta = 0.02;
    DbStream dbs(2, o);
    const std::size_t stride = window_size / 10;
    CountBasedWindow window(window_size, stride);
    std::vector<LabeledPoint> all;
    for (int s = 0; s < 14; ++s) {
      std::vector<Point> batch;
      for (std::size_t i = 0; i < stride; ++i) {
        all.push_back(source.Next());
        batch.push_back(all.back().point);
      }
      WindowDelta d = window.Advance(batch);
      dbs.Update(d.incoming, d.outgoing);
    }
    std::vector<PointId> ids;
    std::vector<ClusterId> truth;
    const std::size_t base = all.size() - window.contents().size();
    for (std::size_t i = 0; i < window.contents().size(); ++i) {
      ids.push_back(all[base + i].point.id);
      truth.push_back(all[base + i].true_label);
    }
    return AdjustedRandIndex(LabelsFor(dbs.Snapshot(), ids), truth);
  };
  const double small_window_ari = measure(2000);
  const double large_window_ari = measure(16000);
  EXPECT_GT(small_window_ari, large_window_ari + 0.1);
}

}  // namespace
}  // namespace disc
