// End-to-end integration: the full application stack — generator ->
// pipeline -> DISC -> tracker — run for many slides, with a checkpoint
// round-trip in the middle, and the benchmark dataset specs sanity-checked
// for calibration.

#include <sstream>

#include "baselines/dbscan.h"
#include "bench/datasets.h"
#include "core/cluster_tracker.h"
#include "core/disc.h"
#include "core/pipeline.h"
#include "eval/equivalence.h"
#include "eval/kdistance.h"
#include "gtest/gtest.h"
#include "stream/netflow_generator.h"

namespace disc {
namespace {

TEST(IntegrationTest, PipelineTrackerCheckpointRoundTrip) {
  NetflowGenerator::Options gen_options;
  gen_options.seed = 101;
  NetflowGenerator source(gen_options);
  DiscConfig config;
  config.eps = 0.6;
  config.tau = 8;
  Disc clusterer(3, config);
  ClusterTracker tracker;
  StreamingPipeline pipeline(&source, &clusterer, 3000, 300);

  pipeline.Run(20, [&](const SlideReport& report) {
    tracker.Observe(report.slide_index, clusterer.last_events(),
                    clusterer.Snapshot());
    return true;
  });
  ASSERT_GT(tracker.num_alive(), 3u);  // The service profiles.
  const std::size_t alive_before = tracker.num_alive();

  // Checkpoint mid-stream and continue in a fresh instance, seeding the
  // resumed pipeline's window from the restored clusterer.
  std::stringstream buffer;
  ASSERT_TRUE(clusterer.SaveCheckpoint(buffer).ok());
  Disc restored(3, config);
  ASSERT_TRUE(restored.LoadCheckpoint(buffer).ok());
  StreamingPipeline resumed(&source, &restored, 3000, 300,
                            restored.WindowContents());
  resumed.Run(10);

  const ClusteringSnapshot snap = restored.Snapshot();
  EXPECT_EQ(restored.window_size(), 3000u);
  EXPECT_GE(snap.NumClusters(), alive_before - 3);
}

TEST(IntegrationTest, RestoredPipelineStaysExactAgainstDbscan) {
  NetflowGenerator::Options gen_options;
  gen_options.seed = 102;
  NetflowGenerator source(gen_options);
  DiscConfig config;
  config.eps = 0.6;
  config.tau = 8;
  Disc clusterer(3, config);
  CountBasedWindow window(2000, 250);
  // Run, checkpoint, restore, keep running with the same window object so
  // we can hand the exact contents to DBSCAN.
  Disc* active = &clusterer;
  Disc restored(3, config);
  for (int s = 0; s < 24; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(250));
    active->Update(d.incoming, d.outgoing);
    if (s == 11) {
      std::stringstream buffer;
      ASSERT_TRUE(active->SaveCheckpoint(buffer).ok());
      ASSERT_TRUE(restored.LoadCheckpoint(buffer).ok());
      active = &restored;
      continue;
    }
    if (s % 4 != 3) continue;
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, config.eps, config.tau);
    const EquivalenceResult eq = CheckSameClustering(
        active->Snapshot(), truth.snapshot, contents, config.eps);
    ASSERT_TRUE(eq.ok) << "slide " << s << ": " << eq.error;
  }
}

// The benchmark dataset specs must stay calibrated: clusters exist, noise
// exists (except where the generator has none), and the density threshold
// sits in a sane relation to the measured neighborhood sizes.
TEST(DatasetSpecTest, StandardSpecsProduceSaneClusterings) {
  for (const bench::DatasetSpec& spec : bench::StandardDatasets(0.25)) {
    auto source = spec.make(7);
    std::vector<Point> window;
    window.reserve(spec.window);
    for (std::size_t i = 0; i < spec.window; ++i) {
      window.push_back(source->Next().point);
    }
    const DbscanResult result = RunDbscan(window, spec.eps, spec.tau);
    EXPECT_GE(result.snapshot.NumClusters(), 3u) << spec.name;
    std::size_t cores = 0;
    for (Category c : result.snapshot.categories) {
      if (c == Category::kCore) ++cores;
    }
    const double core_fraction =
        static_cast<double>(cores) / static_cast<double>(window.size());
    EXPECT_GT(core_fraction, 0.05) << spec.name;
    EXPECT_LT(core_fraction, 0.999) << spec.name;
  }
}

TEST(DatasetSpecTest, KDistanceSuggestionTracksChosenEps) {
  // The k-distance method the paper uses should land within a small factor
  // of each spec's chosen eps — evidence the analogues sit in the same
  // density regime as their real counterparts.
  for (const bench::DatasetSpec& spec : bench::StandardDatasets(0.25)) {
    auto source = spec.make(11);
    std::vector<Point> window;
    for (std::size_t i = 0; i < spec.window; ++i) {
      window.push_back(source->Next().point);
    }
    const ParameterSuggestion s =
        SuggestParameters(window, spec.tau - 1, 1500);
    EXPECT_GT(s.eps, spec.eps / 4.0) << spec.name;
    EXPECT_LT(s.eps, spec.eps * 4.0) << spec.name;
  }
}

}  // namespace
}  // namespace disc
