// Edge-case coverage for the sliding-window substrate: seeded (resumption)
// windows, ragged strides, and time-based boundary semantics.

#include "core/disc.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/sliding_window.h"
#include "stream/stream_source.h"

namespace disc {
namespace {

TEST(SeededWindowTest, EvictionContinuesFromSeededContents) {
  UniformGenerator gen(2, 0.0, 1.0);
  std::vector<Point> seed = gen.NextPoints(10);
  CountBasedWindow window(10, 5, seed);
  EXPECT_TRUE(window.full());
  WindowDelta d = window.Advance(gen.NextPoints(5));
  ASSERT_EQ(d.outgoing.size(), 5u);
  // Oldest seeded points leave first.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(d.outgoing[i].id, seed[i].id);
  }
  EXPECT_EQ(window.contents().size(), 10u);
}

TEST(SeededWindowTest, PartialSeedFillsBeforeEvicting) {
  UniformGenerator gen(2, 0.0, 1.0);
  std::vector<Point> seed = gen.NextPoints(4);
  CountBasedWindow window(10, 5, seed);
  EXPECT_FALSE(window.full());
  WindowDelta d1 = window.Advance(gen.NextPoints(5));
  EXPECT_TRUE(d1.outgoing.empty());
  WindowDelta d2 = window.Advance(gen.NextPoints(5));
  EXPECT_EQ(d2.outgoing.size(), 4u);  // 4 + 5 + 5 - 10.
  EXPECT_EQ(d2.outgoing[0].id, seed[0].id);
}

TEST(SeededWindowTest, MatchesUnseededRunPointForPoint) {
  // Driving a fresh window for 8 strides must equal seeding a second window
  // with the first's mid-run contents and driving the remainder.
  BlobsGenerator::Options o;
  o.seed = 111;
  BlobsGenerator gen_a(o);
  BlobsGenerator gen_b(o);

  CountBasedWindow continuous(300, 50);
  for (int s = 0; s < 5; ++s) continuous.Advance(gen_a.NextPoints(50));
  std::vector<Point> mid(continuous.contents().begin(),
                         continuous.contents().end());
  for (int s = 0; s < 3; ++s) continuous.Advance(gen_a.NextPoints(50));

  for (int s = 0; s < 5; ++s) gen_b.NextPoints(50);  // Skip the same prefix.
  CountBasedWindow resumed(300, 50, mid);
  for (int s = 0; s < 3; ++s) resumed.Advance(gen_b.NextPoints(50));

  ASSERT_EQ(continuous.contents().size(), resumed.contents().size());
  for (std::size_t i = 0; i < continuous.contents().size(); ++i) {
    EXPECT_EQ(continuous.contents()[i].id, resumed.contents()[i].id);
  }
}

TEST(CountBasedWindowTest, RaggedFinalStrideEvictsCorrectly) {
  UniformGenerator gen(2, 0.0, 1.0);
  CountBasedWindow window(10, 4);
  window.Advance(gen.NextPoints(4));
  window.Advance(gen.NextPoints(4));
  window.Advance(gen.NextPoints(4));  // 12 pushed: 2 evicted.
  EXPECT_EQ(window.contents().size(), 10u);
  // A short (end-of-stream) batch still works.
  WindowDelta d = window.Advance(gen.NextPoints(2));
  EXPECT_EQ(d.incoming.size(), 2u);
  EXPECT_EQ(d.outgoing.size(), 2u);
  // An empty batch changes nothing.
  WindowDelta e = window.Advance({});
  EXPECT_TRUE(e.incoming.empty());
  EXPECT_TRUE(e.outgoing.empty());
}

TEST(TimeBasedWindowTest, BoundaryTimestampsAreExclusiveAtTheTail) {
  // Window span 10, stride 5. After the first advance the window is (‑5, 5].
  TimeBasedWindow window(10.0, 5.0);
  UniformGenerator gen(2, 0.0, 1.0);
  std::vector<TimeBasedWindow::TimedPoint> batch;
  batch.push_back({gen.Next().point, 0.0});
  batch.push_back({gen.Next().point, 5.0});
  window.Advance(batch);
  // Second advance: window (0, 10]. The t=0.0 point expires exactly at the
  // cutoff (cutoff is inclusive for eviction).
  WindowDelta d = window.Advance({});
  ASSERT_EQ(d.outgoing.size(), 1u);
  EXPECT_EQ(window.contents().size(), 1u);
}

TEST(TimeBasedWindowTest, EmptySlidesKeepAdvancingTheClock) {
  TimeBasedWindow window(4.0, 2.0);
  UniformGenerator gen(2, 0.0, 1.0);
  window.Advance({{gen.Next().point, 1.0}});
  EXPECT_DOUBLE_EQ(window.window_end(), 2.0);
  window.Advance({});
  window.Advance({});  // Window now (2, 6]: the t=1 point expired.
  EXPECT_DOUBLE_EQ(window.window_end(), 6.0);
  EXPECT_TRUE(window.contents().empty());
}

TEST(DiscWindowInterplayTest, OneDimensionalStreamsWork) {
  // dims=1 is a legal configuration end to end.
  DiscConfig config;
  config.eps = 0.2;
  config.tau = 3;
  Disc disc(1, config);
  UniformGenerator gen(1, 0.0, 4.0, 7);
  CountBasedWindow window(200, 50);
  for (int s = 0; s < 8; ++s) {
    WindowDelta d = window.Advance(gen.NextPoints(50));
    disc.Update(d.incoming, d.outgoing);
  }
  EXPECT_EQ(disc.window_size(), 200u);
  const ClusteringSnapshot snap = disc.Snapshot();
  EXPECT_EQ(snap.size(), 200u);
}

}  // namespace
}  // namespace disc
