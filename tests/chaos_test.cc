// Crash/recovery chaos harness (ctest -L chaos). Streams multi-session
// workloads through DiscEngine while a seeded FailPlan fires faults at the
// checkpoint, scheduling, thread-pool, and HTTP seams, then proves the
// system-level invariants the engine claims:
//
//   * every Checkpoint() that reported success is recoverable via Open()
//     and clustering-equal (CheckSameClustering) to an uninterrupted
//     reference run of the same stream;
//   * no queued slide is ever silently dropped — slides fed equals slides
//     run plus slides still pending, at every step;
//   * injected HTTP faults never corrupt /metrics: the next scrape is
//     byte-identical to a clean one;
//   * every failure surfaces as a descriptive Status or a structured
//     DISC_LOG event, never as a crash — and each armed site's exported
//     hit counter proves the fault actually fired;
//   * the whole storm is deterministic: same seed, same fault trace.
//
// Seeds come from kChaosSeeds (pinned so CI failures replay), overridable
// with DISC_CHAOS_SEED=<n> for single-seed reproduction. Also here: the
// DiscEngine::Open corruption matrix (truncations, bit flips, stray .tmp
// siblings) and the HttpServer error paths telemetry_test leaves out.

#include <algorithm>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/disc.h"
#include "engine/disc_engine.h"
#include "eval/equivalence.h"
#include "gtest/gtest.h"
#include "obs/http_server.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"
#include "stream/blobs_generator.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

using failpoint::FailAction;
using failpoint::FailPlan;
using failpoint::FailRule;
using failpoint::Registry;
using failpoint::ScopedFailPlan;

constexpr std::size_t kWindow = 120;
constexpr std::size_t kStride = 30;

// Pinned seeds CI replays (scripts/ci.sh chaos stage runs all of them and
// prints the offender on failure).
const std::uint64_t kChaosSeeds[] = {1701, 424242, 777000777};

std::vector<std::uint64_t> SeedsUnderTest() {
  if (const char* override_seed = std::getenv("DISC_CHAOS_SEED")) {
    return {std::strtoull(override_seed, nullptr, 10)};
  }
  return {std::begin(kChaosSeeds), std::end(kChaosSeeds)};
}

DiscConfig TestConfig() {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  return config;
}

SessionOptions TestSession() {
  SessionOptions options;
  options.method = "DISC";
  options.spec.dims = 2;
  options.spec.window_size = kWindow;
  options.spec.stride = kStride;
  options.spec.disc = TestConfig();
  return options;
}

std::vector<std::vector<Point>> MakeSlides(std::uint64_t seed,
                                           std::size_t num_slides) {
  BlobsGenerator::Options o;
  o.dims = 2;
  o.num_blobs = 4;
  o.extent = 8.0;
  o.stddev = 0.3;
  o.noise_fraction = 0.1;
  o.drift = 0.05;
  o.seed = seed;
  BlobsGenerator gen(o);
  std::vector<std::vector<Point>> slides(num_slides);
  for (auto& slide : slides) slide = gen.NextPoints(kStride);
  return slides;
}

std::string SpillDir(const std::string& leaf) {
  const std::string dir = testing::TempDir() + "disc_chaos_" + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

FailRule Rule(const std::string& site, FailAction action, double probability,
              std::uint64_t skip = 0) {
  FailRule rule;
  rule.site = site;
  rule.action = action;
  rule.probability = probability;
  rule.skip = skip;
  return rule;
}

// Captures structured records so fault surfacing can be asserted.
class CaptureSink : public obs::LogSink {
 public:
  void Write(const obs::LogRecord& record) override {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(record);
  }
  std::vector<obs::LogRecord> records() {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
  }
  std::size_t CountEvent(const std::string& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const obs::LogRecord& r : records_) {
      if (r.event == event) ++n;
    }
    return n;
  }

 private:
  std::mutex mutex_;
  std::vector<obs::LogRecord> records_;
};

class ScopedSink {
 public:
  explicit ScopedSink(obs::LogSink* sink)
      : previous_(obs::SetLogSink(sink)) {}
  ~ScopedSink() { obs::SetLogSink(previous_); }

 private:
  obs::LogSink* previous_;
};

// ---------------------------------------------------------------------------
// The fault storm
// ---------------------------------------------------------------------------

// One seeded chaos run: kSessions sessions, kTotal slides each, fed slide
// by slide with periodic Checkpoint attempts while the plan fires faults
// across every engine seam. Returns nothing — every invariant is asserted
// inside. The storm itself must be deterministic, so the caller can run it
// twice and compare fault traces.
struct StormResult {
  std::size_t checkpoints_ok = 0;
  std::size_t checkpoints_failed = 0;
  std::size_t feed_rejections = 0;
  std::uint64_t total_fires = 0;
  std::string last_good_dir;  // Spill dir holding the last OK generation.
};

StormResult RunStorm(std::uint64_t seed, const std::string& dir_leaf,
                     CaptureSink* sink) {
  constexpr std::size_t kSessions = 3;
  constexpr std::size_t kTotal = 12;

  std::vector<std::string> names;
  std::vector<std::vector<std::vector<Point>>> streams;
  for (std::size_t i = 0; i < kSessions; ++i) {
    names.push_back("storm_" + std::to_string(i));
    // One spare slide beyond the storm: the lone-drain episode below feeds
    // it to session 0 so ids keep continuing that session's own stream.
    streams.push_back(MakeSlides(9000 + i, kTotal + 1));
  }

  EngineOptions options;
  options.num_threads = 2;
  options.spill_dir = SpillDir(dir_leaf);
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;

  FailPlan plan;
  plan.seed = seed;
  plan.rules.push_back(
      Rule("engine.session.slide", FailAction::kThrow, 0.10));
  plan.rules.push_back(Rule("engine.feed.pre", FailAction::kStatus, 0.05));
  // The record site is hit for every point of every session on every
  // checkpoint (~thousands of draws): left unbounded even a 2% rule would
  // tear every single checkpoint at the record stage and the later sites
  // would never be reached. One torn-record checkpoint is enough.
  plan.rules.push_back(
      Rule("checkpoint.save.record", FailAction::kShortWrite, 0.02));
  plan.rules.back().max_fires = 1;
  plan.rules.push_back(
      Rule("checkpoint.write.pre_rename", FailAction::kStatus, 0.20));
  plan.rules.push_back(
      Rule("engine.checkpoint.manifest", FailAction::kShortWrite, 0.25));
  plan.rules.push_back(Rule("engine.drain.borrow", FailAction::kThrow, 0.05));

  StormResult result;
  {
    DiscEngine engine(options);
    for (const std::string& name : names) {
      EXPECT_TRUE(engine.CreateSession(name, TestSession()).ok());
    }
    ScopedFailPlan armed(plan);

    // Slides actually accepted per session (a rejected FeedSlide leaves
    // the queue untouched, so the slide is retried until accepted — the
    // accounting below pins that nothing accepted ever vanishes).
    std::vector<std::size_t> accepted(kSessions, 0);
    for (std::size_t k = 0; k < kTotal; ++k) {
      for (std::size_t i = 0; i < kSessions; ++i) {
        Status fed = engine.FeedSlide(names[i], streams[i][k]);
        while (!fed.ok()) {
          EXPECT_FALSE(fed.message().empty());
          ++result.feed_rejections;
          fed = engine.FeedSlide(names[i], streams[i][k]);
        }
        ++accepted[i];
      }
      // Drain until every queue is empty: a faulted slide stays pending
      // (never dropped), and the engine must always be able to finish the
      // work once the storm's dice cooperate.
      std::size_t guard = 0;
      while (true) {
        engine.Drain();
        std::size_t pending = 0;
        for (const std::string& name : names) {
          pending += engine.PendingSlides(name);
        }
        if (pending == 0) break;
        if (++guard >= 10000u) {
          ADD_FAILURE()
              << "drain cannot make progress with pending slides (seed "
              << seed << ")";
          return result;
        }
      }
      // No slide silently dropped: everything accepted has run.
      for (std::size_t i = 0; i < kSessions; ++i) {
        EXPECT_EQ(engine.SlidesRun(names[i]), accepted[i])
            << "session " << names[i] << " lost a slide at step " << k
            << " (seed " << seed << ")";
      }
      // Checkpoint every other step; a failure must be descriptive and
      // must leave the previous generation recoverable (checked below via
      // the last OK generation).
      if (k % 2 == 1) {
        const Status saved = engine.Checkpoint();
        if (saved.ok()) {
          ++result.checkpoints_ok;
          result.last_good_dir = options.spill_dir;
        } else {
          ++result.checkpoints_failed;
          EXPECT_FALSE(saved.message().empty());
        }
      }
    }
    // Lone-drain episode: with a single runnable session the scheduler
    // takes the whole-pool borrow path, so "engine.drain.borrow" is
    // exercised on every seed — not only when the storm happens to
    // quarantine all sessions but one.
    {
      Status fed = engine.FeedSlide(names[0], streams[0][kTotal]);
      while (!fed.ok()) {
        ++result.feed_rejections;
        fed = engine.FeedSlide(names[0], streams[0][kTotal]);
      }
      ++accepted[0];
      std::size_t guard = 0;
      while (engine.PendingSlides(names[0]) > 0) {
        engine.Drain();
        if (++guard >= 10000u) {
          ADD_FAILURE() << "lone drain wedged (seed " << seed << ")";
          return result;
        }
      }
      EXPECT_EQ(engine.SlidesRun(names[0]), accepted[0]);
    }
    result.total_fires = Registry::Instance().TotalFires();

    // Every armed site was actually exercised — through the exported
    // counters, the same pipeline a production scrape would read.
    Registry::Instance().ExportCounters(metrics);
    for (const FailRule& rule : plan.rules) {
      EXPECT_GE(Registry::Instance().Hits(rule.site), 1u)
          << "site " << rule.site << " never hit (seed " << seed << ")";
      const std::string name = "disc_failpoint_hits_" +
                               obs::MetricsRegistry::SanitizeName(rule.site);
      EXPECT_GE(metrics.counter(name).value(), 1u)
          << "exported counter missing for " << rule.site;
    }
  }

  // Injected faults must have surfaced as structured events.
  if (result.total_fires > 0) {
    EXPECT_GE(sink->CountEvent("failpoint.fired"), 1u);
  }
  return result;
}

TEST(ChaosStormTest, FaultStormPreservesEveryInvariant) {
  obs::SetLogRateLimit(0.0, 0.0);  // Unthrottled: count every fault event.
  for (const std::uint64_t seed : SeedsUnderTest()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    CaptureSink sink;
    ScopedSink scoped(&sink);
    const StormResult result =
        RunStorm(seed, "storm_" + std::to_string(seed), &sink);
    // The plan's probabilities make a zero-fault storm astronomically
    // unlikely; a zero here means the wiring is dead, not that we got
    // lucky.
    EXPECT_GT(result.total_fires, 0u);

    // Every completed generation is recoverable: open the last OK spill
    // and check each recovered session clusters its window exactly like a
    // fresh replay of the same prefix (the recovery contract is
    // DBSCAN-equality, not byte-identity).
    if (!result.last_good_dir.empty()) {
      EngineOptions open_options;
      open_options.spill_dir = result.last_good_dir;
      Status error;
      std::unique_ptr<DiscEngine> recovered =
          DiscEngine::Open(open_options, &error);
      ASSERT_NE(recovered, nullptr) << error.message();
      for (const std::string& name : recovered->SessionNames()) {
        StreamClusterer* clusterer = recovered->Clusterer(name);
        ASSERT_NE(clusterer, nullptr);
        const Disc& disc = static_cast<const Disc&>(*clusterer);
        const std::size_t slides = recovered->SlidesRun(name);
        ASSERT_GT(slides, 0u);
        // Uninterrupted reference over the same prefix of the same stream.
        const std::size_t index =
            static_cast<std::size_t>(name.back() - '0');
        const std::vector<std::vector<Point>> stream =
            MakeSlides(9000 + index, slides);
        Disc reference(2, TestConfig());
        CountBasedWindow window(kWindow, kStride);
        for (const std::vector<Point>& slide : stream) {
          WindowDelta delta = window.Advance(slide);
          reference.Update(delta.incoming, delta.outgoing);
        }
        const EquivalenceResult eq = CheckSameClustering(
            disc.Snapshot(), reference.Snapshot(), disc.WindowContents(),
            TestConfig().eps);
        EXPECT_TRUE(eq.ok) << "seed " << seed << " session " << name << ": "
                           << eq.error;
      }
      std::filesystem::remove_all(result.last_good_dir);
    }
  }
  obs::SetLogRateLimit(5.0, 10.0);  // Restore the defaults.
}

// Same seed, same storm: the fault trace (fires per site, checkpoint
// outcomes, feed rejections) reproduces exactly.
TEST(ChaosStormTest, StormIsDeterministicPerSeed) {
  obs::SetLogRateLimit(0.0, 0.0);
  const std::uint64_t seed = SeedsUnderTest().front();
  CaptureSink sink_a;
  std::vector<std::uint64_t> fires_a, fires_b;
  const char* kSites[] = {
      "engine.session.slide",       "engine.feed.pre",
      "checkpoint.save.record",     "checkpoint.write.pre_rename",
      "engine.checkpoint.manifest", "engine.drain.borrow"};
  StormResult a, b;
  {
    ScopedSink scoped(&sink_a);
    a = RunStorm(seed, "twin_a", &sink_a);
    for (const char* site : kSites) {
      fires_a.push_back(Registry::Instance().Fires(site));
    }
  }
  CaptureSink sink_b;
  {
    ScopedSink scoped(&sink_b);
    b = RunStorm(seed, "twin_b", &sink_b);
    for (const char* site : kSites) {
      fires_b.push_back(Registry::Instance().Fires(site));
    }
  }
  EXPECT_EQ(fires_a, fires_b);
  EXPECT_EQ(a.checkpoints_ok, b.checkpoints_ok);
  EXPECT_EQ(a.checkpoints_failed, b.checkpoints_failed);
  EXPECT_EQ(a.feed_rejections, b.feed_rejections);
  EXPECT_EQ(a.total_fires, b.total_fires);
  obs::SetLogRateLimit(5.0, 10.0);
}

// A torn checkpoint (short-write into the session records, or a truncated
// manifest) must leave the previously published generation fully live.
TEST(ChaosStormTest, TornCheckpointNeverShadowsThePreviousGeneration) {
  EngineOptions options;
  options.num_threads = 1;
  options.spill_dir = SpillDir("torn_gen");
  DiscEngine engine(options);
  ASSERT_TRUE(engine.CreateSession("victim", TestSession()).ok());
  const auto slides = MakeSlides(31337, 6);
  for (std::size_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(engine.FeedSlide("victim", slides[k]).ok());
  }
  engine.Drain();
  ASSERT_TRUE(engine.Checkpoint().ok());  // Generation 1, clean.

  for (std::size_t k = 3; k < 6; ++k) {
    ASSERT_TRUE(engine.FeedSlide("victim", slides[k]).ok());
  }
  engine.Drain();

  const auto recovered_slides = [&options]() -> std::size_t {
    Status error;
    const std::unique_ptr<DiscEngine> recovered =
        DiscEngine::Open(options, &error);
    EXPECT_NE(recovered, nullptr) << error.message();
    return recovered ? recovered->SlidesRun("victim") : 0;
  };

  {
    // Generation 2 dies mid-record: the torn .tmp is never renamed, so
    // generation 1 stays published.
    FailPlan plan;
    plan.rules.push_back(
        Rule("checkpoint.save.record", FailAction::kShortWrite, 1.0, 5));
    ScopedFailPlan armed(plan);
    const Status torn = engine.Checkpoint();
    ASSERT_FALSE(torn.ok());
    EXPECT_NE(torn.message().find("checkpoint"), std::string::npos);
  }
  EXPECT_EQ(recovered_slides(), 3u);
  {
    // Failure before the rename loop: .tmps fully staged but nothing
    // published — still generation 1 (and the stray .tmps are inert).
    FailPlan plan;
    plan.rules.push_back(
        Rule("checkpoint.write.pre_rename", FailAction::kStatus, 1.0));
    ScopedFailPlan armed(plan);
    ASSERT_FALSE(engine.Checkpoint().ok());
  }
  EXPECT_EQ(recovered_slides(), 3u);
  {
    // Manifest tear: by then every session file has renamed into place, so
    // the old manifest legally serves the *complete* new generation — the
    // contract is "old or new complete spill", never a torn one.
    FailPlan plan;
    plan.rules.push_back(
        Rule("engine.checkpoint.manifest", FailAction::kShortWrite, 1.0));
    ScopedFailPlan armed(plan);
    ASSERT_FALSE(engine.Checkpoint().ok());
  }
  Status error;
  const std::unique_ptr<DiscEngine> recovered =
      DiscEngine::Open(options, &error);
  ASSERT_NE(recovered, nullptr) << error.message();
  ASSERT_EQ(recovered->SlidesRun("victim"), 6u);
  // And that generation is the real thing: clustering-equal to an
  // uninterrupted 6-slide replay.
  Disc reference(2, TestConfig());
  CountBasedWindow window(kWindow, kStride);
  for (const std::vector<Point>& slide : slides) {
    WindowDelta delta = window.Advance(slide);
    reference.Update(delta.incoming, delta.outgoing);
  }
  const Disc& disc =
      static_cast<const Disc&>(*recovered->Clusterer("victim"));
  const EquivalenceResult eq =
      CheckSameClustering(disc.Snapshot(), reference.Snapshot(),
                          disc.WindowContents(), TestConfig().eps);
  EXPECT_TRUE(eq.ok) << eq.error;
  std::filesystem::remove_all(options.spill_dir);
}

// A slide fault during the pre-checkpoint drain must refuse the checkpoint
// (descriptive Status) instead of spilling a state that forgets the queued
// slide — and the slide must still run once the fault clears.
TEST(ChaosStormTest, CheckpointRefusesWhenDrainCannotFinish) {
  EngineOptions options;
  options.num_threads = 1;
  options.spill_dir = SpillDir("refused");
  DiscEngine engine(options);
  ASSERT_TRUE(engine.CreateSession("stuck", TestSession()).ok());
  const auto slides = MakeSlides(555, 1);
  ASSERT_TRUE(engine.FeedSlide("stuck", slides[0]).ok());
  {
    FailPlan plan;
    plan.rules.push_back(
        Rule("engine.session.slide", FailAction::kThrow, 1.0));
    ScopedFailPlan armed(plan);
    const Status refused = engine.Checkpoint();
    ASSERT_FALSE(refused.ok());
    EXPECT_NE(refused.message().find("queued slide"), std::string::npos);
    EXPECT_EQ(engine.PendingSlides("stuck"), 1u);
  }
  // Fault cleared: the slide drains and the checkpoint lands.
  EXPECT_EQ(engine.Drain(), 1u);
  EXPECT_TRUE(engine.Checkpoint().ok());
  std::filesystem::remove_all(options.spill_dir);
}

// Injected thread-pool dispatch faults surface through ParallelFor without
// losing slides: the drain reports the error path via logs, pending work
// survives, and a later drain completes it.
TEST(ChaosStormTest, ThreadPoolFaultsNeverDropSlides) {
  obs::SetLogRateLimit(0.0, 0.0);
  CaptureSink sink;
  ScopedSink scoped(&sink);
  EngineOptions options;
  options.num_threads = 3;  // Pool present: dispatch sites are exercised.
  DiscEngine engine(options);
  const auto streams_a = MakeSlides(11, 4);
  const auto streams_b = MakeSlides(22, 4);
  ASSERT_TRUE(engine.CreateSession("pool_a", TestSession()).ok());
  ASSERT_TRUE(engine.CreateSession("pool_b", TestSession()).ok());
  {
    FailPlan plan;
    plan.seed = 7;
    plan.rules.push_back(
        Rule("threadpool.dispatch", FailAction::kThrow, 0.20));
    ScopedFailPlan armed(plan);
    for (std::size_t k = 0; k < 4; ++k) {
      ASSERT_TRUE(engine.FeedSlide("pool_a", streams_a[k]).ok());
      ASSERT_TRUE(engine.FeedSlide("pool_b", streams_b[k]).ok());
      std::size_t guard = 0;
      while (engine.PendingSlides("pool_a") + engine.PendingSlides("pool_b") >
             0) {
        engine.Drain();
        ASSERT_LT(++guard, 10000u);
      }
    }
    EXPECT_GE(Registry::Instance().Hits("threadpool.dispatch"), 1u);
  }
  EXPECT_EQ(engine.SlidesRun("pool_a"), 4u);
  EXPECT_EQ(engine.SlidesRun("pool_b"), 4u);
  obs::SetLogRateLimit(5.0, 10.0);
}

// ---------------------------------------------------------------------------
// HTTP chaos: injected faults must never corrupt the next scrape
// ---------------------------------------------------------------------------

TEST(ChaosHttpTest, InjectedHttpFaultsNeverCorruptTheNextScrape) {
  obs::MetricsRegistry metrics;
  metrics.counter("chaos_requests_total", "storm fixture").Add(42);
  metrics.gauge("chaos_depth", "storm fixture").Set(3.5);
  obs::HttpServerOptions server_options;
  server_options.port = 0;
  server_options.metrics = &metrics;
  obs::HttpServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  // Clean reference scrape (quiesced registry, so bytes are stable).
  int status = 0;
  const std::string reference = obs::HttpGet(port, "/metrics", &status);
  ASSERT_EQ(status, 200);
  ASSERT_FALSE(reference.empty());

  {
    FailPlan plan;
    plan.seed = 3;
    plan.rules.push_back(
        Rule("http.response.send", FailAction::kShortWrite, 0.5));
    plan.rules.back().short_write_limit = 40;  // Mid-header tear.
    plan.rules.push_back(Rule("http.worker.handle", FailAction::kThrow, 0.2));
    plan.rules.push_back(Rule("http.accept.conn", FailAction::kDelay, 0.2));
    plan.rules.back().delay_ms = 2;
    ScopedFailPlan armed(plan);
    for (int i = 0; i < 30; ++i) {
      int fault_status = 0;
      const std::string body =
          obs::HttpGet(port, "/metrics", &fault_status);
      // Either the full clean body arrived or the fault tore/killed the
      // response — but a torn response is visibly torn (no status parsed
      // or a short body), never a plausible-but-wrong exposition.
      if (fault_status == 200 && body == reference) continue;
      EXPECT_NE(body, reference);
    }
    EXPECT_GE(Registry::Instance().Hits("http.response.send"), 1u);
    EXPECT_GE(Registry::Instance().Hits("http.worker.handle"), 1u);
    EXPECT_GE(Registry::Instance().Hits("http.accept.conn"), 1u);
  }

  // Disarmed again: the very next scrape is byte-identical to the clean
  // reference — no fault left residue in the registry or the server.
  for (int i = 0; i < 3; ++i) {
    int clean_status = 0;
    const std::string body = obs::HttpGet(port, "/metrics", &clean_status);
    EXPECT_EQ(clean_status, 200);
    EXPECT_EQ(body, reference);
  }
  server.Stop();
}

// ---------------------------------------------------------------------------
// HttpServer error paths telemetry_test misses
// ---------------------------------------------------------------------------

// Client connects, sends a valid request, then vanishes before reading the
// response: SendAll must absorb the dead peer (EPIPE/ECONNRESET, no
// SIGPIPE) and the server must keep serving.
TEST(ChaosHttpTest, ClientDisconnectMidResponseIsAbsorbed) {
  obs::MetricsRegistry metrics;
  // A fat body so the response cannot fit any socket buffer race-free.
  for (int i = 0; i < 512; ++i) {
    metrics.counter("bulk_counter_" + std::to_string(i)).Add(1);
  }
  obs::HttpServerOptions server_options;
  server_options.port = 0;
  server_options.metrics = &metrics;
  obs::HttpServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string request =
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    ASSERT_GT(::send(fd, request.data(), request.size(), MSG_NOSIGNAL), 0);
    // Hard close without reading: RST races the in-flight response.
    struct linger hard {};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(fd);
  }
  // The server survived and still serves clean bytes.
  int status = 0;
  const std::string body = obs::HttpGet(port, "/healthz", &status);
  EXPECT_NE(body.find("\"live\":true"), std::string::npos);
  server.Stop();
}

// A request trickled one byte at a time must still parse (the head loop
// accumulates across recv calls) and answer 200.
TEST(ChaosHttpTest, ByteTrickledRequestStillParses) {
  obs::MetricsRegistry metrics;
  metrics.counter("trickle_total").Add(1);
  obs::HttpServerOptions server_options;
  server_options.port = 0;
  server_options.metrics = &metrics;
  obs::HttpServer server(server_options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  const std::string request = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  for (const char c : request) {
    ASSERT_EQ(::send(fd, &c, 1, MSG_NOSIGNAL), 1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  ASSERT_EQ(raw.compare(0, 12, "HTTP/1.1 200"), 0) << raw.substr(0, 64);
  EXPECT_NE(raw.find("trickle_total 1"), std::string::npos);
  server.Stop();
}

// Stop() racing in-flight accepts: hammer the listener from several threads
// while the main thread stops the server. No connection may wedge Stop, no
// thread may race the teardown (run under TSan).
TEST(ChaosHttpTest, StopRacesInFlightAccepts) {
  obs::MetricsRegistry metrics;
  obs::HttpServerOptions server_options;
  server_options.port = 0;
  server_options.metrics = &metrics;
  obs::HttpServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([port, &done] {
      while (!done.load(std::memory_order_acquire)) {
        int status = 0;
        obs::HttpGet(port, "/healthz", &status);  // Errors are fine.
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Stop();  // Must return despite the barrage.
  done.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  EXPECT_FALSE(server.running());
}

// ---------------------------------------------------------------------------
// DiscEngine::Open corruption matrix
// ---------------------------------------------------------------------------

// Builds one small, known-good spill to mutate.
std::string BuildGoodSpill(const std::string& leaf) {
  EngineOptions options;
  options.num_threads = 1;
  options.spill_dir = SpillDir(leaf);
  DiscEngine engine(options);
  SessionOptions session = TestSession();
  session.spec.window_size = 40;
  session.spec.stride = 10;
  EXPECT_TRUE(engine.CreateSession("fuzzed", session).ok());
  BlobsGenerator::Options o;
  o.dims = 2;
  o.num_blobs = 2;
  o.extent = 4.0;
  o.stddev = 0.3;
  o.seed = 77;
  BlobsGenerator gen(o);
  for (int k = 0; k < 5; ++k) {
    EXPECT_TRUE(engine.FeedSlide("fuzzed", gen.NextPoints(10)).ok());
  }
  engine.Drain();
  EXPECT_TRUE(engine.Checkpoint().ok());
  return options.spill_dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Every corrupted spill must yield (a) null engine + non-empty Status, or
// (b) a recovered engine that actually holds the session — never a crash,
// never a silently empty engine.
void ExpectOpenIsSane(const std::string& dir, const std::string& what) {
  EngineOptions options;
  options.spill_dir = dir;
  Status error;
  const std::unique_ptr<DiscEngine> engine = DiscEngine::Open(options, &error);
  if (engine == nullptr) {
    EXPECT_FALSE(error.ok()) << what << ": null engine but OK status";
    EXPECT_FALSE(error.message().empty()) << what;
  } else {
    EXPECT_EQ(engine->session_count(), 1u)
        << what << ": engine opened but silently dropped the session";
  }
}

TEST(CorruptionMatrixTest, TruncationsAtEvery64ByteBoundary) {
  const std::string dir = BuildGoodSpill("trunc");
  const std::string session_path = dir + "/fuzzed.session";
  const std::string manifest_path = dir + "/engine.manifest";
  const std::string session_bytes = ReadFileBytes(session_path);
  const std::string manifest_bytes = ReadFileBytes(manifest_path);
  ASSERT_GT(session_bytes.size(), 64u);

  for (std::size_t cut = 0; cut < session_bytes.size(); cut += 64) {
    WriteFileBytes(session_path, session_bytes.substr(0, cut));
    ExpectOpenIsSane(dir, "session truncated to " + std::to_string(cut));
  }
  WriteFileBytes(session_path, session_bytes);
  for (std::size_t cut = 0; cut < manifest_bytes.size(); cut += 64) {
    WriteFileBytes(manifest_path, manifest_bytes.substr(0, cut));
    ExpectOpenIsSane(dir, "manifest truncated to " + std::to_string(cut));
  }
  WriteFileBytes(manifest_path, manifest_bytes);
  ExpectOpenIsSane(dir, "restored to pristine");  // Sanity: still opens.
  std::filesystem::remove_all(dir);
}

TEST(CorruptionMatrixTest, HeaderBitFlips) {
  const std::string dir = BuildGoodSpill("flip");
  const std::string session_path = dir + "/fuzzed.session";
  const std::string pristine = ReadFileBytes(session_path);
  // The header region: magic, name, method, dims, geometry, config — flip
  // every bit of the first 96 bytes, one at a time.
  const std::size_t header_bytes = std::min<std::size_t>(96, pristine.size());
  for (std::size_t byte = 0; byte < header_bytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = pristine;
      mutated[byte] = static_cast<char>(
          static_cast<unsigned char>(mutated[byte]) ^ (1u << bit));
      WriteFileBytes(session_path, mutated);
      ExpectOpenIsSane(dir, "bit " + std::to_string(bit) + " of byte " +
                                std::to_string(byte));
    }
  }
  WriteFileBytes(session_path, pristine);
  std::filesystem::remove_all(dir);
}

TEST(CorruptionMatrixTest, StrayTmpSiblingsAreIgnored) {
  const std::string dir = BuildGoodSpill("stray");
  // A crashed writer's leftovers must not confuse recovery: Open reads
  // only what the manifest names.
  WriteFileBytes(dir + "/fuzzed.session.tmp", "torn garbage");
  WriteFileBytes(dir + "/engine.manifest.tmp", "DISCENGINE 1\n99\n");
  WriteFileBytes(dir + "/ghost.session", "not even a header");
  EngineOptions options;
  options.spill_dir = dir;
  Status error;
  const std::unique_ptr<DiscEngine> engine = DiscEngine::Open(options, &error);
  ASSERT_NE(engine, nullptr) << error.message();
  EXPECT_EQ(engine->SessionNames(), std::vector<std::string>{"fuzzed"});
  EXPECT_EQ(engine->SlidesRun("fuzzed"), 5u);
  std::filesystem::remove_all(dir);
}

TEST(CorruptionMatrixTest, ManifestNamingAbsentSessionFails) {
  const std::string dir = BuildGoodSpill("absent");
  WriteFileBytes(dir + "/engine.manifest",
                 "DISCENGINE 1\n2\nfuzzed\nnever_spilled\n");
  EngineOptions options;
  options.spill_dir = dir;
  Status error;
  EXPECT_EQ(DiscEngine::Open(options, &error), nullptr);
  EXPECT_NE(error.message().find("never_spilled"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace disc
