// Determinism layer for the parallel CLUSTER stage: snapshots, checkpoints,
// deltas, events, and the deterministic metrics must be byte-identical for
// every DiscConfig::num_threads value — on every synthetic generator and on
// adversarial slides engineered to force multi-starter MS-BFS front meets
// and neo-core merge storms. Covers both parallel_cluster modes (the
// parallel-structure CLUSTER and the legacy interleaved one; each must be
// internally thread-count-deterministic, though the two modes may assign
// cluster ids differently from each other).

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/disc.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/maze_generator.h"
#include "stream/sliding_window.h"
#include "stream/stream_source.h"

namespace disc {
namespace {

// Canonical serialization of everything observable after one Update. Unlike
// parallel_test.cc's helper this does NOT sort the delta vectors: emission
// ORDER is part of the determinism contract here. The metrics suffix pins
// the probe-accounting discipline — only deterministic counters appear
// (speculative_* and the *_ms timings are timing-dependent by design).
std::string CanonicalState(const Disc& disc, const UpdateDelta& delta) {
  std::ostringstream os;
  const ClusteringSnapshot snap = disc.Snapshot();  // Emitted id-sorted.
  for (std::size_t i = 0; i < snap.ids.size(); ++i) {
    os << snap.ids[i] << ':' << static_cast<int>(snap.categories[i]) << ':'
       << snap.cids[i] << ';';
  }
  auto dump = [&os](const std::vector<PointId>& ids) {
    os << '|';
    for (PointId id : ids) os << id << ',';
  };
  dump(delta.entered);
  dump(delta.exited);
  dump(delta.relabeled);
  os << '|';
  for (const ClusterEvent& ev : disc.last_events()) {
    os << static_cast<int>(ev.type) << '(';
    for (ClusterId cid : ev.cids) os << cid << ',';
    os << ')';
  }
  const DiscMetrics& m = disc.last_metrics();
  os << '|' << m.range_searches << ',' << m.collect_searches << ','
     << m.cluster_searches << ',' << m.num_ex_cores << ',' << m.num_neo_cores
     << ',' << m.num_ex_groups << ',' << m.num_neo_groups << ','
     << m.msbfs_expansions << ',' << m.msbfs_rounds << ','
     << m.survivor_reconciliations << ',' << m.nodes_visited << ','
     << m.entries_checked << ',' << m.leaf_entries_tested << ','
     << m.epoch_pruned;
  return os.str();
}

std::string CheckpointBytes(const Disc& disc) {
  std::ostringstream os;
  EXPECT_TRUE(disc.SaveCheckpoint(os).ok());
  return os.str();
}

// ---------------------------------------------------------------------------
// Full-pipeline sweep over every synthetic generator
// ---------------------------------------------------------------------------

struct SweepCase {
  std::string name;
  int generator;  // 0: blobs, 1: drifting blobs, 2: maze, 3: uniform.
  bool parallel_cluster;
};

std::unique_ptr<StreamSource> MakeSource(int generator, std::uint64_t seed) {
  switch (generator) {
    case 0: {
      BlobsGenerator::Options o;
      o.dims = 2;
      o.num_blobs = 6;
      o.extent = 10.0;
      o.stddev = 0.35;
      o.noise_fraction = 0.15;
      o.seed = seed;
      return std::make_unique<BlobsGenerator>(o);
    }
    case 1: {
      BlobsGenerator::Options o;
      o.dims = 2;
      o.num_blobs = 4;
      o.extent = 8.0;
      o.stddev = 0.3;
      o.noise_fraction = 0.1;
      o.drift = 0.05;  // Forces splits/merges/dissipations.
      o.seed = seed;
      return std::make_unique<BlobsGenerator>(o);
    }
    case 2: {
      MazeGenerator::Options o;
      o.num_seeds = 8;
      o.extent = 12.0;
      o.step = 0.08;
      o.jitter = 0.03;
      o.points_per_step = 3;
      o.seed = seed;
      return std::make_unique<MazeGenerator>(o);
    }
    default:
      return std::make_unique<UniformGenerator>(2, 0.0, 6.0, seed);
  }
}

struct PipelineRun {
  std::vector<std::string> per_slide;  // CanonicalState after each Update.
  std::string checkpoint;              // SaveCheckpoint bytes at the end.
};

PipelineRun RunPipeline(const SweepCase& sc, std::uint32_t num_threads,
                        std::uint64_t seed) {
  auto source = MakeSource(sc.generator, seed);
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  config.num_threads = num_threads;
  config.parallel_cluster = sc.parallel_cluster;
  Disc disc(2, config);
  CountBasedWindow window(600, 100);
  PipelineRun run;
  for (int s = 0; s < 12; ++s) {
    WindowDelta d = window.Advance(source->NextPoints(100));
    const UpdateDelta& delta = disc.Update(d.incoming, d.outgoing);
    run.per_slide.push_back(CanonicalState(disc, delta));
  }
  run.checkpoint = CheckpointBytes(disc);
  return run;
}

class ParallelClusterSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ParallelClusterSweepTest, ByteIdenticalAcrossThreadCounts) {
  const SweepCase& sc = GetParam();
  const std::uint64_t seed = 99;
  const PipelineRun baseline = RunPipeline(sc, 1, seed);
  for (std::uint32_t threads : {2u, 4u, 8u}) {
    const PipelineRun run = RunPipeline(sc, threads, seed);
    ASSERT_EQ(run.per_slide.size(), baseline.per_slide.size());
    for (std::size_t s = 0; s < run.per_slide.size(); ++s) {
      ASSERT_EQ(run.per_slide[s], baseline.per_slide[s])
          << sc.name << " seed " << seed << " slide " << s << " threads "
          << threads;
    }
    ASSERT_EQ(run.checkpoint, baseline.checkpoint)
        << sc.name << " seed " << seed << " threads " << threads
        << ": checkpoint bytes diverged";
  }
}

std::vector<SweepCase> MakeSweepCases() {
  std::vector<SweepCase> cases;
  const char* gens[] = {"blobs", "drifting", "maze", "uniform"};
  for (int gen = 0; gen <= 3; ++gen) {
    for (bool parallel : {true, false}) {
      SweepCase sc;
      sc.generator = gen;
      sc.parallel_cluster = parallel;
      sc.name = std::string(gens[gen]) + (parallel ? "_par" : "_seq");
      cases.push_back(sc);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Generators, ParallelClusterSweepTest,
                         ::testing::ValuesIn(MakeSweepCases()),
                         [](const ::testing::TestParamInfo<SweepCase>& param_info) {
                           return param_info.param.name;
                         });

// ---------------------------------------------------------------------------
// Adversarial bridge storm: forced MS-BFS front meets and merge storms
// ---------------------------------------------------------------------------

// A chain of dense clumps along a line, connected end to end. Sliding out
// every third clump shatters the single chain cluster into ~kClumps/3
// components in ONE update — a multi-starter MS-BFS where many fronts
// expand simultaneously and every surviving segment boundary is a front
// meet. Sliding fresh clumps back in re-merges all segments in one update —
// a neo-core merge storm whose cid_list spans every surviving cluster.
class BridgeStorm {
 public:
  static constexpr int kClumps = 30;
  static constexpr int kPointsPerClump = 5;

  explicit BridgeStorm(std::uint32_t num_threads, bool parallel_cluster) {
    DiscConfig config;
    config.eps = 0.3;
    config.tau = 3;
    config.num_threads = num_threads;
    config.parallel_cluster = parallel_cluster;
    disc_ = std::make_unique<Disc>(2, config);
  }

  // Clump points sit within 0.1 of their center; centers are 0.25 apart, so
  // adjacent clumps chain (eps = 0.3) but clumps two apart (0.5) do not.
  std::vector<Point> MakeClump(int clump) {
    std::vector<Point> pts;
    for (int j = 0; j < kPointsPerClump; ++j) {
      Point p;
      p.id = next_id_++;
      p.dims = 2;
      p.x[0] = 0.25 * clump + 0.02 * j;
      p.x[1] = 0.05 * ((j % 2 == 0) ? j : -j);
      pts.push_back(p);
    }
    return pts;
  }

  std::vector<std::string> Run() {
    std::vector<std::string> trace;
    std::vector<std::vector<Point>> clump_pts(kClumps);
    // One long chain cluster.
    std::vector<Point> incoming;
    for (int c = 0; c < kClumps; ++c) {
      clump_pts[c] = MakeClump(c);
      incoming.insert(incoming.end(), clump_pts[c].begin(),
                      clump_pts[c].end());
    }
    trace.push_back(CanonicalState(*disc_, disc_->Update(incoming, {})));

    for (int cycle = 0; cycle < 9; ++cycle) {
      const int phase = cycle % 3;
      // Shatter: every clump with index % 3 == phase leaves at once.
      std::vector<Point> outgoing;
      for (int c = phase; c < kClumps; c += 3) {
        outgoing.insert(outgoing.end(), clump_pts[c].begin(),
                        clump_pts[c].end());
        clump_pts[c].clear();
      }
      trace.push_back(CanonicalState(*disc_, disc_->Update({}, outgoing)));
      // Re-bridge: fresh points (new ids) at the same centers merge every
      // segment back into one chain.
      incoming.clear();
      for (int c = phase; c < kClumps; c += 3) {
        clump_pts[c] = MakeClump(c);
        incoming.insert(incoming.end(), clump_pts[c].begin(),
                        clump_pts[c].end());
      }
      trace.push_back(CanonicalState(*disc_, disc_->Update(incoming, {})));
    }
    trace.push_back(CheckpointBytes(*disc_));
    return trace;
  }

  Disc& disc() { return *disc_; }

 private:
  std::unique_ptr<Disc> disc_;
  PointId next_id_ = 0;
};

TEST(BridgeStormTest, ShatterAndRemergeIsThreadCountDeterministic) {
  for (bool parallel : {true, false}) {
    BridgeStorm base_storm(1, parallel);
    const std::vector<std::string> baseline = base_storm.Run();
    for (std::uint32_t threads : {2u, 4u, 8u}) {
      BridgeStorm storm(threads, parallel);
      const std::vector<std::string> trace = storm.Run();
      ASSERT_EQ(trace.size(), baseline.size());
      for (std::size_t s = 0; s < trace.size(); ++s) {
        ASSERT_EQ(trace[s], baseline[s])
            << "parallel_cluster=" << parallel << " threads " << threads
            << " step " << s;
      }
    }
  }
}

TEST(BridgeStormTest, ShatterActuallyExercisesMultiStarterMsBfs) {
  // Guard against the scenario silently degenerating: the shatter slide must
  // run a split (several MS-BFS components) and the re-bridge slide a merge.
  bool saw_split = false;
  bool saw_merge = false;
  BridgeStorm probe(4, /*parallel_cluster=*/true);
  std::vector<std::vector<Point>> clump_pts(BridgeStorm::kClumps);
  std::vector<Point> incoming;
  for (int c = 0; c < BridgeStorm::kClumps; ++c) {
    clump_pts[c] = probe.MakeClump(c);
    incoming.insert(incoming.end(), clump_pts[c].begin(), clump_pts[c].end());
  }
  Disc& disc = probe.disc();
  disc.Update(incoming, {});
  std::vector<Point> outgoing;
  for (int c = 0; c < BridgeStorm::kClumps; c += 3) {
    outgoing.insert(outgoing.end(), clump_pts[c].begin(), clump_pts[c].end());
  }
  disc.Update({}, outgoing);
  for (const ClusterEvent& ev : disc.last_events()) {
    if (ev.type == ClusterEventType::kSplit) saw_split = true;
  }
  EXPECT_TRUE(saw_split) << "shatter slide produced no split";
  EXPECT_GT(disc.last_metrics().msbfs_rounds, 0u);
  incoming.clear();
  for (int c = 0; c < BridgeStorm::kClumps; c += 3) {
    const std::vector<Point> fresh = probe.MakeClump(c);
    incoming.insert(incoming.end(), fresh.begin(), fresh.end());
  }
  disc.Update(incoming, {});
  for (const ClusterEvent& ev : disc.last_events()) {
    if (ev.type == ClusterEventType::kMerge) saw_merge = true;
  }
  EXPECT_TRUE(saw_merge) << "re-bridge slide produced no merge";
}

// ---------------------------------------------------------------------------
// Execution knobs must not be semantic
// ---------------------------------------------------------------------------

TEST(ParallelClusterKnobTest, MinBatchThresholdDoesNotChangeOutput) {
  auto run = [](std::uint32_t min_batch) {
    auto source = MakeSource(/*generator=*/1, /*seed=*/7);
    DiscConfig config;
    config.eps = 0.4;
    config.tau = 5;
    config.num_threads = 4;
    config.parallel_cluster_min_batch = min_batch;
    Disc disc(2, config);
    CountBasedWindow window(500, 100);
    std::string all;
    for (int s = 0; s < 10; ++s) {
      WindowDelta d = window.Advance(source->NextPoints(100));
      all += CanonicalState(disc, disc.Update(d.incoming, d.outgoing));
    }
    return all + CheckpointBytes(disc);
  };
  const std::string inline_probes = run(1u << 30);  // Never uses the pool.
  const std::string pooled_probes = run(1);         // Always uses the pool.
  ASSERT_EQ(inline_probes, pooled_probes);
}

}  // namespace
}  // namespace disc
