#include <algorithm>
#include <set>
#include <vector>

#include "common/point.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/rtree.h"

namespace disc {
namespace {

Point P2(PointId id, double x, double y) {
  Point p;
  p.id = id;
  p.dims = 2;
  p.x[0] = x;
  p.x[1] = y;
  return p;
}

std::vector<Point> RandomPoints(std::size_t n, std::uint32_t dims,
                                double extent, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Point p;
    p.id = i;
    p.dims = dims;
    for (std::uint32_t d = 0; d < dims; ++d) p.x[d] = rng.Uniform(0.0, extent);
    pts.push_back(p);
  }
  return pts;
}

// Brute-force reference for range queries.
std::set<PointId> BruteRange(const std::vector<Point>& pts, const Point& c,
                             double eps) {
  std::set<PointId> out;
  for (const Point& p : pts) {
    if (WithinEps(p, c, eps)) out.insert(p.id);
  }
  return out;
}

std::set<PointId> TreeRange(const RTree& tree, const Point& c, double eps) {
  std::set<PointId> out;
  tree.RangeSearch(c, eps, [&](PointId id, const Point&) { out.insert(id); });
  return out;
}

TEST(RTreeTest, EmptyTreeSearchesFindNothing) {
  RTree tree(2);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(TreeRange(tree, P2(0, 1.0, 1.0), 5.0).size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, SinglePointInsertAndExactSearch) {
  RTree tree(2);
  tree.Insert(P2(7, 3.0, 4.0));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(TreeRange(tree, P2(100, 0.0, 0.0), 5.0).count(7), 1u);
  EXPECT_EQ(TreeRange(tree, P2(100, 0.0, 0.0), 4.99).count(7), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, RangeSearchMatchesBruteForce2D) {
  const std::vector<Point> pts = RandomPoints(800, 2, 10.0, 1);
  RTree tree(2);
  for (const Point& p : pts) tree.Insert(p);
  ASSERT_TRUE(tree.CheckInvariants());
  Rng rng(2);
  for (int q = 0; q < 60; ++q) {
    Point c = P2(10000 + q, rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0));
    const double eps = rng.Uniform(0.05, 2.0);
    EXPECT_EQ(TreeRange(tree, c, eps), BruteRange(pts, c, eps));
  }
}

TEST(RTreeTest, RangeSearchMatchesBruteForce4D) {
  const std::vector<Point> pts = RandomPoints(500, 4, 5.0, 3);
  RTree tree(4);
  for (const Point& p : pts) tree.Insert(p);
  ASSERT_TRUE(tree.CheckInvariants());
  Rng rng(4);
  for (int q = 0; q < 40; ++q) {
    Point c;
    c.id = 20000 + q;
    c.dims = 4;
    for (int d = 0; d < 4; ++d) c.x[d] = rng.Uniform(0.0, 5.0);
    const double eps = rng.Uniform(0.2, 2.0);
    EXPECT_EQ(TreeRange(tree, c, eps), BruteRange(pts, c, eps));
  }
}

TEST(RTreeTest, DuplicateCoordinatesAreAllKept) {
  RTree tree(2);
  for (PointId id = 0; id < 50; ++id) tree.Insert(P2(id, 1.0, 1.0));
  EXPECT_EQ(tree.size(), 50u);
  EXPECT_EQ(TreeRange(tree, P2(99, 1.0, 1.0), 0.0).size(), 50u);
  ASSERT_TRUE(tree.CheckInvariants());
  // Delete them one by one (by id).
  for (PointId id = 0; id < 50; ++id) {
    EXPECT_TRUE(tree.Delete(P2(id, 1.0, 1.0)));
  }
  EXPECT_TRUE(tree.empty());
}

TEST(RTreeTest, DeleteReturnsFalseForMissingPoint) {
  RTree tree(2);
  tree.Insert(P2(1, 1.0, 1.0));
  EXPECT_FALSE(tree.Delete(P2(2, 1.0, 1.0)));  // Wrong id.
  EXPECT_FALSE(tree.Delete(P2(1, 5.0, 5.0)));  // Wrong location.
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeTest, InterleavedInsertDeleteKeepsInvariantsAndAnswers) {
  Rng rng(5);
  std::vector<Point> live;
  RTree tree(2);
  PointId next_id = 0;
  for (int round = 0; round < 30; ++round) {
    // Insert a batch.
    for (int i = 0; i < 40; ++i) {
      Point p = P2(next_id++, rng.Uniform(0.0, 8.0), rng.Uniform(0.0, 8.0));
      live.push_back(p);
      tree.Insert(p);
    }
    // Delete a random third of live points.
    for (std::size_t i = 0; i < live.size() / 3; ++i) {
      const std::size_t victim =
          static_cast<std::size_t>(rng.UniformInt(0, live.size() - 1));
      ASSERT_TRUE(tree.Delete(live[victim]));
      live[victim] = live.back();
      live.pop_back();
    }
    ASSERT_TRUE(tree.CheckInvariants()) << "round " << round;
    ASSERT_EQ(tree.size(), live.size());
    Point c = P2(900000, rng.Uniform(0.0, 8.0), rng.Uniform(0.0, 8.0));
    const double eps = rng.Uniform(0.1, 3.0);
    ASSERT_EQ(TreeRange(tree, c, eps), BruteRange(live, c, eps));
  }
  // Drain completely.
  for (const Point& p : live) ASSERT_TRUE(tree.Delete(p));
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, CollectAllReturnsEveryPoint) {
  const std::vector<Point> pts = RandomPoints(300, 3, 4.0, 7);
  RTree tree(3);
  for (const Point& p : pts) tree.Insert(p);
  std::vector<Point> all;
  tree.CollectAll(&all);
  ASSERT_EQ(all.size(), pts.size());
  std::set<PointId> ids;
  for (const Point& p : all) ids.insert(p.id);
  EXPECT_EQ(ids.size(), pts.size());
}

TEST(RTreeTest, StatsCountSearches) {
  RTree tree(2);
  for (const Point& p : RandomPoints(100, 2, 5.0, 8)) tree.Insert(p);
  tree.stats().Reset();
  for (int i = 0; i < 7; ++i) {
    TreeRange(tree, P2(1000 + i, 2.0, 2.0), 1.0);
  }
  EXPECT_EQ(tree.stats().range_searches, 7u);
  EXPECT_GT(tree.stats().nodes_visited, 0u);
}

// --- Epoch-based probing (Algorithm 4) ---

TEST(RTreeEpochTest, MarkedEntriesAreSkippedUnderSameTick) {
  const std::vector<Point> pts = RandomPoints(400, 2, 6.0, 9);
  RTree tree(2);
  for (const Point& p : pts) tree.Insert(p);

  const Point center = P2(50000, 3.0, 3.0);
  const double eps = 2.0;
  const std::set<PointId> expected = BruteRange(pts, center, eps);

  const std::uint64_t tick = tree.NewTick();
  std::set<PointId> first;
  tree.EpochRangeSearch(center, eps, tick, [&](PointId id, const Point&) {
    first.insert(id);
    return true;  // Mark everything.
  });
  EXPECT_EQ(first, expected);

  // Same tick: everything marked, nothing reported.
  std::size_t second = 0;
  tree.EpochRangeSearch(center, eps, tick, [&](PointId, const Point&) {
    ++second;
    return true;
  });
  EXPECT_EQ(second, 0u);

  // New tick: everything visible again.
  std::set<PointId> third;
  tree.EpochRangeSearch(center, eps, tree.NewTick(),
                        [&](PointId id, const Point&) {
                          third.insert(id);
                          return true;
                        });
  EXPECT_EQ(third, expected);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeEpochTest, UnmarkedEntriesStayVisible) {
  const std::vector<Point> pts = RandomPoints(200, 2, 6.0, 10);
  RTree tree(2);
  for (const Point& p : pts) tree.Insert(p);
  const Point center = P2(50000, 3.0, 3.0);
  const double eps = 3.0;
  const std::set<PointId> expected = BruteRange(pts, center, eps);

  const std::uint64_t tick = tree.NewTick();
  // Mark only even ids.
  tree.EpochRangeSearch(center, eps, tick, [&](PointId id, const Point&) {
    return id % 2 == 0;
  });
  std::set<PointId> visible;
  tree.EpochRangeSearch(center, eps, tick, [&](PointId id, const Point&) {
    visible.insert(id);
    return false;
  });
  for (PointId id : expected) {
    EXPECT_EQ(visible.count(id), id % 2 == 0 ? 0u : 1u) << id;
  }
}

TEST(RTreeEpochTest, FreshInsertsAreVisibleUnderOldTick) {
  RTree tree(2);
  for (const Point& p : RandomPoints(300, 2, 2.0, 11)) tree.Insert(p);
  const Point center = P2(60000, 1.0, 1.0);
  const std::uint64_t tick = tree.NewTick();
  // Mark the whole neighborhood.
  tree.EpochRangeSearch(center, 1.0, tick,
                        [&](PointId, const Point&) { return true; });
  // Insert a new point inside the marked region.
  tree.Insert(P2(999999, 1.0, 1.0));
  std::set<PointId> seen;
  tree.EpochRangeSearch(center, 1.0, tick, [&](PointId id, const Point&) {
    seen.insert(id);
    return true;
  });
  EXPECT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen.count(999999), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeEpochTest, EpochSearchReducesEntryChecksOnRepeat) {
  const std::vector<Point> pts = RandomPoints(2000, 2, 10.0, 12);
  RTree tree(2);
  for (const Point& p : pts) tree.Insert(p);
  const Point center = P2(70000, 5.0, 5.0);
  const double eps = 4.0;
  const std::uint64_t tick = tree.NewTick();

  tree.stats().Reset();
  tree.EpochRangeSearch(center, eps, tick,
                        [&](PointId, const Point&) { return true; });
  const std::uint64_t first_checks = tree.stats().entries_checked;

  tree.stats().Reset();
  tree.EpochRangeSearch(center, eps, tick,
                        [&](PointId, const Point&) { return true; });
  const std::uint64_t second_checks = tree.stats().entries_checked;
  // Fully-marked subtrees are pruned; subtrees that straddle the ball
  // boundary keep unvisited (out-of-range) entries and must be re-entered,
  // so the reduction is substantial but not total (Alg. 4 semantics).
  EXPECT_LT(second_checks, first_checks * 7 / 10);
}


TEST(RTreeBulkLoadTest, MatchesInsertedTreeOnSearches) {
  const std::vector<Point> pts = RandomPoints(1500, 2, 10.0, 21);
  RTree bulk(2);
  bulk.BulkLoad(pts);
  ASSERT_EQ(bulk.size(), pts.size());
  ASSERT_TRUE(bulk.CheckInvariants());
  Rng rng(22);
  for (int q = 0; q < 40; ++q) {
    Point c = P2(50000 + q, rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0));
    const double eps = rng.Uniform(0.1, 2.0);
    ASSERT_EQ(TreeRange(bulk, c, eps), BruteRange(pts, c, eps));
  }
}

TEST(RTreeBulkLoadTest, WorksAcrossSizesAndDims) {
  for (std::uint32_t dims : {1u, 2u, 3u, 4u}) {
    for (std::size_t n : {0u, 1u, 15u, 16u, 17u, 100u, 777u}) {
      const std::vector<Point> pts = RandomPoints(n, dims, 5.0, 23 + n);
      RTree tree(dims);
      tree.BulkLoad(pts);
      ASSERT_EQ(tree.size(), n) << "dims=" << dims << " n=" << n;
      ASSERT_TRUE(tree.CheckInvariants()) << "dims=" << dims << " n=" << n;
      std::vector<Point> all;
      tree.CollectAll(&all);
      ASSERT_EQ(all.size(), n);
    }
  }
}

TEST(RTreeBulkLoadTest, SupportsSubsequentInsertAndDelete) {
  std::vector<Point> pts = RandomPoints(300, 2, 6.0, 25);
  RTree tree(2);
  tree.BulkLoad(pts);
  // Mutate: delete half, insert new ones.
  for (std::size_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(tree.Delete(pts[i]));
  }
  std::vector<Point> live(pts.begin() + 150, pts.end());
  for (const Point& p : RandomPoints(200, 2, 6.0, 26)) {
    Point q = p;
    q.id += 10000;
    live.push_back(q);
    tree.Insert(q);
  }
  ASSERT_TRUE(tree.CheckInvariants());
  ASSERT_EQ(tree.size(), live.size());
  Point c = P2(90000, 3.0, 3.0);
  ASSERT_EQ(TreeRange(tree, c, 1.5), BruteRange(live, c, 1.5));
}


TEST(RTreeSplitPolicyTest, RStarMatchesBruteForceAndInvariants) {
  const std::vector<Point> pts = RandomPoints(1200, 3, 8.0, 41);
  RTree tree(3, 16, SplitPolicy::kRStar);
  for (const Point& p : pts) tree.Insert(p);
  ASSERT_TRUE(tree.CheckInvariants());
  ASSERT_EQ(tree.size(), pts.size());
  Rng rng(42);
  for (int q = 0; q < 40; ++q) {
    Point c;
    c.id = 777777;
    c.dims = 3;
    for (int d = 0; d < 3; ++d) c.x[d] = rng.Uniform(0.0, 8.0);
    const double eps = rng.Uniform(0.2, 2.0);
    ASSERT_EQ(TreeRange(tree, c, eps), BruteRange(pts, c, eps));
  }
}

TEST(RTreeSplitPolicyTest, RStarSurvivesChurnAndDeletes) {
  Rng rng(43);
  RTree tree(2, 8, SplitPolicy::kRStar);
  std::vector<Point> live;
  PointId next_id = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      Point p = P2(next_id++, rng.Uniform(0.0, 6.0), rng.Uniform(0.0, 6.0));
      live.push_back(p);
      tree.Insert(p);
    }
    for (std::size_t i = 0; i < live.size() / 4; ++i) {
      const std::size_t victim =
          static_cast<std::size_t>(rng.UniformInt(0, live.size() - 1));
      ASSERT_TRUE(tree.Delete(live[victim]));
      live[victim] = live.back();
      live.pop_back();
    }
    ASSERT_TRUE(tree.CheckInvariants()) << "round " << round;
    Point c = P2(888888, rng.Uniform(0.0, 6.0), rng.Uniform(0.0, 6.0));
    ASSERT_EQ(TreeRange(tree, c, 1.0), BruteRange(live, c, 1.0));
  }
}

TEST(RTreeSplitPolicyTest, RStarTendsToLowerOverlapSearchCost) {
  // Not a strict guarantee, but on clustered data the R* split usually
  // produces tighter nodes; assert it is at least not drastically worse.
  Rng rng(44);
  std::vector<Point> pts;
  for (PointId id = 0; id < 4000; ++id) {
    const double cx = 2.0 * static_cast<double>(rng.UniformInt(0, 4));
    pts.push_back(P2(id, cx + rng.Normal(0.0, 0.15),
                     cx + rng.Normal(0.0, 0.15)));
  }
  RTree quadratic(2, 16, SplitPolicy::kQuadratic);
  RTree rstar(2, 16, SplitPolicy::kRStar);
  for (const Point& p : pts) {
    quadratic.Insert(p);
    rstar.Insert(p);
  }
  quadratic.stats().Reset();
  rstar.stats().Reset();
  for (int q = 0; q < 200; ++q) {
    Point c = P2(999999, rng.Uniform(0.0, 9.0), rng.Uniform(0.0, 9.0));
    quadratic.RangeSearch(c, 0.4, [](PointId, const Point&) {});
    rstar.RangeSearch(c, 0.4, [](PointId, const Point&) {});
  }
  EXPECT_LT(rstar.stats().entries_checked,
            quadratic.stats().entries_checked * 3 / 2);
}

}  // namespace
}  // namespace disc
