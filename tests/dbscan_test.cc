// Edge-case and behavioural tests for the reference DBSCAN implementation —
// it is the ground truth every equivalence test leans on, so it gets its own
// scrutiny against hand-computed expectations and a brute-force oracle.

#include <map>
#include <vector>

#include "baselines/dbscan.h"
#include "common/rng.h"
#include "eval/partition.h"
#include "gtest/gtest.h"

namespace disc {
namespace {

Point P2(PointId id, double x, double y) {
  Point p;
  p.id = id;
  p.dims = 2;
  p.x[0] = x;
  p.x[1] = y;
  return p;
}

TEST(RunDbscanTest, EmptyInput) {
  const DbscanResult r = RunDbscan({}, 1.0, 3);
  EXPECT_EQ(r.snapshot.size(), 0u);
  EXPECT_EQ(r.snapshot.NumClusters(), 0u);
}

TEST(RunDbscanTest, SinglePointIsNoiseUnlessTauOne) {
  const std::vector<Point> one = {P2(0, 1.0, 1.0)};
  EXPECT_EQ(RunDbscan(one, 1.0, 2).snapshot.NumClusters(), 0u);
  const DbscanResult r = RunDbscan(one, 1.0, 1);
  EXPECT_EQ(r.snapshot.NumClusters(), 1u);
  EXPECT_EQ(r.snapshot.categories[0], Category::kCore);
}

TEST(RunDbscanTest, HandComputedChain) {
  // Chain of five points spaced 1.0 apart, eps = 1.0, tau = 3 (incl. self):
  // interior points have 3 neighbors -> cores; endpoints have 2 -> borders.
  std::vector<Point> chain;
  for (PointId i = 0; i < 5; ++i) chain.push_back(P2(i, static_cast<double>(i), 0.0));
  const DbscanResult r = RunDbscan(chain, 1.0, 3);
  const Labeling l = ToLabeling(r.snapshot);
  EXPECT_EQ(r.snapshot.NumClusters(), 1u);
  EXPECT_EQ(l.category.at(0), Category::kBorder);
  EXPECT_EQ(l.category.at(1), Category::kCore);
  EXPECT_EQ(l.category.at(2), Category::kCore);
  EXPECT_EQ(l.category.at(3), Category::kCore);
  EXPECT_EQ(l.category.at(4), Category::kBorder);
  EXPECT_EQ(l.cid.at(0), l.cid.at(4));
}

TEST(RunDbscanTest, TwoSeparatedPairsPlusNoise) {
  const std::vector<Point> pts = {P2(0, 0.0, 0.0), P2(1, 0.5, 0.0),
                                  P2(2, 10.0, 0.0), P2(3, 10.5, 0.0),
                                  P2(4, 5.0, 5.0)};
  const DbscanResult r = RunDbscan(pts, 1.0, 2);
  const Labeling l = ToLabeling(r.snapshot);
  EXPECT_EQ(r.snapshot.NumClusters(), 2u);
  EXPECT_NE(l.cid.at(0), l.cid.at(2));
  EXPECT_EQ(l.category.at(4), Category::kNoise);
}

TEST(RunDbscanTest, CategoriesMatchBruteForceDensities) {
  Rng rng(91);
  std::vector<Point> pts;
  for (PointId id = 0; id < 500; ++id) {
    pts.push_back(P2(id, rng.Uniform(0.0, 4.0), rng.Uniform(0.0, 4.0)));
  }
  const double eps = 0.3;
  const std::uint32_t tau = 5;
  const DbscanResult r = RunDbscan(pts, eps, tau);
  const Labeling l = ToLabeling(r.snapshot);
  for (const Point& p : pts) {
    std::size_t n = 0;
    for (const Point& q : pts) {
      if (WithinEps(p, q, eps)) ++n;
    }
    if (n >= tau) {
      EXPECT_EQ(l.category.at(p.id), Category::kCore) << p.id;
    } else {
      EXPECT_NE(l.category.at(p.id), Category::kCore) << p.id;
      // Border iff adjacent to a core.
      bool adjacent_core = false;
      for (const Point& q : pts) {
        if (q.id != p.id && WithinEps(p, q, eps) &&
            l.category.at(q.id) == Category::kCore) {
          adjacent_core = true;
          break;
        }
      }
      EXPECT_EQ(l.category.at(p.id) == Category::kBorder, adjacent_core)
          << p.id;
    }
  }
}

TEST(RunDbscanTest, CorePartitionMatchesBruteForceComponents) {
  Rng rng(92);
  std::vector<Point> pts;
  for (PointId id = 0; id < 400; ++id) {
    pts.push_back(P2(id, rng.Uniform(0.0, 3.0), rng.Uniform(0.0, 3.0)));
  }
  const double eps = 0.25;
  const std::uint32_t tau = 4;
  const DbscanResult r = RunDbscan(pts, eps, tau);
  const Labeling l = ToLabeling(r.snapshot);
  // Union-find over core points by eps-adjacency.
  std::map<PointId, PointId> parent;
  std::function<PointId(PointId)> find = [&](PointId x) {
    while (parent[x] != x) x = parent[x];
    return x;
  };
  std::vector<PointId> cores;
  for (const Point& p : pts) {
    if (l.category.at(p.id) == Category::kCore) {
      parent[p.id] = p.id;
      cores.push_back(p.id);
    }
  }
  std::map<PointId, const Point*> by_id;
  for (const Point& p : pts) by_id[p.id] = &p;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    for (std::size_t j = i + 1; j < cores.size(); ++j) {
      if (WithinEps(*by_id[cores[i]], *by_id[cores[j]], eps)) {
        parent[find(cores[i])] = find(cores[j]);
      }
    }
  }
  // Same component <=> same DBSCAN cid.
  for (std::size_t i = 0; i < cores.size(); ++i) {
    for (std::size_t j = i + 1; j < cores.size(); ++j) {
      EXPECT_EQ(find(cores[i]) == find(cores[j]),
                l.cid.at(cores[i]) == l.cid.at(cores[j]))
          << cores[i] << " vs " << cores[j];
    }
  }
}

TEST(RunDbscanTest, ReportsOneRangeSearchPerPoint) {
  Rng rng(93);
  std::vector<Point> pts;
  for (PointId id = 0; id < 300; ++id) {
    pts.push_back(P2(id, rng.Uniform(0.0, 3.0), rng.Uniform(0.0, 3.0)));
  }
  const DbscanResult r = RunDbscan(pts, 0.3, 4);
  // Classic DBSCAN: at most one neighborhood query per point.
  EXPECT_LE(r.range_searches, pts.size());
  EXPECT_GT(r.range_searches, pts.size() / 2);
}

}  // namespace
}  // namespace disc
