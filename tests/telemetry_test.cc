// Live telemetry plane: the embedded HTTP server must bind ephemerally,
// serve deterministic bodies for every route, reject malformed/oversized
// requests with the right status codes, flip /healthz when the last session
// closes, survive concurrent scrapes while slides run (TSan-clean), and
// stop gracefully under load. The structured logger must emit fixed-key-
// order JSON, gate on level, and rate-limit per site; the registry must
// sanitize invalid metric names and attach # HELP docstrings.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/disc_engine.h"
#include "gtest/gtest.h"
#include "obs/http_server.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "stream/blobs_generator.h"

namespace disc {
namespace {

constexpr std::size_t kWindow = 240;
constexpr std::size_t kStride = 60;

SessionOptions TestSession() {
  SessionOptions options;
  options.method = "DISC";
  options.spec.dims = 2;
  options.spec.window_size = kWindow;
  options.spec.stride = kStride;
  options.spec.disc.eps = 0.4;
  options.spec.disc.tau = 5;
  return options;
}

std::vector<std::vector<Point>> MakeSlides(std::uint64_t seed,
                                           std::size_t num_slides) {
  BlobsGenerator::Options o;
  o.dims = 2;
  o.num_blobs = 4;
  o.extent = 8.0;
  o.stddev = 0.3;
  o.noise_fraction = 0.1;
  o.drift = 0.05;
  o.seed = seed;
  BlobsGenerator gen(o);
  std::vector<std::vector<Point>> slides(num_slides);
  for (auto& slide : slides) slide = gen.NextPoints(kStride);
  return slides;
}

// Sends raw bytes (not necessarily valid HTTP) and returns the status code
// parsed from the response line, or 0 when the server just closed. Lets the
// malformed/oversized tests drive the parser off the happy path HttpGet
// can't leave.
int SendRaw(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (raw.compare(0, 9, "HTTP/1.1 ") != 0) return 0;
  return std::atoi(raw.c_str() + 9);
}

// Captures structured records; installed via ScopedSink so a failing test
// can't leak itself into later tests' logging.
class CaptureSink : public obs::LogSink {
 public:
  void Write(const obs::LogRecord& record) override {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(record);
  }
  std::vector<obs::LogRecord> records() {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
  }

 private:
  std::mutex mutex_;
  std::vector<obs::LogRecord> records_;
};

class ScopedSink {
 public:
  explicit ScopedSink(obs::LogSink* sink) { previous_ = obs::SetLogSink(sink); }
  ~ScopedSink() { obs::SetLogSink(previous_); }

 private:
  obs::LogSink* previous_;
};

// ---------------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------------

TEST(LogTest, FixedKeyOrderJson) {
  CaptureSink sink;
  ScopedSink scoped(&sink);
  obs::SetLogTimestamps(false);
  DISC_LOG(kWarn, "test.event").Str("who", "a\"b").Num("n", 7).Num("f", 0.5);
  obs::SetLogTimestamps(true);

  const auto records = sink.records();
  ASSERT_EQ(records.size(), 1u);
  const obs::LogRecord& r = records[0];
  EXPECT_EQ(r.level, obs::LogLevel::kWarn);
  EXPECT_EQ(r.event, "test.event");
  EXPECT_EQ(r.site.substr(0, r.site.find(':')), "telemetry_test.cc");
  ASSERT_EQ(r.fields.size(), 3u);
  EXPECT_EQ(r.fields[0].key, "who");
  EXPECT_EQ(r.fields[0].value, "\"a\\\"b\"");
  EXPECT_EQ(r.fields[1].value, "7");
  EXPECT_EQ(r.fields[2].value, "0.5");
  // With timestamps off the serialized line is fully deterministic.
  const std::string expected = "{\"level\":\"warn\",\"event\":\"test.event\","
                               "\"site\":\"" + r.site + "\","
                               "\"who\":\"a\\\"b\",\"n\":7,\"f\":0.5}";
  EXPECT_EQ(r.json, expected);
}

TEST(LogTest, LevelGatesEmission) {
  CaptureSink sink;
  ScopedSink scoped(&sink);
  obs::SetLogLevel(obs::LogLevel::kWarn);
  DISC_LOG(kInfo, "test.filtered").Num("n", 1);
  DISC_LOG(kError, "test.kept").Num("n", 2);
  obs::SetLogLevel(obs::LogLevel::kInfo);

  const auto records = sink.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event, "test.kept");
}

TEST(LogTest, PerSiteTokenBucketSuppresses) {
  CaptureSink sink;
  ScopedSink scoped(&sink);
  static double t_now = 0.0;
  obs::SetLogClockForTest(+[]() { return t_now; });
  obs::SetLogRateLimit(/*per_second=*/1.0, /*burst=*/3.0);

  // One lambda = one DISC_LOG line = one rate-limited site.
  const auto log_once = [](int i) { DISC_LOG(kWarn, "test.flood").Num("i", i); };
  for (int i = 0; i < 10; ++i) log_once(i);
  // Burst of 3 admitted, 7 dropped. Refill one token and the next record
  // at the same site carries the suppressed count.
  t_now = 1.0;
  log_once(10);

  obs::SetLogRateLimit(5.0, 10.0);
  obs::SetLogClockForTest(nullptr);

  const auto records = sink.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[2].suppressed, 0u);
  EXPECT_EQ(records[3].suppressed, 7u);
  EXPECT_NE(records[3].json.find("\"suppressed\":7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metric names and # HELP
// ---------------------------------------------------------------------------

TEST(MetricsNameTest, ValidateRejectsWithDescriptiveError) {
  EXPECT_TRUE(obs::MetricsRegistry::ValidateName("engine_slides_total").ok());
  EXPECT_TRUE(obs::MetricsRegistry::ValidateName("_x9").ok());

  const Status empty = obs::MetricsRegistry::ValidateName("");
  EXPECT_FALSE(empty.ok());
  EXPECT_NE(empty.message().find("empty"), std::string::npos);

  const Status bad = obs::MetricsRegistry::ValidateName("http.latency-ms");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("'.'"), std::string::npos);
  EXPECT_NE(bad.message().find("position 4"), std::string::npos);

  EXPECT_FALSE(obs::MetricsRegistry::ValidateName("9lives").ok());
}

TEST(MetricsNameTest, SanitizeMapsOntoValidAlphabet) {
  EXPECT_EQ(obs::MetricsRegistry::SanitizeName("http.latency-ms"),
            "http_latency_ms");
  EXPECT_EQ(obs::MetricsRegistry::SanitizeName("9lives"), "_9lives");
  EXPECT_EQ(obs::MetricsRegistry::SanitizeName(""), "_");
  EXPECT_EQ(obs::MetricsRegistry::SanitizeName("ok_name"), "ok_name");
}

TEST(MetricsNameTest, RegistrationSanitizesAndExportStaysValid) {
  obs::MetricsRegistry registry;
  registry.counter("bad.name").Add(3);
  registry.counter("bad_name").Add(2);  // Same metric after sanitizing.
  std::ostringstream os;
  registry.WritePrometheus(os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("bad.name"), std::string::npos);
  EXPECT_NE(out.find("bad_name 5"), std::string::npos);
}

TEST(MetricsNameTest, HelpFirstRegistrationWins) {
  obs::MetricsRegistry registry;
  registry.counter("slides_total", "Slides executed.").Add(1);
  registry.counter("slides_total", "A different docstring.");
  registry.gauge("depth");  // No help registered.
  std::ostringstream os;
  registry.WritePrometheus(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# HELP slides_total Slides executed.\n"),
            std::string::npos);
  EXPECT_EQ(out.find("A different docstring"), std::string::npos);
  EXPECT_NE(out.find("# HELP depth (no help registered)\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// HTTP surface
// ---------------------------------------------------------------------------

TEST(HttpServerTest, EphemeralBindServesMetricsRoutes) {
  obs::MetricsRegistry registry;
  registry.counter("requests_total", "Requests.").Add(42);
  registry.gauge("depth").Set(3.5);

  obs::HttpServerOptions options;
  options.metrics = &registry;
  obs::HttpServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  int status = 0;
  const std::string prom = obs::HttpGet(server.port(), "/metrics", &status);
  EXPECT_EQ(status, 200);
  std::ostringstream expected;
  registry.WritePrometheus(expected);
  EXPECT_EQ(prom, expected.str());

  const std::string json =
      obs::HttpGet(server.port(), "/metrics.json", &status);
  EXPECT_EQ(status, 200);
  std::ostringstream expected_json;
  registry.WriteJson(expected_json);
  EXPECT_EQ(json, expected_json.str());

  const std::string missing = obs::HttpGet(server.port(), "/nope", &status);
  EXPECT_EQ(status, 404);
  EXPECT_NE(missing.find("unknown route"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

TEST(HttpServerTest, TwoServersBindDistinctEphemeralPorts) {
  obs::MetricsRegistry registry;
  obs::HttpServerOptions options;
  options.metrics = &registry;
  obs::HttpServer a(options), b(options);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  EXPECT_NE(a.port(), b.port());
  // A fixed taken port must fail with a descriptive status.
  obs::HttpServerOptions taken = options;
  taken.port = a.port();
  obs::HttpServer c(taken);
  const Status bind = c.Start();
  EXPECT_FALSE(bind.ok());
  EXPECT_NE(bind.message().find("cannot bind"), std::string::npos);
}

TEST(HttpServerTest, RejectsMalformedOversizedAndNonGet) {
  obs::MetricsRegistry registry;
  obs::HttpServerOptions options;
  options.metrics = &registry;
  options.max_request_bytes = 512;
  obs::HttpServer server(options);
  ASSERT_TRUE(server.Start().ok());

  EXPECT_EQ(SendRaw(server.port(), "GARBAGE\r\n\r\n"), 400);
  EXPECT_EQ(SendRaw(server.port(), "GET  HTTP/1.1\r\n\r\n"), 400);
  EXPECT_EQ(SendRaw(server.port(), "GET /metrics FTP/9\r\n\r\n"), 400);
  EXPECT_EQ(SendRaw(server.port(),
                    "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            405);
  const std::string oversized =
      "GET /metrics HTTP/1.1\r\nX-Pad: " + std::string(4096, 'a') +
      "\r\n\r\n";
  EXPECT_EQ(SendRaw(server.port(), oversized), 431);
  // The server must still answer normal requests afterwards.
  int status = 0;
  obs::HttpGet(server.port(), "/metrics", &status);
  EXPECT_EQ(status, 200);
}

TEST(HttpServerTest, HealthzReflectsComponentReadiness) {
  // No registry bound: alive but not ready.
  obs::HttpServer bare{obs::HttpServerOptions{}};
  ASSERT_TRUE(bare.Start().ok());
  int status = 0;
  std::string body = obs::HttpGet(bare.port(), "/healthz", &status);
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"live\":true"), std::string::npos);
  EXPECT_NE(body.find("\"ready\":false"), std::string::npos);
  EXPECT_NE(body.find("\"metrics\":\"unbound\""), std::string::npos);
  bare.Stop();

  // Registry bound, no engine: ready.
  obs::MetricsRegistry registry;
  obs::HttpServerOptions options;
  options.metrics = &registry;
  obs::HttpServer server(options);
  ASSERT_TRUE(server.Start().ok());
  body = obs::HttpGet(server.port(), "/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"ready\":true"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, HealthzFlipsWhenLastSessionCloses) {
  obs::MetricsRegistry registry;
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.metrics = &registry;
  DiscEngine engine(engine_options);

  std::uint16_t port = 0;
  ASSERT_TRUE(engine.ServeTelemetry(0, &port).ok());
  ASSERT_NE(port, 0);
  EXPECT_EQ(engine.TelemetryPort(), port);

  // Engine bound but empty: not ready.
  int status = 0;
  std::string body = obs::HttpGet(port, "/healthz", &status);
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"engine\":\"no_sessions\""), std::string::npos);

  ASSERT_TRUE(engine.CreateSession("alpha", TestSession()).ok());
  body = obs::HttpGet(port, "/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"engine\":\"ok\""), std::string::npos);

  ASSERT_TRUE(engine.CloseSession("alpha").ok());
  body = obs::HttpGet(port, "/healthz", &status);
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"ready\":false"), std::string::npos);

  engine.StopTelemetry();
  EXPECT_EQ(engine.TelemetryPort(), 0);
  engine.StopTelemetry();  // Idempotent.
}

TEST(HttpServerTest, ServeTelemetryRefusesDoubleServe) {
  obs::MetricsRegistry registry;
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.metrics = &registry;
  DiscEngine engine(engine_options);
  std::uint16_t port = 0;
  ASSERT_TRUE(engine.ServeTelemetry(0, &port).ok());
  const Status again = engine.ServeTelemetry(0);
  EXPECT_FALSE(again.ok());
  EXPECT_NE(again.message().find("already serving"), std::string::npos);
  // Destructor stops the server; nothing to clean up explicitly.
}

TEST(HttpServerTest, SessionsRouteReportsLiveRows) {
  obs::MetricsRegistry registry;
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.metrics = &registry;
  DiscEngine engine(engine_options);
  ASSERT_TRUE(engine.CreateSession("alpha", TestSession()).ok());
  ASSERT_TRUE(engine.CreateSession("beta", TestSession()).ok());

  const auto slides = MakeSlides(11, 3);
  for (const auto& slide : slides) {
    ASSERT_TRUE(engine.FeedSlide("alpha", slide).ok());
  }
  engine.Drain();

  std::uint16_t port = 0;
  ASSERT_TRUE(engine.ServeTelemetry(0, &port).ok());
  int status = 0;
  const std::string body = obs::HttpGet(port, "/sessions", &status);
  EXPECT_EQ(status, 200);
  // Creation order, with live progress: alpha ran 3 slides, beta is 3
  // behind the watermark.
  const std::size_t alpha = body.find("\"name\":\"alpha\"");
  const std::size_t beta = body.find("\"name\":\"beta\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(beta, std::string::npos);
  EXPECT_LT(alpha, beta);
  EXPECT_NE(body.find("\"slides_run\":3"), std::string::npos);
  EXPECT_NE(body.find("\"watermark_lag_slides\":3"), std::string::npos);
  EXPECT_NE(body.find("\"method\":\"DISC\""), std::string::npos);
  EXPECT_NE(body.find("\"window_size\":180"), std::string::npos);
}

TEST(HttpServerTest, TracezServesCompletedPhaseSpans) {
  obs::TraceRecorder::Options trace_options;
  trace_options.logical_time = true;
  obs::TraceRecorder recorder(trace_options);
  recorder.Install();

  obs::MetricsRegistry registry;
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.metrics = &registry;
  DiscEngine engine(engine_options);
  ASSERT_TRUE(engine.CreateSession("alpha", TestSession()).ok());
  const auto slides = MakeSlides(12, 2);
  for (const auto& slide : slides) {
    ASSERT_TRUE(engine.FeedSlide("alpha", slide).ok());
  }
  engine.Drain();

  std::uint16_t port = 0;
  ASSERT_TRUE(engine.ServeTelemetry(0, &port).ok());
  int status = 0;
  const std::string body = obs::HttpGet(port, "/tracez", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"name\":\"engine.session\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"engine.drain\""), std::string::npos);
  EXPECT_NE(body.find("\"dur_us\":"), std::string::npos);
  recorder.Uninstall();
}

TEST(HttpServerTest, ConcurrentScrapesOfQuiescedEngineAreByteIdentical) {
  // The deterministic subset (`_ms` families filtered like the lane-count
  // test) must also match across 1 and 4 lanes.
  auto run = [](std::uint32_t lanes, std::string* deterministic_subset) {
    obs::MetricsRegistry registry;
    EngineOptions engine_options;
    engine_options.num_threads = lanes;
    engine_options.metrics = &registry;
    DiscEngine engine(engine_options);
    ASSERT_TRUE(engine.CreateSession("alpha", TestSession()).ok());
    ASSERT_TRUE(engine.CreateSession("beta", TestSession()).ok());
    const auto a = MakeSlides(21, 4);
    const auto b = MakeSlides(22, 4);
    for (std::size_t k = 0; k < a.size(); ++k) {
      ASSERT_TRUE(engine.FeedSlide("alpha", a[k]).ok());
      ASSERT_TRUE(engine.FeedSlide("beta", b[k]).ok());
      engine.Drain();
    }
    std::uint16_t port = 0;
    ASSERT_TRUE(engine.ServeTelemetry(0, &port).ok());

    // Quiesced engine: concurrent scrapes must come back byte-identical.
    constexpr int kScrapers = 8;
    std::vector<std::string> bodies(kScrapers);
    std::vector<std::thread> scrapers;
    scrapers.reserve(kScrapers);
    for (int i = 0; i < kScrapers; ++i) {
      scrapers.emplace_back([port, &bodies, i]() {
        int status = 0;
        bodies[static_cast<std::size_t>(i)] =
            obs::HttpGet(port, "/metrics", &status);
        EXPECT_EQ(status, 200);
      });
    }
    for (std::thread& t : scrapers) t.join();
    for (int i = 1; i < kScrapers; ++i) {
      EXPECT_EQ(bodies[static_cast<std::size_t>(i)], bodies[0])
          << "scrape " << i << " diverged at " << lanes << " lanes";
    }

    std::istringstream lines(bodies[0]);
    std::string line;
    deterministic_subset->clear();
    while (std::getline(lines, line)) {
      if (line.find("_ms ") != std::string::npos ||
          line.find("_ms{") != std::string::npos ||
          line.find("_ms_") != std::string::npos) {
        continue;
      }
      *deterministic_subset += line;
      *deterministic_subset += '\n';
    }
  };

  std::string single, four;
  run(1, &single);
  run(4, &four);
  EXPECT_FALSE(single.empty());
  EXPECT_EQ(single, four);
}

TEST(HttpServerTest, ScrapingWhileFeedingIsRaceFree) {
  // TSan exercise: live scrapes race metric folds and session feeds. No
  // byte comparison here — the point is that relaxed-atomic metrics and
  // the locked session table keep the server data-race-free mid-stream.
  obs::MetricsRegistry registry;
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.metrics = &registry;
  DiscEngine engine(engine_options);
  ASSERT_TRUE(engine.CreateSession("alpha", TestSession()).ok());
  std::uint16_t port = 0;
  ASSERT_TRUE(engine.ServeTelemetry(0, &port).ok());

  std::atomic<bool> done{false};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 2; ++i) {
    scrapers.emplace_back([port, &done]() {
      const char* routes[] = {"/metrics", "/metrics.json", "/sessions",
                              "/healthz"};
      int k = 0;
      while (!done.load(std::memory_order_acquire)) {
        int status = 0;
        obs::HttpGet(port, routes[k % 4], &status);
        EXPECT_EQ(status, 200);
        ++k;
      }
    });
  }

  const auto slides = MakeSlides(31, 6);
  for (const auto& slide : slides) {
    ASSERT_TRUE(engine.FeedSlide("alpha", slide).ok());
    engine.Drain();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : scrapers) t.join();
  engine.StopTelemetry();
}

TEST(HttpServerTest, StopIsCleanUnderRequestLoad) {
  obs::MetricsRegistry registry;
  obs::HttpServerOptions options;
  options.metrics = &registry;
  obs::HttpServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  std::vector<std::thread> hammers;
  for (int i = 0; i < 3; ++i) {
    hammers.emplace_back([port]() {
      for (int k = 0; k < 50; ++k) {
        int status = 0;
        obs::HttpGet(port, "/metrics", &status);
        // 200 while up; transport failure (0) once Stop lands. Both fine —
        // the assertion is that nothing hangs, crashes, or races.
        if (status == 0) break;
      }
    });
  }
  server.Stop();
  for (std::thread& t : hammers) t.join();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.
}

}  // namespace
}  // namespace disc
