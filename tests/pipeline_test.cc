// Tests for the StreamingPipeline wiring and the ClusterTracker lifecycle
// bookkeeping.

#include <vector>

#include "core/cluster_tracker.h"
#include "core/disc.h"
#include "core/pipeline.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/stream_source.h"

namespace disc {
namespace {

DiscConfig SmallConfig() {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  return config;
}

TEST(StreamingPipelineTest, RunsRequestedSlides) {
  UniformGenerator source(2, 0.0, 5.0);
  Disc clusterer(2, SmallConfig());
  StreamingPipeline pipeline(&source, &clusterer, 200, 50);
  EXPECT_EQ(pipeline.Run(7), 7u);
  EXPECT_EQ(pipeline.slides_run(), 7u);
  EXPECT_EQ(pipeline.window().contents().size(), 200u);
  EXPECT_EQ(clusterer.window_size(), 200u);
}

TEST(StreamingPipelineTest, ObserverSeesAccurateReports) {
  UniformGenerator source(2, 0.0, 5.0);
  Disc clusterer(2, SmallConfig());
  StreamingPipeline pipeline(&source, &clusterer, 150, 50);
  std::vector<SlideReport> reports;
  pipeline.Run(5, [&](const SlideReport& r) {
    reports.push_back(r);
    return true;
  });
  ASSERT_EQ(reports.size(), 5u);
  EXPECT_EQ(reports[0].slide_index, 0u);
  EXPECT_EQ(reports[0].incoming, 50u);
  EXPECT_EQ(reports[0].outgoing, 0u);
  EXPECT_FALSE(reports[0].window_full);
  EXPECT_TRUE(reports[2].window_full);
  EXPECT_EQ(reports[3].outgoing, 50u);  // Window is full: strides evict.
  EXPECT_GE(reports[4].update_ms, 0.0);
}

TEST(StreamingPipelineTest, ObserverCanStopEarly) {
  UniformGenerator source(2, 0.0, 5.0);
  Disc clusterer(2, SmallConfig());
  StreamingPipeline pipeline(&source, &clusterer, 100, 20);
  const std::size_t executed = pipeline.Run(100, [&](const SlideReport& r) {
    return r.slide_index < 2;
  });
  EXPECT_EQ(executed, 3u);  // Stopped after the observer returned false.
}

TEST(StreamingPipelineTest, RepeatedRunsContinueTheStream) {
  UniformGenerator source(2, 0.0, 5.0);
  Disc clusterer(2, SmallConfig());
  StreamingPipeline pipeline(&source, &clusterer, 100, 25);
  pipeline.Run(3);
  pipeline.Run(2);
  EXPECT_EQ(pipeline.slides_run(), 5u);
  EXPECT_EQ(clusterer.window_size(), 100u);
}

// --- ClusterTracker ------------------------------------------------------

Point P2(PointId id, double x, double y) {
  Point p;
  p.id = id;
  p.dims = 2;
  p.x[0] = x;
  p.x[1] = y;
  return p;
}

std::vector<Point> Plus(PointId base, double x, double y) {
  return {P2(base, x, y), P2(base + 1, x + 0.1, y), P2(base + 2, x - 0.1, y),
          P2(base + 3, x, y + 0.1), P2(base + 4, x, y - 0.1)};
}

TEST(ClusterTrackerTest, BirthGrowthAndDissipation) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  ClusterTracker tracker;

  const std::vector<Point> blob = Plus(0, 1.0, 1.0);
  disc.Update(blob, {});
  tracker.Observe(0, disc.last_events(), disc.Snapshot());
  ASSERT_EQ(tracker.num_alive(), 1u);
  const ClusterLife* life = tracker.AllClusters()[0];
  EXPECT_EQ(life->born_slide, 0u);
  EXPECT_EQ(life->current_size, 5u);

  disc.Update({P2(50, 1.1, 1.1)}, {});
  tracker.Observe(1, disc.last_events(), disc.Snapshot());
  EXPECT_EQ(tracker.Find(life->id)->current_size, 6u);
  EXPECT_EQ(tracker.Find(life->id)->peak_size, 6u);

  std::vector<Point> all = blob;
  all.push_back(P2(50, 1.1, 1.1));
  disc.Update({}, all);
  tracker.Observe(2, disc.last_events(), disc.Snapshot());
  EXPECT_EQ(tracker.num_alive(), 0u);
  EXPECT_FALSE(tracker.Find(life->id)->alive);
  EXPECT_FALSE(tracker.Find(life->id)->merged_away);
  EXPECT_EQ(tracker.Find(life->id)->peak_size, 6u);
}

TEST(ClusterTrackerTest, MergeRecordsProvenance) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  ClusterTracker tracker;

  std::vector<Point> two = Plus(0, 1.0, 1.0);
  const std::vector<Point> right = Plus(100, 1.6, 1.0);
  two.insert(two.end(), right.begin(), right.end());
  disc.Update(two, {});
  tracker.Observe(0, disc.last_events(), disc.Snapshot());
  ASSERT_EQ(tracker.num_alive(), 2u);

  disc.Update({P2(200, 1.2, 1.0), P2(201, 1.3, 1.0), P2(202, 1.4, 1.0)}, {});
  tracker.Observe(1, disc.last_events(), disc.Snapshot());
  EXPECT_EQ(tracker.num_alive(), 1u);
  std::size_t merged = 0;
  for (const ClusterLife* life : tracker.AllClusters()) {
    if (life->merged_away) {
      ++merged;
      EXPECT_NE(life->merged_into, kNoiseCluster);
      EXPECT_TRUE(tracker.Find(life->merged_into)->alive);
    }
  }
  EXPECT_EQ(merged, 1u);
}

TEST(ClusterTrackerTest, SplitRecordsParent) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  ClusterTracker tracker;

  std::vector<Point> initial = Plus(0, 1.0, 1.0);
  const std::vector<Point> right = Plus(100, 1.6, 1.0);
  initial.insert(initial.end(), right.begin(), right.end());
  std::vector<Point> bridge = {P2(200, 1.2, 1.0), P2(201, 1.3, 1.0),
                               P2(202, 1.4, 1.0)};
  initial.insert(initial.end(), bridge.begin(), bridge.end());
  disc.Update(initial, {});
  tracker.Observe(0, disc.last_events(), disc.Snapshot());
  ASSERT_EQ(tracker.num_alive(), 1u);
  const ClusterId parent = tracker.AllClusters()[0]->id;

  disc.Update({}, bridge);
  tracker.Observe(1, disc.last_events(), disc.Snapshot());
  EXPECT_EQ(tracker.num_alive(), 2u);
  std::size_t children = 0;
  for (const ClusterLife* life : tracker.AllClusters()) {
    if (life->split_child) {
      ++children;
      EXPECT_EQ(life->split_from, parent);
      EXPECT_EQ(life->born_slide, 1u);
    }
  }
  EXPECT_EQ(children, 1u);
}

TEST(ClusterTrackerTest, AdoptsClustersWhenObservationStartsMidStream) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  disc.Update(Plus(0, 1.0, 1.0), {});  // Unobserved slide.

  ClusterTracker tracker;
  disc.Update({P2(50, 1.1, 1.1)}, {});
  tracker.Observe(5, disc.last_events(), disc.Snapshot());
  EXPECT_EQ(tracker.num_alive(), 1u);
  EXPECT_EQ(tracker.AllClusters()[0]->born_slide, 5u);
  EXPECT_EQ(tracker.AllClusters()[0]->current_size, 6u);
}

}  // namespace
}  // namespace disc
