// Further DISC coverage: the time-based window model, metric consistency,
// high-dimensional streams, optimization-effect assertions on the metrics,
// and a longer randomized soak run.

#include <cmath>
#include <vector>

#include "baselines/dbscan.h"
#include "common/rng.h"
#include "core/disc.h"
#include "eval/equivalence.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/iris_generator.h"
#include "stream/maze_generator.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

// DISC is agnostic to the window model (Sec. II-B): drive it through a
// time-based window with bursty exponential arrivals and verify exactness
// after every slide.
TEST(DiscTimeBasedWindowTest, MatchesDbscanUnderTimeBasedSlides) {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  Disc disc(2, config);
  TimeBasedWindow window(/*window_span=*/10.0, /*stride_span=*/2.0);

  BlobsGenerator::Options o;
  o.num_blobs = 4;
  o.stddev = 0.3;
  o.drift = 0.05;
  o.noise_fraction = 0.1;
  o.seed = 51;
  BlobsGenerator source(o);
  Rng rng(52);

  double clock = 0.0;
  for (int s = 1; s <= 12; ++s) {
    std::vector<TimeBasedWindow::TimedPoint> arrivals;
    // Bursty arrival process: rate changes per slide.
    const double rate = 20.0 + 30.0 * (s % 3);
    while (true) {
      const double gap = -std::log(rng.Uniform(1e-9, 1.0)) / rate;
      if (clock + gap > 2.0 * s) break;
      clock += gap;
      arrivals.push_back({source.Next().point, clock});
    }
    WindowDelta delta = window.Advance(arrivals);
    disc.Update(delta.incoming, delta.outgoing);

    std::vector<Point> contents;
    contents.reserve(window.contents().size());
    for (const auto& tp : window.contents()) contents.push_back(tp.point);
    const DbscanResult truth = RunDbscan(contents, config.eps, config.tau);
    const EquivalenceResult eq = CheckSameClustering(
        disc.Snapshot(), truth.snapshot, contents, config.eps);
    ASSERT_TRUE(eq.ok) << "slide " << s << ": " << eq.error;
  }
}

TEST(DiscMetricsTest, RangeSearchAccountingIsConsistent) {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  Disc disc(2, config);
  BlobsGenerator::Options o;
  o.seed = 53;
  o.drift = 0.05;
  BlobsGenerator source(o);
  CountBasedWindow window(400, 100);
  for (int s = 0; s < 8; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(100));
    const std::uint64_t before = disc.tree_stats().range_searches;
    disc.Update(d.incoming, d.outgoing);
    const DiscMetrics& m = disc.last_metrics();
    // collect + cluster = total, and total matches the tree's counter delta.
    EXPECT_EQ(m.collect_searches + m.cluster_searches, m.range_searches);
    EXPECT_EQ(m.range_searches, disc.tree_stats().range_searches - before);
    // COLLECT issues exactly one search per incoming and outgoing point.
    EXPECT_EQ(m.collect_searches, d.incoming.size() + d.outgoing.size());
    // Group counts never exceed member counts.
    EXPECT_LE(m.num_ex_groups, m.num_ex_cores);
    EXPECT_LE(m.num_neo_groups, m.num_neo_cores);
  }
}

TEST(DiscMetricsTest, ConsolidationYieldsFewerGroupsThanExCores) {
  // Mass deletion of a dense region: many ex-cores, few retro-reachable
  // groups — the consolidation the paper's Example 2 illustrates.
  DiscConfig config;
  config.eps = 0.3;
  config.tau = 4;
  Disc disc(2, config);
  std::vector<Point> blob;
  Rng rng(54);
  for (PointId id = 0; id < 200; ++id) {
    Point p;
    p.id = id;
    p.dims = 2;
    p.x[0] = rng.Uniform(0.0, 1.5);
    p.x[1] = rng.Uniform(0.0, 1.5);
    blob.push_back(p);
  }
  disc.Update(blob, {});
  // Remove a central band, demoting many cores at once.
  std::vector<Point> band;
  for (const Point& p : blob) {
    if (p.x[0] > 0.5 && p.x[0] < 1.0) band.push_back(p);
  }
  disc.Update({}, band);
  const DiscMetrics& m = disc.last_metrics();
  ASSERT_GT(m.num_ex_cores, 10u);
  EXPECT_LT(m.num_ex_groups * 5, m.num_ex_cores)
      << "retro-reachability should consolidate dense ex-cores into few "
         "groups";
}

TEST(DiscHighDimTest, WorksUpToMaxDims) {
  for (std::uint32_t dims : {5u, 6u, 7u, 8u}) {
    DiscConfig config;
    config.eps = 1.2;
    config.tau = 4;
    Disc disc(dims, config);
    BlobsGenerator::Options o;
    o.dims = dims;
    o.num_blobs = 3;
    o.extent = 6.0;
    o.stddev = 0.3;
    o.noise_fraction = 0.1;
    o.seed = 55 + dims;
    BlobsGenerator source(o);
    CountBasedWindow window(300, 100);
    for (int s = 0; s < 5; ++s) {
      WindowDelta d = window.Advance(source.NextPoints(100));
      disc.Update(d.incoming, d.outgoing);
      std::vector<Point> contents(window.contents().begin(),
                                  window.contents().end());
      const DbscanResult truth = RunDbscan(contents, config.eps, config.tau);
      const EquivalenceResult eq = CheckSameClustering(
          disc.Snapshot(), truth.snapshot, contents, config.eps);
      ASSERT_TRUE(eq.ok) << "dims " << dims << " slide " << s << ": "
                         << eq.error;
    }
  }
}

TEST(DiscOptimizationMetricsTest, EpochProbingReducesEntryChecks) {
  auto run = [](bool epoch) {
    DiscConfig config;
    config.eps = 0.1;
    config.tau = 5;
    config.use_epoch_probing = epoch;
    Disc disc(2, config);
    MazeGenerator::Options o;
    o.num_seeds = 10;
    o.extent = 15.0;
    o.seed = 57;
    MazeGenerator source(o);
    CountBasedWindow window(2000, 100);
    for (int s = 0; s < 24; ++s) {
      WindowDelta d = window.Advance(source.NextPoints(100));
      disc.Update(d.incoming, d.outgoing);
    }
    return disc.tree_stats().entries_checked;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(DiscOptimizationMetricsTest, MsBfsExpandsFewerVerticesOnUnsplitSlides) {
  auto run = [](bool msbfs) {
    DiscConfig config;
    config.eps = 0.1;
    config.tau = 5;
    config.use_msbfs = msbfs;
    Disc disc(2, config);
    MazeGenerator::Options o;
    o.num_seeds = 6;
    o.extent = 10.0;
    o.seed = 58;
    MazeGenerator source(o);
    CountBasedWindow window(2400, 120);
    std::uint64_t expansions = 0;
    for (int s = 0; s < 26; ++s) {
      WindowDelta d = window.Advance(source.NextPoints(120));
      disc.Update(d.incoming, d.outgoing);
      expansions += disc.last_metrics().msbfs_expansions;
    }
    return expansions;
  };
  // Both modes are exact; their exploration footprints differ by workload
  // (MS-BFS wins wall-clock on split-heavy streams — see bench_micro's
  // BM_SplitCheckStrategy — while sequential BFS's all-members-found early
  // exit can expand fewer vertices on shrink-only slides). Here we only pin
  // down that both stay within the same order of magnitude and nonzero.
  const std::uint64_t with_msbfs = run(true);
  const std::uint64_t without_msbfs = run(false);
  EXPECT_GT(with_msbfs, 0u);
  EXPECT_GT(without_msbfs, 0u);
  EXPECT_LT(with_msbfs, without_msbfs * 10);
  EXPECT_LT(without_msbfs, with_msbfs * 10);
}

// Longer randomized soak: 60 slides over a 4-D fault stream, exactness
// checked after every slide. Regression guard for the multi-group survivor
// bug (see docs/ALGORITHM.md §4.2): with seed 59 this stream produces a
// slide where the split between two fragments of one cluster is witnessed
// only transitively across ex-core groups.
TEST(DiscSoakTest, SixtySlidesOn4DStream) {
  DiscConfig config;
  config.eps = 2.0;
  config.tau = 6;
  Disc disc(4, config);
  IrisGenerator::Options o;
  o.num_faults = 10;
  o.seed = 59;
  IrisGenerator source(o);
  CountBasedWindow window(1500, 150);
  for (int s = 0; s < 60; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(150));
    disc.Update(d.incoming, d.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, config.eps, config.tau);
    const EquivalenceResult eq = CheckSameClustering(
        disc.Snapshot(), truth.snapshot, contents, config.eps);
    ASSERT_TRUE(eq.ok) << "slide " << s << ": " << eq.error;
  }
}

}  // namespace
}  // namespace disc
