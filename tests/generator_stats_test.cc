// Statistical sanity checks for the dataset-analogue generators: each must
// keep the structural properties DESIGN.md §2 claims preserve the paper's
// density regimes.

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/stats.h"
#include "gtest/gtest.h"
#include "stream/covid_generator.h"
#include "stream/dtg_generator.h"
#include "stream/geolife_generator.h"
#include "stream/iris_generator.h"
#include "stream/maze_generator.h"
#include "stream/netflow_generator.h"

namespace disc {
namespace {

TEST(DtgStatsTest, CongestionZonesDominateAndAreCompact) {
  DtgGenerator::Options o;
  o.background_fraction = 0.25;
  DtgGenerator gen(o);
  std::map<std::int64_t, std::vector<Point>> by_zone;
  int background = 0;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    const LabeledPoint lp = gen.Next();
    if (lp.true_label < 0) {
      ++background;
    } else {
      by_zone[lp.true_label].push_back(lp.point);
    }
  }
  EXPECT_NEAR(static_cast<double>(background) / n, 0.25, 0.03);
  EXPECT_GE(by_zone.size(), 30u);  // Most of the 40 zones hit.
  // Each zone is compact: its bounding box along the road is ~zone_length.
  for (const auto& [zone, pts] : by_zone) {
    if (pts.size() < 20) continue;
    double lo_x = 1e9, hi_x = -1e9, lo_y = 1e9, hi_y = -1e9;
    for (const Point& p : pts) {
      lo_x = std::min(lo_x, p.x[0]);
      hi_x = std::max(hi_x, p.x[0]);
      lo_y = std::min(lo_y, p.x[1]);
      hi_y = std::max(hi_y, p.x[1]);
    }
    const double long_side = std::max(hi_x - lo_x, hi_y - lo_y);
    const double short_side = std::min(hi_x - lo_x, hi_y - lo_y);
    EXPECT_LT(long_side, o.zone_length * 1.5) << "zone " << zone;
    // Across-road scatter is lane-scale, far below the road spacing — the
    // property that forces a small eps (the paper's DTG argument).
    EXPECT_LT(short_side, o.road_spacing / 5.0) << "zone " << zone;
  }
}

TEST(GeolifeStatsTest, UsersStayInDomainAndMoveContinuously) {
  GeolifeGenerator::Options o;
  GeolifeGenerator gen(o);
  std::map<std::int64_t, Point> last_seen;
  for (int i = 0; i < 6000; ++i) {
    const LabeledPoint lp = gen.Next();
    EXPECT_GE(lp.point.x[0], -0.2);
    EXPECT_LE(lp.point.x[0], o.extent + 0.2);
    EXPECT_GE(lp.point.x[2], -0.2);
    EXPECT_LE(lp.point.x[2], o.alt_extent + 0.2);
    auto it = last_seen.find(lp.true_label);
    if (it != last_seen.end()) {
      // Per-user consecutive emissions differ by about one speed step.
      EXPECT_LT(SquaredDistance(lp.point, it->second),
                (o.speed * 4 + 4 * o.jitter) * (o.speed * 4 + 4 * o.jitter));
    }
    last_seen[lp.true_label] = lp.point;
  }
  EXPECT_EQ(last_seen.size(), static_cast<std::size_t>(o.num_users));
}

TEST(CovidStatsTest, HotspotPopularityIsHeavyTailed) {
  CovidGenerator::Options o;
  o.noise_fraction = 0.0;
  CovidGenerator gen(o);
  std::map<std::int64_t, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[gen.Next().true_label]++;
  ASSERT_GE(counts.size(), 20u);
  // Zipf(1): the most popular hotspot receives many times the median's mass.
  std::vector<int> sizes;
  for (const auto& [label, c] : counts) sizes.push_back(c);
  std::sort(sizes.rbegin(), sizes.rend());
  EXPECT_GT(sizes.front(), 5 * sizes[sizes.size() / 2]);
}

TEST(IrisStatsTest, EventsConcentrateAlongFaults) {
  IrisGenerator::Options o;
  IrisGenerator gen(o);
  std::map<std::int64_t, std::vector<Point>> by_fault;
  for (int i = 0; i < 6000; ++i) {
    const LabeledPoint lp = gen.Next();
    ASSERT_GE(lp.true_label, 0);
    by_fault[lp.true_label].push_back(lp.point);
    // Depth and magnitude stay in their scaled bands.
    EXPECT_GT(lp.point.x[2], 0.0);
    EXPECT_GT(lp.point.x[3], 20.0);
    EXPECT_LT(lp.point.x[3], 80.0);
  }
  EXPECT_EQ(by_fault.size(), static_cast<std::size_t>(o.num_faults));
  // A fault's lat/lon footprint is elongated: spread along >> across.
  for (const auto& [fault, pts] : by_fault) {
    if (pts.size() < 100) continue;
    // PCA-lite: compare variance along the principal axis with the
    // perpendicular one using the 2D covariance.
    double mx = 0, my = 0;
    for (const Point& p : pts) {
      mx += p.x[0];
      my += p.x[1];
    }
    mx /= static_cast<double>(pts.size());
    my /= static_cast<double>(pts.size());
    double sxx = 0, syy = 0, sxy = 0;
    for (const Point& p : pts) {
      sxx += (p.x[0] - mx) * (p.x[0] - mx);
      syy += (p.x[1] - my) * (p.x[1] - my);
      sxy += (p.x[0] - mx) * (p.x[1] - my);
    }
    const double tr = sxx + syy;
    const double det = sxx * syy - sxy * sxy;
    const double disc_root = std::sqrt(std::max(0.0, tr * tr / 4.0 - det));
    const double lambda_max = tr / 2.0 + disc_root;
    const double lambda_min = tr / 2.0 - disc_root;
    EXPECT_GT(lambda_max, 5.0 * std::max(lambda_min, 1e-9)) << fault;
  }
}

TEST(MazeStatsTest, RoundRobinEmissionAcrossSeeds) {
  MazeGenerator::Options o;
  o.num_seeds = 5;
  o.points_per_step = 2;
  MazeGenerator gen(o);
  // Emission pattern: seeds cycle every points_per_step emissions.
  for (int cycle = 0; cycle < 20; ++cycle) {
    for (int s = 0; s < o.num_seeds; ++s) {
      for (int k = 0; k < o.points_per_step; ++k) {
        EXPECT_EQ(gen.Next().true_label, s);
      }
    }
  }
}

TEST(NetflowStatsTest, AnomaliesAreFarFromEveryProfile) {
  NetflowGenerator::Options o;
  o.anomaly_fraction = 0.05;
  NetflowGenerator gen(o);
  std::vector<Point> normal;
  std::vector<Point> anomalies;
  for (int i = 0; i < 8000; ++i) {
    const LabeledPoint lp = gen.Next();
    (lp.true_label < 0 ? anomalies : normal).push_back(lp.point);
  }
  ASSERT_GT(anomalies.size(), 200u);
  EXPECT_NEAR(static_cast<double>(anomalies.size()) / 8000.0, 0.05, 0.02);
  // Every anomaly is at least 2 units from every normal flow's profile area.
  for (const Point& a : anomalies) {
    double min_d2 = 1e18;
    for (std::size_t i = 0; i < normal.size(); i += 13) {
      min_d2 = std::min(min_d2, SquaredDistance(a, normal[i]));
    }
    EXPECT_GT(min_d2, 1.0) << ToString(a);
  }
}

TEST(NetflowStatsTest, BurstsSkewTrafficTowardOneProfile) {
  NetflowGenerator::Options o;
  o.anomaly_fraction = 0.0;
  o.burst_every = 2000;
  o.burst_length = 1000;
  NetflowGenerator gen(o);
  // Consume until inside a burst phase, then measure the mode share.
  for (int i = 0; i < 2000; ++i) gen.Next();
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < 900; ++i) counts[gen.Next().true_label]++;
  int max_count = 0;
  for (const auto& [label, c] : counts) max_count = std::max(max_count, c);
  // 70% burst affinity + uniform remainder: the mode well exceeds 1/6.
  EXPECT_GT(max_count, 900 / 3);
}

}  // namespace
}  // namespace disc
