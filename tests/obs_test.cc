// Tests for the observability layer (src/obs/): histogram quantiles against
// a brute-force oracle, Chrome-trace JSON schema and determinism, disabled-
// mode no-op behavior, JSONL/Prometheus export determinism across thread
// counts, the probe drill-down counters, and the baselines' phase timings.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/extra_n.h"
#include "baselines/graph_disc.h"
#include "baselines/inc_dbscan.h"
#include "core/disc.h"
#include "core/pipeline.h"
#include "gtest/gtest.h"
#include "index/rtree.h"
#include "obs/metrics_registry.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "stream/blobs_generator.h"
#include "stream/stream_source.h"

namespace disc {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyHistogramReadsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, CountSumMinMaxAreExact) {
  obs::Histogram h;
  const double samples[] = {0.5, 3.0, 0.125, 42.0, 7.5};
  double sum = 0.0;
  for (double s : samples) {
    h.Observe(s);
    sum += s;
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
}

TEST(HistogramTest, QuantileMatchesSortedOracleWithinOneBucket) {
  // Log-normal latencies spanning several decades — the shape the histogram
  // is built for. The bucketed quantile must bracket the exact sample
  // quantile from above by at most one bucket's relative width.
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(0.0, 2.0);
  obs::Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    h.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  const double growth = obs::Histogram::GrowthFactor();
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double oracle = samples[rank == 0 ? 0 : rank - 1];
    const double answer = h.Quantile(q);
    EXPECT_GE(answer, oracle * (1.0 - 1e-9)) << "q=" << q;
    EXPECT_LE(answer, oracle * growth * (1.0 + 1e-9)) << "q=" << q;
  }
}

TEST(HistogramTest, UnderflowAndOverflowBucketsBehave) {
  obs::Histogram h;
  h.Observe(0.0);                 // Underflow (<= kMinValue).
  h.Observe(-3.0);                // Negative: also underflow, not UB.
  h.Observe(1e12);                // Beyond the covered range: overflow.
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.1), obs::Histogram::kMinValue);
  // The overflow bucket reports the exact max rather than a bogus bound.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1e12);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, LookupCreatesOnceAndReturnsStableRefs) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("disc_slides_total");
  c.Add(3);
  EXPECT_EQ(reg.counter("disc_slides_total").value(), 3u);
  EXPECT_EQ(&reg.counter("disc_slides_total"), &c);
  reg.gauge("disc_window_size").Set(128.0);
  reg.histogram("disc_update_ms").Observe(1.5);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistryTest, PrometheusExportIsNameSortedAndTyped) {
  obs::MetricsRegistry reg;
  reg.counter("zzz_total").Add(2);
  reg.counter("aaa_total").Add(1);
  reg.gauge("mid_gauge").Set(0.5);
  std::ostringstream os;
  reg.WritePrometheus(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE aaa_total counter\naaa_total 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE zzz_total counter\nzzz_total 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE mid_gauge gauge\nmid_gauge 0.5\n"),
            std::string::npos);
  EXPECT_LT(out.find("aaa_total"), out.find("zzz_total"));
}

TEST(MetricsRegistryTest, PrometheusHistogramSummaryHasQuantiles) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("disc_update_ms");
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  std::ostringstream os;
  reg.WritePrometheus(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE disc_update_ms summary"), std::string::npos);
  EXPECT_NE(out.find("disc_update_ms{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(out.find("disc_update_ms{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(out.find("disc_update_ms{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(out.find("disc_update_ms_count 100"), std::string::npos);
  // include_histograms=false drops the summary but keeps nothing else here.
  std::ostringstream flat;
  reg.WritePrometheus(flat, /*include_histograms=*/false);
  EXPECT_EQ(flat.str().find("disc_update_ms"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportIsWellFormedEnough) {
  obs::MetricsRegistry reg;
  reg.counter("a_total").Add(1);
  reg.gauge("g").Set(2.0);
  reg.histogram("h_ms").Observe(3.0);
  std::ostringstream os;
  reg.WriteJson(os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '{');
  EXPECT_NE(out.find("\"counters\":{\"a_total\":1}"), std::string::npos);
  EXPECT_NE(out.find("\"gauges\":{\"g\":2}"), std::string::npos);
  EXPECT_NE(out.find("\"h_ms\":{\"count\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace schema helpers
// ---------------------------------------------------------------------------

// Extracts the integer following `key` in a single-event JSON line, or -1.
std::int64_t ExtractInt(const std::string& line, const std::string& key) {
  const std::size_t pos = line.find(key);
  if (pos == std::string::npos) return -1;
  return std::strtoll(line.c_str() + pos + key.size(), nullptr, 10);
}

char ExtractPhase(const std::string& line) {
  const std::size_t pos = line.find("\"ph\":\"");
  if (pos == std::string::npos) return '?';
  return line[pos + 6];
}

std::string ExtractName(const std::string& line) {
  const std::size_t pos = line.find("\"name\":\"");
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + 8;
  return line.substr(start, line.find('"', start) - start);
}

struct TraceCheck {
  std::vector<std::string> names;
  std::size_t span_events = 0;
  std::size_t meta_events = 0;
};

// Structural validation of a serialized trace: matched B/E per tid with
// LIFO nesting, non-decreasing timestamps per tid, metadata first.
TraceCheck ValidateTrace(const std::string& json) {
  TraceCheck result;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[\n", 0), 0u);
  std::map<std::int64_t, std::vector<std::string>> open;  // tid -> B names.
  std::map<std::int64_t, std::int64_t> last_ts;
  std::istringstream lines(json);
  std::string line;
  std::getline(lines, line);  // Header.
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '{') continue;
    const char ph = ExtractPhase(line);
    const std::int64_t tid = ExtractInt(line, "\"tid\":");
    EXPECT_GE(tid, 0) << line;
    if (ph == 'M') {
      ++result.meta_events;
      EXPECT_EQ(result.span_events, 0u) << "metadata must precede spans";
      continue;
    }
    EXPECT_TRUE(ph == 'B' || ph == 'E') << line;
    if (ph != 'B' && ph != 'E') continue;
    ++result.span_events;
    const std::int64_t ts = ExtractInt(line, "\"ts\":");
    EXPECT_GE(ts, 0) << line;
    auto [it, fresh] = last_ts.emplace(tid, ts);
    if (!fresh) {
      EXPECT_LE(it->second, ts) << "timestamps regressed on tid " << tid;
      it->second = ts;
    }
    const std::string name = ExtractName(line);
    if (ph == 'B') {
      open[tid].push_back(name);
      result.names.push_back(name);
    } else {
      EXPECT_FALSE(open[tid].empty()) << "E without B: " << line;
      if (open[tid].empty()) continue;
      EXPECT_EQ(open[tid].back(), name) << "mis-nested span on tid " << tid;
      open[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  return result;
}

bool Contains(const std::vector<std::string>& names, const std::string& want) {
  return std::find(names.begin(), names.end(), want) != names.end();
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

DiscConfig BlobConfig(std::uint32_t threads = 1) {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  config.num_threads = threads;
  return config;
}

BlobsGenerator::Options DriftingBlobs() {
  BlobsGenerator::Options opt;
  opt.num_blobs = 4;
  opt.stddev = 0.25;
  opt.drift = 0.05;
  opt.seed = 11;
  return opt;
}

TEST(TraceTest, PhaseSpansCoverTheFourDiscPhases) {
#if !DISC_TRACING_ENABLED
  GTEST_SKIP() << "spans compiled out (DISC_TRACING=OFF)";
#endif
  obs::TraceRecorder::Options opt;
  opt.level = obs::TraceLevel::kPhase;
  obs::TraceRecorder recorder(opt);
  recorder.Install();

  BlobsGenerator source(DriftingBlobs());
  Disc clusterer(2, BlobConfig());
  StreamingPipeline pipeline(&source, &clusterer, 400, 100);
  pipeline.Run(8);
  recorder.Uninstall();

  std::ostringstream os;
  recorder.WriteChromeJson(os);
  const TraceCheck check = ValidateTrace(os.str());
  EXPECT_GT(check.span_events, 0u);
  EXPECT_GE(check.meta_events, 1u);
  for (const char* phase : {"pipeline.slide", "disc.update", "disc.collect",
                            "disc.ex_phase", "disc.neo_phase", "disc.recheck"}) {
    EXPECT_TRUE(Contains(check.names, phase)) << "missing span " << phase;
  }
  // kPhase level must not capture per-probe detail spans.
  EXPECT_FALSE(Contains(check.names, "rtree.range_search"));
  EXPECT_FALSE(Contains(check.names, "disc.msbfs"));
}

TEST(TraceTest, DetailLevelCapturesProbesAndLanes) {
#if !DISC_TRACING_ENABLED
  GTEST_SKIP() << "spans compiled out (DISC_TRACING=OFF)";
#endif
  obs::TraceRecorder::Options opt;
  opt.level = obs::TraceLevel::kDetail;
  obs::TraceRecorder recorder(opt);
  recorder.Install();

  BlobsGenerator source(DriftingBlobs());
  Disc clusterer(2, BlobConfig(/*threads=*/4));
  StreamingPipeline pipeline(&source, &clusterer, 400, 100);
  pipeline.Run(8);
  recorder.Uninstall();

  std::ostringstream os;
  recorder.WriteChromeJson(os);
  const std::string json = os.str();
  const TraceCheck check = ValidateTrace(json);
  EXPECT_TRUE(Contains(check.names, "rtree.range_search"));
  EXPECT_TRUE(Contains(check.names, "pool.drain"));
  // 3 worker lanes (tids 1..3) plus main: worker spans must appear under
  // worker tids, and the serializer must name the lanes.
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("lane-0"), std::string::npos);
}

TEST(TraceTest, LogicalTimeTracesAreByteIdenticalAcrossRuns) {
  // Single-threaded workload + logical clock: two identical runs serialize
  // to identical bytes — the reproducibility contract golden traces rely on.
  auto run_once = [] {
    obs::TraceRecorder::Options opt;
    opt.level = obs::TraceLevel::kDetail;
    opt.logical_time = true;
    obs::TraceRecorder recorder(opt);
    recorder.Install();
    BlobsGenerator source(DriftingBlobs());
    Disc clusterer(2, BlobConfig());
    StreamingPipeline pipeline(&source, &clusterer, 300, 100);
    pipeline.Run(6);
    recorder.Uninstall();
    std::ostringstream os;
    recorder.WriteChromeJson(os);
    return os.str();
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_GT(a.size(), 0u);
  EXPECT_EQ(a, b);
}

TEST(TraceTest, NoRecorderMeansInactiveSpansAndNoEvents) {
  ASSERT_EQ(obs::TraceRecorder::active(), nullptr);
  obs::TraceSpan span("orphan");
  span.AddArg("k", 1);  // Must be safe with no recorder.
  EXPECT_FALSE(span.active());

  // A workload run without a recorder must leave a later recorder empty.
  obs::TraceRecorder recorder;
  {
    BlobsGenerator source(DriftingBlobs());
    Disc clusterer(2, BlobConfig());
    StreamingPipeline pipeline(&source, &clusterer, 200, 100);
    pipeline.Run(3);
  }
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(TraceTest, LevelFilterSkipsDetailSpansEntirely) {
#if !DISC_TRACING_ENABLED
  GTEST_SKIP() << "spans compiled out (DISC_TRACING=OFF)";
#endif
  obs::TraceRecorder::Options opt;
  opt.level = obs::TraceLevel::kPhase;
  obs::TraceRecorder recorder(opt);
  recorder.Install();
  {
    obs::TraceSpan detail("rtree.range_search", obs::TraceLevel::kDetail);
    EXPECT_FALSE(detail.active());
    obs::TraceSpan phase("disc.update");
    EXPECT_TRUE(phase.active());
  }
  recorder.Uninstall();
  EXPECT_EQ(recorder.event_count(), 2u);  // B+E of the phase span only.
}

// ---------------------------------------------------------------------------
// Export determinism across thread counts
// ---------------------------------------------------------------------------

struct ExportBundle {
  std::string jsonl;
  std::string prometheus;
};

ExportBundle RunAndExport(std::uint32_t threads) {
  BlobsGenerator source(DriftingBlobs());
  Disc clusterer(2, BlobConfig(threads));
  StreamingPipeline pipeline(&source, &clusterer, 500, 125);

  obs::MetricsRegistry registry;
  std::ostringstream jsonl;
  obs::MetricsObserver::Options opt;
  opt.disc_metrics = &clusterer.last_metrics();
  opt.jsonl = &jsonl;
  opt.jsonl_timings = false;  // Deterministic subset only.
  obs::MetricsObserver observer(&registry, opt);
  pipeline.Run(10, observer.AsObserver());

  ExportBundle bundle;
  bundle.jsonl = jsonl.str();
  std::ostringstream prom;
  registry.WritePrometheus(prom, /*include_histograms=*/false);
  bundle.prometheus = prom.str();
  return bundle;
}

TEST(ExportDeterminismTest, JsonlAndCountersIdenticalForOneAndFourThreads) {
  const ExportBundle one = RunAndExport(1);
  const ExportBundle four = RunAndExport(4);
  EXPECT_GT(one.jsonl.size(), 0u);
  EXPECT_EQ(one.jsonl, four.jsonl);
  // The gauge disc_threads_used differs by construction; the counter-only
  // export must not leak thread count anywhere else. Neutralize that one
  // expected difference before comparing.
  auto drop_threads_gauge = [](const std::string& s) {
    std::string out;
    std::istringstream lines(s);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("disc_threads_used") != std::string::npos) continue;
      out += line;
      out += '\n';
    }
    return out;
  };
  EXPECT_EQ(drop_threads_gauge(one.prometheus),
            drop_threads_gauge(four.prometheus));
  EXPECT_NE(one.jsonl.find("\"counters\":{\"range_searches\":"),
            std::string::npos);
  EXPECT_NE(one.jsonl.find("\"disc\":{\"ex_cores\":"), std::string::npos);
  // jsonl_timings=false must exclude every wall-clock field.
  EXPECT_EQ(one.jsonl.find("timings_ms"), std::string::npos);
}

TEST(ExportDeterminismTest, SlideJsonlFixedFormat) {
  SlideReport report;
  report.slide_index = 7;
  report.window_size = 500;
  report.entered = 125;
  report.exited = 125;
  report.relabeled = 3;
  report.probes.range_searches = 10;
  report.probes.nodes_visited = 40;
  report.probes.entries_checked = 200;
  report.probes.leaf_entries_tested = 150;
  report.probes.epoch_pruned = 5;
  std::ostringstream os;
  obs::WriteSlideJsonl(os, report, nullptr, /*include_timings=*/false);
  EXPECT_EQ(os.str(),
            "{\"slide\":7,\"window\":500,\"entered\":125,\"exited\":125,"
            "\"relabeled\":3,\"counters\":{\"range_searches\":10,"
            "\"nodes_visited\":40,\"entries_checked\":200,"
            "\"leaf_entries_tested\":150,\"epoch_pruned\":5}}\n");
}

// ---------------------------------------------------------------------------
// Probe drill-down counters
// ---------------------------------------------------------------------------

TEST(ProbeCountersTest, EpochSearchPrunesMarkedEntries) {
  // Two epoch-probed searches over the same neighborhood under one tick:
  // the second must skip everything the first marked.
  RTree tree(2);
  for (int i = 0; i < 64; ++i) {
    Point p;
    p.id = static_cast<PointId>(i);
    p.dims = 2;
    p.x[0] = static_cast<double>(i % 8);
    p.x[1] = static_cast<double>(i / 8);
    tree.Insert(p);
  }
  Point center;
  center.dims = 2;
  center.x[0] = 3.5;
  center.x[1] = 3.5;
  const std::uint64_t tick = tree.NewTick();
  auto mark_all = [](PointId, const Point&) { return true; };
  tree.EpochRangeSearch(center, 3.0, tick, mark_all);
  const std::uint64_t pruned_after_first = tree.stats().epoch_pruned;
  const std::uint64_t tested_after_first = tree.stats().leaf_entries_tested;
  EXPECT_GT(tested_after_first, 0u);
  tree.EpochRangeSearch(center, 3.0, tick, mark_all);
  EXPECT_GT(tree.stats().epoch_pruned, pruned_after_first);
}

TEST(ProbeCountersTest, DiscReportsDrillDownThroughSlideReport) {
  BlobsGenerator source(DriftingBlobs());
  DiscConfig config = BlobConfig();
  config.use_epoch_probing = true;
  Disc clusterer(2, config);
  StreamingPipeline pipeline(&source, &clusterer, 400, 100);
  ProbeCounters total;
  pipeline.Run(10, [&](const SlideReport& r) {
    total.range_searches += r.probes.range_searches;
    total.nodes_visited += r.probes.nodes_visited;
    total.entries_checked += r.probes.entries_checked;
    total.leaf_entries_tested += r.probes.leaf_entries_tested;
    total.epoch_pruned += r.probes.epoch_pruned;
    return true;
  });
  EXPECT_GT(total.range_searches, 0u);
  EXPECT_GE(total.nodes_visited, total.range_searches);
  EXPECT_GT(total.leaf_entries_tested, 0u);
  EXPECT_GE(total.entries_checked, total.leaf_entries_tested);
  // The drill-down must agree with the clusterer's own metrics for the
  // last slide.
  const DiscMetrics& m = clusterer.last_metrics();
  const ProbeCounters last = clusterer.LastProbeCounters();
  EXPECT_EQ(last.range_searches, m.range_searches);
  EXPECT_EQ(last.nodes_visited, m.nodes_visited);
  EXPECT_EQ(last.epoch_pruned, m.epoch_pruned);
}

// ---------------------------------------------------------------------------
// Baseline phase timings and probe counters (previously all-zero)
// ---------------------------------------------------------------------------

template <typename MakeClusterer>
void ExpectBaselineInstrumented(MakeClusterer make, bool expect_searches) {
  BlobsGenerator source(DriftingBlobs());
  auto clusterer = make();
  StreamingPipeline pipeline(&source, clusterer.get(), 300, 100);
  double timing_total = 0.0;
  std::uint64_t searches_total = 0;
  pipeline.Run(6, [&](const SlideReport& r) {
    timing_total += r.phases.collect_ms + r.phases.ex_phase_ms +
                    r.phases.neo_phase_ms + r.phases.recheck_ms;
    searches_total += r.probes.range_searches;
    return true;
  });
  EXPECT_GT(timing_total, 0.0) << clusterer->name();
  if (expect_searches) {
    EXPECT_GT(searches_total, 0u) << clusterer->name();
  }
}

TEST(BaselineObservabilityTest, IncDbscanFillsTimingsAndProbes) {
  ExpectBaselineInstrumented(
      [] { return std::make_unique<IncDbscan>(2, BlobConfig()); }, true);
}

TEST(BaselineObservabilityTest, GraphDiscFillsTimingsAndProbes) {
  ExpectBaselineInstrumented(
      [] { return std::make_unique<GraphDisc>(2, BlobConfig()); }, true);
}

TEST(BaselineObservabilityTest, ExtraNFillsTimingsAndProbes) {
  ExpectBaselineInstrumented(
      [] {
        return std::make_unique<ExtraN>(2, /*eps=*/0.4, /*tau=*/4,
                                        /*window_size=*/300, /*stride=*/100);
      },
      true);
}

}  // namespace
}  // namespace disc
