// Multi-session engine layer: per-session outputs must be byte-identical to
// standalone runs of the same streams regardless of how many sessions share
// the pool, checkpointed sessions must resume exactly where they left off
// (kill/recover equals uninterrupted), admission must reject bad sessions
// with descriptive Statuses, and the clusterer factory must cover every
// method key.

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/disc.h"
#include "engine/disc_engine.h"
#include "eval/equivalence.h"
#include "gtest/gtest.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "stream/blobs_generator.h"
#include "stream/clusterer_factory.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

constexpr std::size_t kWindow = 240;
constexpr std::size_t kStride = 60;

// The state that survives a checkpoint/recover cycle: the id-sorted
// snapshot plus the full checkpoint bytes (window, densities, labels,
// cluster registry).
std::string PersistentDiscState(const Disc& disc) {
  std::ostringstream os;
  const ClusteringSnapshot snap = disc.Snapshot();
  for (std::size_t i = 0; i < snap.ids.size(); ++i) {
    os << snap.ids[i] << ':' << static_cast<int>(snap.categories[i]) << ':'
       << snap.cids[i] << ';';
  }
  std::ostringstream ckpt;
  EXPECT_TRUE(disc.SaveCheckpoint(ckpt).ok());
  os << '|' << ckpt.str();
  return os.str();
}

// Everything deterministic and observable about a Disc after an Update: the
// persistent state plus the evolution events and workload-deterministic
// metric counters of the most recent Update. Engine-hosted and standalone
// runs of the same stream must produce identical strings slide for slide.
std::string CanonicalDiscState(const Disc& disc) {
  std::ostringstream os;
  os << PersistentDiscState(disc) << '|';
  for (const ClusterEvent& ev : disc.last_events()) {
    os << static_cast<int>(ev.type) << '(';
    for (ClusterId cid : ev.cids) os << cid << ',';
    os << ')';
  }
  const DiscMetrics& m = disc.last_metrics();
  os << '|' << m.range_searches << ',' << m.collect_searches << ','
     << m.cluster_searches << ',' << m.num_ex_cores << ',' << m.num_neo_cores
     << ',' << m.num_ex_groups << ',' << m.num_neo_groups << ','
     << m.msbfs_expansions;
  return os.str();
}

const Disc& EngineDisc(DiscEngine& engine, const std::string& name) {
  StreamClusterer* clusterer = engine.Clusterer(name);
  EXPECT_NE(clusterer, nullptr);
  EXPECT_EQ(clusterer->name(), "DISC");
  return static_cast<const Disc&>(*clusterer);
}

DiscConfig TestConfig() {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  return config;
}

SessionOptions TestSession(std::uint64_t /*seed*/ = 0) {
  SessionOptions options;
  options.method = "DISC";
  options.spec.dims = 2;
  options.spec.window_size = kWindow;
  options.spec.stride = kStride;
  options.spec.disc = TestConfig();
  return options;
}

// Pre-generated slides of one session's stream, so the engine run and the
// standalone reference consume the exact same points.
std::vector<std::vector<Point>> MakeSlides(std::uint64_t seed,
                                           std::size_t num_slides) {
  BlobsGenerator::Options o;
  o.dims = 2;
  o.num_blobs = 4;
  o.extent = 8.0;
  o.stddev = 0.3;
  o.noise_fraction = 0.1;
  o.drift = 0.05;
  o.seed = seed;
  BlobsGenerator gen(o);
  std::vector<std::vector<Point>> slides(num_slides);
  for (auto& slide : slides) slide = gen.NextPoints(kStride);
  return slides;
}

// Standalone reference: the same stream through a plain single-threaded
// Disc and window, canonical state captured after every slide.
std::vector<std::string> RunStandalone(
    const std::vector<std::vector<Point>>& slides) {
  Disc disc(2, TestConfig());
  CountBasedWindow window(kWindow, kStride);
  std::vector<std::string> per_slide;
  per_slide.reserve(slides.size());
  for (const std::vector<Point>& slide : slides) {
    WindowDelta delta = window.Advance(slide);
    disc.Update(delta.incoming, delta.outgoing);
    per_slide.push_back(CanonicalDiscState(disc));
  }
  return per_slide;
}

// Standalone reference for recovery runs: checkpoints into a fresh Disc at
// `restart_at` and reseeds the window from the restored contents — exactly
// what DiscEngine::Open does. (Byte-identity across the restart boundary is
// deliberately not part of Disc's contract: LoadCheckpoint bulk-loads the
// R-tree, so probe order — and with it cluster-id assignment — may differ
// from the incrementally built tree. The clustering stays DBSCAN-exact;
// integration_test pins that.)
std::vector<std::string> RunStandaloneWithRestart(
    const std::vector<std::vector<Point>>& slides, std::size_t restart_at) {
  auto disc = std::make_unique<Disc>(2, TestConfig());
  auto window = std::make_unique<CountBasedWindow>(kWindow, kStride);
  std::vector<std::string> per_slide;
  per_slide.reserve(slides.size());
  for (std::size_t k = 0; k < slides.size(); ++k) {
    if (k == restart_at) {
      std::stringstream buffer;
      EXPECT_TRUE(disc->SaveCheckpoint(buffer).ok());
      auto restored = std::make_unique<Disc>(2, TestConfig());
      EXPECT_TRUE(restored->LoadCheckpoint(buffer).ok());
      window = std::make_unique<CountBasedWindow>(kWindow, kStride,
                                                  restored->WindowContents());
      disc = std::move(restored);
    }
    WindowDelta delta = window->Advance(slides[k]);
    disc->Update(delta.incoming, delta.outgoing);
    per_slide.push_back(CanonicalDiscState(*disc));
  }
  return per_slide;
}

std::string SpillDir(const std::string& leaf) {
  const std::string dir = testing::TempDir() + "disc_engine_" + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Determinism: 8 sessions sharing a 4-lane pool == 8 standalone runs
// ---------------------------------------------------------------------------

TEST(EngineDeterminismTest, EightSessionsOnFourLanesMatchStandalone) {
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kSlides = 10;

  std::vector<std::vector<std::vector<Point>>> streams;
  std::vector<std::vector<std::string>> expected;
  for (std::size_t i = 0; i < kSessions; ++i) {
    streams.push_back(MakeSlides(100 + i, kSlides));
    expected.push_back(RunStandalone(streams.back()));
  }

  obs::MetricsRegistry registry;
  EngineOptions options;
  options.num_threads = 4;
  options.metrics = &registry;
  DiscEngine engine(options);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < kSessions; ++i) {
    names.push_back("stream_" + std::to_string(i));
    ASSERT_TRUE(engine.CreateSession(names[i], TestSession()).ok());
  }

  // All sessions ready every round: the concurrent single-lane-per-session
  // scheduling path.
  for (std::size_t k = 0; k < kSlides; ++k) {
    for (std::size_t i = 0; i < kSessions; ++i) {
      ASSERT_TRUE(engine.FeedSlide(names[i], streams[i][k]).ok());
    }
    EXPECT_EQ(engine.Drain(), kSessions);
    for (std::size_t i = 0; i < kSessions; ++i) {
      ASSERT_EQ(CanonicalDiscState(EngineDisc(engine, names[i])),
                expected[i][k])
          << "session " << i << " diverged at slide " << k;
    }
  }

  // One session alone: the borrow-the-whole-pool path. Still identical.
  std::vector<std::vector<Point>> extra = MakeSlides(999, 3);
  std::vector<std::vector<Point>> full(streams[0]);
  full.insert(full.end(), extra.begin(), extra.end());
  const std::vector<std::string> expected_full = RunStandalone(full);
  for (std::size_t k = 0; k < extra.size(); ++k) {
    ASSERT_TRUE(engine.FeedSlide(names[0], extra[k]).ok());
    EXPECT_EQ(engine.Drain(), 1u);
    ASSERT_EQ(CanonicalDiscState(EngineDisc(engine, names[0])),
              expected_full[kSlides + k]);
  }

  EXPECT_EQ(engine.SlidesRun(names[0]), kSlides + extra.size());
  EXPECT_EQ(registry.counter("engine_session_stream_0_slides_total").value(),
            kSlides + extra.size());
  EXPECT_EQ(registry.counter("engine_session_stream_7_slides_total").value(),
            kSlides);
}

TEST(EngineDeterminismTest, MetricExportsIndependentOfLaneCount) {
  constexpr std::size_t kSessions = 3;
  constexpr std::size_t kSlides = 6;
  std::vector<std::vector<std::vector<Point>>> streams;
  for (std::size_t i = 0; i < kSessions; ++i) {
    streams.push_back(MakeSlides(40 + i, kSlides));
  }

  std::vector<std::string> names;
  for (std::size_t i = 0; i < kSessions; ++i) {
    // Built with += rather than `"s" + std::to_string(i)`: the rvalue
    // operator+ trips GCC 12's -Wrestrict false positive (PR105651) under
    // -Werror.
    std::string name = "s";
    name += std::to_string(i);
    names.push_back(std::move(name));
  }

  auto run = [&streams, &names](std::uint32_t lanes) {
    obs::MetricsRegistry registry;
    EngineOptions options;
    options.num_threads = lanes;
    options.metrics = &registry;
    DiscEngine engine(options);
    for (std::size_t i = 0; i < kSessions; ++i) {
      EXPECT_TRUE(engine.CreateSession(names[i], TestSession()).ok());
    }
    for (std::size_t k = 0; k < kSlides; ++k) {
      for (std::size_t i = 0; i < kSessions; ++i) {
        EXPECT_TRUE(engine.FeedSlide(names[i], streams[i][k]).ok());
      }
      engine.Drain();
    }
    // The run-invariant subset: counters and gauges minus wall-clock
    // latency families (the `_ms` gauges joined the `_ms` histograms when
    // the backlog gauges landed), line-filtered like tools/prom_check.py's
    // --deterministic mode.
    std::ostringstream os;
    registry.WritePrometheus(os, /*include_histograms=*/false);
    std::istringstream lines(os.str());
    std::string filtered, line;
    while (std::getline(lines, line)) {
      if (line.find("_ms ") != std::string::npos ||
          line.find("_ms{") != std::string::npos) {
        continue;
      }
      filtered += line;
      filtered += '\n';
    }
    return filtered;
  };

  const std::string single = run(1);
  EXPECT_EQ(run(4), single);
  EXPECT_EQ(run(7), single);
}

TEST(EngineMetricsTest, BacklogGaugesExposeStalledSession) {
  obs::MetricsRegistry registry;
  EngineOptions options;
  options.num_threads = 1;
  options.metrics = &registry;
  DiscEngine engine(options);
  ASSERT_TRUE(engine.CreateSession("fed", TestSession()).ok());
  ASSERT_TRUE(engine.CreateSession("stalled", TestSession()).ok());

  // Admission zeroes the backlog gauges for both sessions.
  EXPECT_EQ(registry.gauge("engine_session_fed_queue_depth").value(), 0.0);
  EXPECT_EQ(registry.gauge("engine_session_stalled_watermark_lag_slides")
                .value(),
            0.0);

  // Feed one session only. Before any drain its queue depth is the backlog
  // and both sessions trail the watermark (the fed session's frontier).
  const auto slides = MakeSlides(50, 3);
  for (const auto& slide : slides) {
    ASSERT_TRUE(engine.FeedSlide("fed", slide).ok());
  }
  EXPECT_EQ(registry.gauge("engine_session_fed_queue_depth").value(), 3.0);
  EXPECT_EQ(registry.gauge("engine_session_fed_watermark_lag_slides").value(),
            3.0);
  EXPECT_EQ(registry.gauge("engine_session_stalled_queue_depth").value(), 0.0);
  EXPECT_EQ(registry.gauge("engine_session_stalled_watermark_lag_slides")
                .value(),
            3.0);

  // After the drain the fed session catches up to the watermark; the
  // stalled session's lag persists — the dashboard signal for a stream
  // whose feeder died.
  EXPECT_EQ(engine.Drain(), 3u);
  EXPECT_EQ(registry.gauge("engine_session_fed_queue_depth").value(), 0.0);
  EXPECT_EQ(registry.gauge("engine_session_fed_watermark_lag_slides").value(),
            0.0);
  EXPECT_EQ(registry.gauge("engine_session_stalled_watermark_lag_slides")
                .value(),
            3.0);
  EXPECT_GT(registry.gauge("engine_session_fed_last_slide_ms").value(), 0.0);

  // Closing the stalled session removes the drag; gauges for the survivor
  // stay caught up.
  ASSERT_TRUE(engine.CloseSession("stalled").ok());
  EXPECT_EQ(registry.gauge("engine_session_fed_watermark_lag_slides").value(),
            0.0);
}

TEST(EngineDeterminismTest, DrainEmitsEngineSpans) {
  obs::TraceRecorder::Options trace_options;
  trace_options.logical_time = true;
  obs::TraceRecorder recorder(trace_options);
  recorder.Install();

  EngineOptions options;
  options.num_threads = 1;
  DiscEngine engine(options);
  ASSERT_TRUE(engine.CreateSession("traced", TestSession()).ok());
  ASSERT_TRUE(engine.FeedSlide("traced", MakeSlides(7, 1)[0]).ok());
  EXPECT_EQ(engine.Drain(), 1u);
  recorder.Uninstall();

  std::ostringstream os;
  recorder.WriteChromeJson(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("engine.drain"), std::string::npos);
  EXPECT_NE(trace.find("engine.session"), std::string::npos);
  EXPECT_NE(trace.find("pipeline.slide"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checkpoint / kill / recover
// ---------------------------------------------------------------------------

TEST(EngineRecoveryTest, KillAndRecoverEqualsUninterrupted) {
  constexpr std::size_t kSessions = 3;
  constexpr std::size_t kTotal = 12;
  constexpr std::size_t kBeforeKill = 6;

  std::vector<std::vector<std::vector<Point>>> streams;
  std::vector<std::vector<std::string>> expected;
  std::vector<std::vector<std::string>> expected_restarted;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < kSessions; ++i) {
    streams.push_back(MakeSlides(7000 + i, kTotal));
    expected.push_back(RunStandalone(streams.back()));
    expected_restarted.push_back(
        RunStandaloneWithRestart(streams.back(), kBeforeKill));
    names.push_back("recover_" + std::to_string(i));
  }

  EngineOptions options;
  options.num_threads = 2;
  options.spill_dir = SpillDir("recovery");

  {
    DiscEngine engine(options);
    for (std::size_t i = 0; i < kSessions; ++i) {
      ASSERT_TRUE(engine.CreateSession(names[i], TestSession()).ok());
    }
    for (std::size_t k = 0; k < kBeforeKill; ++k) {
      for (std::size_t i = 0; i < kSessions; ++i) {
        ASSERT_TRUE(engine.FeedSlide(names[i], streams[i][k]).ok());
      }
    }
    // Checkpoint drains the queued slides first, then spills; the engine is
    // then destroyed without further ceremony — the "kill".
    ASSERT_TRUE(engine.Checkpoint().ok());
  }

  Status error;
  std::unique_ptr<DiscEngine> engine = DiscEngine::Open(options, &error);
  ASSERT_NE(engine, nullptr) << error.message();
  ASSERT_EQ(engine->SessionNames(), names);
  for (std::size_t i = 0; i < kSessions; ++i) {
    // Slide numbering and persistent state resume exactly where the kill
    // happened (per-Update scratch — events, metrics — does not persist,
    // so compare the canonical prefix that does).
    EXPECT_EQ(engine->SlidesRun(names[i]), kBeforeKill);
    const std::string persistent =
        PersistentDiscState(EngineDisc(*engine, names[i]));
    ASSERT_TRUE(expected[i][kBeforeKill - 1].rfind(persistent + "|", 0) == 0)
        << "recovered session " << i << " state differs from the checkpoint";
  }
  // The resumed sessions evolve byte-for-byte as a standalone run that went
  // through the same checkpoint round-trip at the same boundary.
  for (std::size_t k = kBeforeKill; k < kTotal; ++k) {
    for (std::size_t i = 0; i < kSessions; ++i) {
      ASSERT_TRUE(engine->FeedSlide(names[i], streams[i][k]).ok());
    }
    engine->Drain();
    for (std::size_t i = 0; i < kSessions; ++i) {
      ASSERT_EQ(CanonicalDiscState(EngineDisc(*engine, names[i])),
                expected_restarted[i][k])
          << "recovered session " << i << " diverged at slide " << k;
    }
  }
  EXPECT_EQ(engine->SlidesRun(names[0]), kTotal);

  // And the interruption is invisible to the clustering itself: each final
  // recovered labeling equals the uninterrupted run's (cluster ids may be
  // renamed; the partition may not differ).
  for (std::size_t i = 0; i < kSessions; ++i) {
    const Disc& recovered = EngineDisc(*engine, names[i]);
    Disc uninterrupted(2, TestConfig());
    CountBasedWindow window(kWindow, kStride);
    for (const std::vector<Point>& slide : streams[i]) {
      WindowDelta delta = window.Advance(slide);
      uninterrupted.Update(delta.incoming, delta.outgoing);
    }
    const std::vector<Point> contents = recovered.WindowContents();
    const EquivalenceResult eq =
        CheckSameClustering(recovered.Snapshot(), uninterrupted.Snapshot(),
                            contents, TestConfig().eps);
    EXPECT_TRUE(eq.ok) << "session " << i << ": " << eq.error;
  }
  std::filesystem::remove_all(options.spill_dir);
}

TEST(EngineRecoveryTest, CheckpointStatusErrors) {
  EngineOptions no_spill_options;
  no_spill_options.num_threads = 1;
  DiscEngine no_spill(no_spill_options);
  const Status disabled = no_spill.Checkpoint();
  EXPECT_FALSE(disabled.ok());
  EXPECT_NE(disabled.message().find("spill_dir"), std::string::npos);

  EngineOptions options;
  options.num_threads = 1;
  options.spill_dir = SpillDir("mixed");
  DiscEngine engine(options);
  ASSERT_TRUE(engine.CreateSession("exact", TestSession()).ok());
  SessionOptions summarized = TestSession();
  summarized.method = "DBSTREAM";
  ASSERT_TRUE(engine.CreateSession("summarized", summarized).ok());
  const Status mixed = engine.Checkpoint();
  EXPECT_FALSE(mixed.ok());
  // The offender is named; nothing was written.
  EXPECT_NE(mixed.message().find("summarized"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(options.spill_dir));

  ASSERT_TRUE(engine.CloseSession("summarized").ok());
  ASSERT_TRUE(engine.Checkpoint().ok());
  EXPECT_TRUE(std::filesystem::exists(options.spill_dir + "/engine.manifest"));
  std::filesystem::remove_all(options.spill_dir);
}

TEST(EngineRecoveryTest, TornCheckpointLeavesPreviousGenerationLive) {
  EngineOptions options;
  options.num_threads = 1;
  options.spill_dir = SpillDir("torn");
  const std::vector<std::vector<Point>> slides = MakeSlides(9100, 3);
  {
    DiscEngine engine(options);
    ASSERT_TRUE(engine.CreateSession("torn", TestSession()).ok());
    ASSERT_TRUE(engine.FeedSlide("torn", slides[0]).ok());
    ASSERT_TRUE(engine.FeedSlide("torn", slides[1]).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  // Simulate a crash in the middle of the next Checkpoint(): the new
  // generation is staged as .tmp files before anything is renamed, so a
  // kill at that point leaves half-written .tmp garbage next to the intact
  // published generation.
  {
    std::ofstream stage(options.spill_dir + "/torn.session.tmp",
                        std::ios::binary | std::ios::trunc);
    stage << "partial write from a crashed checkpoint";
  }
  {
    std::ofstream stage(options.spill_dir + "/engine.manifest.tmp",
                        std::ios::trunc);
    stage << "DISCENGINE 1\n99\n";
  }
  Status error;
  std::unique_ptr<DiscEngine> engine = DiscEngine::Open(options, &error);
  ASSERT_NE(engine, nullptr) << error.message();
  EXPECT_EQ(engine->SlidesRun("torn"), 2u);
  // The recovered session still streams.
  ASSERT_TRUE(engine->FeedSlide("torn", slides[2]).ok());
  EXPECT_EQ(engine->Drain(), 1u);
  std::filesystem::remove_all(options.spill_dir);
}

TEST(EngineRecoveryTest, OpenRejectsDegenerateGeometry) {
  EngineOptions options;
  options.num_threads = 1;
  options.spill_dir = SpillDir("geometry");
  {
    DiscEngine engine(options);
    ASSERT_TRUE(engine.CreateSession("geom", TestSession()).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  // Zero the spilled stride in place. Field offset per the spill framing:
  // magic u32, (u64 length + bytes) for name and method, dims u32,
  // window_size u64, then stride u64.
  const std::string name = "geom", method = "DISC";
  const std::streamoff stride_offset =
      4 + (8 + static_cast<std::streamoff>(name.size())) +
      (8 + static_cast<std::streamoff>(method.size())) + 4 + 8;
  {
    std::fstream file(options.spill_dir + "/geom.session",
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(stride_offset);
    const char zeros[8] = {};
    file.write(zeros, sizeof(zeros));
    ASSERT_TRUE(static_cast<bool>(file));
  }
  Status error;
  EXPECT_EQ(DiscEngine::Open(options, &error), nullptr);
  EXPECT_FALSE(error.ok());
  EXPECT_NE(error.message().find("window geometry"), std::string::npos);
  std::filesystem::remove_all(options.spill_dir);
}

TEST(EngineRecoveryTest, OpenFailsWithoutManifest) {
  EngineOptions options;
  options.spill_dir = SpillDir("absent");
  Status error;
  EXPECT_EQ(DiscEngine::Open(options, &error), nullptr);
  EXPECT_FALSE(error.ok());
  EXPECT_NE(error.message().find("manifest"), std::string::npos);

  options.spill_dir.clear();
  EXPECT_EQ(DiscEngine::Open(options, &error), nullptr);
  EXPECT_FALSE(error.ok());
}

// ---------------------------------------------------------------------------
// Admission and feeding errors
// ---------------------------------------------------------------------------

TEST(EngineAdmissionTest, RejectsBadSessions) {
  EngineOptions options;
  options.num_threads = 1;
  DiscEngine engine(options);

  EXPECT_FALSE(engine.CreateSession("", TestSession()).ok());
  EXPECT_FALSE(engine.CreateSession("bad name", TestSession()).ok());
  EXPECT_FALSE(engine.CreateSession("0starts_with_digit", TestSession()).ok());

  ASSERT_TRUE(engine.CreateSession("taken", TestSession()).ok());
  const Status duplicate = engine.CreateSession("taken", TestSession());
  EXPECT_FALSE(duplicate.ok());
  EXPECT_NE(duplicate.message().find("taken"), std::string::npos);

  SessionOptions geometry = TestSession();
  geometry.spec.stride = 0;
  EXPECT_FALSE(engine.CreateSession("no_stride", geometry).ok());
  geometry.spec.stride = kWindow + 1;
  EXPECT_FALSE(engine.CreateSession("stride_gt_window", geometry).ok());

  SessionOptions unknown = TestSession();
  unknown.method = "KMEANS";
  const Status bad_method = engine.CreateSession("unknown_method", unknown);
  EXPECT_FALSE(bad_method.ok());
  EXPECT_NE(bad_method.message().find("unknown clustering method"),
            std::string::npos);

  SessionOptions invalid = TestSession();
  invalid.spec.disc.eps = -1.0;
  const Status bad_config = engine.CreateSession("bad_eps", invalid);
  EXPECT_FALSE(bad_config.ok());
  EXPECT_NE(bad_config.message().find("eps"), std::string::npos);

  // Only the one valid session was admitted.
  EXPECT_EQ(engine.session_count(), 1u);
  EXPECT_EQ(engine.SessionNames(), std::vector<std::string>{"taken"});
}

TEST(EngineAdmissionTest, FeedAndCloseErrors) {
  EngineOptions options;
  options.num_threads = 1;
  DiscEngine engine(options);
  ASSERT_TRUE(engine.CreateSession("only", TestSession()).ok());

  EXPECT_FALSE(engine.FeedSlide("missing", MakeSlides(1, 1)[0]).ok());
  const Status short_slide =
      engine.FeedSlide("only", std::vector<Point>(kStride - 1));
  EXPECT_FALSE(short_slide.ok());
  EXPECT_NE(short_slide.message().find("stride"), std::string::npos);
  EXPECT_EQ(engine.PendingSlides("only"), 0u);

  // Dimensionality is checked point by point at the API boundary, not deep
  // inside the clusterer at Drain time.
  std::vector<Point> mixed_dims = MakeSlides(2, 1)[0];
  mixed_dims[3].dims = 3;
  const Status bad_dims = engine.FeedSlide("only", mixed_dims);
  EXPECT_FALSE(bad_dims.ok());
  EXPECT_NE(bad_dims.message().find("dims"), std::string::npos);
  EXPECT_EQ(engine.PendingSlides("only"), 0u);

  EXPECT_FALSE(engine.CloseSession("missing").ok());
  EXPECT_TRUE(engine.CloseSession("only").ok());
  EXPECT_EQ(engine.session_count(), 0u);
  EXPECT_EQ(engine.Drain(), 0u);
}

TEST(EngineAdmissionTest, HostsEveryFactoryMethod) {
  EngineOptions options;
  options.num_threads = 2;
  DiscEngine engine(options);
  std::vector<std::string> names;
  for (std::string_view method : KnownClustererMethods()) {
    SessionOptions session = TestSession();
    session.method = std::string(method);
    std::string name = "m_" + session.method;
    for (char& c : name) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) c = '_';
    }
    ASSERT_TRUE(engine.CreateSession(name, session).ok()) << method;
    names.push_back(name);
  }
  std::vector<std::vector<Point>> slides = MakeSlides(5, 2);
  for (const std::vector<Point>& slide : slides) {
    for (const std::string& name : names) {
      ASSERT_TRUE(engine.FeedSlide(name, slide).ok());
    }
    EXPECT_EQ(engine.Drain(), names.size());
  }
  for (const std::string& name : names) {
    EXPECT_EQ(engine.SlidesRun(name), slides.size());
    EXPECT_GE(engine.Clusterer(name)->Snapshot().size(), 1u);
  }
}

// ---------------------------------------------------------------------------
// Clusterer factory
// ---------------------------------------------------------------------------

TEST(ClustererFactoryTest, CoversEveryMethodKey) {
  ClustererSpec spec;
  spec.dims = 2;
  spec.window_size = 40;
  spec.stride = 10;
  spec.disc = TestConfig();
  for (std::string_view method : KnownClustererMethods()) {
    Status error;
    std::unique_ptr<StreamClusterer> clusterer =
        MakeClusterer(method, spec, &error);
    ASSERT_NE(clusterer, nullptr) << method << ": " << error.message();
    EXPECT_TRUE(error.ok());
  }
  // Matching is case-insensitive.
  EXPECT_NE(MakeClusterer("disc", spec), nullptr);
  EXPECT_NE(MakeClusterer("dbstream", spec), nullptr);
}

TEST(ClustererFactoryTest, UnknownMethodIsDescriptiveAndSafe) {
  ClustererSpec spec;
  spec.dims = 2;
  spec.window_size = 40;
  spec.stride = 10;
  spec.disc = TestConfig();

  // With a null error pointer: no crash, just a null clusterer.
  EXPECT_EQ(MakeClusterer("NOT_A_METHOD", spec), nullptr);

  // With an error out-param: the message names the offender and lists
  // every known method, so the caller can fix a typo without digging.
  Status error;
  EXPECT_EQ(MakeClusterer("NOT_A_METHOD", spec, &error), nullptr);
  EXPECT_FALSE(error.ok());
  EXPECT_NE(error.message().find("NOT_A_METHOD"), std::string::npos)
      << error.message();
  for (std::string_view method : KnownClustererMethods()) {
    EXPECT_NE(error.message().find(method), std::string::npos)
        << "unknown-method error should list \"" << method
        << "\": " << error.message();
  }

  // The empty string is just another unknown method, not a special case.
  EXPECT_EQ(MakeClusterer("", spec, &error), nullptr);
  EXPECT_FALSE(error.ok());
}

TEST(ClustererFactoryTest, ReportsConstructionErrors) {
  ClustererSpec spec;
  spec.disc = TestConfig();

  Status error;
  EXPECT_EQ(MakeClusterer("KMEANS", spec, &error), nullptr);
  EXPECT_FALSE(error.ok());
  EXPECT_NE(error.message().find("DISC"), std::string::npos)
      << "unknown-method error should list the known keys: "
      << error.message();

  // EXTRA-N needs the window geometry.
  EXPECT_EQ(MakeClusterer("EXTRA-N", spec, &error), nullptr);
  EXPECT_FALSE(error.ok());
  EXPECT_NE(error.message().find("EXTRA-N"), std::string::npos);

  spec.disc.eps = 0.0;
  EXPECT_EQ(MakeClusterer("DISC", spec, &error), nullptr);
  EXPECT_FALSE(error.ok());
  EXPECT_NE(error.message().find("eps"), std::string::npos);
}

// ---------------------------------------------------------------------------
// DiscConfig::Validate
// ---------------------------------------------------------------------------

TEST(ConfigValidateTest, DescribesEachViolation) {
  EXPECT_TRUE(DiscConfig{}.Validate().ok());

  DiscConfig bad_eps;
  bad_eps.eps = -0.5;
  Status status = bad_eps.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("eps"), std::string::npos);

  DiscConfig bad_tau;
  bad_tau.tau = 0;
  status = bad_tau.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("tau"), std::string::npos);

  DiscConfig bad_fanout;
  bad_fanout.rtree_max_entries = 3;
  status = bad_fanout.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("rtree_max_entries"), std::string::npos);
}

TEST(ConfigValidateTest, DiscConstructorThrowsOnInvalidConfig) {
  DiscConfig config;
  config.eps = 0.0;
  EXPECT_THROW(Disc(2, config), std::invalid_argument);
  config = DiscConfig{};
  config.tau = 0;
  EXPECT_THROW(Disc(2, config), std::invalid_argument);
}

}  // namespace
}  // namespace disc
