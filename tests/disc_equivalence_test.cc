// The paper's central claim (Sec. I, Sec. V): after every window slide, DISC
// produces exactly the clustering DBSCAN computes from scratch. These
// property tests drive DISC over randomized streams under many parameter
// combinations and check equivalence after each slide, with all four
// optimization settings.

#include <memory>
#include <string>
#include <vector>

#include "baselines/dbscan.h"
#include "core/disc.h"
#include "eval/equivalence.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/maze_generator.h"
#include "stream/sliding_window.h"
#include "stream/stream_source.h"

namespace disc {
namespace {

struct ParamCase {
  std::string name;
  double eps;
  std::uint32_t tau;
  std::size_t window;
  std::size_t stride;
  bool use_msbfs;
  bool use_epoch;
  bool parallel_cluster = true;
  int generator;  // 0: blobs, 1: drifting blobs, 2: maze, 3: uniform.
  std::uint32_t dims;
};

std::unique_ptr<StreamSource> MakeSource(const ParamCase& pc,
                                         std::uint64_t seed) {
  switch (pc.generator) {
    case 0: {
      BlobsGenerator::Options o;
      o.dims = pc.dims;
      o.num_blobs = 6;
      o.extent = 10.0;
      o.stddev = 0.35;
      o.noise_fraction = 0.15;
      o.seed = seed;
      return std::make_unique<BlobsGenerator>(o);
    }
    case 1: {
      BlobsGenerator::Options o;
      o.dims = pc.dims;
      o.num_blobs = 4;
      o.extent = 8.0;
      o.stddev = 0.3;
      o.noise_fraction = 0.1;
      o.drift = 0.05;  // Forces splits/merges/dissipations.
      o.seed = seed;
      return std::make_unique<BlobsGenerator>(o);
    }
    case 2: {
      MazeGenerator::Options o;
      o.num_seeds = 8;
      o.extent = 12.0;
      o.step = 0.08;
      o.jitter = 0.03;
      o.points_per_step = 3;
      o.seed = seed;
      return std::make_unique<MazeGenerator>(o);
    }
    default:
      return std::make_unique<UniformGenerator>(pc.dims, 0.0, 6.0, seed);
  }
}

class DiscEquivalenceTest : public ::testing::TestWithParam<ParamCase> {};

TEST_P(DiscEquivalenceTest, MatchesFreshDbscanAfterEverySlide) {
  const ParamCase& pc = GetParam();
  auto source = MakeSource(pc, /*seed=*/99);

  DiscConfig config;
  config.eps = pc.eps;
  config.tau = pc.tau;
  config.use_msbfs = pc.use_msbfs;
  config.use_epoch_probing = pc.use_epoch;
  config.parallel_cluster = pc.parallel_cluster;
  Disc disc(pc.dims, config);

  // Twin instance: identical config except it runs on a thread pool. Every
  // oracle comparison below also executes the parallel configuration, and
  // the twin must stay byte-identical to the single-threaded instance.
  DiscConfig par_config = config;
  par_config.num_threads = 4;
  Disc par_disc(pc.dims, par_config);

  CountBasedWindow window(pc.window, pc.stride);
  const int slides = 12;
  for (int s = 0; s < slides; ++s) {
    WindowDelta delta = window.Advance(source->NextPoints(pc.stride));
    disc.Update(delta.incoming, delta.outgoing);
    par_disc.Update(delta.incoming, delta.outgoing);

    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, pc.eps, pc.tau);
    const EquivalenceResult eq = CheckSameClustering(
        disc.Snapshot(), truth.snapshot, contents, pc.eps);
    ASSERT_TRUE(eq.ok) << "slide " << s << " [" << pc.name
                       << "] seed 99: " << eq.error;
    const EquivalenceResult par_eq = CheckSameClustering(
        par_disc.Snapshot(), truth.snapshot, contents, pc.eps);
    ASSERT_TRUE(par_eq.ok) << "slide " << s << " [" << pc.name
                           << "] seed 99 (num_threads=4): " << par_eq.error;
    const ClusteringSnapshot a = disc.Snapshot();
    const ClusteringSnapshot b = par_disc.Snapshot();
    ASSERT_TRUE(a.ids == b.ids && a.categories == b.categories &&
                a.cids == b.cids)
        << "slide " << s << " [" << pc.name
        << "] seed 99: num_threads=4 snapshot diverged from num_threads=1";
  }
}

std::vector<ParamCase> MakeCases() {
  std::vector<ParamCase> cases;
  // Base grid: generators x optimization settings (MS-BFS, epoch probing,
  // and the parallel-vs-legacy CLUSTER structure).
  int idx = 0;
  for (int gen = 0; gen <= 3; ++gen) {
    for (int opt = 0; opt < 8; ++opt) {
      ParamCase pc;
      pc.generator = gen;
      pc.use_msbfs = (opt & 1) != 0;
      pc.use_epoch = (opt & 2) != 0;
      pc.parallel_cluster = (opt & 4) != 0;
      pc.eps = gen == 3 ? 0.45 : 0.4;
      pc.tau = 5;
      pc.window = 600;
      pc.stride = 60;
      pc.dims = 2;
      pc.name = "gen" + std::to_string(gen) + "_opt" + std::to_string(opt) +
                "_" + std::to_string(idx++);
      cases.push_back(pc);
    }
  }
  // Stride extremes: tiny stride and stride == window (full turnover).
  for (std::size_t stride : {10UL, 300UL, 600UL}) {
    ParamCase pc;
    pc.generator = 1;
    pc.use_msbfs = true;
    pc.use_epoch = true;
    pc.eps = 0.4;
    pc.tau = 4;
    pc.window = 600;
    pc.stride = stride;
    pc.dims = 2;
    pc.name = "stride" + std::to_string(stride);
    cases.push_back(pc);
  }
  // Density threshold extremes.
  for (std::uint32_t tau : {1U, 2U, 12U}) {
    ParamCase pc;
    pc.generator = 0;
    pc.use_msbfs = true;
    pc.use_epoch = true;
    pc.eps = 0.35;
    pc.tau = tau;
    pc.window = 500;
    pc.stride = 50;
    pc.dims = 2;
    pc.name = "tau" + std::to_string(tau);
    cases.push_back(pc);
  }
  // Higher dimensions.
  for (std::uint32_t dims : {3U, 4U}) {
    ParamCase pc;
    pc.generator = 0;
    pc.use_msbfs = true;
    pc.use_epoch = true;
    pc.eps = 0.8;
    pc.tau = 4;
    pc.window = 500;
    pc.stride = 50;
    pc.dims = dims;
    pc.name = "dims" + std::to_string(dims);
    cases.push_back(pc);
  }
  // Epsilon extremes: near-zero neighborhoods and near-global ones.
  for (double eps : {0.05, 2.5}) {
    ParamCase pc;
    pc.generator = 0;
    pc.use_msbfs = true;
    pc.use_epoch = true;
    pc.eps = eps;
    pc.tau = 4;
    pc.window = 400;
    pc.stride = 80;
    pc.dims = 2;
    pc.name = "eps" + std::to_string(static_cast<int>(eps * 100));
    cases.push_back(pc);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiscEquivalenceTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<ParamCase>& param_info) {
                           return param_info.param.name;
                         });

}  // namespace
}  // namespace disc
