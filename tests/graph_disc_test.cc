// Tests for GraphDisc — the materialized-eps-graph DISC variant (the
// alternative the paper's Sec. IV considers and rejects). It must be exactly
// as correct as Disc; the difference is purely a cost trade-off.

#include <memory>
#include <vector>

#include "baselines/dbscan.h"
#include "baselines/graph_disc.h"
#include "core/disc.h"
#include "eval/equivalence.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/iris_generator.h"
#include "stream/maze_generator.h"
#include "stream/sliding_window.h"
#include "stream/stream_source.h"

namespace disc {
namespace {

void ExpectExact(std::uint32_t dims, StreamSource* source, double eps,
                 std::uint32_t tau, std::size_t window_size,
                 std::size_t stride, int slides) {
  DiscConfig config;
  config.eps = eps;
  config.tau = tau;
  GraphDisc graph(dims, config);
  CountBasedWindow window(window_size, stride);
  for (int s = 0; s < slides; ++s) {
    WindowDelta d = window.Advance(source->NextPoints(stride));
    graph.Update(d.incoming, d.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, eps, tau);
    const EquivalenceResult eq =
        CheckSameClustering(graph.Snapshot(), truth.snapshot, contents, eps);
    ASSERT_TRUE(eq.ok) << "slide " << s << ": " << eq.error;
  }
}

TEST(GraphDiscTest, MatchesDbscanOnStaticBlobs) {
  BlobsGenerator::Options o;
  o.num_blobs = 5;
  o.stddev = 0.3;
  o.noise_fraction = 0.15;
  o.seed = 61;
  BlobsGenerator source(o);
  ExpectExact(2, &source, 0.4, 5, 500, 50, 10);
}

TEST(GraphDiscTest, MatchesDbscanOnDriftingBlobs) {
  BlobsGenerator::Options o;
  o.num_blobs = 4;
  o.extent = 8.0;
  o.stddev = 0.3;
  o.noise_fraction = 0.1;
  o.drift = 0.05;
  o.seed = 62;
  BlobsGenerator source(o);
  ExpectExact(2, &source, 0.4, 4, 500, 100, 12);
}

TEST(GraphDiscTest, MatchesDbscanOnMazeTrajectories) {
  MazeGenerator::Options o;
  o.num_seeds = 8;
  o.extent = 12.0;
  o.step = 0.08;
  o.jitter = 0.03;
  o.points_per_step = 3;
  o.seed = 63;
  MazeGenerator source(o);
  ExpectExact(2, &source, 0.4, 5, 600, 60, 12);
}

TEST(GraphDiscTest, MatchesDbscanOn4DSoakStream) {
  // The same stream family that exposed the multi-group survivor bug.
  IrisGenerator::Options o;
  o.num_faults = 10;
  o.seed = 59;
  IrisGenerator source(o);
  ExpectExact(4, &source, 2.0, 6, 1500, 150, 40);
}

TEST(GraphDiscTest, FullTurnoverStride) {
  BlobsGenerator::Options o;
  o.seed = 64;
  BlobsGenerator source(o);
  ExpectExact(2, &source, 0.4, 5, 300, 300, 6);
}

TEST(GraphDiscTest, AgreesWithIndexBackedDiscOnEverySlide) {
  DiscConfig config;
  config.eps = 0.35;
  config.tau = 4;
  Disc index_backed(2, config);
  GraphDisc graph_backed(2, config);
  BlobsGenerator::Options o;
  o.num_blobs = 5;
  o.drift = 0.04;
  o.noise_fraction = 0.12;
  o.seed = 65;
  BlobsGenerator source(o);
  CountBasedWindow window(600, 120);
  for (int s = 0; s < 10; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(120));
    index_backed.Update(d.incoming, d.outgoing);
    graph_backed.Update(d.incoming, d.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const EquivalenceResult eq =
        CheckSameClustering(index_backed.Snapshot(), graph_backed.Snapshot(),
                            contents, config.eps);
    ASSERT_TRUE(eq.ok) << "slide " << s << ": " << eq.error;
  }
}

TEST(GraphDiscTest, OnlyInsertionsIssueRangeSearches) {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  GraphDisc graph(2, config);
  BlobsGenerator::Options o;
  o.seed = 66;
  BlobsGenerator source(o);
  std::vector<Point> first = source.NextPoints(200);
  graph.Update(first, {});
  EXPECT_EQ(graph.last_range_searches(), 200u);
  // Deletion-only slide: zero searches — the variant's selling point.
  graph.Update({}, std::vector<Point>(first.begin(), first.begin() + 100));
  EXPECT_EQ(graph.last_range_searches(), 0u);
}

TEST(GraphDiscTest, EdgeAndMemoryAccountingTracksDensity) {
  DiscConfig config;
  config.eps = 0.5;
  config.tau = 4;
  GraphDisc graph(2, config);
  // A dense clump: every pair within eps => n*(n-1)/2 edges.
  std::vector<Point> clump;
  for (PointId id = 0; id < 40; ++id) {
    Point p;
    p.id = id;
    p.dims = 2;
    p.x[0] = 1.0 + 0.001 * static_cast<double>(id);
    p.x[1] = 1.0;
    clump.push_back(p);
  }
  graph.Update(clump, {});
  EXPECT_EQ(graph.total_edges(), 40u * 39u / 2u);
  const std::size_t bytes_dense = graph.ApproxMemoryBytes();
  // Remove half: edges and memory shrink.
  graph.Update({}, std::vector<Point>(clump.begin(), clump.begin() + 20));
  EXPECT_EQ(graph.total_edges(), 20u * 19u / 2u);
  EXPECT_LT(graph.ApproxMemoryBytes(), bytes_dense);
}

}  // namespace
}  // namespace disc
