// Targeted scenario tests for IncDBSCAN's per-operation cases (Ester et al.
// '98): insertion noise / creation / absorption / merge, and deletion
// removal / reduction / split / dissipation.

#include <vector>

#include "baselines/dbscan.h"
#include "common/rng.h"
#include "baselines/inc_dbscan.h"
#include "eval/equivalence.h"
#include "eval/partition.h"
#include "gtest/gtest.h"

namespace disc {
namespace {

Point P2(PointId id, double x, double y) {
  Point p;
  p.id = id;
  p.dims = 2;
  p.x[0] = x;
  p.x[1] = y;
  return p;
}

std::vector<Point> Plus(PointId base, double x, double y) {
  return {P2(base, x, y), P2(base + 1, x + 0.1, y), P2(base + 2, x - 0.1, y),
          P2(base + 3, x, y + 0.1), P2(base + 4, x, y - 0.1)};
}

DiscConfig Config() {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  return config;
}

Labeling LabelOf(const IncDbscan& inc) { return ToLabeling(inc.Snapshot()); }

TEST(IncDbscanScenarioTest, InsertionNoiseCase) {
  IncDbscan inc(2, Config());
  inc.Update({P2(0, 1.0, 1.0)}, {});
  EXPECT_EQ(LabelOf(inc).category.at(0), Category::kNoise);
  inc.Update({P2(1, 5.0, 5.0)}, {});
  EXPECT_EQ(LabelOf(inc).category.at(1), Category::kNoise);
  EXPECT_EQ(inc.Snapshot().NumClusters(), 0u);
}

TEST(IncDbscanScenarioTest, InsertionCreationCase) {
  IncDbscan inc(2, Config());
  // Two points, then the third makes all three a brand-new cluster.
  inc.Update({P2(0, 1.0, 1.0), P2(1, 1.1, 1.0)}, {});
  EXPECT_EQ(inc.Snapshot().NumClusters(), 0u);
  inc.Update({P2(2, 1.05, 1.05)}, {});
  EXPECT_EQ(inc.Snapshot().NumClusters(), 1u);
  const Labeling l = LabelOf(inc);
  EXPECT_EQ(l.category.at(0), Category::kCore);
  EXPECT_EQ(l.category.at(1), Category::kCore);
  EXPECT_EQ(l.category.at(2), Category::kCore);
}

TEST(IncDbscanScenarioTest, InsertionAbsorptionCase) {
  IncDbscan inc(2, Config());
  inc.Update(Plus(0, 1.0, 1.0), {});
  ASSERT_EQ(inc.Snapshot().NumClusters(), 1u);
  const ClusterId before = LabelOf(inc).cid.at(0);
  // A point near the cluster is absorbed as border, then another makes it
  // core — still the same single cluster.
  inc.Update({P2(10, 1.2, 1.0)}, {});
  inc.Update({P2(11, 1.3, 1.0)}, {});
  const Labeling l = LabelOf(inc);
  EXPECT_EQ(inc.Snapshot().NumClusters(), 1u);
  EXPECT_EQ(l.cid.at(10), before);
}

TEST(IncDbscanScenarioTest, InsertionMergeCase) {
  IncDbscan inc(2, Config());
  std::vector<Point> both = Plus(0, 1.0, 1.0);
  const std::vector<Point> right = Plus(100, 1.5, 1.0);
  both.insert(both.end(), right.begin(), right.end());
  inc.Update(both, {});
  ASSERT_EQ(inc.Snapshot().NumClusters(), 2u);
  // One bridging point whose insertion makes itself and its neighbors cores
  // connecting both clusters.
  inc.Update({P2(200, 1.25, 1.0), P2(201, 1.25, 1.05)}, {});
  EXPECT_EQ(inc.Snapshot().NumClusters(), 1u);
}

TEST(IncDbscanScenarioTest, DeletionRemovalCase) {
  IncDbscan inc(2, Config());
  std::vector<Point> pts = Plus(0, 1.0, 1.0);
  pts.push_back(P2(50, 9.0, 9.0));  // Lone noise.
  inc.Update(pts, {});
  inc.Update({}, {P2(50, 9.0, 9.0)});  // Deleting noise changes nothing else.
  EXPECT_EQ(inc.Snapshot().NumClusters(), 1u);
  EXPECT_EQ(inc.window_size(), 5u);
}

TEST(IncDbscanScenarioTest, DeletionReductionCase) {
  IncDbscan inc(2, Config());
  std::vector<Point> blob = Plus(0, 1.0, 1.0);
  blob.push_back(P2(10, 1.05, 1.05));
  inc.Update(blob, {});
  ASSERT_EQ(inc.Snapshot().NumClusters(), 1u);
  inc.Update({}, {P2(10, 1.05, 1.05)});
  EXPECT_EQ(inc.Snapshot().NumClusters(), 1u);  // Shrinks, stays connected.
}

TEST(IncDbscanScenarioTest, DeletionSplitCase) {
  IncDbscan inc(2, Config());
  std::vector<Point> all = Plus(0, 1.0, 1.0);
  const std::vector<Point> right = Plus(100, 1.6, 1.0);
  all.insert(all.end(), right.begin(), right.end());
  std::vector<Point> bridge = {P2(200, 1.2, 1.0), P2(201, 1.3, 1.0),
                               P2(202, 1.4, 1.0)};
  all.insert(all.end(), bridge.begin(), bridge.end());
  inc.Update(all, {});
  ASSERT_EQ(inc.Snapshot().NumClusters(), 1u);
  inc.Update({}, bridge);
  EXPECT_EQ(inc.Snapshot().NumClusters(), 2u);
  // The two sides carry different cluster ids.
  const Labeling l = LabelOf(inc);
  EXPECT_NE(l.cid.at(0), l.cid.at(100));
}

TEST(IncDbscanScenarioTest, DeletionDissipationCase) {
  IncDbscan inc(2, Config());
  const std::vector<Point> blob = Plus(0, 1.0, 1.0);
  inc.Update(blob, {});
  ASSERT_EQ(inc.Snapshot().NumClusters(), 1u);
  // Remove the center and two arms; the remaining two arms are 0.2 apart —
  // beyond eps — so density collapses below tau everywhere.
  inc.Update({}, {blob[0], blob[1], blob[2]});
  EXPECT_EQ(inc.Snapshot().NumClusters(), 0u);
  for (const auto& [id, cat] : LabelOf(inc).category) {
    EXPECT_EQ(cat, Category::kNoise);
  }
}

TEST(IncDbscanScenarioTest, NonCoreDeletionCanStillDemoteCores) {
  IncDbscan inc(2, Config());
  // A core whose status depends on a border neighbor.
  std::vector<Point> pts = {P2(0, 1.0, 1.0), P2(1, 1.1, 1.0),
                            P2(2, 0.9, 1.0)};
  inc.Update(pts, {});
  ASSERT_EQ(LabelOf(inc).category.at(0), Category::kCore);
  // Point 2 is a border (2 neighbors). Deleting it demotes point 0.
  inc.Update({}, {P2(2, 0.9, 1.0)});
  EXPECT_EQ(LabelOf(inc).category.at(0), Category::kNoise);
}

// Per-op validity: IncDBSCAN's contract is a correct clustering after every
// single operation, not just at batch ends — verified through single-point
// Updates against fresh DBSCAN.
TEST(IncDbscanScenarioTest, ValidAfterEverySingleOperation) {
  IncDbscan inc(2, Config());
  std::vector<Point> live;
  Rng rng(41);
  PointId next = 0;
  for (int op = 0; op < 120; ++op) {
    const bool remove = !live.empty() && rng.Bernoulli(0.4);
    if (remove) {
      const std::size_t victim =
          static_cast<std::size_t>(rng.UniformInt(0, live.size() - 1));
      inc.Update({}, {live[victim]});
      live[victim] = live.back();
      live.pop_back();
    } else {
      // Cluster-forming region with occasional noise.
      Point p = P2(next++, rng.Uniform(0.0, 1.2), rng.Uniform(0.0, 1.2));
      live.push_back(p);
      inc.Update({p}, {});
    }
    const DbscanResult truth = RunDbscan(live, 0.15, 3);
    const EquivalenceResult eq =
        CheckSameClustering(inc.Snapshot(), truth.snapshot, live, 0.15);
    ASSERT_TRUE(eq.ok) << "op " << op << ": " << eq.error;
  }
}

}  // namespace
}  // namespace disc
