// Long-run property tests for DISC: internal-consistency invariants checked
// after every slide over extended randomized streams, plus the ablation
// identity (all four optimization settings produce the same clustering) and
// agreement between DISC and IncDBSCAN on the same stream.

#include <map>
#include <memory>
#include <vector>

#include "baselines/inc_dbscan.h"
#include "core/disc.h"
#include "eval/equivalence.h"
#include "eval/partition.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

std::unique_ptr<BlobsGenerator> MakeStream(std::uint64_t seed) {
  BlobsGenerator::Options o;
  o.dims = 2;
  o.num_blobs = 5;
  o.extent = 9.0;
  o.stddev = 0.3;
  o.noise_fraction = 0.15;
  o.drift = 0.04;
  o.seed = seed;
  return std::make_unique<BlobsGenerator>(o);
}

// Brute-force n_eps (including self).
std::size_t BruteDensity(const std::vector<Point>& window, const Point& p,
                         double eps) {
  std::size_t n = 0;
  for (const Point& q : window) {
    if (WithinEps(p, q, eps)) ++n;
  }
  return n;
}

class DiscInvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiscInvariantTest, SnapshotInvariantsHoldOnEverySlide) {
  auto source = MakeStream(GetParam());
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  Disc disc(2, config);
  CountBasedWindow window(700, 70);

  for (int s = 0; s < 25; ++s) {
    WindowDelta delta = window.Advance(source->NextPoints(70));
    disc.Update(delta.incoming, delta.outgoing);

    const std::vector<Point> contents(window.contents().begin(),
                                      window.contents().end());
    ASSERT_EQ(disc.window_size(), contents.size());

    const ClusteringSnapshot snap = disc.Snapshot();
    ASSERT_EQ(snap.size(), contents.size());

    std::map<PointId, const Point*> by_id;
    for (const Point& p : contents) by_id[p.id] = &p;

    for (std::size_t i = 0; i < snap.size(); ++i) {
      ASSERT_TRUE(by_id.count(snap.ids[i]) > 0)
          << "snapshot holds a point not in the window";
      const Point& p = *by_id[snap.ids[i]];
      const std::size_t density = BruteDensity(contents, p, config.eps);
      switch (snap.categories[i]) {
        case Category::kCore:
          ASSERT_GE(density, config.tau) << "slide " << s;
          ASSERT_NE(snap.cids[i], kNoiseCluster);
          break;
        case Category::kBorder:
          ASSERT_LT(density, config.tau);
          ASSERT_NE(snap.cids[i], kNoiseCluster);
          break;
        case Category::kNoise:
          ASSERT_LT(density, config.tau);
          ASSERT_EQ(snap.cids[i], kNoiseCluster);
          break;
      }
    }
  }
}

TEST_P(DiscInvariantTest, AllOptimizationSettingsProduceIdenticalClusterings) {
  DiscConfig base;
  base.eps = 0.4;
  base.tau = 5;

  std::vector<std::unique_ptr<Disc>> variants;
  for (int opt = 0; opt < 4; ++opt) {
    DiscConfig config = base;
    config.use_msbfs = (opt & 1) != 0;
    config.use_epoch_probing = (opt & 2) != 0;
    variants.push_back(std::make_unique<Disc>(2, config));
  }
  {
    DiscConfig config = base;
    config.use_border_witness = false;
    variants.push_back(std::make_unique<Disc>(2, config));
  }
  {
    DiscConfig config = base;
    config.rtree_max_entries = 6;
    variants.push_back(std::make_unique<Disc>(2, config));
  }
  {
    DiscConfig config = base;
    config.rtree_split_policy = SplitPolicy::kRStar;
    variants.push_back(std::make_unique<Disc>(2, config));
  }

  auto source = MakeStream(GetParam() + 1000);
  CountBasedWindow window(600, 100);
  for (int s = 0; s < 15; ++s) {
    WindowDelta delta = window.Advance(source->NextPoints(100));
    for (auto& v : variants) v->Update(delta.incoming, delta.outgoing);

    const std::vector<Point> contents(window.contents().begin(),
                                      window.contents().end());
    const ClusteringSnapshot reference = variants[0]->Snapshot();
    for (std::size_t v = 1; v < variants.size(); ++v) {
      const EquivalenceResult eq = CheckSameClustering(
          reference, variants[v]->Snapshot(), contents, base.eps);
      ASSERT_TRUE(eq.ok) << "slide " << s << " variant " << v << ": "
                         << eq.error;
    }
  }
}

TEST_P(DiscInvariantTest, DiscAndIncDbscanAgreeOnEverySlide) {
  DiscConfig config;
  config.eps = 0.35;
  config.tau = 4;
  Disc disc(2, config);
  IncDbscan inc(2, config);

  auto source = MakeStream(GetParam() + 2000);
  CountBasedWindow window(500, 125);
  for (int s = 0; s < 12; ++s) {
    WindowDelta delta = window.Advance(source->NextPoints(125));
    disc.Update(delta.incoming, delta.outgoing);
    inc.Update(delta.incoming, delta.outgoing);
    const std::vector<Point> contents(window.contents().begin(),
                                      window.contents().end());
    const EquivalenceResult eq = CheckSameClustering(
        disc.Snapshot(), inc.Snapshot(), contents, config.eps);
    ASSERT_TRUE(eq.ok) << "slide " << s << ": " << eq.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscInvariantTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Duplicate coordinates: many points at identical positions must not break
// density accounting or clustering.
TEST(DiscEdgeCaseTest, DuplicateCoordinatePoints) {
  DiscConfig config;
  config.eps = 0.1;
  config.tau = 4;
  Disc disc(2, config);
  std::vector<Point> batch;
  for (PointId id = 0; id < 12; ++id) {
    Point p;
    p.id = id;
    p.dims = 2;
    p.x[0] = 1.0;
    p.x[1] = 1.0;
    batch.push_back(p);
  }
  disc.Update(batch, {});
  const ClusteringSnapshot snap = disc.Snapshot();
  EXPECT_EQ(snap.NumClusters(), 1u);
  for (Category c : snap.categories) EXPECT_EQ(c, Category::kCore);
  // Remove most duplicates: the cluster must dissipate below tau.
  std::vector<Point> out(batch.begin(), batch.begin() + 9);
  disc.Update({}, out);
  const ClusteringSnapshot after = disc.Snapshot();
  EXPECT_EQ(after.NumClusters(), 0u);
  for (Category c : after.categories) EXPECT_EQ(c, Category::kNoise);
}

// A full-turnover stream (stride == window) must behave like repeated
// from-scratch clustering.
TEST(DiscEdgeCaseTest, FullTurnoverMatchesScratchDbscan) {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  Disc disc(2, config);
  auto source = MakeStream(99);
  CountBasedWindow window(300, 300);
  for (int s = 0; s < 6; ++s) {
    WindowDelta delta = window.Advance(source->NextPoints(300));
    disc.Update(delta.incoming, delta.outgoing);
    ASSERT_EQ(disc.window_size(), 300u);
  }
}

// Alternating mass insertions and mass deletions (window drains to empty and
// refills) must not corrupt state.
TEST(DiscEdgeCaseTest, DrainAndRefill) {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  Disc disc(2, config);
  auto source = MakeStream(123);
  std::vector<Point> first = source->NextPoints(200);
  disc.Update(first, {});
  EXPECT_GT(disc.Snapshot().NumClusters(), 0u);
  disc.Update({}, first);
  EXPECT_EQ(disc.window_size(), 0u);
  std::vector<Point> second = source->NextPoints(200);
  disc.Update(second, {});
  EXPECT_EQ(disc.window_size(), 200u);
  EXPECT_GT(disc.Snapshot().NumClusters(), 0u);
}

}  // namespace
}  // namespace disc
