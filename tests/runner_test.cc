// Tests for the benchmark harness (eval/runner.h): stream slicing, warmup
// accounting, metric plumbing, and the DBSCAN reference generator — plus a
// byte-level fuzz of checkpoint loading.

#include <sstream>

#include "baselines/dbscan.h"
#include "core/disc.h"
#include "eval/runner.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"

namespace disc {
namespace {

BlobsGenerator MakeBlobs(std::uint64_t seed) {
  BlobsGenerator::Options o;
  o.num_blobs = 4;
  o.stddev = 0.3;
  o.noise_fraction = 0.1;
  o.seed = seed;
  return BlobsGenerator(o);
}

TEST(StreamDataTest, SizesFollowWindowStrideAndSlides) {
  BlobsGenerator source = MakeBlobs(81);
  const StreamData data = MakeStreamData(source, 400, 100, 2, 5);
  EXPECT_EQ(data.window, 400u);
  EXPECT_EQ(data.stride, 100u);
  EXPECT_EQ(data.fill_slides(), 4u);
  EXPECT_EQ(data.num_slides(), 4u + 2u + 5u);
  EXPECT_EQ(data.points.size(), (4u + 2u + 5u) * 100u);
  // Ids are the arrival order.
  for (std::size_t i = 0; i < data.points.size(); ++i) {
    EXPECT_EQ(data.points[i].point.id, i);
  }
}

TEST(RunMethodTest, MeasuresExactlyTheRequestedSlides) {
  BlobsGenerator source = MakeBlobs(82);
  const StreamData data = MakeStreamData(source, 300, 100, 1, 6);
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  Disc method(2, config);
  MeasureOptions opts;
  opts.warmup_slides = 1;
  const MethodStats stats = RunMethod(data, &method, opts);
  EXPECT_EQ(stats.name, "DISC");
  EXPECT_EQ(stats.measured_slides, 6u);
  EXPECT_GE(stats.avg_update_ms, 0.0);
  EXPECT_NEAR(stats.per_point_latency_us, stats.avg_update_ms * 1000.0 / 100.0,
              1e-9);
  // The method saw the whole stream.
  EXPECT_EQ(method.window_size(), 300u);
}

TEST(RunMethodTest, SearchesProbeIsAveraged) {
  BlobsGenerator source = MakeBlobs(83);
  const StreamData data = MakeStreamData(source, 200, 100, 1, 4);
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  Disc method(2, config);
  MeasureOptions opts;
  opts.searches_probe = [&] { return method.last_metrics().range_searches; };
  const MethodStats stats = RunMethod(data, &method, opts);
  // Every slide issues at least one search per stride point in COLLECT.
  EXPECT_GE(stats.avg_range_searches, 100.0);
}

TEST(RunMethodTest, AriAgainstTruthIsHighOnSeparatedBlobs) {
  BlobsGenerator source = MakeBlobs(84);
  const StreamData data = MakeStreamData(source, 400, 100, 1, 4);
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  Disc method(2, config);
  MeasureOptions opts;
  opts.ari_vs_truth = true;
  const MethodStats stats = RunMethod(data, &method, opts);
  EXPECT_GT(stats.avg_ari_truth, 0.7);
}

TEST(RunMethodTest, AriAgainstDbscanReferenceIsOneForDisc) {
  BlobsGenerator source = MakeBlobs(85);
  const StreamData data = MakeStreamData(source, 300, 100, 1, 4);
  const std::vector<ClusteringSnapshot> refs = DbscanReference(data, 0.4, 4, 1);
  ASSERT_EQ(refs.size(), 4u);
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  Disc method(2, config);
  MeasureOptions opts;
  opts.reference_snapshots = &refs;
  const MethodStats stats = RunMethod(data, &method, opts);
  EXPECT_NEAR(stats.avg_ari_reference, 1.0, 1e-9);
}

TEST(CheckpointFuzzTest, TruncatedCheckpointsNeverCrashAndAlwaysFail) {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  Disc original(2, config);
  BlobsGenerator source = MakeBlobs(86);
  original.Update(source.NextPoints(150), {});
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveCheckpoint(buffer).ok());
  const std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 64u);
  // Every strict prefix must be rejected cleanly.
  for (std::size_t cut = 0; cut < bytes.size();
       cut += std::max<std::size_t>(1, bytes.size() / 97)) {
    Disc target(2, config);
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(target.LoadCheckpoint(truncated).ok()) << "cut at " << cut;
  }
  // The full checkpoint still loads.
  Disc target(2, config);
  std::stringstream full(bytes);
  EXPECT_TRUE(target.LoadCheckpoint(full).ok());
}

TEST(CheckpointFuzzTest, BitFlippedHeadersAreRejected) {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  Disc original(2, config);
  BlobsGenerator source = MakeBlobs(87);
  original.Update(source.NextPoints(50), {});
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveCheckpoint(buffer).ok());
  std::string bytes = buffer.str();
  for (std::size_t pos : {0u, 8u, 12u, 16u, 20u}) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x5A);
    Disc target(2, config);
    std::stringstream in(corrupted);
    EXPECT_FALSE(target.LoadCheckpoint(in).ok()) << "flip at " << pos;
  }
}

}  // namespace
}  // namespace disc
