// Tests for the COLLECT parallelization: the ThreadPool/ParallelFor
// primitive itself, and the contract that matters most — clustering output
// is bit-identical for every DiscConfig::num_threads value.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "baselines/dbscan.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/disc.h"
#include "eval/equivalence.h"
#include "gtest/gtest.h"

namespace disc {
namespace {

// ---------------------------------------------------------------------------
// ParallelFor
// ---------------------------------------------------------------------------

TEST(ParallelForTest, NullPoolRunsSequentially) {
  std::vector<int> hits(100, 0);
  std::vector<std::size_t> lanes;
  ParallelFor(nullptr, hits.size(), [&](std::size_t lane, std::size_t i) {
    ++hits[i];
    lanes.push_back(lane);
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  for (std::size_t lane : lanes) EXPECT_EQ(lane, 0u);
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.lanes(), 4u);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, kN, [&](std::size_t lane, std::size_t i) {
    ASSERT_LT(lane, pool.lanes());
    ASSERT_LT(i, kN);
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeDoesNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = static_cast<std::size_t>(round * 17 % 97);
    std::atomic<std::uint64_t> sum{0};
    ParallelFor(&pool, n,
                [&](std::size_t, std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

TEST(ParallelForTest, BodyExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(&pool, 64,
                           [&](std::size_t, std::size_t i) {
                             if (i == 13) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // The pool must drain cleanly and accept the next batch.
  std::atomic<int> calls{0};
  ParallelFor(&pool, 8, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);
}

// ---------------------------------------------------------------------------
// Determinism across thread counts
// ---------------------------------------------------------------------------

// Canonical serialization of everything observable after one Update:
// labeling (sorted by id), the UpdateDelta, and the event stream.
std::string Canonical(const Disc& disc, const UpdateDelta& delta) {
  const ClusteringSnapshot snap = disc.Snapshot();
  std::vector<std::size_t> order(snap.ids.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              return snap.ids[a] < snap.ids[b];
            });
  std::ostringstream os;
  for (std::size_t i : order) {
    os << snap.ids[i] << ':' << static_cast<int>(snap.categories[i]) << ':'
       << snap.cids[i] << ';';
  }
  auto dump_sorted = [&os](std::vector<PointId> ids) {
    std::sort(ids.begin(), ids.end());
    os << '|';
    for (PointId id : ids) os << id << ',';
  };
  dump_sorted(delta.entered);
  dump_sorted(delta.exited);
  dump_sorted(delta.relabeled);
  os << '|';
  for (const ClusterEvent& ev : disc.last_events()) {
    os << static_cast<int>(ev.type) << '(';
    for (ClusterId cid : ev.cids) os << cid << ',';
    os << ')';
  }
  return os.str();
}

// Replays the same churn stream into a Disc configured with num_threads and
// records the canonical observation per round.
std::vector<std::string> RunChurn(std::uint32_t num_threads,
                                  std::uint64_t seed) {
  Rng rng(seed * 104729 + 7);
  DiscConfig config;
  config.eps = 0.25;
  config.tau = 3 + static_cast<std::uint32_t>(seed % 3);
  config.num_threads = num_threads;
  Disc disc(2, config);
  std::vector<Point> live;
  PointId next_id = 0;
  std::vector<std::string> trace;
  for (int round = 0; round < 20; ++round) {
    std::vector<Point> incoming;
    std::vector<Point> outgoing;
    const int ins = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < ins; ++i) {
      Point p;
      p.id = next_id++;
      p.dims = 2;
      if (rng.Bernoulli(0.5)) {
        const double cx = 0.3 * static_cast<double>(rng.UniformInt(0, 4));
        p.x[0] = cx + rng.Uniform(0.0, 0.2);
        p.x[1] = cx + rng.Uniform(0.0, 0.2);
      } else {
        p.x[0] = rng.Uniform(0.0, 2.0);
        p.x[1] = rng.Uniform(0.0, 2.0);
      }
      incoming.push_back(p);
      live.push_back(p);
    }
    const int dels =
        static_cast<int>(rng.UniformInt(0, static_cast<std::int64_t>(
                                               live.size() - incoming.size())));
    for (int i = 0; i < dels; ++i) {
      const std::size_t victim = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      bool fresh = false;
      for (const Point& p : incoming) {
        if (p.id == live[victim].id) {
          fresh = true;
          break;
        }
      }
      if (fresh) continue;
      outgoing.push_back(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
    const UpdateDelta& delta = disc.Update(incoming, outgoing);
    trace.push_back(Canonical(disc, delta));
  }
  return trace;
}

class ThreadDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreadDeterminismTest, AllThreadCountsProduceIdenticalOutput) {
  const std::uint64_t seed = GetParam();
  const std::vector<std::string> baseline = RunChurn(1, seed);
  for (std::uint32_t threads : {2u, 4u, 8u}) {
    const std::vector<std::string> trace = RunChurn(threads, seed);
    ASSERT_EQ(trace.size(), baseline.size());
    for (std::size_t round = 0; round < trace.size(); ++round) {
      ASSERT_EQ(trace[round], baseline[round])
          << "seed " << seed << " round " << round << " threads " << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadDeterminismTest,
                         ::testing::Range<std::uint64_t>(0, 6));

// The parallel path must stay DBSCAN-exact, not merely self-consistent.
TEST(ThreadDeterminismTest, ParallelCollectStaysDbscanExact) {
  Rng rng(42);
  DiscConfig config;
  config.eps = 0.25;
  config.tau = 4;
  config.num_threads = 4;
  Disc disc(2, config);
  std::vector<Point> live;
  PointId next_id = 0;
  for (int round = 0; round < 15; ++round) {
    std::vector<Point> incoming;
    for (int i = 0; i < 50; ++i) {
      Point p;
      p.id = next_id++;
      p.dims = 2;
      p.x[0] = rng.Uniform(0.0, 1.5);
      p.x[1] = rng.Uniform(0.0, 1.5);
      incoming.push_back(p);
      live.push_back(p);
    }
    std::vector<Point> outgoing;
    while (live.size() > 400) {
      outgoing.push_back(live.front());
      live.erase(live.begin());
    }
    disc.Update(incoming, outgoing);
    const DbscanResult truth = RunDbscan(live, config.eps, config.tau);
    const EquivalenceResult eq =
        CheckSameClustering(disc.Snapshot(), truth.snapshot, live, config.eps);
    ASSERT_TRUE(eq.ok) << "round " << round << ": " << eq.error;
  }
}

TEST(ThreadDeterminismTest, MetricsReportThreadsUsed) {
  DiscConfig config;
  config.eps = 0.25;
  config.tau = 3;
  config.num_threads = 4;
  Disc disc(2, config);
  std::vector<Point> incoming;
  for (int i = 0; i < 32; ++i) {
    Point p;
    p.id = static_cast<PointId>(i);
    p.dims = 2;
    p.x[0] = 0.01 * i;
    p.x[1] = 0.01 * i;
    incoming.push_back(p);
  }
  disc.Update(incoming, {});
  EXPECT_EQ(disc.last_metrics().threads_used, 4u);
  EXPECT_GE(disc.last_metrics().collect_parallel_ms, 0.0);
  EXPECT_GE(disc.LastPhaseTimings().threads_used, 4u);
}

}  // namespace
}  // namespace disc
