// Event-stream semantics: the cids carried by DISC's evolution events must
// be consistent with the snapshots around them, and the event stream must be
// deterministic for identical inputs.

#include <set>
#include <vector>

#include "core/disc.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

DiscConfig Config() {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  return config;
}

std::set<ClusterId> SnapshotCids(const ClusteringSnapshot& snap) {
  std::set<ClusterId> out;
  for (ClusterId c : snap.cids) {
    if (c != kNoiseCluster) out.insert(c);
  }
  return out;
}

TEST(EventSemanticsTest, EmergeCidsAppearInTheSnapshot) {
  Disc disc(2, Config());
  BlobsGenerator::Options o;
  o.num_blobs = 6;
  o.stddev = 0.25;
  o.seed = 131;
  BlobsGenerator source(o);
  CountBasedWindow window(600, 100);
  for (int s = 0; s < 10; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(100));
    disc.Update(d.incoming, d.outgoing);
    const std::set<ClusterId> live = SnapshotCids(disc.Snapshot());
    for (const ClusterEvent& e : disc.last_events()) {
      if (e.type != ClusterEventType::kEmerge) continue;
      ASSERT_EQ(e.cids.size(), 1u);
      // A cluster that emerged this slide exists now (it cannot also have
      // dissipated within the same slide: dissipation is an ex-core outcome
      // and ex-core processing precedes emergence).
      EXPECT_TRUE(live.count(e.cids[0])) << "slide " << s;
    }
  }
}

TEST(EventSemanticsTest, MergeAbsorbedCidsResolveToTheAbsorber) {
  Disc disc(2, Config());
  BlobsGenerator::Options o;
  o.num_blobs = 4;
  o.extent = 8.0;
  o.stddev = 0.35;
  o.drift = 0.06;  // Drifting blobs merge and split often.
  o.seed = 132;
  BlobsGenerator source(o);
  CountBasedWindow window(700, 140);
  int merges_seen = 0;
  for (int s = 0; s < 25; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(140));
    disc.Update(d.incoming, d.outgoing);
    const std::set<ClusterId> live = SnapshotCids(disc.Snapshot());
    for (const ClusterEvent& e : disc.last_events()) {
      if (e.type != ClusterEventType::kMerge) continue;
      ++merges_seen;
      ASSERT_GE(e.cids.size(), 2u);
      // The absorbed ids no longer appear as canonical snapshot cids; the
      // absorbing id may itself have been absorbed later the same slide, so
      // only non-liveness of the tail is guaranteed.
      for (std::size_t i = 1; i < e.cids.size(); ++i) {
        EXPECT_FALSE(live.count(e.cids[i])) << "slide " << s;
      }
    }
  }
  EXPECT_GT(merges_seen, 0) << "drifting stream produced no mergers to test";
}

TEST(EventSemanticsTest, SplitFreshCidsAreDistinctAndNew) {
  Disc disc(2, Config());
  BlobsGenerator::Options o;
  o.num_blobs = 4;
  o.extent = 8.0;
  o.stddev = 0.35;
  o.drift = 0.06;
  o.seed = 133;
  BlobsGenerator source(o);
  CountBasedWindow window(700, 140);
  std::set<ClusterId> ever_seen;
  int splits_seen = 0;
  for (int s = 0; s < 25; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(140));
    disc.Update(d.incoming, d.outgoing);
    for (const ClusterEvent& e : disc.last_events()) {
      if (e.type != ClusterEventType::kSplit) continue;
      ++splits_seen;
      ASSERT_GE(e.cids.size(), 2u);
      std::set<ClusterId> fresh(e.cids.begin() + 1, e.cids.end());
      EXPECT_EQ(fresh.size(), e.cids.size() - 1) << "duplicate fresh cid";
      for (ClusterId c : fresh) {
        EXPECT_FALSE(ever_seen.count(c)) << "fresh cid " << c << " reused";
      }
    }
    for (ClusterId c : SnapshotCids(disc.Snapshot())) ever_seen.insert(c);
  }
  // The drifting stream may or may not split within 25 slides; guarantee at
  // least one split deterministically with a bridge-removal scenario.
  if (splits_seen == 0) {
    DiscConfig config;
    config.eps = 0.15;
    config.tau = 3;
    Disc fresh_disc(2, config);
    auto p2 = [](PointId id, double x, double y) {
      Point p;
      p.id = id;
      p.dims = 2;
      p.x[0] = x;
      p.x[1] = y;
      return p;
    };
    std::vector<Point> all;
    for (PointId i = 0; i < 5; ++i) {
      all.push_back(p2(i, 1.0 + 0.1 * static_cast<double>(i), 1.0));
    }
    for (PointId i = 0; i < 5; ++i) {
      all.push_back(p2(100 + i, 2.0 + 0.1 * static_cast<double>(i), 1.0));
    }
    std::vector<Point> bridge = {p2(200, 1.5, 1.0), p2(201, 1.6, 1.0),
                                 p2(202, 1.7, 1.0), p2(203, 1.8, 1.0),
                                 p2(204, 1.9, 1.0)};
    all.insert(all.end(), bridge.begin(), bridge.end());
    fresh_disc.Update(all, {});
    fresh_disc.Update({}, bridge);
    for (const ClusterEvent& e : fresh_disc.last_events()) {
      if (e.type == ClusterEventType::kSplit) {
        ++splits_seen;
        EXPECT_GE(e.cids.size(), 2u);
      }
    }
  }
  EXPECT_GT(splits_seen, 0);
}

TEST(EventSemanticsTest, EventStreamIsDeterministic) {
  auto run = [] {
    Disc disc(2, Config());
    BlobsGenerator::Options o;
    o.num_blobs = 5;
    o.drift = 0.05;
    o.seed = 134;
    BlobsGenerator source(o);
    CountBasedWindow window(500, 100);
    std::vector<std::pair<ClusterEventType, std::vector<ClusterId>>> log;
    for (int s = 0; s < 15; ++s) {
      WindowDelta d = window.Advance(source.NextPoints(100));
      disc.Update(d.incoming, d.outgoing);
      for (const ClusterEvent& e : disc.last_events()) {
        log.emplace_back(e.type, e.cids);
      }
    }
    return log;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << i;
    EXPECT_EQ(a[i].second, b[i].second) << i;
  }
}

TEST(EventSemanticsTest, EverySlideWithExCoresEmitsAnExCoreOutcome) {
  Disc disc(2, Config());
  BlobsGenerator::Options o;
  o.num_blobs = 5;
  o.drift = 0.04;
  o.seed = 135;
  BlobsGenerator source(o);
  CountBasedWindow window(500, 100);
  for (int s = 0; s < 15; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(100));
    disc.Update(d.incoming, d.outgoing);
    if (disc.last_metrics().num_ex_groups == 0) continue;
    // Each ex-core group resolves to dissipate, shrink, or split.
    std::size_t outcomes = 0;
    for (const ClusterEvent& e : disc.last_events()) {
      if (e.type == ClusterEventType::kDissipate ||
          e.type == ClusterEventType::kShrink ||
          e.type == ClusterEventType::kSplit) {
        ++outcomes;
      }
    }
    EXPECT_GE(outcomes, 1u) << "slide " << s;
    EXPECT_GE(outcomes, disc.last_metrics().num_ex_groups) << "slide " << s;
  }
}

}  // namespace
}  // namespace disc
